//! Manifest-parsing robustness: no input — valid, truncated, bit-flipped,
//! or random garbage — may ever panic the parser or the lenient
//! recovery path. Corruption must surface as `Err` or as a salvaged
//! manifest with a warning (see `docs/fault_injection.md`).

use proptest::prelude::*;
use unxpec_harness::{
    output_digest, CompletedTrial, Manifest, PoisonedTrial, QuarantinedTrial, TimedOutTrial,
    TrialOutput,
};

/// A populated v2 manifest exercising every record section.
fn sample_manifest() -> Manifest {
    let mut m = Manifest::new(0xdead_beef, 0x5eed);
    let mut out = TrialOutput::new("rendered body".into(), vec![]);
    out.metrics = vec![("metric_a".into(), 1.5), ("metric_b".into(), -0.25)];
    m.completed.push(CompletedTrial {
        key: "exp/var/s0".into(),
        digest: output_digest(&out),
        attempts: 1,
        output: out,
    });
    let mut truncated = TrialOutput::new("truncated body".into(), vec![]);
    truncated.truncated = true;
    m.completed.push(CompletedTrial {
        key: "exp/var/s1".into(),
        digest: output_digest(&truncated),
        attempts: 2,
        output: truncated,
    });
    m.poisoned.push(PoisonedTrial {
        key: "exp/var/s2".into(),
        error: "panicked at 'boom'".into(),
        attempts: 3,
        failures: 2,
    });
    m.timed_out.push(TimedOutTrial {
        key: "exp/var/s3".into(),
        error: "deadline exceeded".into(),
        attempts: 1,
        failures: 1,
    });
    m.quarantined.push(QuarantinedTrial {
        key: "exp/var/s4".into(),
        error: "panicked thrice".into(),
        failures: 3,
    });
    m
}

/// Characters JSON structure is built from — input drawn here reaches
/// deeper parser layers than raw bytes do.
const JSONISH: &[char] = &[
    '{', '}', '[', ']', ',', ':', '"', '0', '1', '9', 'a', 'e', 'x', ' ', '\n', '.', '-', '\\',
];

fn temp_path(tag: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "unxpec-manifest-prop-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary bytes: parse returns Ok or Err, never panics.
    #[test]
    fn parse_never_panics_on_arbitrary_input(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let text = String::from_utf8_lossy(&bytes).into_owned();
        let _ = Manifest::parse(&text);
    }

    /// Arbitrary *JSON-looking* input reaches deeper parser layers and
    /// still must not panic.
    #[test]
    fn parse_never_panics_on_jsonish_input(
        indices in proptest::collection::vec(0usize..JSONISH.len(), 0..512),
    ) {
        let body: String = indices.iter().map(|&i| JSONISH[i]).collect();
        let _ = Manifest::parse(&format!("{{{body}}}"));
        let _ = Manifest::parse(&body);
    }

    /// Every prefix of a valid manifest either parses, recovers
    /// leniently with a warning, or fails typed — never panics, and
    /// recovery never invents records that were not in the prefix.
    #[test]
    fn truncation_never_panics_and_recovery_is_sound(cut in 0usize..2000) {
        let manifest = sample_manifest();
        let text = manifest.to_json();
        let cut = cut.min(text.len());
        // The writer emits pure ASCII, so any byte index is a char
        // boundary.
        let prefix = text.get(..cut).expect("manifest JSON is ASCII");
        let _ = Manifest::parse(prefix);

        let path = temp_path("prefix");
        std::fs::write(&path, prefix).expect("write prefix");
        let loaded = Manifest::load_lenient(&path);
        std::fs::remove_file(&path).ok();
        if let Ok((recovered, _warning)) = loaded {
            prop_assert!(recovered.completed.len() <= manifest.completed.len());
            prop_assert!(recovered.poisoned.len() <= manifest.poisoned.len());
            prop_assert!(recovered.timed_out.len() <= manifest.timed_out.len());
            prop_assert!(recovered.quarantined.len() <= manifest.quarantined.len());
            for trial in &recovered.completed {
                prop_assert!(
                    manifest.completed.iter().any(|t| t == trial),
                    "recovered a record the original never held"
                );
            }
        }
    }

    /// Single-byte corruption anywhere in a valid manifest: the
    /// checksum or parser rejects it, or lenient recovery salvages —
    /// no panic either way.
    #[test]
    fn bit_flips_never_panic(pos in 0usize..2000, flip in 1u8..=255) {
        let text = sample_manifest().to_json();
        let mut bytes = text.into_bytes();
        let pos = pos % bytes.len();
        bytes[pos] ^= flip;
        let corrupt = String::from_utf8_lossy(&bytes).into_owned();
        let _ = Manifest::parse(&corrupt);

        let path = temp_path("flip");
        std::fs::write(&path, &corrupt).expect("write corrupt");
        let _ = Manifest::load_lenient(&path);
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn the_sample_manifest_round_trips_cleanly() {
    let manifest = sample_manifest();
    let parsed = Manifest::parse(&manifest.to_json()).expect("round trip");
    assert_eq!(parsed.completed, manifest.completed);
    assert_eq!(parsed.poisoned, manifest.poisoned);
    assert_eq!(parsed.timed_out, manifest.timed_out);
    assert_eq!(parsed.quarantined, manifest.quarantined);
}
