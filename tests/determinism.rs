//! Cross-crate determinism: identical seeds must produce identical
//! experiment outputs, byte for byte. Reproducibility is a deliverable
//! of the harness, not an accident.

use unxpec::attack::{AttackConfig, SpectreV1, UnxpecChannel};
use unxpec::cache::NoiseModel;
use unxpec::defense::CleanupSpec;
use unxpec::experiments::{leakage, pdf, rollback, trace};
use unxpec::telemetry::Telemetry;
use unxpec::workloads::spec2017_like_suite;

#[test]
fn pdf_experiment_is_bitwise_reproducible() {
    let a = pdf::run(false, 40, 0x55);
    let b = pdf::run(false, 40, 0x55);
    assert_eq!(a.samples0, b.samples0);
    assert_eq!(a.samples1, b.samples1);
    assert_eq!(a.threshold, b.threshold);
    assert_eq!(a.to_csv(), b.to_csv());
    assert_eq!(a.to_svg(), b.to_svg());
}

#[test]
fn different_seeds_differ() {
    let a = pdf::run(false, 40, 0x55);
    let b = pdf::run(false, 40, 0x56);
    assert_ne!(
        (a.samples0, a.samples1),
        (b.samples0, b.samples1),
        "independent seeds must explore different noise"
    );
}

#[test]
fn leakage_render_is_reproducible() {
    let a = leakage::run(true, 80, 3).to_string();
    let b = leakage::run(true, 80, 3).to_string();
    assert_eq!(a, b);
}

#[test]
fn rollback_sweep_is_reproducible() {
    let a = rollback::run(true, 4, 5, 0x5eed);
    let b = rollback::run(true, 4, 5, 0x5eed);
    for (pa, pb) in a.points.iter().zip(&b.points) {
        assert_eq!(pa, pb);
    }
}

#[test]
fn channel_observation_streams_are_reproducible() {
    let observe = || {
        let mut chan =
            UnxpecChannel::new(AttackConfig::paper_with_es(), Box::new(CleanupSpec::new()));
        (0..30)
            .map(|i| chan.measure_bit(i % 3 == 0))
            .collect::<Vec<u64>>()
    };
    assert_eq!(observe(), observe());
}

#[test]
fn spectre_probe_latencies_are_reproducible() {
    let run = || {
        let mut a = SpectreV1::new(Box::new(CleanupSpec::new()));
        a.leak_byte(99).reload_latencies
    };
    assert_eq!(run(), run());
}

#[test]
fn telemetry_event_streams_are_reproducible() {
    // The event bus must not perturb or reorder anything: two identical
    // instrumented rounds produce byte-identical event streams and
    // Chrome trace documents.
    let capture = || {
        let cap = trace::run(false, 1 << 14, 0x5eed);
        (cap.events(), cap.chrome_trace(), cap.cleanup0, cap.cleanup1)
    };
    assert_eq!(capture(), capture());
}

#[test]
fn telemetry_under_seeded_noise_is_reproducible() {
    // With the hierarchy's noise model enabled the event order still
    // only depends on the seed.
    let capture = |seed: u64| {
        let mut chan =
            UnxpecChannel::new(AttackConfig::paper_no_es(), Box::new(CleanupSpec::new()));
        chan.core_mut()
            .hierarchy_mut()
            .set_noise(NoiseModel::default_sim(seed));
        let tel = Telemetry::ring(1 << 12);
        chan.core_mut().set_telemetry(tel.clone());
        for i in 0..10 {
            chan.measure_bit(i % 2 == 0);
        }
        tel.snapshot()
    };
    assert_eq!(capture(7), capture(7));
    assert_ne!(capture(7), capture(8), "seeds must matter");
}

#[test]
fn workload_measurements_are_reproducible() {
    let suite = spec2017_like_suite();
    let w = suite.iter().find(|w| w.name() == "gcc_r").unwrap();
    let measure = || {
        let mut core = unxpec::cpu::Core::table_i();
        w.measure(&mut core, 3_000, 9_000)
    };
    assert_eq!(measure(), measure());
}
