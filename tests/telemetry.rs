//! End-to-end telemetry: a traced attack round must export a valid
//! Chrome trace in which the CleanupSpec rollback is a span whose
//! duration depends on the secret — the unXpec channel, made visible.
//! The structural half validates the exported document itself —
//! bracket matching, span well-formedness, track metadata — over
//! adversarial (fault-injected) chaos captures.

use unxpec::attack::registry::{registry, TriggerKind};
use unxpec::attack::{AttackConfig, UnxpecChannel};
use unxpec::cache::FaultInjector;
use unxpec::cpu::{Core, ProgramBuilder, Reg};
use unxpec::defense::CleanupSpec;
use unxpec::experiments::chaos::ChaosMode;
use unxpec::experiments::trace;
use unxpec::telemetry::{
    chrome_trace_json, json, rollback_spans, Event, MetricsRegistry, Telemetry,
};

#[test]
fn enabled_telemetry_does_not_perturb_timing() {
    let latencies = |attach: bool| {
        let mut chan =
            UnxpecChannel::new(AttackConfig::paper_no_es(), Box::new(CleanupSpec::new()));
        if attach {
            chan.core_mut().set_telemetry(Telemetry::ring(1 << 12));
        }
        (0..10)
            .map(|i| chan.measure_bit(i % 2 == 0))
            .collect::<Vec<u64>>()
    };
    assert_eq!(
        latencies(false),
        latencies(true),
        "observation must not change what is observed"
    );
}

#[test]
fn attack_round_trace_is_valid_chrome_json() {
    let cap = trace::run(false, 1 << 15, 0x5eed);
    let doc = cap.chrome_trace();
    json::validate(&doc).expect("trace must be valid JSON");
    assert!(doc.contains("\"traceEvents\""));
    assert!(
        doc.contains("\"name\":\"rollback\""),
        "rollback span missing"
    );
    assert!(doc.contains("\"name\":\"inst.wrong_path\""));
    assert!(doc.contains("\"name\":\"thread_name\""));
}

#[test]
fn rollback_span_duration_differs_with_the_secret() {
    let cap = trace::run(false, 1 << 15, 0x5eed);
    // The sender squash's cleanup (single L1 install, paper §IV) shows
    // up only when secret = 1.
    assert!(
        cap.cleanup1 >= cap.cleanup0 + 15,
        "rollback span must encode the secret: {} vs {} cycles",
        cap.cleanup0,
        cap.cleanup1
    );
    // Both rounds' sender spans are in the exported document with
    // exactly those durations.
    let doc = cap.chrome_trace();
    for dur in [cap.cleanup0.max(1), cap.cleanup1] {
        assert!(
            doc.contains(&format!("\"dur\":{dur}")),
            "span dur {dur} missing"
        );
    }
    // And the span pairing agrees with the raw streams.
    let sender = |events: &[Event]| {
        rollback_spans(events)
            .iter()
            .filter(|s| s.branch_pc == cap.sender_pc)
            .map(|s| s.duration)
            .max()
            .unwrap()
    };
    assert_eq!(sender(&cap.secret0), cap.cleanup0);
    assert_eq!(sender(&cap.secret1), cap.cleanup1);
}

#[test]
fn eviction_sets_add_restorations_to_the_trace() {
    let cap = trace::run(true, 1 << 15, 0x5eed);
    let restores = cap
        .secret1
        .iter()
        .filter(|e| e.name() == "rollback_restore")
        .count();
    assert!(restores >= 1, "priming the set must force a restoration");
    assert!(
        cap.cleanup1 > trace::run(false, 1 << 15, 0x5eed).cleanup1,
        "restoration makes the secret-1 rollback longer still"
    );
}

#[test]
fn metrics_dumps_are_valid_json_and_cover_the_stack() {
    let cap = trace::run(false, 1 << 15, 0x5eed);
    let doc = cap.metrics.to_json();
    json::validate(&doc).expect("metrics dump must be valid JSON");
    for key in [
        "l1.hits",
        "l2.misses",
        "mshr.capacity",
        "cleanupspec.rollbacks",
    ] {
        assert!(doc.contains(key), "metrics must include {key}");
        assert!(cap.metrics.counter(key) > 0, "{key} must be non-zero");
    }
    let csv = cap.metrics.to_csv();
    assert!(csv.starts_with("kind,name,field,value"));
}

#[test]
fn ring_keeps_the_newest_events_when_over_capacity() {
    let tel = Telemetry::ring(8);
    for cycle in 0..100 {
        tel.emit(Event::SquashEnd {
            cycle,
            branch_pc: 0,
            epoch: cycle,
        });
    }
    let events = tel.snapshot();
    assert_eq!(events.len(), 8);
    assert_eq!(tel.dropped(), 92);
    let cycles: Vec<u64> = events.iter().map(|e| e.cycle()).collect();
    assert_eq!(
        cycles,
        (92..100).collect::<Vec<_>>(),
        "newest wins, oldest first"
    );
}

// ---------------------------------------------------------------------
// Chrome-trace structural validity
// ---------------------------------------------------------------------

/// Per-program event captures of a chaos-style sweep: every
/// conditional-branch registry program driven under CleanupSpec with
/// the mixed fault plan armed — the most adversarial streams the
/// simulator produces (delayed/reordered fills, spurious evictions,
/// double squashes).
fn chaos_sweep_captures() -> Vec<(&'static str, Vec<Event>)> {
    let mut captures = Vec::new();
    for spec in registry() {
        if spec.trigger != TriggerKind::ConditionalBranch {
            continue;
        }
        let mut core = Core::table_i();
        core.set_defense(Box::new(CleanupSpec::new()));
        spec.layout().install(core.mem_mut(), spec.fn_accesses);
        core.hierarchy_mut()
            .set_fault_injector(FaultInjector::new(ChaosMode::Mixed.plan(30), 0xc4a05));
        let tel = Telemetry::ring(1 << 16);
        core.set_telemetry(tel.clone());
        let mut vb = ProgramBuilder::new();
        vb.mov(Reg(1), spec.layout().secret_addr().raw());
        vb.load(Reg(2), Reg(1), 0);
        vb.halt();
        let victim = vb.build();
        for secret in [false, true, true, false] {
            spec.layout().set_secret(core.mem_mut(), secret);
            core.run(&victim);
            core.run(spec.program());
        }
        assert_eq!(tel.dropped(), 0, "{}: capture ring overflowed", spec.name);
        captures.push((spec.name, tel.snapshot()));
    }
    assert!(!captures.is_empty());
    captures
}

/// Every squash bracket must be balanced — each `squash_begin` has
/// exactly one matching `squash_end` with the same epoch, later in the
/// stream — even with fault injection perturbing fills mid-rollback.
#[test]
fn squash_brackets_are_balanced_in_chaos_captures() {
    for (name, events) in chaos_sweep_captures() {
        let mut open: Vec<u64> = Vec::new();
        let mut begins = 0usize;
        for e in &events {
            match *e {
                Event::SquashBegin { epoch, .. } => {
                    begins += 1;
                    open.push(epoch);
                }
                Event::SquashEnd { cycle, epoch, .. } => {
                    let pos = open
                        .iter()
                        .rposition(|&ep| ep == epoch)
                        .unwrap_or_else(|| panic!("{name}: end of epoch {epoch} without begin"));
                    open.remove(pos);
                    let _ = cycle;
                }
                _ => {}
            }
        }
        assert!(open.is_empty(), "{name}: unmatched squash_begin: {open:?}");
        // The exporter turns every bracket into a complete X span — no
        // dangling B/E-style halves survive into the document.
        let spans = rollback_spans(&events);
        assert_eq!(spans.len(), begins, "{name}: bracket lost in pairing");
        let doc = chrome_trace_json(&events);
        json::validate(&doc).expect("valid chaos trace JSON");
        assert!(!doc.contains("\"ph\":\"B\"") && !doc.contains("\"ph\":\"E\""));
        assert_eq!(
            doc.matches("\"name\":\"rollback\",\"ph\":\"X\"").count(),
            begins,
            "{name}: every bracket must export as one X span"
        );
    }
}

/// Structural invariants of the exported document, checked through the
/// JSON parser (not substring luck): X spans have positive durations
/// and sane bounds, defense-track spans are monotone in document order
/// and never partially overlap, instants are thread-scoped, and every
/// referenced track carries `thread_name` metadata.
#[test]
fn chrome_spans_are_well_formed_and_tracks_are_monotone() {
    for (name, events) in chaos_sweep_captures() {
        let doc = chrome_trace_json(&events);
        let root = json::parse(&doc).expect("parse chaos trace");
        let trace_events = root
            .get("traceEvents")
            .and_then(|v| v.as_arr())
            .expect("traceEvents array");

        let mut named_tracks = std::collections::BTreeSet::new();
        let mut used_tracks = std::collections::BTreeSet::new();
        let mut defense_spans: Vec<(u64, u64)> = Vec::new();
        let mut last_defense_ts = 0u64;
        for ev in trace_events {
            let ph = ev.get("ph").and_then(|v| v.as_str()).expect("ph");
            let tid = ev.get("tid").and_then(|v| v.as_u64());
            match ph {
                "M" => {
                    if let Some(tid) = tid {
                        named_tracks.insert(tid);
                    }
                }
                "X" => {
                    let tid = tid.expect("span tid");
                    used_tracks.insert(tid);
                    let ts = ev.get("ts").and_then(|v| v.as_u64()).expect("span ts");
                    let dur = ev.get("dur").and_then(|v| v.as_u64()).expect("span dur");
                    assert!(dur >= 1, "{name}: zero-width span at ts {ts}");
                    // tid 5 is the defense track (see Track::tid).
                    if tid == 5 {
                        assert!(
                            ts >= last_defense_ts,
                            "{name}: defense spans out of order at ts {ts}"
                        );
                        last_defense_ts = ts;
                        defense_spans.push((ts, ts + dur));
                    }
                }
                "i" => {
                    let tid = tid.expect("instant tid");
                    used_tracks.insert(tid);
                    assert_eq!(
                        ev.get("s").and_then(|v| v.as_str()),
                        Some("t"),
                        "{name}: instants must be thread-scoped"
                    );
                }
                other => panic!("{name}: unexpected phase {other:?}"),
            }
        }
        assert!(
            used_tracks.is_subset(&named_tracks),
            "{name}: events on unnamed tracks: {used_tracks:?} vs {named_tracks:?}"
        );
        // Well-formed nesting on the defense track: overlapping
        // rollback brackets are legal only when fault injection
        // restarted a cleanup walk (`SquashDuringRollback` charges the
        // first bracket extra cycles, pushing its redirect past the
        // next resolve) — each overlap must be explained by an
        // injected fault in the same capture.
        let faults = events
            .iter()
            .filter(|e| e.name() == "fault_injected")
            .count();
        for pair in defense_spans.windows(2) {
            let ((s1, e1), (s2, e2)) = (pair[0], pair[1]);
            if s2 < e1 && e2 > e1 {
                assert!(
                    faults > 0,
                    "{name}: rollback spans [{s1},{e1}) and [{s2},{e2}) overlap \
                     without any injected fault to explain it"
                );
            }
        }
        assert!(!defense_spans.is_empty(), "{name}: no rollback spans");
        // Undo instants happen inside their enclosing bracket.
        for e in &events {
            if matches!(
                e,
                Event::RollbackInvalidate { .. }
                    | Event::RollbackRestore { .. }
                    | Event::MshrCancel { .. }
            ) {
                let c = e.cycle();
                assert!(
                    defense_spans.iter().any(|&(s, en)| s <= c && c <= en),
                    "{name}: undo event at cycle {c} outside every rollback span"
                );
            }
        }
    }
}

/// Without fault injection the strong invariant holds: rollback
/// brackets on the defense track are strictly disjoint, in cycle
/// order, and every undo instant falls inside its bracket.
#[test]
fn unfaulted_rollback_spans_are_disjoint_and_contain_their_undos() {
    let cap = trace::run(false, 1 << 15, 0x5eed);
    for events in [&cap.secret0, &cap.secret1] {
        let spans = rollback_spans(events);
        assert!(!spans.is_empty());
        for pair in spans.windows(2) {
            assert!(
                pair[1].start >= pair[0].start + pair[0].duration,
                "unfaulted rollback brackets must be disjoint: {pair:?}"
            );
        }
        for e in events.iter() {
            if matches!(
                e,
                Event::RollbackInvalidate { .. }
                    | Event::RollbackRestore { .. }
                    | Event::MshrCancel { .. }
            ) {
                let c = e.cycle();
                assert!(
                    spans
                        .iter()
                        .any(|s| s.start <= c && c <= s.start + s.duration),
                    "undo event at cycle {c} outside every rollback bracket"
                );
            }
        }
    }
}

#[test]
fn registry_merge_combines_parallel_shards() {
    let mut a = MetricsRegistry::new();
    a.inc("squashes", 3);
    a.observe("squash.cleanup_cycles", 22);
    let mut b = MetricsRegistry::new();
    b.inc("squashes", 2);
    b.observe("squash.cleanup_cycles", 1);
    a.merge(&b);
    assert_eq!(a.counter("squashes"), 5);
    json::validate(&a.to_json()).expect("merged dump stays valid");
}
