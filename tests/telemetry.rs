//! End-to-end telemetry: a traced attack round must export a valid
//! Chrome trace in which the CleanupSpec rollback is a span whose
//! duration depends on the secret — the unXpec channel, made visible.

use unxpec::attack::{AttackConfig, UnxpecChannel};
use unxpec::defense::CleanupSpec;
use unxpec::experiments::trace;
use unxpec::telemetry::{json, rollback_spans, Event, MetricsRegistry, Telemetry};

#[test]
fn enabled_telemetry_does_not_perturb_timing() {
    let latencies = |attach: bool| {
        let mut chan =
            UnxpecChannel::new(AttackConfig::paper_no_es(), Box::new(CleanupSpec::new()));
        if attach {
            chan.core_mut().set_telemetry(Telemetry::ring(1 << 12));
        }
        (0..10)
            .map(|i| chan.measure_bit(i % 2 == 0))
            .collect::<Vec<u64>>()
    };
    assert_eq!(
        latencies(false),
        latencies(true),
        "observation must not change what is observed"
    );
}

#[test]
fn attack_round_trace_is_valid_chrome_json() {
    let cap = trace::run(false, 1 << 15, 0x5eed);
    let doc = cap.chrome_trace();
    json::validate(&doc).expect("trace must be valid JSON");
    assert!(doc.contains("\"traceEvents\""));
    assert!(
        doc.contains("\"name\":\"rollback\""),
        "rollback span missing"
    );
    assert!(doc.contains("\"name\":\"inst.wrong_path\""));
    assert!(doc.contains("\"name\":\"thread_name\""));
}

#[test]
fn rollback_span_duration_differs_with_the_secret() {
    let cap = trace::run(false, 1 << 15, 0x5eed);
    // The sender squash's cleanup (single L1 install, paper §IV) shows
    // up only when secret = 1.
    assert!(
        cap.cleanup1 >= cap.cleanup0 + 15,
        "rollback span must encode the secret: {} vs {} cycles",
        cap.cleanup0,
        cap.cleanup1
    );
    // Both rounds' sender spans are in the exported document with
    // exactly those durations.
    let doc = cap.chrome_trace();
    for dur in [cap.cleanup0.max(1), cap.cleanup1] {
        assert!(
            doc.contains(&format!("\"dur\":{dur}")),
            "span dur {dur} missing"
        );
    }
    // And the span pairing agrees with the raw streams.
    let sender = |events: &[Event]| {
        rollback_spans(events)
            .iter()
            .filter(|s| s.branch_pc == cap.sender_pc)
            .map(|s| s.duration)
            .max()
            .unwrap()
    };
    assert_eq!(sender(&cap.secret0), cap.cleanup0);
    assert_eq!(sender(&cap.secret1), cap.cleanup1);
}

#[test]
fn eviction_sets_add_restorations_to_the_trace() {
    let cap = trace::run(true, 1 << 15, 0x5eed);
    let restores = cap
        .secret1
        .iter()
        .filter(|e| e.name() == "rollback_restore")
        .count();
    assert!(restores >= 1, "priming the set must force a restoration");
    assert!(
        cap.cleanup1 > trace::run(false, 1 << 15, 0x5eed).cleanup1,
        "restoration makes the secret-1 rollback longer still"
    );
}

#[test]
fn metrics_dumps_are_valid_json_and_cover_the_stack() {
    let cap = trace::run(false, 1 << 15, 0x5eed);
    let doc = cap.metrics.to_json();
    json::validate(&doc).expect("metrics dump must be valid JSON");
    for key in [
        "l1.hits",
        "l2.misses",
        "mshr.capacity",
        "cleanupspec.rollbacks",
    ] {
        assert!(doc.contains(key), "metrics must include {key}");
        assert!(cap.metrics.counter(key) > 0, "{key} must be non-zero");
    }
    let csv = cap.metrics.to_csv();
    assert!(csv.starts_with("kind,name,field,value"));
}

#[test]
fn ring_keeps_the_newest_events_when_over_capacity() {
    let tel = Telemetry::ring(8);
    for cycle in 0..100 {
        tel.emit(Event::SquashEnd {
            cycle,
            branch_pc: 0,
            epoch: cycle,
        });
    }
    let events = tel.snapshot();
    assert_eq!(events.len(), 8);
    assert_eq!(tel.dropped(), 92);
    let cycles: Vec<u64> = events.iter().map(|e| e.cycle()).collect();
    assert_eq!(
        cycles,
        (92..100).collect::<Vec<_>>(),
        "newest wins, oldest first"
    );
}

#[test]
fn registry_merge_combines_parallel_shards() {
    let mut a = MetricsRegistry::new();
    a.inc("squashes", 3);
    a.observe("squash.cleanup_cycles", 22);
    let mut b = MetricsRegistry::new();
    b.inc("squashes", 2);
    b.observe("squash.cleanup_cycles", 1);
    a.merge(&b);
    assert_eq!(a.counter("squashes"), 5);
    json::validate(&a.to_json()).expect("merged dump stays valid");
}
