//! Trace-level cross-validation: for every program in the attack
//! registry, the rollback forensics reconstruction (episodes folded
//! from a raw telemetry snapshot) must classify the channel exactly as
//! the static analyzer predicts — a cache-footprint leak under the
//! unsafe baseline, a rollback-timing leak under CleanupSpec. This is
//! the third witness next to the static analyzer (PR 4) and the
//! end-to-end simulator measurements (`tests/analysis.rs`): same
//! verdicts, derived only from the event stream.

use unxpec::analysis::{analyze, DefenseModel, SecretRegion, Verdict};
use unxpec::attack::registry::{registry, ProgramSpec, TriggerKind};
use unxpec::attack::{SpectreRsb, SpectreV2};
use unxpec::cpu::{Core, CoreConfig, Defense, ProgramBuilder, Reg, UnsafeBaseline};
use unxpec::defense::CleanupSpec;
use unxpec::telemetry::{fold_episodes, render_digest, trace_verdict, Event, Telemetry};

const RING: usize = 1 << 16;

fn defense_for(model: DefenseModel) -> Box<dyn Defense> {
    match model {
        DefenseModel::Unsafe => Box::new(UnsafeBaseline),
        DefenseModel::CleanupSpec => Box::new(CleanupSpec::new()),
        other => unreachable!("only the two leaking models are driven here: {other:?}"),
    }
}

/// One instrumented secret-0 and one secret-1 round of `spec` under
/// `model`, after untraced warmups — the same capture discipline as
/// the `report` binary.
fn capture_events(spec: &ProgramSpec, model: DefenseModel) -> Vec<Event> {
    let tel = Telemetry::ring(RING);
    match spec.trigger {
        TriggerKind::ConditionalBranch => {
            let mut core = Core::table_i();
            core.set_defense(defense_for(model));
            spec.layout().install(core.mem_mut(), spec.fn_accesses);
            let mut vb = ProgramBuilder::new();
            vb.mov(Reg(1), spec.layout().secret_addr().raw());
            vb.load(Reg(2), Reg(1), 0);
            vb.halt();
            let victim = vb.build();
            let round = |core: &mut Core, secret: bool| {
                spec.layout().set_secret(core.mem_mut(), secret);
                core.run(&victim);
                core.run(spec.program());
            };
            round(&mut core, false);
            round(&mut core, true);
            core.set_telemetry(tel.clone());
            round(&mut core, false);
            round(&mut core, true);
        }
        TriggerKind::IndirectJump => {
            let mut attacker = SpectreV2::new(defense_for(model));
            attacker.core_mut().set_telemetry(tel.clone());
            attacker.measure_bit(false);
            attacker.measure_bit(true);
        }
        TriggerKind::Return => {
            let mut attacker = SpectreRsb::new(defense_for(model));
            attacker.core_mut().set_telemetry(tel.clone());
            attacker.measure_bit(false);
            attacker.measure_bit(true);
        }
    }
    assert_eq!(tel.dropped(), 0, "{}: capture ring overflowed", spec.name);
    tel.snapshot()
}

fn check_program(name: &str) {
    let spec = registry()
        .into_iter()
        .find(|s| s.name == name)
        .expect("registered program");
    let secrets: Vec<SecretRegion> =
        SecretRegion::from_layout(spec.layout().memory_layout(), "SECRET")
            .into_iter()
            .collect();
    let analysis = analyze(spec.name, spec.program(), &secrets, &CoreConfig::table_i());

    for model in [DefenseModel::Unsafe, DefenseModel::CleanupSpec] {
        let events = capture_events(&spec, model);
        let episodes = fold_episodes(&events);
        assert!(
            !episodes.is_empty(),
            "{name} under {}: an attack round must produce speculative episodes",
            model.label()
        );
        let dynamic = trace_verdict(&episodes);
        let statik = match analysis.verdict(model) {
            Verdict::Leak(channel) => channel.label(),
            Verdict::Clean => "clean",
        };
        assert_eq!(
            dynamic,
            statik,
            "{name} under {}: forensics verdict disagrees with the static analyzer\n{}",
            model.label(),
            render_digest(&format!("{name} under {}", model.label()), &episodes)
        );
    }

    // CleanupSpec episodes must show the undo machinery itself, not
    // just the aggregate verdict: at least one episode with undo
    // actions and a non-trivial cleanup duration (the channel).
    let events = capture_events(&spec, DefenseModel::CleanupSpec);
    let episodes = fold_episodes(&events);
    let leaky = episodes
        .iter()
        .find(|ep| ep.channel() == Some("rollback-timing"))
        .expect("a rollback-timing episode under CleanupSpec");
    assert!(leaky.undo_actions() > 0);
    assert!(
        leaky.cleanup_cycles() >= 8,
        "{name}: secret-dependent cleanup must be visible, got {}",
        leaky.cleanup_cycles()
    );
}

#[test]
fn spectre_forensics_agree_with_the_analyzer() {
    check_program("spectre");
}

#[test]
fn spectre_v2_forensics_agree_with_the_analyzer() {
    check_program("spectre_v2");
}

#[test]
fn spectre_rsb_forensics_agree_with_the_analyzer() {
    check_program("spectre_rsb");
}

#[test]
fn eviction_forensics_agree_with_the_analyzer() {
    check_program("eviction");
}

#[test]
fn multilevel_forensics_agree_with_the_analyzer() {
    check_program("multilevel");
}

#[test]
fn smt_forensics_agree_with_the_analyzer() {
    check_program("smt");
}

#[test]
fn adaptive_forensics_agree_with_the_analyzer() {
    check_program("adaptive");
}

/// The digest renderer over a real capture: markdown table, T-marks,
/// and the summary verdict line.
#[test]
fn digest_renders_the_timeline_marks() {
    let spec = registry()
        .into_iter()
        .find(|s| s.name == "spectre")
        .expect("registered program");
    let events = capture_events(&spec, DefenseModel::CleanupSpec);
    let episodes = fold_episodes(&events);
    let digest = render_digest("spectre under cleanupspec", &episodes);
    assert!(digest.starts_with("### spectre under cleanupspec"));
    assert!(digest.contains("| ep | trigger pc | T1 | T2 | T3 | T4 | T5 | T6 |"));
    assert!(digest.contains("verdict: **rollback-timing**"));
}
