//! Cross-validation of the static transient-leakage analyzer against
//! the cycle simulator.
//!
//! Two halves:
//!
//! * **Verdict agreement** — for every program in the attack registry,
//!   the analyzer's per-defense verdict must match what the simulator
//!   actually measures: a cache-footprint leak without a defense, a
//!   rollback-timing leak under CleanupSpec, and no signal under
//!   constant-time rollback.
//! * **Window soundness** — a property test: every instruction the
//!   traced core executes on a wrong path must lie inside some
//!   statically computed speculative window.

use std::collections::BTreeSet;

use proptest::prelude::*;
use unxpec::analysis::{
    analyze, document, speculative_windows, Cfg, Channel, DefenseModel, ProgramAnalysis,
    SecretRegion, Verdict,
};
use unxpec::attack::benign_registry;
use unxpec::attack::probe_latency;
use unxpec::attack::registry::{registry, ProgramSpec, TriggerKind};
use unxpec::cpu::{Cond, Core, CoreConfig, Defense, Program, ProgramBuilder, Reg, UnsafeBaseline};
use unxpec::defense::{CleanupSpec, ConstantTimeRollback};

/// Cycles below which a probe load counts as an L1/L2 hit.
const HIT_THRESHOLD: u64 = 60;

/// Minimum mean secret-dependent latency difference that counts as a
/// live timing channel (the real effect is ~22 cycles).
const TIMING_THRESHOLD: f64 = 8.0;

/// Constant-time rollback pad: must exceed the worst real cleanup of
/// any registered program (the eviction-set round restores ~16 lines).
const CT_PAD: u64 = 120;

fn static_analysis_of(spec: &ProgramSpec) -> ProgramAnalysis {
    let secrets: Vec<SecretRegion> =
        SecretRegion::from_layout(spec.layout().memory_layout(), "SECRET")
            .into_iter()
            .collect();
    analyze(spec.name, spec.program(), &secrets, &CoreConfig::table_i())
}

#[derive(Clone, Copy, Debug)]
enum DefenseKind {
    Unsafe,
    Cleanup,
    ConstantTime,
}

impl DefenseKind {
    fn boxed(self) -> Box<dyn Defense> {
        match self {
            DefenseKind::Unsafe => Box::new(UnsafeBaseline),
            DefenseKind::Cleanup => Box::new(CleanupSpec::new()),
            DefenseKind::ConstantTime => Box::new(ConstantTimeRollback::new(CT_PAD)),
        }
    }
}

/// What the simulator observes for one (program, defense) pair.
#[derive(Debug)]
struct DynamicOutcome {
    /// Mean `secret=1 - secret=0` receiver latency difference.
    timing_diff: f64,
    /// Probe line warm after a secret=1 round (cache-contents channel).
    footprint_after_one: bool,
    /// Probe line warm after a secret=0 round.
    footprint_after_zero: bool,
}

impl DynamicOutcome {
    fn timing_channel(&self) -> bool {
        self.timing_diff > TIMING_THRESHOLD
    }

    fn footprint_channel(&self) -> bool {
        self.footprint_after_one && !self.footprint_after_zero
    }
}

/// Drives a registry sender-round program (conditional-branch trigger)
/// the same way `UnxpecChannel` does.
struct RoundDriver {
    core: Core,
    spec: ProgramSpec,
    victim_touch: Program,
}

impl RoundDriver {
    fn new(spec: &ProgramSpec, defense: Box<dyn Defense>) -> Self {
        let mut core = Core::table_i();
        core.set_defense(defense);
        spec.layout().install(core.mem_mut(), spec.fn_accesses);
        let mut vb = ProgramBuilder::new();
        vb.mov(Reg(1), spec.layout().secret_addr().raw());
        vb.load(Reg(2), Reg(1), 0);
        vb.halt();
        let mut this = RoundDriver {
            core,
            spec: spec.clone(),
            victim_touch: vb.build(),
        };
        // Discard the cold-cache warmup rounds.
        this.measure_bit(false);
        this.measure_bit(true);
        this
    }

    fn measure_bit(&mut self, secret: bool) -> u64 {
        self.spec.layout().set_secret(self.core.mem_mut(), secret);
        self.core.run(&self.victim_touch);
        let r = self.core.run(self.spec.program());
        r.reg(Reg(21)) - r.reg(Reg(20))
    }

    /// Whether `P[64]` (the k=1 secret-1 target every registered branch
    /// round loads) is warm right now.
    fn probe_line_warm(&mut self) -> bool {
        let addr = self.spec.layout().probe_line(1);
        probe_latency(&mut self.core, addr) < HIT_THRESHOLD
    }
}

fn dynamic_outcome(spec: &ProgramSpec, kind: DefenseKind) -> DynamicOutcome {
    const ROUNDS: usize = 8;
    match spec.trigger {
        TriggerKind::ConditionalBranch => {
            let mut d = RoundDriver::new(spec, kind.boxed());
            let mut sum0 = 0.0;
            let mut sum1 = 0.0;
            for _ in 0..ROUNDS {
                sum0 += d.measure_bit(false) as f64;
                sum1 += d.measure_bit(true) as f64;
            }
            let _ = d.measure_bit(false);
            let footprint_after_zero = d.probe_line_warm();
            let _ = d.measure_bit(true);
            let footprint_after_one = d.probe_line_warm();
            DynamicOutcome {
                timing_diff: (sum1 - sum0) / ROUNDS as f64,
                footprint_after_one,
                footprint_after_zero,
            }
        }
        TriggerKind::IndirectJump => {
            let mut a = unxpec::attack::SpectreV2::new(kind.boxed());
            let mut sum0 = 0.0;
            let mut sum1 = 0.0;
            for _ in 0..ROUNDS {
                sum0 += a.measure_bit(false).latency as f64;
                sum1 += a.measure_bit(true).latency as f64;
            }
            let footprint_after_zero = a.measure_bit(false).footprint_visible;
            let footprint_after_one = a.measure_bit(true).footprint_visible;
            DynamicOutcome {
                timing_diff: (sum1 - sum0) / ROUNDS as f64,
                footprint_after_one,
                footprint_after_zero,
            }
        }
        TriggerKind::Return => {
            let mut a = unxpec::attack::SpectreRsb::new(kind.boxed());
            let mut sum0 = 0.0;
            let mut sum1 = 0.0;
            for _ in 0..ROUNDS {
                sum0 += a.measure_bit(false).0 as f64;
                sum1 += a.measure_bit(true).0 as f64;
            }
            let footprint_after_zero = a.measure_bit(false).1;
            let footprint_after_one = a.measure_bit(true).1;
            DynamicOutcome {
                timing_diff: (sum1 - sum0) / ROUNDS as f64,
                footprint_after_one,
                footprint_after_zero,
            }
        }
    }
}

/// The full agreement check for one registry entry.
fn check_program(name: &str) {
    let spec = registry()
        .into_iter()
        .find(|s| s.name == name)
        .expect("registered program");
    let analysis = static_analysis_of(&spec);

    // Static side: every attack program must be flagged.
    assert_eq!(
        analysis.verdict(DefenseModel::Unsafe),
        Verdict::Leak(Channel::CacheFootprint),
        "{name}: static analyzer must flag the undefended footprint"
    );
    assert_eq!(
        analysis.verdict(DefenseModel::CleanupSpec),
        Verdict::Leak(Channel::RollbackTiming),
        "{name}: static analyzer must flag the rollback-timing channel"
    );
    assert_eq!(
        analysis.verdict(DefenseModel::InvisiSpec),
        Verdict::Clean,
        "{name}: InvisiSpec closes both channels"
    );
    assert_eq!(
        analysis.verdict(DefenseModel::DelayOnMiss),
        Verdict::Clean,
        "{name}: DelayOnMiss closes both channels"
    );
    assert_eq!(
        analysis.verdict(DefenseModel::ConstantTime),
        Verdict::Clean,
        "{name}: constant-time rollback closes both channels"
    );

    // Dynamic side, and agreement with the static verdicts.
    let unsafe_dyn = dynamic_outcome(&spec, DefenseKind::Unsafe);
    assert!(
        unsafe_dyn.footprint_channel(),
        "{name}: simulator must show the footprint channel without a defense \
         (after1={} after0={})",
        unsafe_dyn.footprint_after_one,
        unsafe_dyn.footprint_after_zero
    );
    assert_eq!(
        analysis.verdict(DefenseModel::Unsafe).is_leak(),
        unsafe_dyn.footprint_channel(),
        "{name}: unsafe verdict disagrees with the simulator"
    );

    let cleanup_dyn = dynamic_outcome(&spec, DefenseKind::Cleanup);
    assert!(
        cleanup_dyn.timing_channel(),
        "{name}: simulator must show the rollback-timing channel under CleanupSpec \
         (diff {:.1})",
        cleanup_dyn.timing_diff
    );
    assert!(
        !cleanup_dyn.footprint_channel(),
        "{name}: CleanupSpec must erase the footprint"
    );
    assert_eq!(
        analysis.verdict(DefenseModel::CleanupSpec).is_leak(),
        cleanup_dyn.timing_channel(),
        "{name}: CleanupSpec verdict disagrees with the simulator"
    );

    let ct_dyn = dynamic_outcome(&spec, DefenseKind::ConstantTime);
    assert!(
        ct_dyn.timing_diff.abs() < TIMING_THRESHOLD,
        "{name}: constant-time rollback must flatten the timing channel \
         (diff {:.1})",
        ct_dyn.timing_diff
    );
    assert!(
        !ct_dyn.footprint_channel(),
        "{name}: constant-time rollback still undoes the footprint"
    );
    assert_eq!(
        analysis.verdict(DefenseModel::ConstantTime).is_leak(),
        ct_dyn.timing_channel() || ct_dyn.footprint_channel(),
        "{name}: constant-time verdict disagrees with the simulator"
    );
}

#[test]
fn spectre_verdicts_match_the_simulator() {
    check_program("spectre");
}

#[test]
fn spectre_v2_verdicts_match_the_simulator() {
    check_program("spectre_v2");
}

#[test]
fn spectre_rsb_verdicts_match_the_simulator() {
    check_program("spectre_rsb");
}

#[test]
fn eviction_verdicts_match_the_simulator() {
    check_program("eviction");
}

#[test]
fn multilevel_verdicts_match_the_simulator() {
    check_program("multilevel");
}

#[test]
fn smt_verdicts_match_the_simulator() {
    check_program("smt");
}

#[test]
fn adaptive_verdicts_match_the_simulator() {
    check_program("adaptive");
}

#[test]
fn golden_json_matches_the_committed_file() {
    // The committed golden file (diffed in CI by the analysis-smoke
    // job) must match what the library produces today — over both the
    // attack registry and the benign expected-clean registry, exactly
    // as `analyze --json` emits it.
    let committed =
        std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/analysis_golden.json"))
            .expect("analysis_golden.json present");
    let analyses: Vec<ProgramAnalysis> = registry()
        .iter()
        .chain(benign_registry().iter())
        .map(static_analysis_of)
        .collect();
    let produced = document(&analyses);
    assert_eq!(
        committed, produced,
        "analysis_golden.json is stale; regenerate with `analyze --json`"
    );
}

#[test]
fn document_output_is_independent_of_input_order() {
    // `analyze --json` must be byte-deterministic no matter how the
    // caller orders the analyses: `document` sorts programs by name,
    // and each program's reports are sorted by (defense, pc, spec_pc).
    let mut analyses: Vec<ProgramAnalysis> = registry()
        .iter()
        .chain(benign_registry().iter())
        .map(static_analysis_of)
        .collect();
    let forward = document(&analyses);
    analyses.reverse();
    let reversed = document(&analyses);
    assert_eq!(forward, reversed, "document must sort, not echo, its input");
    let names: Vec<&str> = analyses.iter().map(|a| a.name.as_str()).collect();
    let mut sorted = names.clone();
    sorted.sort_unstable();
    for (a, b) in sorted.iter().zip(sorted.iter().skip(1)) {
        let (ia, ib) = (
            forward
                .find(&format!("\"program\":\"{a}\""))
                .expect("present"),
            forward
                .find(&format!("\"program\":\"{b}\""))
                .expect("present"),
        );
        assert!(ia < ib, "{a} must precede {b} in the document");
    }
}

#[test]
fn benign_programs_are_clean_statically_and_dynamically() {
    // The join-point false positive (`switch_join`) and the masked
    // stride walker must be clean under every defense *and* show no
    // live channel in the simulator even undefended.
    for spec in benign_registry() {
        let analysis = static_analysis_of(&spec);
        assert!(
            analysis.windowed.is_empty(),
            "{}: no transmitter may survive refinement",
            spec.name
        );
        for d in DefenseModel::ALL {
            assert_eq!(
                analysis.verdict(d),
                Verdict::Clean,
                "{}: must be statically clean under {}",
                spec.name,
                d.label()
            );
        }
    }
    // switch_join is the canonical join artifact: the flow-insensitive
    // pass alone would flag it, so its demotion must be on record.
    let switch_join = benign_registry()
        .into_iter()
        .find(|s| s.name == "switch_join")
        .expect("registered");
    let analysis = static_analysis_of(&switch_join);
    assert!(
        !analysis.demoted.is_empty(),
        "switch_join must document the demoted join-artifact candidate"
    );
}

#[test]
fn witness_golden_matches_the_committed_file() {
    // The witness-replay golden (diffed in CI at quick scale) must
    // reproduce byte-for-byte, and every obligation in it must hold.
    let committed =
        std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/witness_golden.json"))
            .expect("witness_golden.json present");
    let config = unxpec::analysis::ReplayConfig {
        rounds: 2,
        sweep_secrets: 2,
        ..Default::default()
    };
    let report = unxpec::analysis::replay_registry(&config, &Default::default())
        .expect("replay_registry succeeds");
    assert!(
        report.all_confirmed(),
        "every witness must confirm and every sweep must stay dry"
    );
    assert_eq!(
        committed,
        report.to_json(),
        "witness_golden.json is stale; regenerate with \
         `witness-replay --json --rounds 2 --sweep 2`"
    );
}

// ---------------------------------------------------------------------
// Window soundness property test
// ---------------------------------------------------------------------

/// Builds a random terminating program from raw op tuples: branches and
/// jumps only go forward, and the program ends in `halt`.
fn build_random_program(ops: &[(u8, u8, u8, u64)]) -> Program {
    let n = ops.len();
    let mut b = ProgramBuilder::new();
    for (i, &(op, r1, r2, imm)) in ops.iter().enumerate() {
        b.label(&format!("L{i}"));
        let dst = Reg(1 + r1 % 8);
        let src = Reg(1 + r2 % 8);
        // Forward target in i+1..=n ("L{n}" is the final halt).
        let target = i + 1 + (imm as usize % (n - i));
        match op % 6 {
            0 => b.mov(dst, imm % 4096),
            1 => b.add(dst, src, imm % 256),
            2 => b.load(dst, src, (imm % 64) as i64),
            3 => b.branch(Cond::Lt, src, imm % 16, &format!("L{target}")),
            4 => b.jump(&format!("L{target}")),
            _ => b.nop(),
        };
    }
    b.label(&format!("L{n}"));
    b.halt();
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Soundness of the speculative-window pass: the traced simulator
    /// never executes a wrong-path instruction outside the union of the
    /// statically computed windows.
    #[test]
    fn windows_cover_every_transient_instruction(
        ops in proptest::collection::vec(
            (0u8..255, 0u8..255, 0u8..255, 0u64..1_000_000),
            1..40,
        ),
    ) {
        let program = build_random_program(&ops);
        let cfg = Cfg::build(&program);
        let config = CoreConfig::table_i();
        let windows = speculative_windows(&program, &cfg, &config);
        let covered: BTreeSet<usize> = windows
            .iter()
            .flat_map(|w| w.reach.keys().copied())
            .collect();

        let mut core = Core::table_i();
        core.set_tracing(true);
        let r = core.run(&program);
        let trace = r.trace.expect("tracing enabled");
        for e in trace.wrong_path_events() {
            prop_assert!(
                covered.contains(&e.pc),
                "wrong-path pc {} (inst {:?}) outside every static window",
                e.pc,
                e.inst
            );
        }
    }

    /// Monotonicity of the verdict in the secret region: widening the
    /// region (same analysis otherwise) can only add taint sources, so
    /// a leak verdict must never flip to clean, per defense.
    #[test]
    fn verdicts_are_monotone_under_secret_widening(
        ops in proptest::collection::vec(
            (0u8..255, 0u8..255, 0u8..255, 0u64..1_000_000),
            1..40,
        ),
        widen_down in 0u64..0x1000,
        widen_up in 0u64..0x1000,
    ) {
        let program = build_random_program(&ops);
        let narrow = vec![SecretRegion {
            name: "SECRET".into(),
            base: 0x5000,
            len_bytes: 64,
        }];
        let wide = vec![SecretRegion {
            name: "SECRET".into(),
            base: 0x5000 - widen_down,
            len_bytes: 64 + widen_down + widen_up,
        }];
        let config = CoreConfig::table_i();
        let a_narrow = analyze("narrow", &program, &narrow, &config);
        let a_wide = analyze("wide", &program, &wide, &config);
        for d in DefenseModel::ALL {
            prop_assert!(
                !a_narrow.verdict(d).is_leak() || a_wide.verdict(d).is_leak(),
                "{}: leak under the narrow region but clean under the \
                 widened one (narrow {:?}, wide {:?})",
                d.label(),
                a_narrow.verdict(d),
                a_wide.verdict(d),
            );
        }
    }
}
