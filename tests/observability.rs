//! Integration tests for the live observability plane: the metrics
//! exposition endpoint must never perturb sweep results (the cardinal
//! rule — observation outside the trial path), the harness progress
//! series must reconcile with the report, and ring-sink drop
//! accounting must surface on the scraped text page.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use unxpec::experiments::trace;
use unxpec::telemetry::{prometheus_text, scrape, MetricsHub, MetricsServer};
use unxpec_harness::{run_sweep, Registry, SweepOptions, SweepSpec};

fn observed_spec() -> SweepSpec {
    let mut spec = SweepSpec::quick();
    spec.experiments = vec!["timeline".into(), "rollback".into()];
    spec.seeds = 2;
    spec
}

/// The acceptance property of the whole tentpole: a sweep with the
/// endpoint active — and hammered by a scraper thread the entire time —
/// produces byte-identical results to a sweep without it.
#[test]
fn scraped_live_endpoint_never_perturbs_sweep_results() {
    let registry = Registry::builtin();
    let spec = observed_spec();

    let plain = run_sweep(
        &spec,
        &registry,
        &SweepOptions {
            jobs: 4,
            ..Default::default()
        },
    )
    .expect("plain sweep");

    let hub = MetricsHub::new();
    let mut server = MetricsServer::serve("127.0.0.1:0", hub.clone()).expect("bind");
    let addr = server.addr();
    let stop = Arc::new(AtomicBool::new(false));
    let scraper = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut ok = 0u64;
            while !stop.load(Ordering::SeqCst) {
                if scrape(addr, "/metrics").is_ok() {
                    ok += 1;
                }
                if scrape(addr, "/metrics.json").is_ok() {
                    ok += 1;
                }
            }
            ok
        })
    };
    let live = run_sweep(
        &spec,
        &registry,
        &SweepOptions {
            jobs: 4,
            live: Some(hub.clone()),
            self_profile_ms: Some(1),
            ..Default::default()
        },
    )
    .expect("live sweep");
    stop.store(true, Ordering::SeqCst);
    let scrapes = scraper.join().expect("scraper thread");
    server.shutdown();

    assert!(
        scrapes > 0,
        "the scraper must actually have hit the endpoint"
    );
    assert_eq!(
        plain.aggregate_digest, live.aggregate_digest,
        "scraping changed the results"
    );
    assert_eq!(plain.aggregates, live.aggregates);
    assert_eq!(plain.results.len(), live.results.len());
    for (a, b) in plain.results.iter().zip(&live.results) {
        assert_eq!(a.trial.key, b.trial.key);
        assert_eq!(a.digest, b.digest, "trial {} output differs", a.trial.key);
    }

    // The self-profiler rode along; its samples are all attributed to
    // the workers the sweep actually used.
    let profile = live.self_profile.expect("self profile requested");
    assert!(profile
        .children
        .iter()
        .all(|w| w.name.starts_with("worker-")));
}

/// After a sweep, the live hub's progress series must reconcile
/// exactly with the final report.
#[test]
fn progress_series_reconcile_with_the_final_report() {
    let registry = Registry::builtin();
    let spec = observed_spec();
    let hub = MetricsHub::new();
    let report = run_sweep(
        &spec,
        &registry,
        &SweepOptions {
            jobs: 2,
            live: Some(hub.clone()),
            ..Default::default()
        },
    )
    .expect("sweep");

    let snap = hub.snapshot();
    let total = report.results.len() + report.poisoned.len() + report.timed_out.len();
    assert_eq!(snap.counter("sweep.progress.total"), total as u64);
    assert_eq!(snap.counter("sweep.progress.done"), total as u64);
    assert_eq!(snap.counter("sweep.progress.poisoned"), 0);
    assert_eq!(snap.counter("sweep.progress.timed_out"), 0);
    assert_eq!(snap.counter("sweep.progress.jobs"), 2);
    // Per-worker throughput series sum to the executed-trial count.
    let per_worker: u64 = (0..2)
        .map(|w| snap.counter(&format!("sweep.worker{w}.trials")))
        .sum();
    assert_eq!(per_worker, total as u64);
    // Every trial observed into the latency histograms.
    let text = prometheus_text(&snap);
    assert!(text.contains("sweep_trial_duration_us_count"));
    assert!(text.contains("sweep_exp_timeline_latency_us{quantile=\"0.9\"}"));
}

/// Satellite: overflowing a tiny ring must surface as a
/// `telemetry.dropped_events` counter all the way out on the scraped
/// text page, not only via a by-hand `tel.dropped()` call.
#[test]
fn ring_overflow_surfaces_on_the_scraped_text_page() {
    // An 8-event ring cannot hold an instrumented attack round: the
    // trace experiment's dump must carry the spill.
    let cap = trace::run(false, 8, 0x5eed);
    let dropped = cap.metrics.counter("telemetry.dropped_events");
    assert!(dropped > 0, "an 8-event ring must overflow");
    assert_eq!(cap.metrics.counter("telemetry.retained_events"), 16);

    let hub = MetricsHub::new();
    hub.update(|reg| reg.merge(&cap.metrics));
    let mut server = MetricsServer::serve("127.0.0.1:0", hub).expect("bind");
    let text = scrape(server.addr(), "/metrics").expect("scrape");
    server.shutdown();
    assert!(
        text.contains(&format!("telemetry_dropped_events {dropped}")),
        "drop accounting missing from the text page:\n{text}"
    );
}

/// A generously sized ring, by contrast, reports zero drops.
#[test]
fn big_ring_reports_zero_drops() {
    let cap = trace::run(false, 1 << 15, 0x5eed);
    assert_eq!(cap.metrics.counter("telemetry.dropped_events"), 0);
    assert_eq!(
        cap.metrics.counter("telemetry.retained_events") as usize,
        cap.secret0.len() + cap.secret1.len()
    );
}
