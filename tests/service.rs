//! Integration tests for the multi-tenant sweep service
//! (`docs/service.md`): fair cross-tenant scheduling, cache-hit
//! results byte-identical to cold runs, cache survival across a
//! server restart, the TCP protocol end-to-end, a pinned golden cell
//! digest, and corruption robustness of the on-disk cache.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use unxpec_harness::{cell_digest, FnExperiment, Registry, SweepSpec, TrialOutput, DIGEST_VERSION};
use unxpec_service::{CacheConfig, Client, ResultCache, Service, ServiceConfig, TcpFront};
use unxpec_telemetry::MetricsHub;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("unxpec-service-it-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// A deterministic two-variant experiment that counts executions, so
/// tests can prove cache hits never re-run the simulator. The metric
/// exercises the f64 round-trip with a non-terminating binary fraction.
fn counting_registry(counter: Arc<AtomicUsize>) -> Registry {
    let mut registry = Registry::new();
    registry.register(FnExperiment::new("count", &["a", "b"], move |ctx| {
        counter.fetch_add(1, Ordering::SeqCst);
        let mut out = TrialOutput::new(
            format!("variant {} seed {:#x}", ctx.variant, ctx.seed),
            vec![],
        );
        out.metrics = vec![
            ("seed_tenth".into(), (ctx.seed % 1000) as f64 / 10.0),
            ("neg".into(), -0.3),
        ];
        out
    }));
    registry
}

fn drive(service: &Service) {
    while service.tick() > 0 {}
}

const SPEC: &str = "experiments = count\nseeds = 4\nroot-seed = 0x5eed";
/// Same shape as [`SPEC`] but disjoint cells — used where in-batch
/// coalescing of identical cells would hide the scheduling order.
const SPEC_B: &str = "experiments = count\nseeds = 4\nroot-seed = 0xb0b";

#[test]
fn two_tenants_interleave_fairly_and_both_complete() {
    let counter = Arc::new(AtomicUsize::new(0));
    let service = Service::new(
        counting_registry(Arc::clone(&counter)),
        ServiceConfig {
            jobs: 2,
            ..ServiceConfig::default()
        },
    )
    .expect("service");

    let (alice_job, alice_trials) = service.submit("alice", SPEC).expect("submit alice");
    let (bob_job, bob_trials) = service.submit("bob", SPEC_B).expect("submit bob");
    assert_eq!(alice_trials, 8); // 2 variants x 4 seeds
    assert_eq!(bob_trials, 8);
    drive(&service);

    let alice = service.status(&alice_job).expect("status");
    let bob = service.status(&bob_job).expect("status");
    assert!(alice.finished() && bob.finished(), "both tenants complete");
    assert_eq!(alice.done, 8);
    assert_eq!(bob.done, 8);

    // Fairness: while both tenants have pending trials the scheduler
    // alternates strictly, even though alice submitted first.
    let log = service.dispatch_log();
    let tenants: Vec<&str> = log.iter().map(|(t, _)| t.as_str()).collect();
    assert!(tenants.len() >= 8, "dispatch log records pool dispatches");
    for pair in tenants[..8.min(tenants.len())].windows(2) {
        assert_ne!(
            pair[0], pair[1],
            "dispatches must alternate tenants while both are pending: {tenants:?}"
        );
    }
}

#[test]
fn cache_hits_are_byte_identical_and_skip_execution() {
    let dir = tmpdir("byteident");
    let counter = Arc::new(AtomicUsize::new(0));
    let hub = MetricsHub::new();
    let service = Service::new(
        counting_registry(Arc::clone(&counter)),
        ServiceConfig {
            jobs: 3,
            cache: Some(CacheConfig {
                dir: dir.clone(),
                max_bytes: 0,
            }),
            hub: Some(hub.clone()),
            ..ServiceConfig::default()
        },
    )
    .expect("service");

    let (cold, _) = service.submit("alice", SPEC).expect("submit cold");
    drive(&service);
    let cold_text = service.results(&cold).expect("cold results");
    let cold_runs = counter.load(Ordering::SeqCst);
    assert_eq!(cold_runs, 8, "cold job executes every trial");

    // Second submission of the same spec (different tenant, same
    // cells): all hits, zero executions, byte-identical document.
    let (warm, _) = service.submit("bob", SPEC).expect("submit warm");
    drive(&service);
    let warm_text = service.results(&warm).expect("warm results");
    assert_eq!(counter.load(Ordering::SeqCst), cold_runs, "no re-execution");
    assert_eq!(
        warm_text, cold_text,
        "cache-served results are byte-identical"
    );
    let status = service.status(&warm).expect("status");
    assert_eq!(status.cached, status.total, "every trial was a cache hit");

    // The hub mirrors the cache counters.
    let snapshot = hub.snapshot();
    assert_eq!(snapshot.counter("service.cache.hits"), 8);
    assert!(snapshot.counter("service.cache.bytes") > 0);
    assert_eq!(snapshot.counter("service.jobs.completed"), 2);
    assert_eq!(snapshot.counter("service.trials.executed"), 8);
    assert_eq!(snapshot.counter("service.trials.cached"), 8);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn restarting_the_server_preserves_the_cache() {
    let dir = tmpdir("restart");
    let cache = Some(CacheConfig {
        dir: dir.clone(),
        max_bytes: 0,
    });

    // First server lifetime: run the sweep cold, then drop the server.
    let cold_text = {
        let counter = Arc::new(AtomicUsize::new(0));
        let service = Service::new(
            counting_registry(counter),
            ServiceConfig {
                jobs: 2,
                cache: cache.clone(),
                ..ServiceConfig::default()
            },
        )
        .expect("first server");
        let (job, _) = service.submit("alice", SPEC).expect("submit");
        drive(&service);
        service.results(&job).expect("results")
    };

    // Second lifetime over the same directory: resubmission is served
    // entirely from disk — the fresh counter never moves.
    let counter = Arc::new(AtomicUsize::new(0));
    let service = Service::new(
        counting_registry(Arc::clone(&counter)),
        ServiceConfig {
            jobs: 2,
            cache,
            ..ServiceConfig::default()
        },
    )
    .expect("second server");
    let (job, _) = service.submit("carol", SPEC).expect("resubmit");
    drive(&service);
    assert_eq!(counter.load(Ordering::SeqCst), 0, "restart re-ran nothing");
    let warm_text = service.results(&job).expect("results");
    assert_eq!(
        warm_text, cold_text,
        "restart-served results byte-identical"
    );
    let status = service.status(&job).expect("status");
    assert_eq!(status.cached, status.total);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn tcp_protocol_serves_concurrent_clients_end_to_end() {
    let counter = Arc::new(AtomicUsize::new(0));
    let mut service = Service::new(
        counting_registry(counter),
        ServiceConfig {
            jobs: 2,
            ..ServiceConfig::default()
        },
    )
    .expect("service");
    service.start_worker();
    let service = Arc::new(service);
    let front = TcpFront::start(Arc::clone(&service), "127.0.0.1:0").expect("bind");
    let addr = front.addr().to_string();

    let addr2 = addr.clone();
    let bob = std::thread::spawn(move || {
        let mut client = Client::connect(&addr2).expect("bob connects");
        let submitted = client.submit("bob", SPEC).expect("bob submits");
        let status = client
            .stream(&submitted.job, |_done, _total| {})
            .expect("bob streams");
        assert!(status.finished);
        client.results(&submitted.job).expect("bob results")
    });

    let mut client = Client::connect(&addr).expect("alice connects");
    let submitted = client.submit("alice", SPEC).expect("alice submits");
    assert_eq!(submitted.trials, 8);
    let status = client
        .stream(&submitted.job, |_done, _total| {})
        .expect("alice streams");
    assert!(status.finished);
    assert_eq!(status.done, 8);
    let alice_text = client.results(&submitted.job).expect("alice results");
    let bob_text = bob.join().expect("bob thread");
    assert_eq!(alice_text, bob_text, "same spec, same document");

    // Protocol-level errors come back typed, not as dropped sockets.
    let err = client.results("j999").expect_err("unknown job");
    assert!(err.to_string().contains("unknown-job"), "{err}");
    let err = client
        .submit("alice", "scale = warp9")
        .expect_err("bad spec");
    assert!(err.to_string().contains("spec"), "{err}");
}

/// The pinned digest of the golden spec's first cell
/// (`timeline`, first variant, seed index 0). If this assertion ever
/// fails without an intentional `DIGEST_VERSION` bump, the cache key
/// derivation changed and every persisted cache would silently miss
/// (or worse, collide).
const GOLDEN_CELL_DIGEST: u64 = 0x6104_1e1f_3bbe_4317;

#[test]
fn golden_spec_cell_digest_is_pinned() {
    assert_eq!(
        DIGEST_VERSION, 2,
        "bumping DIGEST_VERSION invalidates GOLDEN_CELL_DIGEST; re-pin it"
    );
    let text = std::fs::read_to_string("tests/golden/service_spec.txt").expect("golden spec");
    let spec = SweepSpec::parse(&text).expect("parse");
    let trials = spec.enumerate(&Registry::builtin()).expect("enumerate");
    let first = &trials[0];
    assert_eq!(first.experiment, "timeline");
    assert_eq!(first.seed_index, 0);
    let digest = cell_digest(&spec, &first.experiment, &first.variant, first.seed_index);
    assert_eq!(
        digest, GOLDEN_CELL_DIGEST,
        "cell digest of the committed golden spec changed: {digest:#018x}"
    );
}

fn seeded_entry(dir: &Path) -> (ResultCache, TrialOutput) {
    let config = CacheConfig {
        dir: dir.to_path_buf(),
        max_bytes: 0,
    };
    let mut cache = ResultCache::open(&config).expect("open");
    let mut output = TrialOutput::new("rendered line\nsecond line".into(), vec![]);
    output.metrics = vec![("diff".into(), 22.5), ("frac".into(), 0.1)];
    cache.put(0xfeed, &output).expect("put");
    (cache, output)
}

fn entry_path(dir: &std::path::Path) -> PathBuf {
    dir.join(format!("{:02x}", 0xfeedu64 & 0xff))
        .join(format!("{:016x}.json", 0xfeedu64))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any single-byte corruption of a cache entry either leaves a
    /// byte-identical valid entry (flips that don't change the stored
    /// document, e.g. restoring the same byte) or falls back to a
    /// counted miss — never a panic, never a wrong result.
    #[test]
    fn bit_flipped_entries_fall_back_to_resimulation(pos in 0usize..4096, flip in 1u8..=255) {
        let dir = tmpdir(&format!("prop-flip-{pos}-{flip}"));
        let (mut cache, original) = seeded_entry(&dir);
        let path = entry_path(&dir);
        let mut bytes = std::fs::read(&path).expect("entry bytes");
        let pos = pos % bytes.len();
        bytes[pos] ^= flip;
        std::fs::write(&path, &bytes).expect("tamper");
        match cache.get(0xfeed) {
            Some(served) => {
                // Only a semantically identical document may be served.
                prop_assert_eq!(served.rendered, original.rendered);
                prop_assert_eq!(served.metrics, original.metrics);
                prop_assert_eq!(cache.stats().corrupt, 0);
            }
            None => {
                prop_assert_eq!(cache.stats().corrupt, 1);
                prop_assert!(!path.exists(), "damaged entry must be deleted");
                // The recompute path repopulates the slot.
                cache.put(0xfeed, &original).expect("re-put");
                prop_assert!(cache.get(0xfeed).is_some());
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Truncating an entry at any point is detected the same way.
    #[test]
    fn truncated_entries_fall_back_to_resimulation(cut in 0usize..4096) {
        let dir = tmpdir(&format!("prop-cut-{cut}"));
        let (mut cache, original) = seeded_entry(&dir);
        let path = entry_path(&dir);
        let bytes = std::fs::read(&path).expect("entry bytes");
        let cut = cut % bytes.len(); // strictly shorter than the file
        std::fs::write(&path, &bytes[..cut]).expect("truncate");
        prop_assert!(cache.get(0xfeed).is_none(), "truncated entry must miss");
        prop_assert_eq!(cache.stats().corrupt, 1);
        cache.put(0xfeed, &original).expect("re-put");
        prop_assert!(cache.get(0xfeed).is_some());
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn completed_cells_are_memoized_across_jobs_without_a_disk_cache() {
    let counter = Arc::new(AtomicUsize::new(0));
    let hub = MetricsHub::new();
    let service = Service::new(
        counting_registry(Arc::clone(&counter)),
        ServiceConfig {
            jobs: 2,
            hub: Some(hub.clone()),
            ..ServiceConfig::default()
        },
    )
    .expect("service");

    let (cold, _) = service.submit("alice", SPEC).expect("submit cold");
    drive(&service);
    assert_eq!(counter.load(Ordering::SeqCst), 8, "cold job executes all");
    let cold_text = service.results(&cold).expect("cold results");

    // Same cells from another tenant: served from the in-memory
    // completed-cell table — no disk cache, still zero re-execution.
    let (warm, _) = service.submit("bob", SPEC).expect("submit warm");
    drive(&service);
    assert_eq!(
        counter.load(Ordering::SeqCst),
        8,
        "memo skips re-simulation"
    );
    let status = service.status(&warm).expect("status");
    assert_eq!(status.cached, status.total, "all trials memo-served");
    assert_eq!(
        service.results(&warm).expect("warm results"),
        cold_text,
        "memo-served results byte-identical"
    );
    assert_eq!(hub.snapshot().counter("service.trials.memoized"), 8);
}

#[test]
fn concurrent_duplicate_jobs_add_no_extra_cache_misses() {
    let dir = tmpdir("zeromiss");
    let counter = Arc::new(AtomicUsize::new(0));
    let hub = MetricsHub::new();
    let service = Service::new(
        counting_registry(Arc::clone(&counter)),
        ServiceConfig {
            jobs: 2,
            cache: Some(CacheConfig {
                dir: dir.clone(),
                max_bytes: 0,
            }),
            hub: Some(hub.clone()),
            ..ServiceConfig::default()
        },
    )
    .expect("service");

    // Both tenants queue the same spec before any scheduling happens,
    // so every one of bob's cells duplicates a cell that is either
    // inflight or already completed — never a fresh cache lookup.
    let (alice, _) = service.submit("alice", SPEC).expect("submit alice");
    let (bob, _) = service.submit("bob", SPEC).expect("submit bob");
    drive(&service);

    assert_eq!(counter.load(Ordering::SeqCst), 8, "8 unique cells run once");
    assert!(service.status(&alice).expect("status").finished());
    let bob_status = service.status(&bob).expect("status");
    assert!(bob_status.finished());
    assert_eq!(bob_status.done, 8);
    let snapshot = hub.snapshot();
    assert_eq!(
        snapshot.counter("service.cache.misses"),
        8,
        "duplicate cells must not probe the disk cache again"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn wait_deadline_is_a_typed_timeout_not_a_stale_status() {
    let counter = Arc::new(AtomicUsize::new(0));
    let service = Service::new(
        counting_registry(counter),
        ServiceConfig {
            jobs: 2,
            ..ServiceConfig::default()
        },
    )
    .expect("service");
    let (job, _) = service.submit("alice", SPEC).expect("submit");

    // Nothing ticks the scheduler, so the deadline must expire — and
    // surface as the typed error, never as a half-finished status.
    let err = service
        .wait(&job, Duration::from_millis(50))
        .expect_err("deadline must expire");
    assert_eq!(err.code(), "wait-timeout");
    assert!(err.to_string().contains(&job), "{err}");

    drive(&service);
    let status = service.wait(&job, Duration::from_secs(5)).expect("wait");
    assert!(status.finished());
    assert_eq!(status.done, 8);
}

#[test]
fn cancel_skips_pending_trials_and_results_reflect_it() {
    let counter = Arc::new(AtomicUsize::new(0));
    let service = Service::new(
        counting_registry(counter),
        ServiceConfig {
            jobs: 2,
            ..ServiceConfig::default()
        },
    )
    .expect("service");
    let (job, trials) = service.submit("alice", SPEC).expect("submit");
    service.tick(); // run one batch, leave the rest pending
    let skipped = service.cancel(&job).expect("cancel");
    assert!(skipped > 0 && skipped < trials, "some trials were skipped");
    let status = service.wait(&job, Duration::from_secs(5)).expect("wait");
    assert!(status.finished());
    assert_eq!(status.skipped, skipped);
    let text = service.results(&job).expect("results");
    assert!(
        text.contains("skipped"),
        "document marks skipped trials:\n{text}"
    );
}
