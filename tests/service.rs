//! Integration tests for the multi-tenant sweep service
//! (`docs/service.md`): fair cross-tenant scheduling, cache-hit
//! results byte-identical to cold runs, cache survival across a
//! server restart, the TCP protocol end-to-end, a pinned golden cell
//! digest, corruption robustness of the on-disk cache and the job
//! journal, crash-resume with zero re-simulation, idempotent
//! re-submission, admission control with the server-chosen retry
//! hint, graceful drain, and sequence-cursor stream resume.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use proptest::prelude::*;
use unxpec_harness::{
    cell_digest, FnExperiment, Registry, RunPolicy, SweepSpec, TrialOutput, DIGEST_VERSION,
};
use unxpec_service::{
    AdmissionConfig, CacheConfig, Client, Journal, JournalRecord, ResilientClient, ResultCache,
    Service, ServiceConfig, ServiceError, TcpFront,
};
use unxpec_telemetry::{Event, MetricsHub, Telemetry};

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("unxpec-service-it-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// A deterministic two-variant experiment that counts executions, so
/// tests can prove cache hits never re-run the simulator. The metric
/// exercises the f64 round-trip with a non-terminating binary fraction.
fn counting_registry(counter: Arc<AtomicUsize>) -> Registry {
    let mut registry = Registry::new();
    registry.register(FnExperiment::new("count", &["a", "b"], move |ctx| {
        counter.fetch_add(1, Ordering::SeqCst);
        let mut out = TrialOutput::new(
            format!("variant {} seed {:#x}", ctx.variant, ctx.seed),
            vec![],
        );
        out.metrics = vec![
            ("seed_tenth".into(), (ctx.seed % 1000) as f64 / 10.0),
            ("neg".into(), -0.3),
        ];
        out
    }));
    registry
}

fn drive(service: &Service) {
    while service.tick() > 0 {}
}

const SPEC: &str = "experiments = count\nseeds = 4\nroot-seed = 0x5eed";
/// Same shape as [`SPEC`] but disjoint cells — used where in-batch
/// coalescing of identical cells would hide the scheduling order.
const SPEC_B: &str = "experiments = count\nseeds = 4\nroot-seed = 0xb0b";

#[test]
fn two_tenants_interleave_fairly_and_both_complete() {
    let counter = Arc::new(AtomicUsize::new(0));
    let service = Service::new(
        counting_registry(Arc::clone(&counter)),
        ServiceConfig {
            jobs: 2,
            ..ServiceConfig::default()
        },
    )
    .expect("service");

    let (alice_job, alice_trials) = service.submit("alice", SPEC).expect("submit alice");
    let (bob_job, bob_trials) = service.submit("bob", SPEC_B).expect("submit bob");
    assert_eq!(alice_trials, 8); // 2 variants x 4 seeds
    assert_eq!(bob_trials, 8);
    drive(&service);

    let alice = service.status(&alice_job).expect("status");
    let bob = service.status(&bob_job).expect("status");
    assert!(alice.finished() && bob.finished(), "both tenants complete");
    assert_eq!(alice.done, 8);
    assert_eq!(bob.done, 8);

    // Fairness: while both tenants have pending trials the scheduler
    // alternates strictly, even though alice submitted first.
    let log = service.dispatch_log();
    let tenants: Vec<&str> = log.iter().map(|(t, _)| t.as_str()).collect();
    assert!(tenants.len() >= 8, "dispatch log records pool dispatches");
    for pair in tenants[..8.min(tenants.len())].windows(2) {
        assert_ne!(
            pair[0], pair[1],
            "dispatches must alternate tenants while both are pending: {tenants:?}"
        );
    }
}

#[test]
fn cache_hits_are_byte_identical_and_skip_execution() {
    let dir = tmpdir("byteident");
    let counter = Arc::new(AtomicUsize::new(0));
    let hub = MetricsHub::new();
    let service = Service::new(
        counting_registry(Arc::clone(&counter)),
        ServiceConfig {
            jobs: 3,
            cache: Some(CacheConfig {
                dir: dir.clone(),
                max_bytes: 0,
            }),
            hub: Some(hub.clone()),
            ..ServiceConfig::default()
        },
    )
    .expect("service");

    let (cold, _) = service.submit("alice", SPEC).expect("submit cold");
    drive(&service);
    let cold_text = service.results(&cold).expect("cold results");
    let cold_runs = counter.load(Ordering::SeqCst);
    assert_eq!(cold_runs, 8, "cold job executes every trial");

    // Second submission of the same spec (different tenant, same
    // cells): all hits, zero executions, byte-identical document.
    let (warm, _) = service.submit("bob", SPEC).expect("submit warm");
    drive(&service);
    let warm_text = service.results(&warm).expect("warm results");
    assert_eq!(counter.load(Ordering::SeqCst), cold_runs, "no re-execution");
    assert_eq!(
        warm_text, cold_text,
        "cache-served results are byte-identical"
    );
    let status = service.status(&warm).expect("status");
    assert_eq!(status.cached, status.total, "every trial was a cache hit");

    // The hub mirrors the cache counters.
    let snapshot = hub.snapshot();
    assert_eq!(snapshot.counter("service.cache.hits"), 8);
    assert!(snapshot.counter("service.cache.bytes") > 0);
    assert_eq!(snapshot.counter("service.jobs.completed"), 2);
    assert_eq!(snapshot.counter("service.trials.executed"), 8);
    assert_eq!(snapshot.counter("service.trials.cached"), 8);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn restarting_the_server_preserves_the_cache() {
    let dir = tmpdir("restart");
    let cache = Some(CacheConfig {
        dir: dir.clone(),
        max_bytes: 0,
    });

    // First server lifetime: run the sweep cold, then drop the server.
    let cold_text = {
        let counter = Arc::new(AtomicUsize::new(0));
        let service = Service::new(
            counting_registry(counter),
            ServiceConfig {
                jobs: 2,
                cache: cache.clone(),
                ..ServiceConfig::default()
            },
        )
        .expect("first server");
        let (job, _) = service.submit("alice", SPEC).expect("submit");
        drive(&service);
        service.results(&job).expect("results")
    };

    // Second lifetime over the same directory: resubmission is served
    // entirely from disk — the fresh counter never moves.
    let counter = Arc::new(AtomicUsize::new(0));
    let service = Service::new(
        counting_registry(Arc::clone(&counter)),
        ServiceConfig {
            jobs: 2,
            cache,
            ..ServiceConfig::default()
        },
    )
    .expect("second server");
    let (job, _) = service.submit("carol", SPEC).expect("resubmit");
    drive(&service);
    assert_eq!(counter.load(Ordering::SeqCst), 0, "restart re-ran nothing");
    let warm_text = service.results(&job).expect("results");
    assert_eq!(
        warm_text, cold_text,
        "restart-served results byte-identical"
    );
    let status = service.status(&job).expect("status");
    assert_eq!(status.cached, status.total);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn tcp_protocol_serves_concurrent_clients_end_to_end() {
    let counter = Arc::new(AtomicUsize::new(0));
    let mut service = Service::new(
        counting_registry(counter),
        ServiceConfig {
            jobs: 2,
            ..ServiceConfig::default()
        },
    )
    .expect("service");
    service.start_worker();
    let service = Arc::new(service);
    let front = TcpFront::start(Arc::clone(&service), "127.0.0.1:0").expect("bind");
    let addr = front.addr().to_string();

    let addr2 = addr.clone();
    let bob = std::thread::spawn(move || {
        let mut client = Client::connect(&addr2).expect("bob connects");
        let submitted = client.submit("bob", SPEC).expect("bob submits");
        let status = client
            .stream(&submitted.job, |_done, _total| {})
            .expect("bob streams");
        assert!(status.finished);
        client.results(&submitted.job).expect("bob results")
    });

    let mut client = Client::connect(&addr).expect("alice connects");
    let submitted = client.submit("alice", SPEC).expect("alice submits");
    assert_eq!(submitted.trials, 8);
    let status = client
        .stream(&submitted.job, |_done, _total| {})
        .expect("alice streams");
    assert!(status.finished);
    assert_eq!(status.done, 8);
    let alice_text = client.results(&submitted.job).expect("alice results");
    let bob_text = bob.join().expect("bob thread");
    assert_eq!(alice_text, bob_text, "same spec, same document");

    // Protocol-level errors come back as reconstructed *typed* errors
    // with their distinct codes, not as dropped sockets or generic
    // remote strings.
    let err = client.results("j999").expect_err("unknown job");
    assert_eq!(err.code(), "unknown-job");
    assert!(
        matches!(err, unxpec_service::ServiceError::UnknownJob(ref job) if job == "j999"),
        "{err}"
    );
    let err = client
        .submit("alice", "scale = warp9")
        .expect_err("bad spec");
    assert_eq!(err.code(), "spec");
}

/// The pinned digest of the golden spec's first cell
/// (`timeline`, first variant, seed index 0). If this assertion ever
/// fails without an intentional `DIGEST_VERSION` bump, the cache key
/// derivation changed and every persisted cache would silently miss
/// (or worse, collide).
const GOLDEN_CELL_DIGEST: u64 = 0x6104_1e1f_3bbe_4317;

#[test]
fn golden_spec_cell_digest_is_pinned() {
    assert_eq!(
        DIGEST_VERSION, 2,
        "bumping DIGEST_VERSION invalidates GOLDEN_CELL_DIGEST; re-pin it"
    );
    let text = std::fs::read_to_string("tests/golden/service_spec.txt").expect("golden spec");
    let spec = SweepSpec::parse(&text).expect("parse");
    let trials = spec.enumerate(&Registry::builtin()).expect("enumerate");
    let first = &trials[0];
    assert_eq!(first.experiment, "timeline");
    assert_eq!(first.seed_index, 0);
    let digest = cell_digest(&spec, &first.experiment, &first.variant, first.seed_index);
    assert_eq!(
        digest, GOLDEN_CELL_DIGEST,
        "cell digest of the committed golden spec changed: {digest:#018x}"
    );
}

fn seeded_entry(dir: &Path) -> (ResultCache, TrialOutput) {
    let config = CacheConfig {
        dir: dir.to_path_buf(),
        max_bytes: 0,
    };
    let mut cache = ResultCache::open(&config).expect("open");
    let mut output = TrialOutput::new("rendered line\nsecond line".into(), vec![]);
    output.metrics = vec![("diff".into(), 22.5), ("frac".into(), 0.1)];
    cache.put(0xfeed, &output).expect("put");
    (cache, output)
}

fn entry_path(dir: &std::path::Path) -> PathBuf {
    dir.join(format!("{:02x}", 0xfeedu64 & 0xff))
        .join(format!("{:016x}.json", 0xfeedu64))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any single-byte corruption of a cache entry either leaves a
    /// byte-identical valid entry (flips that don't change the stored
    /// document, e.g. restoring the same byte) or falls back to a
    /// counted miss — never a panic, never a wrong result.
    #[test]
    fn bit_flipped_entries_fall_back_to_resimulation(pos in 0usize..4096, flip in 1u8..=255) {
        let dir = tmpdir(&format!("prop-flip-{pos}-{flip}"));
        let (mut cache, original) = seeded_entry(&dir);
        let path = entry_path(&dir);
        let mut bytes = std::fs::read(&path).expect("entry bytes");
        let pos = pos % bytes.len();
        bytes[pos] ^= flip;
        std::fs::write(&path, &bytes).expect("tamper");
        match cache.get(0xfeed) {
            Some(served) => {
                // Only a semantically identical document may be served.
                prop_assert_eq!(served.rendered, original.rendered);
                prop_assert_eq!(served.metrics, original.metrics);
                prop_assert_eq!(cache.stats().corrupt, 0);
            }
            None => {
                prop_assert_eq!(cache.stats().corrupt, 1);
                prop_assert!(!path.exists(), "damaged entry must be deleted");
                // The recompute path repopulates the slot.
                cache.put(0xfeed, &original).expect("re-put");
                prop_assert!(cache.get(0xfeed).is_some());
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Truncating an entry at any point is detected the same way.
    #[test]
    fn truncated_entries_fall_back_to_resimulation(cut in 0usize..4096) {
        let dir = tmpdir(&format!("prop-cut-{cut}"));
        let (mut cache, original) = seeded_entry(&dir);
        let path = entry_path(&dir);
        let bytes = std::fs::read(&path).expect("entry bytes");
        let cut = cut % bytes.len(); // strictly shorter than the file
        std::fs::write(&path, &bytes[..cut]).expect("truncate");
        prop_assert!(cache.get(0xfeed).is_none(), "truncated entry must miss");
        prop_assert_eq!(cache.stats().corrupt, 1);
        cache.put(0xfeed, &original).expect("re-put");
        prop_assert!(cache.get(0xfeed).is_some());
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn completed_cells_are_memoized_across_jobs_without_a_disk_cache() {
    let counter = Arc::new(AtomicUsize::new(0));
    let hub = MetricsHub::new();
    let service = Service::new(
        counting_registry(Arc::clone(&counter)),
        ServiceConfig {
            jobs: 2,
            hub: Some(hub.clone()),
            ..ServiceConfig::default()
        },
    )
    .expect("service");

    let (cold, _) = service.submit("alice", SPEC).expect("submit cold");
    drive(&service);
    assert_eq!(counter.load(Ordering::SeqCst), 8, "cold job executes all");
    let cold_text = service.results(&cold).expect("cold results");

    // Same cells from another tenant: served from the in-memory
    // completed-cell table — no disk cache, still zero re-execution.
    let (warm, _) = service.submit("bob", SPEC).expect("submit warm");
    drive(&service);
    assert_eq!(
        counter.load(Ordering::SeqCst),
        8,
        "memo skips re-simulation"
    );
    let status = service.status(&warm).expect("status");
    assert_eq!(status.cached, status.total, "all trials memo-served");
    assert_eq!(
        service.results(&warm).expect("warm results"),
        cold_text,
        "memo-served results byte-identical"
    );
    assert_eq!(hub.snapshot().counter("service.trials.memoized"), 8);
}

#[test]
fn concurrent_duplicate_jobs_add_no_extra_cache_misses() {
    let dir = tmpdir("zeromiss");
    let counter = Arc::new(AtomicUsize::new(0));
    let hub = MetricsHub::new();
    let service = Service::new(
        counting_registry(Arc::clone(&counter)),
        ServiceConfig {
            jobs: 2,
            cache: Some(CacheConfig {
                dir: dir.clone(),
                max_bytes: 0,
            }),
            hub: Some(hub.clone()),
            ..ServiceConfig::default()
        },
    )
    .expect("service");

    // Both tenants queue the same spec before any scheduling happens,
    // so every one of bob's cells duplicates a cell that is either
    // inflight or already completed — never a fresh cache lookup.
    let (alice, _) = service.submit("alice", SPEC).expect("submit alice");
    let (bob, _) = service.submit("bob", SPEC).expect("submit bob");
    drive(&service);

    assert_eq!(counter.load(Ordering::SeqCst), 8, "8 unique cells run once");
    assert!(service.status(&alice).expect("status").finished());
    let bob_status = service.status(&bob).expect("status");
    assert!(bob_status.finished());
    assert_eq!(bob_status.done, 8);
    let snapshot = hub.snapshot();
    assert_eq!(
        snapshot.counter("service.cache.misses"),
        8,
        "duplicate cells must not probe the disk cache again"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn wait_deadline_is_a_typed_timeout_not_a_stale_status() {
    let counter = Arc::new(AtomicUsize::new(0));
    let service = Service::new(
        counting_registry(counter),
        ServiceConfig {
            jobs: 2,
            ..ServiceConfig::default()
        },
    )
    .expect("service");
    let (job, _) = service.submit("alice", SPEC).expect("submit");

    // Nothing ticks the scheduler, so the deadline must expire — and
    // surface as the typed error, never as a half-finished status.
    let err = service
        .wait(&job, Duration::from_millis(50))
        .expect_err("deadline must expire");
    assert_eq!(err.code(), "wait-timeout");
    assert!(err.to_string().contains(&job), "{err}");

    drive(&service);
    let status = service.wait(&job, Duration::from_secs(5)).expect("wait");
    assert!(status.finished());
    assert_eq!(status.done, 8);
}

#[test]
fn cancel_skips_pending_trials_and_results_reflect_it() {
    let counter = Arc::new(AtomicUsize::new(0));
    let service = Service::new(
        counting_registry(counter),
        ServiceConfig {
            jobs: 2,
            ..ServiceConfig::default()
        },
    )
    .expect("service");
    let (job, trials) = service.submit("alice", SPEC).expect("submit");
    service.tick(); // run one batch, leave the rest pending
    let skipped = service.cancel(&job).expect("cancel");
    assert!(skipped > 0 && skipped < trials, "some trials were skipped");
    let status = service.wait(&job, Duration::from_secs(5)).expect("wait");
    assert!(status.finished());
    assert_eq!(status.skipped, skipped);
    let text = service.results(&job).expect("results");
    assert!(
        text.contains("skipped"),
        "document marks skipped trials:\n{text}"
    );
}

// ---------------------------------------------------------------------------
// Crash safety: the write-ahead job journal
// ---------------------------------------------------------------------------

#[test]
fn journal_replay_resumes_partial_jobs_with_zero_reexecution() {
    let dir = tmpdir("journal-resume");
    let journal = dir.join("journal.log");
    let cache = Some(CacheConfig {
        dir: dir.join("cache"),
        max_bytes: 0,
    });

    // Reference document from an undisturbed, journal-less run.
    let reference = {
        let service = Service::new(
            counting_registry(Arc::new(AtomicUsize::new(0))),
            ServiceConfig {
                jobs: 2,
                ..ServiceConfig::default()
            },
        )
        .expect("reference service");
        let (job, _) = service.submit("alice", SPEC).expect("submit");
        drive(&service);
        service.results(&job).expect("results")
    };

    // First lifetime: accept the job, finish part of it, then "crash"
    // (drop mid-job — every completed cell is already journaled and
    // flushed, so an abrupt exit loses nothing).
    let first_runs = {
        let counter = Arc::new(AtomicUsize::new(0));
        let service = Service::new(
            counting_registry(Arc::clone(&counter)),
            ServiceConfig {
                jobs: 2,
                cache: cache.clone(),
                journal: Some(journal.clone()),
                ..ServiceConfig::default()
            },
        )
        .expect("first lifetime");
        let (job, trials) = service.submit("alice", SPEC).expect("submit");
        assert_eq!(job, "j1");
        assert_eq!(trials, 8);
        service.tick(); // one batch, then the crash
        let runs = counter.load(Ordering::SeqCst);
        assert!(runs > 0 && runs < 8, "want partial progress, got {runs}");
        runs
    };

    // Second lifetime over the same journal and cache: the job is back
    // under its original id, journaled-done cells replay from the
    // cache, and only the remainder re-runs — zero duplicated and zero
    // lost simulation.
    let counter = Arc::new(AtomicUsize::new(0));
    let hub = MetricsHub::new();
    let telemetry = Telemetry::ring(64);
    let service = Service::new(
        counting_registry(Arc::clone(&counter)),
        ServiceConfig {
            jobs: 2,
            cache,
            journal: Some(journal),
            hub: Some(hub.clone()),
            telemetry: telemetry.clone(),
            ..ServiceConfig::default()
        },
    )
    .expect("second lifetime");
    assert_eq!(counter.load(Ordering::SeqCst), 0, "replay executes nothing");
    let status = service.status("j1").expect("job survives the crash");
    assert_eq!(status.done, first_runs, "journaled cells came back done");
    assert_eq!(status.cached, first_runs, "replayed cells are cache-served");
    assert_eq!(status.open, 8 - first_runs, "the remainder is requeued");

    drive(&service);
    assert_eq!(
        counter.load(Ordering::SeqCst),
        8 - first_runs,
        "only the unfinished remainder re-ran"
    );
    let resumed = service.results("j1").expect("results");
    assert_eq!(resumed, reference, "resumed document is byte-identical");

    let snapshot = hub.snapshot();
    assert_eq!(
        snapshot.counter("service.journal.replayed"),
        first_runs as u64
    );
    assert_eq!(
        snapshot.counter("service.journal.requeued"),
        (8 - first_runs) as u64
    );
    assert_eq!(snapshot.counter("service.journal.dropped"), 0);
    let events = telemetry.snapshot();
    assert!(
        events.iter().any(|e| matches!(
            e,
            Event::JournalReplay { replayed, requeued, .. }
                if *replayed == first_runs as u64 && *requeued == (8 - first_runs) as u64
        )),
        "replay emits its telemetry event: {events:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn journal_replay_restores_finished_jobs_and_reattaches_across_lifetimes() {
    let dir = tmpdir("journal-finished");
    let journal = dir.join("journal.log");
    let cache = Some(CacheConfig {
        dir: dir.join("cache"),
        max_bytes: 0,
    });

    let first_text = {
        let service = Service::new(
            counting_registry(Arc::new(AtomicUsize::new(0))),
            ServiceConfig {
                jobs: 2,
                cache: cache.clone(),
                journal: Some(journal.clone()),
                ..ServiceConfig::default()
            },
        )
        .expect("first lifetime");
        let (job, _) = service.submit("alice", SPEC).expect("submit");
        drive(&service);
        service.results(&job).expect("results")
    };

    let counter = Arc::new(AtomicUsize::new(0));
    let hub = MetricsHub::new();
    let service = Service::new(
        counting_registry(Arc::clone(&counter)),
        ServiceConfig {
            jobs: 2,
            cache,
            journal: Some(journal),
            hub: Some(hub.clone()),
            ..ServiceConfig::default()
        },
    )
    .expect("second lifetime");
    let status = service.status("j1").expect("finished job survives");
    assert!(status.finished());
    assert_eq!(status.cached, status.total, "replay resolved via the cache");
    assert_eq!(counter.load(Ordering::SeqCst), 0, "nothing re-ran");
    assert_eq!(
        service.results("j1").expect("results"),
        first_text,
        "replayed document is byte-identical"
    );

    // A client that lost the submit response re-submits the same spec:
    // it re-attaches to the journaled job instead of re-running it.
    let (job, trials) = service.submit("alice", SPEC).expect("re-attach");
    assert_eq!(job, "j1");
    assert_eq!(trials, 8);
    assert_eq!(counter.load(Ordering::SeqCst), 0);
    assert_eq!(hub.snapshot().counter("service.jobs.reattached"), 1);

    // Another tenant's identical spec is still a distinct job, numbered
    // after everything the journal brought back.
    let (job, _) = service.submit("bob", SPEC).expect("fresh job");
    assert_eq!(job, "j2");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn drain_timeout_leaves_the_remainder_journaled_for_the_next_lifetime() {
    let dir = tmpdir("drain-journal");
    let journal = dir.join("journal.log");
    let cache = Some(CacheConfig {
        dir: dir.join("cache"),
        max_bytes: 0,
    });

    // Lifetime 1 drains on a zero budget mid-job: the drain reports
    // failure, but everything accepted is already journaled.
    {
        let counter = Arc::new(AtomicUsize::new(0));
        let service = Service::new(
            counting_registry(counter),
            ServiceConfig {
                jobs: 2,
                cache: cache.clone(),
                journal: Some(journal.clone()),
                ..ServiceConfig::default()
            },
        )
        .expect("first lifetime");
        service.submit("alice", SPEC).expect("submit");
        service.tick();
        service.begin_drain();
        assert!(
            !service.drain(Duration::ZERO),
            "zero-budget drain cannot finish an open job"
        );
    }

    // Lifetime 2 finishes what lifetime 1 journaled.
    let counter = Arc::new(AtomicUsize::new(0));
    let service = Service::new(
        counting_registry(Arc::clone(&counter)),
        ServiceConfig {
            jobs: 2,
            cache,
            journal: Some(journal),
            ..ServiceConfig::default()
        },
    )
    .expect("second lifetime");
    drive(&service);
    let status = service.status("j1").expect("job resumed");
    assert!(status.finished());
    assert_eq!(status.failed, 0);
    assert!(
        counter.load(Ordering::SeqCst) < 8,
        "the drained lifetime's completed cells were not re-run"
    );
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Idempotent submission and admission control
// ---------------------------------------------------------------------------

#[test]
fn resubmission_is_idempotent_per_tenant() {
    let service = Service::new(
        counting_registry(Arc::new(AtomicUsize::new(0))),
        ServiceConfig {
            jobs: 2,
            ..ServiceConfig::default()
        },
    )
    .expect("service");

    let (first, trials) = service.submit("alice", SPEC).expect("submit");
    let (again, trials_again) = service.submit("alice", SPEC).expect("duplicate");
    assert_eq!(first, again, "same tenant + same spec re-attaches");
    assert_eq!(trials, trials_again);

    let (bob, _) = service.submit("bob", SPEC).expect("other tenant");
    assert_ne!(bob, first, "idempotency is scoped to the tenant");

    // A cancelled job is not a re-attach target: the tenant asked for
    // a fresh run, not the corpse of the old one.
    service.cancel(&first).expect("cancel");
    let (fresh, _) = service.submit("alice", SPEC).expect("resubmit");
    assert_ne!(fresh, first, "cancelled jobs don't capture resubmissions");
}

#[test]
fn admission_rejects_over_budget_submissions_with_the_retry_hint() {
    let hub = MetricsHub::new();
    let telemetry = Telemetry::ring(16);
    let service = Service::new(
        counting_registry(Arc::new(AtomicUsize::new(0))),
        ServiceConfig {
            jobs: 2,
            admission: AdmissionConfig {
                max_open_jobs: 1,
                retry_after_ms: 123,
                ..AdmissionConfig::default()
            },
            hub: Some(hub.clone()),
            telemetry: telemetry.clone(),
            ..ServiceConfig::default()
        },
    )
    .expect("service");

    let (first, _) = service.submit("alice", SPEC).expect("fills the budget");
    let err = service.submit("bob", SPEC_B).expect_err("over budget");
    assert_eq!(err.code(), "overloaded");
    assert!(
        matches!(
            &err,
            ServiceError::Overloaded { retry_after_ms: 123, reason } if reason == "jobs"
        ),
        "{err}"
    );

    // A duplicate of the open job is a re-attach — exempt from budgets.
    let (again, _) = service.submit("alice", SPEC).expect("re-attach exempt");
    assert_eq!(again, first);

    // The budget frees as jobs finish.
    drive(&service);
    service.submit("bob", SPEC_B).expect("admitted after drain");

    let snapshot = hub.snapshot();
    assert_eq!(snapshot.counter("service.admission.rejected"), 1);
    assert_eq!(snapshot.counter("service.admission.rejected.jobs"), 1);
    assert!(
        telemetry.snapshot().iter().any(|e| matches!(
            e,
            Event::AdmissionReject {
                reason_code: 1,
                retry_after_ms: 123
            }
        )),
        "rejection emits its telemetry event"
    );
}

#[test]
fn tenant_and_byte_budgets_are_enforced_separately() {
    let per_tenant = Service::new(
        counting_registry(Arc::new(AtomicUsize::new(0))),
        ServiceConfig {
            jobs: 2,
            admission: AdmissionConfig {
                max_tenant_open_jobs: 1,
                ..AdmissionConfig::default()
            },
            ..ServiceConfig::default()
        },
    )
    .expect("service");
    per_tenant.submit("alice", SPEC).expect("first job");
    let err = per_tenant
        .submit("alice", SPEC_B)
        .expect_err("tenant quota");
    assert!(
        matches!(&err, ServiceError::Overloaded { reason, .. } if reason == "tenant"),
        "{err}"
    );
    per_tenant
        .submit("bob", SPEC_B)
        .expect("other tenants unaffected");

    let by_bytes = Service::new(
        counting_registry(Arc::new(AtomicUsize::new(0))),
        ServiceConfig {
            jobs: 2,
            admission: AdmissionConfig {
                max_pending_bytes: SPEC.len() + 1,
                ..AdmissionConfig::default()
            },
            ..ServiceConfig::default()
        },
    )
    .expect("service");
    by_bytes.submit("alice", SPEC).expect("fits the budget");
    let err = by_bytes.submit("bob", SPEC_B).expect_err("byte budget");
    assert!(
        matches!(&err, ServiceError::Overloaded { reason, .. } if reason == "bytes"),
        "{err}"
    );
}

#[test]
fn draining_refuses_new_work_but_not_resuming_sessions() {
    let service = Service::new(
        counting_registry(Arc::new(AtomicUsize::new(0))),
        ServiceConfig {
            jobs: 2,
            ..ServiceConfig::default()
        },
    )
    .expect("service");
    let (job, _) = service.submit("alice", SPEC).expect("submit");

    service.begin_drain();
    assert!(service.is_draining());
    let err = service.submit("bob", SPEC_B).expect_err("draining");
    assert!(
        matches!(&err, ServiceError::Overloaded { reason, .. } if reason == "draining"),
        "{err}"
    );
    // The resuming client still finds its job mid-drain...
    let (again, _) = service.submit("alice", SPEC).expect("re-attach");
    assert_eq!(again, job);

    // ...and in-flight work runs to completion, which drain observes.
    drive(&service);
    assert!(service.drain(Duration::from_secs(5)), "drain completes");
    let status = service.status(&job).expect("status");
    assert!(status.finished());
    assert_eq!(status.failed, 0);
    service.results(&job).expect("results still served");
}

#[test]
fn resilient_client_honours_the_server_retry_hint() {
    let counter = Arc::new(AtomicUsize::new(0));
    let hub = MetricsHub::new();
    let service = Service::new(
        counting_registry(counter),
        ServiceConfig {
            jobs: 2,
            admission: AdmissionConfig {
                max_open_jobs: 1,
                retry_after_ms: 80,
                ..AdmissionConfig::default()
            },
            hub: Some(hub.clone()),
            ..ServiceConfig::default()
        },
    )
    .expect("service");
    let service = Arc::new(service);
    let front = TcpFront::start(Arc::clone(&service), "127.0.0.1:0").expect("bind");

    // Fill the budget with a job that stays open until the driver
    // thread ticks the scheduler ~120 ms from now.
    let (first, _) = service.submit("alice", SPEC).expect("fills the budget");
    let driver = {
        let service = Arc::clone(&service);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(120));
            drive(&service);
        })
    };

    let mut client = ResilientClient::new(
        &front.addr().to_string(),
        RunPolicy {
            retries: 50,
            deadline: None,
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(50),
        },
    );
    let started = Instant::now();
    let submitted = client
        .submit("bob", SPEC_B)
        .expect("admitted once the backlog drains");
    let waited = started.elapsed();
    driver.join().expect("driver thread");
    assert!(
        waited >= Duration::from_millis(80),
        "client slept at least the server's hint, waited {waited:?}"
    );
    assert!(
        hub.snapshot().counter("service.admission.rejected") >= 1,
        "the wait really was a typed overload rejection"
    );

    drive(&service);
    let status = client
        .wait(&submitted.job, Duration::from_secs(5))
        .expect("bob's job finishes");
    assert!(status.finished);
    let _ = service.status(&first).expect("alice's job still known");
}

// ---------------------------------------------------------------------------
// Sequence-cursor stream resume
// ---------------------------------------------------------------------------

#[test]
fn stream_replays_exactly_the_missed_events_from_a_cursor() {
    let service = Service::new(
        counting_registry(Arc::new(AtomicUsize::new(0))),
        ServiceConfig {
            jobs: 2,
            ..ServiceConfig::default()
        },
    )
    .expect("service");
    let (job, _) = service.submit("alice", SPEC).expect("submit");
    drive(&service);
    let service = Arc::new(service);
    let front = TcpFront::start(Arc::clone(&service), "127.0.0.1:0").expect("bind");
    let addr = front.addr().to_string();

    // A full stream delivers every trial event exactly once, in
    // sequence order, and leaves the cursor one past the last event.
    let mut client = Client::connect(&addr).expect("connect");
    let mut seq = 0u64;
    let mut seen: Vec<u64> = Vec::new();
    let status = client
        .stream_from(&job, &mut seq, |doc| {
            seen.push(
                doc.get("seq")
                    .and_then(unxpec_telemetry::json::Value::as_u64)
                    .expect("event carries seq"),
            );
        })
        .expect("stream");
    assert!(status.finished);
    assert_eq!(seen, (0..8).collect::<Vec<u64>>());
    assert_eq!(seq, 8);

    // A reconnecting client resumes from its kept cursor and receives
    // only what it missed — no duplicates, no gaps.
    let mut resumed = Client::connect(&addr).expect("reconnect");
    let mut seq = 5u64;
    let mut replayed: Vec<u64> = Vec::new();
    let status = resumed
        .stream_from(&job, &mut seq, |doc| {
            replayed.push(
                doc.get("seq")
                    .and_then(unxpec_telemetry::json::Value::as_u64)
                    .expect("event carries seq"),
            );
        })
        .expect("resumed stream");
    assert!(status.finished);
    assert_eq!(replayed, vec![5, 6, 7]);
    assert_eq!(seq, 8);

    // A cursor already at the end yields no events, just the status.
    let mut done = Client::connect(&addr).expect("connect");
    let mut seq = 8u64;
    let status = done
        .stream_from(&job, &mut seq, |_| panic!("no events past the end"))
        .expect("empty stream");
    assert!(status.finished);
    assert_eq!(seq, 8);
}

// ---------------------------------------------------------------------------
// Journal corruption robustness (mirrors the cache proptests above)
// ---------------------------------------------------------------------------

/// Deterministic journal content with every record type and
/// escaping-hostile text. ASCII-only so byte positions are char
/// boundaries and the truncation proptest can slice anywhere.
fn sample_records() -> Vec<JournalRecord> {
    vec![
        JournalRecord::Submit {
            job: 1,
            tenant: "alice".to_string(),
            spec_text: SPEC.to_string(),
        },
        JournalRecord::CellDone {
            job: 1,
            slot: 0,
            cell: 0xdead_beef,
        },
        JournalRecord::CellDone {
            job: 1,
            slot: 3,
            cell: 0x1234,
        },
        JournalRecord::Submit {
            job: 2,
            tenant: "bob \"the\" builder".to_string(),
            spec_text: "experiments = count\nseeds = 2\nroot-seed = 0xb0b".to_string(),
        },
        JournalRecord::Cancel { job: 2 },
        JournalRecord::CellDone {
            job: 1,
            slot: 7,
            cell: u64::MAX,
        },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any single-byte corruption of the journal salvages line by
    /// line: recovered records are an order-preserving subsequence of
    /// what was written (corruption can drop lines, never invent or
    /// alter records — the checksum sees to that), anything missing is
    /// visible in the dropped count, and nothing panics.
    #[test]
    fn journal_salvage_survives_any_single_byte_flip(pos in 0usize..4096, flip in 1u8..=255) {
        let records = sample_records();
        let text: String = records.iter().map(JournalRecord::render).collect();
        let mut bytes = text.clone().into_bytes();
        let pos = pos % bytes.len();
        bytes[pos] ^= flip;
        let tampered = String::from_utf8_lossy(&bytes).into_owned();
        let recovery = Journal::salvage(&tampered);
        let mut rest = records.iter();
        for got in &recovery.records {
            prop_assert!(
                rest.any(|r| r == got),
                "salvage produced a record never written: {got:?}"
            );
        }
        if recovery.records.len() < records.len() {
            prop_assert!(
                recovery.dropped >= 1,
                "missing records must be counted as dropped"
            );
        }
    }

    /// A torn tail (power cut mid-append) salvages exactly the records
    /// whose full line survives; the partial line is at most one
    /// counted drop.
    #[test]
    fn journal_truncation_salvages_the_intact_prefix(cut in 0usize..4096) {
        let records = sample_records();
        let text: String = records.iter().map(JournalRecord::render).collect();
        let cut = cut % text.len();
        let recovery = Journal::salvage(&text[..cut]);
        let keep = text[..cut].matches('\n').count();
        prop_assert_eq!(recovery.records.as_slice(), &records[..keep]);
        prop_assert!(recovery.dropped <= 1, "at most the torn line drops");
    }
}
