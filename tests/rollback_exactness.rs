//! Property tests for the central Undo invariant: after CleanupSpec
//! rolls back a squash, the L1 tag state is *exactly* what it was
//! before the transient loads ran.

use proptest::prelude::*;
use unxpec::cache::{CacheHierarchy, HierarchyConfig, SpecTag};
use unxpec::cpu::SquashInfo;
use unxpec::defense::CleanupSpec;
use unxpec::mem::LineAddr;

/// Snapshot of which lines are resident in L1, per set.
fn l1_snapshot(hier: &CacheHierarchy) -> Vec<Vec<Option<LineAddr>>> {
    let sets = hier.config().l1d.sets;
    (0..sets)
        .map(|s| hier.l1d().set_lines(s).map(|m| m.map(|m| m.line)).collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cleanup_rollback_restores_exact_l1_state(
        warm in proptest::collection::vec(0u64..4096, 0..300),
        transient in proptest::collection::vec(0u64..4096, 1..24),
    ) {
        let mut hier = CacheHierarchy::new(HierarchyConfig::table_i(), 1);
        // Architectural warmup.
        let mut cycle = 0;
        for w in &warm {
            cycle = hier.access_data(LineAddr::new(*w), cycle, None).complete_cycle;
        }
        let before = l1_snapshot(&hier);

        // A burst of speculative loads (dedup: a line accessed twice
        // only fills once; hits leave no effect anyway).
        let mut effects = Vec::new();
        let mut loads = 0;
        for t in &transient {
            let out = hier.access_data(LineAddr::new(*t), cycle, Some(SpecTag(1)));
            cycle = out.complete_cycle;
            effects.extend(out.effects);
            loads += 1;
        }

        // Squash + rollback.
        let mut defense = CleanupSpec::new();
        let info = SquashInfo {
            resolve_cycle: cycle + 10,
            branch_pc: 0,
            epoch: SpecTag(1),
            transient_effects: &effects,
            squashed_loads: loads,
            squashed_insts: loads,
        };
        let end = unxpec::cpu::Defense::on_squash(&mut defense, &mut hier, &info);
        prop_assert!(end >= info.resolve_cycle);

        let after = l1_snapshot(&hier);
        // Exact per-way equality: every set looks as if the transient
        // loads never ran.
        for (s, (b, a)) in before.iter().zip(&after).enumerate() {
            prop_assert_eq!(b, a, "set {} diverged after rollback", s);
        }
    }

    /// Pooled-buffer reuse: one `CleanupSpec` instance (whose restore
    /// scratch is reused across rollbacks) must stay exact over
    /// *consecutive* squashes — the second burst's rollback must not
    /// see stale records from the first.
    #[test]
    fn consecutive_squashes_on_one_defense_stay_exact(
        warm in proptest::collection::vec(0u64..4096, 0..300),
        bursts in proptest::collection::vec(
            proptest::collection::vec(0u64..4096, 1..24), 2..5),
    ) {
        let mut hier = CacheHierarchy::new(HierarchyConfig::table_i(), 1);
        let mut cycle = 0;
        for w in &warm {
            cycle = hier.access_data(LineAddr::new(*w), cycle, None).complete_cycle;
        }
        let before = l1_snapshot(&hier);
        let mut defense = CleanupSpec::new();

        for (i, burst) in bursts.iter().enumerate() {
            let tag = SpecTag(i as u64 + 1);
            let mut effects = Vec::new();
            for t in burst {
                let out = hier.access_data(LineAddr::new(*t), cycle, Some(tag));
                cycle = out.complete_cycle;
                effects.extend(out.effects);
            }
            let info = SquashInfo {
                resolve_cycle: cycle + 10,
                branch_pc: 0,
                epoch: tag,
                transient_effects: &effects,
                squashed_loads: burst.len(),
                squashed_insts: burst.len(),
            };
            cycle = unxpec::cpu::Defense::on_squash(&mut defense, &mut hier, &info);
            let after = l1_snapshot(&hier);
            for (s, (b, a)) in before.iter().zip(&after).enumerate() {
                prop_assert_eq!(b, a, "squash {}: set {} diverged", i, s);
            }
        }
    }

    #[test]
    fn unsafe_baseline_leaves_transient_lines(
        transient in proptest::collection::vec(0u64..512, 1..8),
    ) {
        let mut hier = CacheHierarchy::new(HierarchyConfig::table_i(), 1);
        for t in &transient {
            hier.access_data(LineAddr::new(*t), 0, Some(SpecTag(1)));
        }
        // No rollback: every transient line is still resident.
        for t in &transient {
            prop_assert!(hier.l1_contains(LineAddr::new(*t)));
        }
    }

    #[test]
    fn rollback_cost_depends_only_on_change_volume(
        base in 0u64..1000,
    ) {
        // Two different single-line transients cost identical cleanup.
        let cost = |line: u64| {
            let mut hier = CacheHierarchy::new(HierarchyConfig::table_i(), 1);
            let out = hier.access_data(LineAddr::new(line), 0, Some(SpecTag(1)));
            let mut d = CleanupSpec::new();
            let info = SquashInfo {
                resolve_cycle: 1000,
                branch_pc: 0,
                epoch: SpecTag(1),
                transient_effects: &out.effects,
                squashed_loads: 1,
                squashed_insts: 1,
            };
            unxpec::cpu::Defense::on_squash(&mut d, &mut hier, &info) - 1000
        };
        prop_assert_eq!(cost(base), cost(base + 1));
    }
}
