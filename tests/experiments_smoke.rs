//! Smoke tests: every experiment driver runs at quick scale, renders,
//! and lands in the loose band the paper reports.

use unxpec::experiments::{
    leakage, overhead, pdf, rate, resolution, rollback, secret_pattern, table1,
};

#[test]
fn table1_renders() {
    assert!(table1::run().to_string().contains("Module"));
}

#[test]
fn fig2_fig13_shapes() {
    let quiet = resolution::run(4, 0x5eed);
    let noisy = resolution::run_host_like(4, 1);
    for sweep in [&quiet, &noisy] {
        assert!(sweep.mean_for_fn(3) > sweep.mean_for_fn(1) + 100.0);
    }
    assert!(!quiet.noisy);
    assert!(noisy.noisy);
}

#[test]
fn fig3_and_fig6_bands() {
    let no_es = rollback::run(false, 3, 4, 0x5eed);
    let es = rollback::run(true, 3, 4, 0x5eed);
    let d0 = no_es.single_load_difference();
    let d1 = es.single_load_difference();
    assert!((15.0..=30.0).contains(&d0), "{d0}");
    assert!((25.0..=45.0).contains(&d1), "{d1}");
}

#[test]
fn fig7_fig8_thresholds_order() {
    let p7 = pdf::run(false, 50, 1);
    let p8 = pdf::run(true, 50, 1);
    assert!(p8.mean_difference() > p7.mean_difference());
    assert!(!p7.to_string().is_empty());
}

#[test]
fn fig9_pattern() {
    let p = secret_pattern::run(1000, 0x9);
    assert_eq!(p.bits.len(), 1000);
}

#[test]
fn fig10_fig11_accuracies() {
    let l10 = leakage::run(false, 160, 1);
    let l11 = leakage::run(true, 160, 1);
    assert!(
        (0.72..=0.97).contains(&l10.accuracy()),
        "{}",
        l10.accuracy()
    );
    assert!(l11.accuracy() >= l10.accuracy() - 0.02);
}

#[test]
fn rate_bands() {
    let (no_es, es) = rate::run(24, 1);
    assert!(no_es.raw_bps > 1e6, "{}", no_es.raw_bps);
    let kbps = no_es.artifact_equivalent_bps / 1e3;
    assert!((100.0..=170.0).contains(&kbps), "{kbps}");
    assert!(es.cycles_per_round >= no_es.cycles_per_round * 0.8);
}

#[test]
fn fig12_quick_band() {
    let e = overhead::run(4_000, 12_000);
    let o25 = e.mean_overhead_for_constant(25);
    let o65 = e.mean_overhead_for_constant(65);
    assert!(o65 > o25, "{o25} vs {o65}");
    assert!(e.rows.len() == 12);
    assert!(e.to_string().contains("geomean"));
}
