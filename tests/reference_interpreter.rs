//! Property test: the out-of-order speculative core must compute the
//! same architectural results as a trivial sequential interpreter.
//!
//! This is the strongest correctness check the simulator has: random
//! programs with data-dependent forward branches are executed both by
//! the speculative [`unxpec::cpu::Core`] (wrong paths, squashes,
//! rollbacks and all) and by an in-test oracle that is obviously
//! correct. Any wrong-path state leaking into architectural results —
//! the exact class of bug a speculation simulator is most likely to
//! have — fails the property.

use proptest::prelude::*;
use unxpec::cpu::{AluOp, Cond, Core, Inst, Operand, Program, ProgramBuilder, Reg};
use unxpec::mem::{Addr, Memory};

/// Sequential reference semantics.
fn reference_run(program: &Program, mem: &mut Memory) -> [u64; 8] {
    let mut regs = [0u64; 32];
    let mut pc = 0usize;
    let mut steps = 0;
    while let Some(inst) = program.fetch(pc) {
        steps += 1;
        assert!(steps < 100_000, "reference interpreter ran away");
        match inst {
            Inst::MovImm { dst, imm } => {
                regs[dst.index()] = imm;
                pc += 1;
            }
            Inst::Alu { op, dst, a, b } => {
                let bv = match b {
                    Operand::Reg(r) => regs[r.index()],
                    Operand::Imm(i) => i,
                };
                regs[dst.index()] = op.apply(regs[a.index()], bv);
                pc += 1;
            }
            Inst::Load { dst, base, offset } => {
                let addr = Addr::new(regs[base.index()].wrapping_add(offset as u64) & !7);
                regs[dst.index()] = mem.read_u64(addr);
                pc += 1;
            }
            Inst::Store { src, base, offset } => {
                let addr = Addr::new(regs[base.index()].wrapping_add(offset as u64) & !7);
                mem.write_u64(addr, regs[src.index()]);
                pc += 1;
            }
            Inst::Flush { .. } | Inst::Fence | Inst::Nop => pc += 1,
            Inst::ReadTime { dst } => {
                // Timing is not part of the architectural contract; pin
                // the oracle's value and skip comparing this register.
                regs[dst.index()] = 0;
                pc += 1;
            }
            Inst::Branch { cond, a, b, target } => {
                let bv = match b {
                    Operand::Reg(r) => regs[r.index()],
                    Operand::Imm(i) => i,
                };
                pc = if cond.eval(regs[a.index()], bv) {
                    target
                } else {
                    pc + 1
                };
            }
            Inst::Jump { target } => pc = target,
            Inst::JumpInd { target } => pc = regs[target.index()] as usize,
            Inst::Call { target, sp } => {
                let new_sp = regs[sp.index()].wrapping_sub(8);
                regs[sp.index()] = new_sp;
                mem.write_u64(Addr::new(new_sp & !7), (pc + 1) as u64);
                pc = target;
            }
            Inst::Ret { sp } => {
                let addr = Addr::new(regs[sp.index()] & !7);
                regs[sp.index()] = regs[sp.index()].wrapping_add(8);
                pc = mem.read_u64(addr) as usize;
            }
            Inst::Halt => break,
        }
    }
    regs[..8].try_into().expect("8 registers")
}

/// One generated operation (lowered into 1–2 instructions).
#[derive(Debug, Clone)]
enum Op {
    Mov(u8, u64),
    Alu(u8, AluOp, u8, u8),
    AluImm(u8, AluOp, u8, u64),
    Load(u8, u8),
    Store(u8, u8),
    /// Conditional skip over the next `skip` ops.
    SkipIf(Cond, u8, u64, u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let reg = 0u8..8;
    let alu = prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Mul),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
    ];
    let cond = prop_oneof![
        Just(Cond::Lt),
        Just(Cond::Ge),
        Just(Cond::Eq),
        Just(Cond::Ne)
    ];
    prop_oneof![
        (reg.clone(), any::<u64>()).prop_map(|(d, v)| Op::Mov(d, v)),
        (reg.clone(), alu.clone(), reg.clone(), reg.clone())
            .prop_map(|(d, op, a, b)| Op::Alu(d, op, a, b)),
        (reg.clone(), alu, reg.clone(), 0u64..1024)
            .prop_map(|(d, op, a, i)| Op::AluImm(d, op, a, i)),
        (reg.clone(), reg.clone()).prop_map(|(d, b)| Op::Load(d, b)),
        (reg.clone(), reg.clone()).prop_map(|(s, b)| Op::Store(s, b)),
        (cond, reg, 0u64..64, 1u8..5).prop_map(|(c, a, v, skip)| Op::SkipIf(c, a, v, skip)),
    ]
}

/// Lowers ops to a program. Addresses are folded into a small arena so
/// loads/stores always hit valid, aligned locations.
fn lower(ops: &[Op]) -> Program {
    const ARENA: u64 = 0x10_0000;
    let mut b = ProgramBuilder::new();
    // r8 holds the arena base; address regs are masked into the arena.
    b.mov(Reg(8), ARENA);
    let mut skip_stack: Vec<(usize, String)> = Vec::new();
    let mut label_id = 0;
    for (i, op) in ops.iter().enumerate() {
        // Close any skips that end here.
        while let Some((end, label)) = skip_stack.last().cloned() {
            if end <= i {
                b.label(&label);
                skip_stack.pop();
            } else {
                break;
            }
        }
        match op.clone() {
            Op::Mov(d, v) => {
                b.mov(Reg(d), v);
            }
            Op::Alu(d, op, a, r) => {
                b.push(Inst::Alu {
                    op,
                    dst: Reg(d),
                    a: Reg(a),
                    b: Operand::Reg(Reg(r)),
                });
            }
            Op::AluImm(d, op, a, i) => {
                b.push(Inst::Alu {
                    op,
                    dst: Reg(d),
                    a: Reg(a),
                    b: Operand::Imm(i),
                });
            }
            Op::Load(d, base) => {
                // r9 = arena + (r_base & 0x3f8)
                b.and(Reg(9), Reg(base), 0x3f8u64);
                b.add(Reg(9), Reg(9), Reg(8));
                b.load(Reg(d), Reg(9), 0);
            }
            Op::Store(s, base) => {
                b.and(Reg(9), Reg(base), 0x3f8u64);
                b.add(Reg(9), Reg(9), Reg(8));
                b.store(Reg(s), Reg(9), 0);
            }
            Op::SkipIf(c, a, v, skip) => {
                let label = format!("skip_{label_id}");
                label_id += 1;
                b.branch(c, Reg(a), v, &label);
                skip_stack.push((i + 1 + skip as usize, label));
                // Keep innermost-first ordering for well-nested closes.
                skip_stack.sort_by_key(|s| std::cmp::Reverse(s.0));
            }
        }
    }
    while let Some((_, label)) = skip_stack.pop() {
        b.label(&label);
    }
    b.halt();
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn speculative_core_matches_reference(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let program = lower(&ops);
        let mut ref_mem = Memory::new();
        let expected = reference_run(&program, &mut ref_mem);

        let mut core = Core::table_i();
        let result = core.run(&program);
        prop_assert!(!result.hit_limit, "program must halt");
        for r in 0..8u8 {
            prop_assert_eq!(
                result.reg(Reg(r)),
                expected[r as usize],
                "r{} diverged (program:\n{})",
                r,
                program
            );
        }
        // Architectural memory must match across the touched arena too.
        for w in 0..128u64 {
            let addr = Addr::new(0x10_0000 + w * 8);
            prop_assert_eq!(core.mem().read_u64(addr), ref_mem.read_u64(addr));
        }
    }

    #[test]
    fn core_is_deterministic(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        let program = lower(&ops);
        let run = || {
            let mut core = Core::table_i();
            let r = core.run(&program);
            (r.regs, r.stats.cycles, r.stats.mispredicts)
        };
        prop_assert_eq!(run(), run());
    }
}
