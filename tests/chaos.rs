//! Fault-injection robustness properties (see `docs/fault_injection.md`):
//!
//! * an armed sanitizer plus a disabled injector is byte-identical to a
//!   plain run, for every registry attack program and any seed;
//! * seeded occupancy-counter corruption is *caught* — the mutation
//!   test proving the sanitizer's cross-check has teeth;
//! * a wedged fill ends in a typed `Livelock`, never a hang.

use proptest::prelude::*;
use unxpec::attack::registry::registry;
use unxpec::cache::{FaultInjector, FaultKind, FaultPlan};
use unxpec::cpu::{Core, InvariantViolation, RunResult, SanitizerConfig};
use unxpec::defense::CleanupSpec;
use unxpec::mem::Addr;

/// Committed-instruction bound: generous for every registry program,
/// small enough that a spinning run still ends promptly.
const MAX_COMMITTED: u64 = 1 << 20;

/// Builds a core ready to run registry program `index`: CleanupSpec
/// defense, layout installed, Return-trigger escape slot published.
fn prepared_core(index: usize) -> Core {
    let spec = &registry()[index];
    let mut core = Core::table_i();
    core.set_defense(Box::new(CleanupSpec::new()));
    spec.layout().install(core.mem_mut(), spec.fn_accesses);
    if let Some(escape) = spec.program().label("escape") {
        core.mem_mut().write_u64(Addr::new(0x8_0000), escape as u64);
    }
    core
}

/// Every observable bit of a run, rendered for equality comparison:
/// architectural registers, termination mode, and the full statistics
/// block including per-squash records.
fn fingerprint(r: &RunResult) -> String {
    format!(
        "regs={:?} hit_limit={} cycles={} committed={} loads={} branches={} \
         mispredicts={} squashed={} cleanup_stall={} squashes={:?}",
        r.regs,
        r.hit_limit,
        r.stats.cycles,
        r.stats.committed_insts,
        r.stats.committed_loads,
        r.stats.branches,
        r.stats.mispredicts,
        r.stats.squashed_insts,
        r.stats.cleanup_stall_cycles,
        r.stats.squashes,
    )
}

#[test]
fn armed_sanitizer_with_disabled_injector_is_byte_identical() {
    for (index, spec) in registry().iter().enumerate() {
        let plain = prepared_core(index).run_for(spec.program(), MAX_COMMITTED);

        let mut checked = prepared_core(index);
        checked.set_sanitizer(SanitizerConfig::default());
        checked
            .hierarchy_mut()
            .set_fault_injector(FaultInjector::new(FaultPlan::disabled(), 0x5eed));
        let result = checked
            .run_checked_for(spec.program(), MAX_COMMITTED)
            .unwrap_or_else(|v| panic!("{}: sanitizer tripped without faults: {v}", spec.name));

        assert_eq!(
            fingerprint(&plain),
            fingerprint(&result),
            "{}: checked run diverged from plain run",
            spec.name
        );
        let injector = checked
            .hierarchy_mut()
            .take_fault_injector()
            .expect("installed above");
        assert_eq!(injector.injected_total(), 0, "{}", spec.name);
        let sanitizer = checked.sanitizer().expect("sanitizer armed");
        assert!(sanitizer.checks_run() > 0, "{}: checks must run", spec.name);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The disabled injector draws nothing, so its seed must be
    /// irrelevant: checked runs are identical to plain runs for *any*
    /// injector seed, not just the default.
    #[test]
    fn disabled_injector_identity_holds_for_any_seed(
        seed in any::<u64>(),
        index in 0usize..7,
    ) {
        let spec = &registry()[index];
        let plain = prepared_core(index).run_for(spec.program(), MAX_COMMITTED);

        let mut checked = prepared_core(index);
        checked.set_sanitizer(SanitizerConfig::default());
        checked
            .hierarchy_mut()
            .set_fault_injector(FaultInjector::new(FaultPlan::disabled(), seed));
        let result = checked.run_checked_for(spec.program(), MAX_COMMITTED);
        prop_assert!(result.is_ok(), "tripped: {}", result.unwrap_err());
        prop_assert_eq!(
            fingerprint(&plain),
            fingerprint(&result.expect("checked above"))
        );
    }
}

#[test]
fn seeded_occupancy_corruption_is_caught_not_ignored() {
    for delta in [1isize, 3] {
        let spec = &registry()[0];
        let mut core = prepared_core(0);
        core.set_sanitizer(SanitizerConfig::default());
        core.hierarchy_mut()
            .corrupt_l1_resident_counter_for_tests(delta);
        let err = core
            .run_checked_for(spec.program(), MAX_COMMITTED)
            .expect_err("corrupted counter must trip the sanitizer");
        match err {
            InvariantViolation::OccupancyMismatch {
                level,
                counted,
                recounted,
            } => {
                assert_eq!(level, 1);
                assert_eq!(
                    counted as isize - recounted as isize,
                    delta,
                    "the reported drift is the injected drift"
                );
            }
            other => panic!("wrong violation: {other}"),
        }
        assert_eq!(err.code(), 1);
    }
}

#[test]
fn wedged_fills_surface_as_typed_livelock_never_a_hang() {
    let mut livelocks = 0;
    for (index, spec) in registry().iter().enumerate() {
        let mut core = prepared_core(index);
        core.set_sanitizer(SanitizerConfig::default());
        core.hierarchy_mut().set_fault_injector(FaultInjector::new(
            FaultPlan::only(FaultKind::WedgeFill, 1000),
            0x5eed,
        ));
        // Every path must terminate: a clean halt (the wedge only hit
        // squashed loads), a bound, or the watchdog's typed Livelock.
        match core.run_checked_for(spec.program(), MAX_COMMITTED) {
            Err(InvariantViolation::Livelock { cycles_stalled, .. }) => {
                assert!(cycles_stalled > 0, "{}", spec.name);
                livelocks += 1;
            }
            Err(other) => panic!("{}: unexpected violation {other}", spec.name),
            Ok(_) => {}
        }
    }
    assert!(
        livelocks > 0,
        "wedging every fill must stall retirement somewhere"
    );
}
