//! The network-chaos test matrix (`docs/service.md`, "Chaos proxy").
//!
//! Every scenario routes a real client/server session through the
//! deterministic [`ChaosProxy`] with one fault class dialled up (plus
//! a mixed scenario), and asserts the strongest property the service
//! claims: the sweep document a resilient client extracts through a
//! hostile network is **byte-identical** to the document over an
//! undamaged connection, with every trial event delivered exactly
//! once. Non-destructive faults (delay, split) must additionally cost
//! zero reconnects; destructive faults (truncate, garble, sever) must
//! actually bite — each scenario's seed is pinned, so "the chaos never
//! fired" fails the test rather than silently passing it.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use unxpec_harness::{FnExperiment, Registry, RunPolicy, TrialOutput};
use unxpec_service::{
    ChaosConfig, ChaosProxy, Client, ResilientClient, Service, ServiceConfig, TcpFront,
};
use unxpec_telemetry::{Event, Telemetry};

/// Same counting experiment as `tests/service.rs` (integration test
/// files cannot share modules): deterministic output, counts runs.
fn counting_registry(counter: Arc<AtomicUsize>) -> Registry {
    let mut registry = Registry::new();
    registry.register(FnExperiment::new("count", &["a", "b"], move |ctx| {
        counter.fetch_add(1, Ordering::SeqCst);
        let mut out = TrialOutput::new(
            format!("variant {} seed {:#x}", ctx.variant, ctx.seed),
            vec![],
        );
        out.metrics = vec![("seed_tenth".into(), (ctx.seed % 1000) as f64 / 10.0)];
        out
    }));
    registry
}

/// Generous recovery budget: chaos scenarios damage many frames and
/// every retry is cheap (2 ms base backoff, 20 ms cap).
fn chaos_policy() -> RunPolicy {
    RunPolicy {
        retries: 60,
        deadline: None,
        backoff_base: Duration::from_millis(2),
        backoff_cap: Duration::from_millis(20),
    }
}

struct Scenario {
    name: &'static str,
    config: ChaosConfig,
    /// Whether the fault class breaks connections (and therefore must
    /// produce at least one reconnect at this pinned seed).
    destructive: bool,
}

#[test]
fn every_fault_kind_preserves_byte_identical_documents() {
    let counter = Arc::new(AtomicUsize::new(0));
    let mut service = Service::new(
        counting_registry(Arc::clone(&counter)),
        ServiceConfig {
            jobs: 2,
            ..ServiceConfig::default()
        },
    )
    .expect("service");
    service.start_worker();
    let service = Arc::new(service);
    let front = TcpFront::start(Arc::clone(&service), "127.0.0.1:0").expect("bind");
    let upstream = front.addr().to_string();

    let quiet = ChaosConfig {
        max_delay_ms: 8,
        ..ChaosConfig::default()
    };
    let scenarios = [
        Scenario {
            name: "delay",
            config: ChaosConfig {
                seed: 0xd31a,
                delay_permille: 350,
                ..quiet
            },
            destructive: false,
        },
        Scenario {
            name: "split",
            config: ChaosConfig {
                seed: 0x5b17,
                split_permille: 400,
                ..quiet
            },
            destructive: false,
        },
        Scenario {
            name: "truncate",
            config: ChaosConfig {
                seed: 0x7a0c,
                truncate_permille: 200,
                ..quiet
            },
            destructive: true,
        },
        Scenario {
            name: "garble",
            config: ChaosConfig {
                seed: 0x6a4b,
                garble_permille: 200,
                ..quiet
            },
            destructive: true,
        },
        Scenario {
            name: "sever",
            config: ChaosConfig {
                seed: 0x5e4e,
                sever_permille: 150,
                ..quiet
            },
            destructive: true,
        },
        Scenario {
            name: "mixed",
            config: ChaosConfig {
                seed: 0x1915,
                delay_permille: 80,
                split_permille: 80,
                truncate_permille: 80,
                garble_permille: 80,
                sever_permille: 80,
                ..quiet
            },
            destructive: true,
        },
    ];

    for (index, scenario) in scenarios.iter().enumerate() {
        // A distinct spec per scenario, so each one exercises live
        // scheduling rather than re-attaching to a finished job.
        let spec = format!(
            "experiments = count\nseeds = 4\nroot-seed = {:#x}",
            0xc4a0_5000 + index
        );

        // Reference document over an undamaged connection.
        let reference = {
            let mut direct = Client::connect(&upstream).expect("direct connect");
            let submitted = direct
                .submit(&format!("{}-ref", scenario.name), &spec)
                .expect("reference submit");
            direct
                .stream(&submitted.job, |_, _| {})
                .expect("reference stream");
            direct.results(&submitted.job).expect("reference results")
        };

        let mut proxy =
            ChaosProxy::start("127.0.0.1:0", &upstream, scenario.config).expect("proxy");
        let telemetry = Telemetry::ring(256);
        let mut client = ResilientClient::new(&proxy.addr().to_string(), chaos_policy())
            .with_telemetry(telemetry.clone());

        let submitted = client
            .submit(scenario.name, &spec)
            .unwrap_or_else(|e| panic!("{}: submit failed: {e}", scenario.name));
        let mut events_seen = 0u64;
        let status = client
            .stream(&submitted.job, |_, _| events_seen += 1)
            .unwrap_or_else(|e| panic!("{}: stream failed: {e}", scenario.name));
        assert!(status.finished, "{}: job finished", scenario.name);
        assert_eq!(
            events_seen, 8,
            "{}: each trial event delivered exactly once",
            scenario.name
        );
        let text = client
            .results(&submitted.job)
            .unwrap_or_else(|e| panic!("{}: results failed: {e}", scenario.name));
        assert_eq!(
            text, reference,
            "{}: document through chaos is byte-identical",
            scenario.name
        );

        let reconnects = telemetry
            .snapshot()
            .iter()
            .filter(|e| matches!(e, Event::ClientReconnect { .. }))
            .count();
        if scenario.destructive {
            assert!(
                reconnects > 0,
                "{}: pinned seed must actually break the session at least once",
                scenario.name
            );
        } else {
            assert_eq!(
                reconnects, 0,
                "{}: non-destructive faults must not cost a reconnect",
                scenario.name
            );
        }
        proxy.shutdown();
    }
}
