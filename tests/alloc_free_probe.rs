//! Zero-allocation guarantees for the hot paths: the disabled
//! telemetry probe and the steady-state simulation cycle loop.
//!
//! This lives in its own integration-test binary so the counting
//! allocator sees no concurrent test threads. Both probes run inside
//! ONE `#[test]` function: with two, the harness runs them on two
//! worker threads, and its own bookkeeping (spawning the second
//! thread, collecting the first result) allocates while a counting
//! window is open — a rare flake under parallel `--workspace` runs.
//!
//! Even single-threaded, the process occasionally sees a stray
//! allocation or two from runtime machinery outside the probed code,
//! so each probe retries its counting window: a hot path that really
//! allocates does so ~per iteration (tens of thousands of counts,
//! every attempt), which the retry loop cannot mask.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use unxpec::cpu::{Cond, Core, ProgramBuilder, Reg};
use unxpec::telemetry::{CacheLevel, Event, Telemetry};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Runs `window` up to 5 times and returns the smallest allocation
/// count observed. Interference is sporadic, so a clean pass shows a
/// zero window almost immediately; a real per-iteration allocation
/// inflates every attempt.
fn min_allocations_over_attempts(mut window: impl FnMut()) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..5 {
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        window();
        let after = ALLOCATIONS.load(Ordering::SeqCst);
        best = best.min(after - before);
        if best == 0 {
            break;
        }
    }
    best
}

#[test]
fn hot_paths_are_allocation_free() {
    disabled_telemetry_emits_without_allocating();
    steady_state_cycle_loop_is_allocation_free_after_warmup();
}

fn disabled_telemetry_emits_without_allocating() {
    let tel = Telemetry::disabled();
    assert!(!tel.is_enabled());
    // Warm anything lazy (formatting machinery, TLS) before counting.
    tel.emit(Event::Dispatch {
        cycle: 0,
        seq: 0,
        pc: 0,
    });

    let allocations = min_allocations_over_attempts(|| {
        for cycle in 0..100_000u64 {
            tel.emit(Event::CacheFill {
                cycle,
                level: CacheLevel::L1,
                line: cycle,
                speculative: true,
            });
            tel.emit(Event::SquashBegin {
                cycle,
                branch_pc: 3,
                epoch: cycle,
                squashed_loads: 1,
                squashed_insts: 2,
            });
        }
    });
    assert_eq!(
        allocations, 0,
        "disabled emit must be one branch, zero allocations"
    );
}

/// After a warm-up run has filled the frame pool, the run-storage
/// buffers, the branch predictor, and the caches, repeated well-
/// predicted runs of the same program must not touch the heap at all:
/// frames come from the pool, squash scratch and ROB storage are
/// reused, and cache hits build no effect lists.
///
/// The one *accepted* steady-state allocation is `stats.squashes`
/// growth on an actual squash (the records are moved out to the caller
/// in `RunResult`), so the probe program is squash-free by
/// construction: its only branch is always taken and trained by the
/// warm-up run.
fn steady_state_cycle_loop_is_allocation_free_after_warmup() {
    let mut b = ProgramBuilder::new();
    b.mov(Reg(1), 0); // induction variable
    b.mov(Reg(2), 0x1_0000); // base of a small resident working set
    b.label("loop");
    b.load(Reg(3), Reg(2), 0);
    b.load(Reg(4), Reg(2), 64);
    b.add(Reg(5), Reg(3), Reg(4));
    b.add(Reg(1), Reg(1), 1);
    b.branch(Cond::Ge, Reg(1), 0u64, "loop"); // always taken
    b.halt();
    let program = b.build();

    let mut core = Core::table_i();
    // Warm-up: trains the predictor (the first encounter of the branch
    // mispredicts), warms both cache levels, and sizes every pooled
    // buffer.
    let warm = core.run_for(&program, 2_000);
    assert!(warm.hit_limit, "the loop must run to the instruction bound");

    let mut cycles = 0;
    let allocations = min_allocations_over_attempts(|| {
        for _ in 0..5 {
            let r = core.run_for(&program, 2_000);
            cycles += r.stats.cycles;
            assert_eq!(r.stats.squashes.len(), 0, "probe loop must be squash-free");
            assert_eq!(r.stats.mispredicts, 0, "predictor must stay trained");
        }
    });
    assert!(cycles > 0);
    assert_eq!(
        allocations, 0,
        "steady-state cycle loop allocated {allocations} time(s)"
    );
}
