//! The disabled probe path must be free: no heap allocation per emit.
//!
//! This lives in its own integration-test binary so the counting
//! allocator sees no concurrent test threads — the single test below is
//! the only code running between the two counter reads.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use unxpec::telemetry::{CacheLevel, Event, Telemetry};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn disabled_telemetry_emits_without_allocating() {
    let tel = Telemetry::disabled();
    assert!(!tel.is_enabled());
    // Warm anything lazy (formatting machinery, TLS) before counting.
    tel.emit(Event::Dispatch {
        cycle: 0,
        seq: 0,
        pc: 0,
    });

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for cycle in 0..100_000u64 {
        tel.emit(Event::CacheFill {
            cycle,
            level: CacheLevel::L1,
            line: cycle,
            speculative: true,
        });
        tel.emit(Event::SquashBegin {
            cycle,
            branch_pc: 3,
            epoch: cycle,
            squashed_loads: 1,
            squashed_insts: 2,
        });
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "disabled emit must be one branch, zero allocations"
    );
}
