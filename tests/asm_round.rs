//! The hand-written assembly round (examples/programs/unxpec_round.asm)
//! must exhibit the same channel as the builder-generated one.

use unxpec::attack::AttackLayout;
use unxpec::cpu::{parse_asm, AsmError, Cond, Core, ProgramBuilder, Reg};
use unxpec::defense::CleanupSpec;

fn load_round() -> unxpec::cpu::Program {
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/examples/programs/unxpec_round.asm"
    ))
    .expect("asm file present");
    parse_asm(&text).expect("asm parses")
}

#[test]
fn asm_addresses_match_the_layout() {
    // The hand-written constants must stay in sync with AttackLayout.
    let layout = AttackLayout::new(64);
    assert_eq!(layout.probe().base().raw(), 0x100000);
    assert_eq!(layout.a_base().raw(), 0x104040);
    assert_eq!(layout.secret_addr().raw(), 0x104800);
    assert_eq!(layout.chain_node(0).raw(), 0x104880);
    assert_eq!(layout.oob_index(), 248);
}

#[test]
fn duplicate_labels_are_rejected_with_a_typed_error() {
    // Regression: binding one label name at two positions used to
    // silently rebind it, making a branch target depend on emission
    // order. Both assembler front ends must reject it.
    let mut b = ProgramBuilder::new();
    b.label("spot");
    b.nop();
    b.label("spot");
    b.branch(Cond::Eq, Reg(1), 0u64, "spot");
    b.halt();
    match b.try_build() {
        Err(AsmError::DuplicateLabel {
            label,
            first,
            second,
        }) => {
            assert_eq!(label, "spot");
            assert_eq!((first, second), (0, 1));
        }
        other => panic!("expected DuplicateLabel, got {other:?}"),
    }

    let err = parse_asm("dup:\n  nop\ndup:\n  halt\n").expect_err("duplicate must not parse");
    assert!(
        err.to_string().contains("defined twice"),
        "unexpected parse error: {err}"
    );
}

#[test]
fn hand_written_round_reproduces_the_channel() {
    let program = load_round();
    let layout = AttackLayout::new(64);
    let observe = |secret: bool| {
        let mut core = Core::table_i();
        core.set_defense(Box::new(CleanupSpec::new()));
        layout.install(core.mem_mut(), 1);
        layout.set_secret(core.mem_mut(), secret);
        // Victim touches its secret (keeps the line warm).
        {
            let mut b = unxpec::cpu::ProgramBuilder::new();
            b.mov(Reg(1), layout.secret_addr().raw());
            b.load(Reg(2), Reg(1), 0);
            b.halt();
            core.run(&b.build());
        }
        // Warm-up round, then the measured round.
        core.run(&program);
        let r = core.run(&program);
        r.reg(Reg(21)) - r.reg(Reg(20))
    };
    let t0 = observe(false);
    let t1 = observe(true);
    let diff = t1 as i64 - t0 as i64;
    assert!(
        (15..=30).contains(&diff),
        "hand-written round difference {diff} ~ 22 ({t0} vs {t1})"
    );
}
