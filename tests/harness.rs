//! Integration tests for the sweep harness: parallel-equals-serial
//! determinism, checkpoint/resume from a manifest, and panic
//! containment with bounded retry (`docs/harness.md`).

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use unxpec_harness::{
    run_sweep, FnExperiment, Manifest, Registry, SweepError, SweepOptions, SweepSpec, TrialOutput,
};

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("unxpec-harness-it-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// jobs=1 and jobs=8 must produce identical results, aggregates, and
/// digests on real paper experiments — the acceptance property of the
/// whole harness.
#[test]
fn parallel_sweep_equals_serial_sweep_on_real_experiments() {
    let registry = Registry::builtin();
    let mut spec = SweepSpec::quick();
    // timeline is the cheapest seeded experiment with two variants.
    spec.experiments = vec!["timeline".into(), "secret-pattern".into()];
    spec.seeds = 3;

    let serial = run_sweep(
        &spec,
        &registry,
        &SweepOptions {
            jobs: 1,
            ..Default::default()
        },
    )
    .expect("serial sweep");
    let parallel = run_sweep(
        &spec,
        &registry,
        &SweepOptions {
            jobs: 8,
            ..Default::default()
        },
    )
    .expect("parallel sweep");

    assert_eq!(serial.aggregate_digest, parallel.aggregate_digest);
    assert_eq!(serial.aggregates, parallel.aggregates);
    assert_eq!(serial.results.len(), parallel.results.len());
    for (a, b) in serial.results.iter().zip(&parallel.results) {
        assert_eq!(a.trial.key, b.trial.key, "enumeration order differs");
        assert_eq!(a.trial.seed, b.trial.seed, "derived seed differs");
        assert_eq!(a.output, b.output, "trial {} output differs", a.trial.key);
        assert_eq!(a.digest, b.digest);
    }
    assert!(serial.poisoned.is_empty() && parallel.poisoned.is_empty());
}

fn counting_registry(runs: Arc<AtomicUsize>) -> Registry {
    let mut r = Registry::new();
    r.register(FnExperiment::new("count", &["default"], move |ctx| {
        runs.fetch_add(1, Ordering::Relaxed);
        TrialOutput::new(
            format!("seed {}", ctx.seed),
            vec![("seed_mod", (ctx.seed % 97) as f64)],
        )
    }));
    r
}

#[test]
fn resume_from_manifest_skips_completed_trials() {
    let dir = tmpdir("resume");
    let manifest = dir.join("manifest.json");
    let runs = Arc::new(AtomicUsize::new(0));
    let registry = counting_registry(runs.clone());
    let mut spec = SweepSpec::quick();
    spec.experiments = vec!["count".into()];
    spec.seeds = 5;
    let opts = SweepOptions {
        jobs: 2,
        retries: 0,
        manifest: Some(manifest.clone()),
        ..SweepOptions::default()
    };

    let first = run_sweep(&spec, &registry, &opts).expect("first run");
    assert_eq!(runs.load(Ordering::Relaxed), 5);
    assert_eq!(first.resumed, 0);
    assert!(manifest.exists(), "manifest checkpointed");

    // Second run: every trial comes from the manifest, nothing
    // executes, and the aggregates are byte-identical.
    let second = run_sweep(&spec, &registry, &opts).expect("resumed run");
    assert_eq!(runs.load(Ordering::Relaxed), 5, "no trial re-ran");
    assert_eq!(second.resumed, 5);
    assert_eq!(second.aggregate_digest, first.aggregate_digest);
    assert_eq!(second.aggregates, first.aggregates);

    // Growing the seed axis only runs the new trials.
    spec.seeds = 8;
    let third = run_sweep(&spec, &registry, &opts).expect("grown run");
    assert_eq!(runs.load(Ordering::Relaxed), 8, "only 3 new trials ran");
    assert_eq!(third.resumed, 5);
    assert_eq!(third.results.len(), 8);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn manifest_for_a_different_spec_is_rejected() {
    let dir = tmpdir("mismatch");
    let manifest = dir.join("manifest.json");
    let runs = Arc::new(AtomicUsize::new(0));
    let registry = counting_registry(runs);
    let mut spec = SweepSpec::quick();
    spec.experiments = vec!["count".into()];
    spec.seeds = 2;
    let opts = SweepOptions {
        jobs: 1,
        retries: 0,
        manifest: Some(manifest.clone()),
        ..SweepOptions::default()
    };
    run_sweep(&spec, &registry, &opts).expect("first run");

    spec.root_seed ^= 0xffff;
    match run_sweep(&spec, &registry, &opts) {
        Err(SweepError::ManifestMismatch { manifest, spec }) => assert_ne!(manifest, spec),
        other => panic!("expected ManifestMismatch, got {other:?}"),
    }

    // The manifest file itself still parses and belongs to run 1.
    let m = Manifest::load(&manifest).expect("manifest still valid");
    assert_eq!(m.completed.len(), 2);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn injected_panic_is_contained_and_reported() {
    let mut registry = Registry::new();
    registry.register(FnExperiment::new("mixed", &["ok", "boom"], |ctx| {
        if ctx.variant == "boom" {
            panic!("injected failure for seed {}", ctx.seed);
        }
        TrialOutput::new("fine".into(), vec![("one", 1.0)])
    }));
    let mut spec = SweepSpec::quick();
    spec.experiments = vec!["mixed".into()];
    spec.seeds = 3;
    let report = run_sweep(
        &spec,
        &registry,
        &SweepOptions {
            jobs: 4,
            retries: 1,
            manifest: None,
            ..SweepOptions::default()
        },
    )
    .expect("sweep survives panicking trials");

    assert_eq!(report.results.len(), 3, "ok trials all completed");
    assert_eq!(report.poisoned.len(), 3, "boom trials all poisoned");
    for p in &report.poisoned {
        assert!(p.key.starts_with("mixed/boom/"), "key {}", p.key);
        assert!(p.error.contains("injected failure"), "error {}", p.error);
        assert_eq!(p.attempts, 2, "1 try + 1 retry");
    }
    assert_eq!(report.stats.panicked, 6);
    assert_eq!(report.stats.retried, 3);
    // The report renders the poisoned trials.
    let text = report.to_string();
    assert!(text.contains("POISONED mixed/boom/s0"));
}

/// Regression: a trial that panics once and then succeeds must be
/// counted exactly once everywhere — one attempt chain in the pool
/// counters (`retried == panicked == 1`), one manifest entry with the
/// attempt count, and no poisoned record.
#[test]
fn panic_once_then_succeed_is_not_double_counted() {
    let dir = tmpdir("flaky-accounting");
    let manifest = dir.join("manifest.json");
    let tries = Arc::new(AtomicUsize::new(0));
    let mut registry = Registry::new();
    let tries_in = tries.clone();
    registry.register(FnExperiment::new("once", &["default"], move |_| {
        if tries_in.fetch_add(1, Ordering::Relaxed) == 0 {
            panic!("first attempt dies");
        }
        TrialOutput::new("second attempt fine".into(), vec![("v", 1.0)])
    }));
    let mut spec = SweepSpec::quick();
    spec.experiments = vec!["once".into()];
    spec.seeds = 1;
    let report = run_sweep(
        &spec,
        &registry,
        &SweepOptions {
            jobs: 2,
            retries: 2,
            manifest: Some(manifest.clone()),
            ..SweepOptions::default()
        },
    )
    .expect("sweep");

    // Pool counters: one panicking attempt, one retry, nothing more.
    assert_eq!(report.stats.panicked, 1, "one attempt panicked");
    assert_eq!(report.stats.retried, 1, "one retry, not one per counter");
    assert_eq!(report.stats.executed, 1);
    assert!(report.poisoned.is_empty(), "the trial ultimately succeeded");
    assert_eq!(report.results.len(), 1);
    assert_eq!(report.results[0].attempts, 2, "1 panic + 1 success");

    // Metrics export mirrors the counters rather than re-deriving them.
    let metrics = report.metrics_registry();
    assert_eq!(metrics.counter("sweep.pool.retried"), 1);
    assert_eq!(metrics.counter("sweep.pool.panicked"), 1);
    assert_eq!(metrics.counter("sweep.trials_poisoned"), 0);
    assert_eq!(metrics.counter("sweep.trials_total"), 1);

    // Manifest: exactly one completed record (the incremental
    // checkpoint and the final write must not both append it), carrying
    // the final attempt count, and no poisoned carcass.
    let m = Manifest::load(&manifest).expect("manifest");
    assert_eq!(m.completed.len(), 1, "one record for one trial");
    assert_eq!(m.completed[0].attempts, 2);
    assert!(m.poisoned.is_empty());

    // The trial span reports the full attempt chain once.
    assert_eq!(report.spans.len(), 1);
    assert_eq!(report.spans[0].args, vec![("attempts".to_string(), 2)]);

    // Per-worker throughput covers the one executed trial.
    let loads = report.worker_loads();
    assert_eq!(loads.iter().map(|l| l.trials).sum::<u64>(), 1);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn flaky_trial_recovers_within_the_retry_budget() {
    let tries = Arc::new(AtomicUsize::new(0));
    let mut registry = Registry::new();
    let tries_in = tries.clone();
    registry.register(FnExperiment::new("flaky", &["default"], move |_| {
        if tries_in.fetch_add(1, Ordering::Relaxed) < 2 {
            panic!("transient fault");
        }
        TrialOutput::new("recovered".into(), vec![])
    }));
    let mut spec = SweepSpec::quick();
    spec.experiments = vec!["flaky".into()];
    spec.seeds = 1;
    let report = run_sweep(
        &spec,
        &registry,
        &SweepOptions {
            jobs: 1,
            retries: 3,
            manifest: None,
            ..SweepOptions::default()
        },
    )
    .expect("sweep");
    assert!(report.poisoned.is_empty());
    assert_eq!(report.results[0].attempts, 3);
    assert_eq!(report.results[0].output.rendered, "recovered");
}
