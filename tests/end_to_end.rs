//! End-to-end integration: the full attack stack against the full
//! defense stack.

use unxpec::attack::{AttackConfig, SpectreV1, UnxpecChannel};
use unxpec::cpu::UnsafeBaseline;
use unxpec::defense::{CleanupSpec, ConstantTimeRollback, FuzzyCleanup, InvisiSpec};

#[test]
fn unxpec_breaks_cleanupspec_and_nothing_else_headline() {
    // The paper's core claim, in one test: the rollback-timing channel
    // exists exactly against the Undo defense.
    let diff = |d: Box<dyn unxpec::cpu::Defense>| {
        let mut chan = UnxpecChannel::new(AttackConfig::paper_no_es(), d);
        chan.calibrate(25).mean_difference()
    };
    assert!(diff(Box::new(CleanupSpec::new())) > 15.0);
    assert!(diff(Box::new(UnsafeBaseline)).abs() < 5.0);
    assert!(diff(Box::new(InvisiSpec::new())).abs() < 5.0);
    assert!(diff(Box::new(ConstantTimeRollback::new(65))).abs() < 3.0);
}

#[test]
fn spectre_and_unxpec_are_complementary() {
    // Spectre reads cache *contents*; unXpec reads rollback *time*.
    // CleanupSpec stops the former and falls to the latter.
    let mut spectre = SpectreV1::new(Box::new(CleanupSpec::new()));
    assert_ne!(spectre.leak_byte(0x77).guess, Some(0x77));

    let mut unxpec = UnxpecChannel::new(AttackConfig::paper_no_es(), Box::new(CleanupSpec::new()));
    unxpec.calibrate(25);
    let secrets = UnxpecChannel::random_secret(48, 3);
    assert_eq!(
        unxpec.leak(&secrets).accuracy(),
        1.0,
        "noiseless channel is perfect"
    );
}

#[test]
fn leak_recovers_a_multi_byte_message() {
    let mut chan = UnxpecChannel::new(AttackConfig::paper_with_es(), Box::new(CleanupSpec::new()));
    chan.calibrate(25);
    let message = b"HPCA22";
    let bits: Vec<bool> = message
        .iter()
        .flat_map(|b| (0..8).rev().map(move |i| (b >> i) & 1 == 1))
        .collect();
    let out = chan.leak(&bits);
    let decoded: Vec<u8> = out
        .guesses
        .chunks(8)
        .map(|c| c.iter().fold(0u8, |acc, &b| (acc << 1) | b as u8))
        .collect();
    assert_eq!(decoded, message);
}

#[test]
fn fuzzy_cleanup_degrades_but_does_not_stop_the_channel() {
    let mut chan = UnxpecChannel::new(
        AttackConfig::paper_no_es(),
        Box::new(FuzzyCleanup::new(30, 5)),
    );
    let cal = chan.calibrate(60);
    // The mean difference survives averaging over calibration samples...
    assert!(cal.mean_difference() > 10.0);
    // ...but single rounds are noisy: the two sample sets overlap.
    let max0 = *cal.samples0.iter().max().unwrap();
    let min1 = *cal.samples1.iter().min().unwrap();
    assert!(max0 > min1, "dummy delays must overlap the distributions");
}

#[test]
fn channel_works_across_fn_complexities() {
    for fn_accesses in [1usize, 2, 3] {
        let cfg = AttackConfig::paper_no_es().with_fn_accesses(fn_accesses);
        let mut chan = UnxpecChannel::new(cfg, Box::new(CleanupSpec::new()));
        let d = chan.calibrate(10).mean_difference();
        assert!(
            (12.0..=32.0).contains(&d),
            "f({fn_accesses}): difference {d} out of band"
        );
    }
}

#[test]
fn repeated_rounds_are_stable() {
    // The rollback restores cache state, so the channel neither decays
    // nor drifts over thousands of rounds.
    let mut chan = UnxpecChannel::new(AttackConfig::paper_no_es(), Box::new(CleanupSpec::new()));
    chan.calibrate(10);
    let early: Vec<u64> = (0..20).map(|_| chan.measure_bit(true)).collect();
    for _ in 0..500 {
        chan.measure_bit(true);
        chan.measure_bit(false);
    }
    let late: Vec<u64> = (0..20).map(|_| chan.measure_bit(true)).collect();
    let mean = |v: &[u64]| v.iter().sum::<u64>() as f64 / v.len() as f64;
    assert!(
        (mean(&early) - mean(&late)).abs() < 3.0,
        "channel drifted: {} -> {}",
        mean(&early),
        mean(&late)
    );
}
