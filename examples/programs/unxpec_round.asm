; One simplified unXpec measurement round against CleanupSpec,
; hand-written in the micro-ISA. Addresses follow the AttackLayout
; defaults (P at 0x100000, A at 0x104040, secret at 0x104800,
; chain node 0 at 0x104880); the secret word must be set by the
; driver (or rely on the zero default = secret 0).
;
; Run with:
;   simulate --asm examples/programs/unxpec_round.asm 2000 0 Cleanup_FOR_L1L2 --trace 40
;
; The printed trace shows the whole anatomy: the mistraining loop, the
; preparation flushes, the slow bound load, the wrong-path (WP) body,
; and the timestamps bracketing the squash.

  mov r10, 0x104040       ; A base
  mov r11, 0x100000       ; P base
  mov r13, 0x104880       ; chain node (holds the bound, 16)
  mov r8, 0               ; training counter
  mov r9, 0               ; phase: 0 = train, 1 = attack
  mov r1, 0               ; in-bounds index

sender:
  add r2, r13, 0
  load r2, [r2+0]         ; bound (flushed in the attack pass)
  bGe r1, r2 -> after_body
  ; transient body: secret = A[index]; load P[secret * 64]
  shl r3, r1, 3
  add r12, r3, r10
  load r4, [r12+0]        ; A[index] -> the secret on the attack pass
  shl r5, r4, 6
  add r6, r5, r11
  load r7, [r6+0]         ; P[secret * 64]
after_body:
  bEq r9, 1 -> done
  nop                     ; keep the phase-check wrong path away from
  nop                     ; the flushed chain (see sender.rs)
  nop
  nop
  nop
  nop
  nop
  nop
  add r8, r8, 1
  bLt r8, 8 -> sender     ; eight POISON iterations

  ; preparation: warm P[0], flush P[64] and the bound, fence
  load r7, [r11+0]
  clflush [r11+64]
  clflush [r13+0]
  mfence
  rdtscp r20
  mov r1, 248             ; out-of-bounds index: (secret - A) / 8
  mov r9, 1
  jmp sender

done:
  rdtscp r21
  halt
