; Flush+Reload timing demo: a warm load vs a flushed load.
; Run with:  simulate --asm examples/programs/flush_reload.asm 100 0 UnsafeBaseline --trace 12
  mov r1, 0x2000
  load r2, [r1+0]      ; warm the line (cold miss)
  rdtscp r10
  load r3, [r1+0]      ; hit: a few cycles
  rdtscp r11
  clflush [r1+0]
  mfence
  rdtscp r12
  load r4, [r1+0]      ; flushed: memory round trip
  rdtscp r13
  halt
