//! The full covert-channel scenario of the paper's §VI under realistic
//! noise: calibrate both unXpec variants, leak a 1,000-bit random
//! secret, and compare accuracies and rates — the Fig. 7/8/10/11 story
//! in one run.
//!
//! ```text
//! cargo run --release --example covert_channel
//! ```

use unxpec::attack::{AttackConfig, MeasurementNoise, UnxpecChannel};
use unxpec::cache::NoiseModel;
use unxpec::defense::CleanupSpec;
use unxpec::stats::Summary;

fn run_variant(use_eviction_sets: bool, secrets: &[bool]) {
    let label = if use_eviction_sets {
        "with eviction sets"
    } else {
        "without eviction sets"
    };
    let cfg = AttackConfig::paper_no_es().with_eviction_sets(use_eviction_sets);
    let mut chan = UnxpecChannel::new(cfg, Box::new(CleanupSpec::new()))
        .with_measurement_noise(MeasurementNoise::calibrated(7));
    chan.core_mut()
        .hierarchy_mut()
        .set_noise(NoiseModel::default_sim(3));

    let cal = chan.calibrate(500);
    let s0 = Summary::of_cycles(&cal.samples0);
    let s1 = Summary::of_cycles(&cal.samples1);
    println!("unXpec {label}:");
    println!(
        "  secret 0 latency: {:.1} ± {:.1} cycles; secret 1: {:.1} ± {:.1}",
        s0.mean, s0.std_dev, s1.mean, s1.std_dev
    );
    println!(
        "  timing difference {:.1} cycles, threshold {}",
        cal.mean_difference(),
        cal.threshold
    );

    let out = chan.leak(secrets);
    println!(
        "  leaked {} bits: accuracy {:.1}%, raw rate {:.0} Kbps at 2 GHz",
        secrets.len(),
        out.accuracy() * 100.0,
        out.bandwidth_bps(2e9) / 1e3
    );
    let c = out.confusion;
    println!(
        "  errors: {} zeros read as one, {} ones read as zero\n",
        c.false_one, c.false_zero
    );
}

fn main() {
    let secrets = UnxpecChannel::random_secret(1000, 0xfeed);
    println!(
        "leaking a 1000-bit random secret ({} ones) against CleanupSpec\n",
        secrets.iter().filter(|&&b| b).count()
    );
    run_variant(false, &secrets);
    run_variant(true, &secrets);
}
