//! Why unXpec matters: classic Spectre v1 versus the defense landscape.
//!
//! Leaks a secret byte with the textbook cache-contents channel
//! (Algorithm 1 of the paper) against every defense, then runs unXpec's
//! rollback-timing channel against the same defenses. CleanupSpec stops
//! Spectre cold — and falls to unXpec.
//!
//! ```text
//! cargo run --release --example spectre_vs_defenses
//! ```

use unxpec::attack::{AttackConfig, SpectreV1, UnxpecChannel};
use unxpec::cpu::{Defense, UnsafeBaseline};
use unxpec::defense::{CleanupSpec, ConstantTimeRollback, InvisiSpec};

fn defenses() -> Vec<(&'static str, Box<dyn Defense>)> {
    vec![
        ("unsafe baseline", Box::new(UnsafeBaseline)),
        ("CleanupSpec (Undo)", Box::new(CleanupSpec::new())),
        ("InvisiSpec (Invisible)", Box::new(InvisiSpec::new())),
        (
            "constant-time rollback (65)",
            Box::new(ConstantTimeRollback::new(65)),
        ),
    ]
}

fn main() {
    let secret_byte = 0x5a_u8;
    println!("=== Spectre v1: leak byte {secret_byte:#04x} via cache contents ===");
    for (name, defense) in defenses() {
        let mut attacker = SpectreV1::new(defense);
        let out = attacker.leak_byte(secret_byte);
        let verdict = match out.guess {
            Some(g) if g == secret_byte => format!("LEAKED {g:#04x}"),
            Some(g) => format!("wrong guess {g:#04x} (defense held)"),
            None => "no probe line hit (defense held)".to_string(),
        };
        println!("  {name:<28} -> {verdict} ({} probe hits)", out.hits);
    }

    println!("\n=== unXpec: leak a bit via rollback timing ===");
    for (name, defense) in defenses() {
        let mut chan = UnxpecChannel::new(AttackConfig::paper_no_es(), defense);
        let cal = chan.calibrate(60);
        let diff = cal.mean_difference();
        let verdict = if diff.abs() > 10.0 {
            format!("CHANNEL EXISTS ({diff:+.1} cycles)")
        } else {
            format!("no channel ({diff:+.1} cycles)")
        };
        println!("  {name:<28} -> {verdict}");
    }

    println!("\nTakeaway: the Undo defense erases Spectre's footprint but its");
    println!("rollback *time* betrays the secret — and equalizing that time");
    println!("(constant-time rollback) costs 22-73% performance (see fig12).");
}
