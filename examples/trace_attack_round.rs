//! Inspect one unXpec attack round at instruction granularity.
//!
//! Enables the core's execution trace, runs one secret-1 round against
//! CleanupSpec, and prints the speculation window: the flushed-chain
//! load resolving the branch, the wrong-path (transient) loads, the
//! squash, and the post-cleanup timestamp.
//!
//! ```text
//! cargo run --release --example trace_attack_round
//! ```

use unxpec::attack::{build_round_program, AttackConfig, AttackLayout, RoundRegs};
use unxpec::cpu::Core;
use unxpec::defense::CleanupSpec;

fn main() {
    let cfg = AttackConfig::paper_no_es();
    let mut core = Core::table_i();
    core.set_defense(Box::new(CleanupSpec::new()));
    core.set_tracing(true);
    let layout = AttackLayout::new(64);
    layout.install(core.mem_mut(), cfg.fn_accesses as u64);
    layout.set_secret(core.mem_mut(), true);
    // The victim touches its secret (keeps the line warm).
    {
        use unxpec::cpu::{ProgramBuilder, Reg};
        let mut b = ProgramBuilder::new();
        b.mov(Reg(1), layout.secret_addr().raw());
        b.load(Reg(2), Reg(1), 0);
        b.halt();
        core.run(&b.build());
    }

    let program = build_round_program(&cfg, &layout);
    let result = core.run(&program);
    let regs = RoundRegs::default();
    let t1 = result.reg(regs.t1);
    let t2 = result.reg(regs.t2);
    println!("observed latency: {} cycles (secret = 1)\n", t2 - t1);

    let trace = result.trace.expect("tracing enabled");
    println!(
        "{} instructions executed, {} on wrong paths, {} memory ops\n",
        trace.len(),
        trace.wrong_path_events().count(),
        trace.memory_events().count()
    );

    // Show the measurement window: everything dispatched at or after t1.
    println!("measurement window (dispatch >= t1 = {t1}):");
    let window = unxpec::cpu::ExecTrace {
        events: trace
            .events
            .iter()
            .copied()
            .filter(|e| e.dispatch_cycle >= t1)
            .collect(),
    };
    print!("{window}");

    for squash in &result.stats.squashes {
        if squash.resolution_time() > 50 {
            println!(
                "\nsender squash: branch @{} resolved after {} cycles, cleanup stalled {} cycles \
                 ({} transient L1 install(s), {} restoration(s))",
                squash.branch_pc,
                squash.resolution_time(),
                squash.cleanup_cycles(),
                squash.l1_installs,
                squash.l1_evictions
            );
        }
    }
}
