//! Eviction-set construction, two ways.
//!
//! §V-B of the paper primes eviction sets to force restorations. For
//! the conventionally indexed L1 the attacker computes congruent
//! addresses arithmetically; for an unknown or randomized mapping it
//! must *search* by timing (Vila et al., S&P 2019). This example does
//! both and cross-checks them.
//!
//! ```text
//! cargo run --release --example eviction_set_search
//! ```

use unxpec::attack::{congruent_addresses, find_eviction_set, probe_latency};
use unxpec::cache::{HierarchyConfig, ReplacementKind};
use unxpec::cpu::{Core, CoreConfig};
use unxpec::mem::Addr;

fn main() {
    let target = Addr::new(0x71_0000);
    let target_set = target.line().raw() % 64;
    println!("target address {target} lives in L1 set {target_set}\n");

    // 1. Arithmetic construction: the L1 index is line mod 64, so the
    // attacker computes congruent addresses directly.
    let arithmetic = congruent_addresses(Addr::new(0x80_0000), 4096, 64, target, 8);
    println!("arithmetic construction (8 congruent addresses):");
    for a in &arithmetic {
        println!("  {a}  (set {})", a.line().raw() % 64);
    }

    // 2. Blind timing search against an LRU L1 (deterministic
    // replacement gives the search crisp minimal-set semantics): bury
    // 12 congruent lines among 24 decoys and reduce.
    let mut hier_cfg = HierarchyConfig::table_i();
    hier_cfg.l1d.replacement = ReplacementKind::Lru;
    let mut core = Core::new(CoreConfig::table_i(), hier_cfg);
    let mut pool = congruent_addresses(Addr::new(0x80_0000), 4096, 64, target, 12);
    pool.extend(congruent_addresses(
        Addr::new(0x80_0000),
        4096,
        64,
        target.offset(128),
        24,
    ));
    println!(
        "\nblind timing search over a {}-address pool...",
        pool.len()
    );
    match find_eviction_set(&mut core, target, &pool, 8) {
        Some(found) => {
            let congruent = found
                .iter()
                .filter(|a| a.line().raw() % 64 == target_set)
                .count();
            println!(
                "  reduced to {} addresses, {congruent} congruent with the target",
                found.len()
            );
            // Demonstrate the found set actually evicts: warm the
            // target, traverse the set, time a reload.
            probe_latency(&mut core, target); // warm
            for a in &found {
                probe_latency(&mut core, *a);
            }
            let reload = probe_latency(&mut core, target);
            println!("  reload after traversal: {reload} cycles (L1 hit would be ~6)");
        }
        None => println!("  pool did not evict the target"),
    }
}
