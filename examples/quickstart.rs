//! Quickstart: build the unXpec covert channel against CleanupSpec,
//! calibrate it, and leak a message.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use unxpec::attack::{AttackConfig, UnxpecChannel};
use unxpec::defense::CleanupSpec;

fn main() {
    // A Table-I machine (2 GHz OoO core, 32 KB L1s, 2 MB L2) protected
    // by CleanupSpec, the representative Undo defense.
    let mut channel = UnxpecChannel::new(AttackConfig::paper_no_es(), Box::new(CleanupSpec::new()));

    // Calibration: measure the secret-dependent rollback-timing
    // difference and fix the decoding threshold.
    let cal = channel.calibrate(100);
    println!(
        "secret-dependent timing difference: {:.1} cycles (paper: ~22)",
        cal.mean_difference()
    );
    println!("decision threshold: {} cycles", cal.threshold);

    // Encode a message as bits and leak it through the rollback-timing
    // channel, one transient-load round per bit.
    let message = b"unXpec!";
    let secrets: Vec<bool> = message
        .iter()
        .flat_map(|byte| (0..8).rev().map(move |i| (byte >> i) & 1 == 1))
        .collect();
    let outcome = channel.leak(&secrets);

    let decoded: Vec<u8> = outcome
        .guesses
        .chunks(8)
        .map(|bits| bits.iter().fold(0u8, |acc, &b| (acc << 1) | b as u8))
        .collect();
    println!(
        "leaked {} bits with {:.1}% accuracy at {:.0} Kbps (2 GHz clock)",
        secrets.len(),
        outcome.accuracy() * 100.0,
        outcome.bandwidth_bps(2e9) / 1e3
    );
    println!("decoded message: {:?}", String::from_utf8_lossy(&decoded));
}
