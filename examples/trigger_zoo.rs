//! Every way to make CleanupSpec roll back — and leak.
//!
//! Runs the unXpec receiver through all three Spectre trigger families
//! (conditional branch, poisoned BTB, desynchronized return stack) and
//! the speculative-interference receiver against the Invisible
//! defenses, printing the full channel landscape.
//!
//! ```text
//! cargo run --release --example trigger_zoo
//! ```

use unxpec::attack::{AttackConfig, InterferenceChannel, SpectreRsb, SpectreV2, UnxpecChannel};
use unxpec::cpu::UnsafeBaseline;
use unxpec::defense::{CleanupSpec, DelayOnMiss, InvisiSpec};

fn main() {
    println!("=== rollback-timing (unXpec) channel, per trigger ===");
    let v1 = |d: Box<dyn unxpec::cpu::Defense>| {
        let mut chan = UnxpecChannel::new(AttackConfig::paper_no_es(), d);
        chan.calibrate(40).mean_difference()
    };
    println!(
        "  v1 trigger  vs CleanupSpec: {:+.1} cycles | vs baseline: {:+.1}",
        v1(Box::new(CleanupSpec::new())),
        v1(Box::new(UnsafeBaseline))
    );
    println!(
        "  v2 trigger  vs CleanupSpec: {:+.1} cycles | vs baseline: {:+.1}",
        SpectreV2::new(Box::new(CleanupSpec::new())).timing_difference(40),
        SpectreV2::new(Box::new(UnsafeBaseline)).timing_difference(40)
    );
    println!(
        "  RSB trigger vs CleanupSpec: {:+.1} cycles | vs baseline: {:+.1}",
        SpectreRsb::new(Box::new(CleanupSpec::new())).timing_difference(40),
        SpectreRsb::new(Box::new(UnsafeBaseline)).timing_difference(40)
    );

    println!("\n=== contention (speculative interference) channel ===");
    println!(
        "  vs InvisiSpec:          {:+.1} cycles (the attack that killed Invisible defenses)",
        InterferenceChannel::new(Box::new(InvisiSpec::new()), 6).timing_difference(40)
    );
    println!(
        "  vs naive delay-on-miss: {:+.1} cycles (unissued loads cannot contend)",
        InterferenceChannel::new(Box::new(DelayOnMiss::naive()), 6).timing_difference(40)
    );

    println!("\nEvery class of safe speculation has had its channel:");
    println!("  Invisible -> interference (Behnia et al.), Undo -> rollback timing (unXpec).");
}
