//! The countermeasure's price (the paper's §VI-E / Fig. 12): run the
//! SPEC-2017-like suite under constant-time rollback at the paper's
//! constants and print per-workload slowdowns.
//!
//! ```text
//! cargo run --release --example constant_time_overhead
//! ```

use unxpec::experiments::overhead;

fn main() {
    println!("running 12 workloads x 7 schemes (this takes a minute)...\n");
    let e = overhead::run(30_000, 90_000);
    println!("{e}");
    println!(
        "average slowdown: no-const {:+.1}%, const=25 {:+.1}%, const=65 {:+.1}%",
        e.average_overhead(1) * 100.0,
        e.average_overhead(2) * 100.0,
        e.average_overhead(6) * 100.0
    );
    println!("(paper: ~5%, 22.4% and 72.8% respectively)");
}
