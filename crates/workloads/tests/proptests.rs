//! Property tests for the workload generators.

use proptest::prelude::*;
use unxpec_cpu::Core;
use unxpec_workloads::{KernelSpec, Workload};

fn spec_strategy() -> impl Strategy<Value = KernelSpec> {
    (
        prop_oneof![Just(128u64), Just(512), Just(2048)],
        0u64..16,
        any::<bool>(),
        0usize..6,
        1usize..3,
        any::<bool>(),
        0usize..6,
        prop_oneof![Just(0u64), Just(7), Just(15)],
        any::<u64>(),
    )
        .prop_map(
            |(ws, mask, chase, alus, loads, stores, tail, cold, seed)| KernelSpec {
                name: "prop",
                working_set_lines: ws,
                branch_mask: mask,
                pointer_chase: chase,
                extra_alus: alus,
                loads_per_iter: loads,
                stores,
                tail_alus: tail,
                cold_mask: cold,
                seed,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_generated_kernel_runs_and_makes_progress(spec in spec_strategy()) {
        let w = Workload::new(spec);
        let mut core = Core::table_i();
        w.install(&mut core);
        let r = core.run_for(w.program(), 3_000);
        prop_assert!(r.hit_limit, "kernels are infinite loops");
        prop_assert!(r.stats.committed_insts >= 3_000);
        prop_assert!(r.stats.ipc() > 0.0);
        prop_assert!(r.stats.ipc() <= 4.0, "bounded by dispatch width");
    }

    #[test]
    fn kernel_measurement_is_deterministic(spec in spec_strategy()) {
        let w = Workload::new(spec);
        let measure = || {
            let mut core = Core::table_i();
            w.measure(&mut core, 1_000, 3_000)
        };
        prop_assert_eq!(measure(), measure());
    }
}
