//! Suite runner: per-workload cycles under a set of defense schemes.

use unxpec_cpu::{Core, Cycle, Defense, ExecMode};

use crate::kernels::Workload;

/// A factory producing a fresh defense instance per run.
pub type DefenseFactory<'a> = &'a dyn Fn() -> Box<dyn Defense>;

/// One workload's cycle counts across all schemes.
#[derive(Debug, Clone)]
pub struct OverheadRow {
    /// Workload name.
    pub workload: String,
    /// `(scheme name, measured-window cycles)` in scheme order; index 0
    /// is the baseline.
    pub cycles: Vec<(String, Cycle)>,
}

impl OverheadRow {
    /// Overhead of scheme `idx` relative to scheme 0, as a fraction
    /// (0.25 = 25% slowdown).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn overhead(&self, idx: usize) -> f64 {
        let base = self.cycles[0].1 as f64;
        self.cycles[idx].1 as f64 / base - 1.0
    }
}

/// Runs every workload under every scheme; `schemes[0]` is the
/// baseline the others are normalized against (the paper uses the
/// unsafe machine).
///
/// Each `(workload, scheme)` pair gets a fresh Table-I machine, a table
/// install, `warmup` committed instructions of warmup and `measure`
/// committed instructions of measurement — the paper's `maxinst` /
/// `startinst` methodology.
pub fn measure_overheads(
    suite: &[Workload],
    schemes: &[(&str, DefenseFactory<'_>)],
    warmup: u64,
    measure: u64,
) -> Vec<OverheadRow> {
    measure_overheads_with_mode(suite, schemes, warmup, measure, ExecMode::Detailed)
}

/// [`measure_overheads`] with an explicit execution mode: the two-speed
/// fast-forward core covers committed straight-line stretches at
/// interpreter speed while speculative episodes stay cycle-accurate.
pub fn measure_overheads_with_mode(
    suite: &[Workload],
    schemes: &[(&str, DefenseFactory<'_>)],
    warmup: u64,
    measure: u64,
    mode: ExecMode,
) -> Vec<OverheadRow> {
    suite
        .iter()
        .map(|w| {
            let cycles = schemes
                .iter()
                .map(|(name, factory)| {
                    let mut core = Core::table_i();
                    core.set_defense(factory());
                    core.set_mode(mode);
                    (name.to_string(), w.measure(&mut core, warmup, measure))
                })
                .collect();
            OverheadRow {
                workload: w.name().to_string(),
                cycles,
            }
        })
        .collect()
}

/// Arithmetic-mean overhead of scheme `idx` across `rows` (what the
/// paper's "average slowdown" quotes).
///
/// # Panics
///
/// Panics if `rows` is empty.
pub fn arith_mean_overhead(rows: &[OverheadRow], idx: usize) -> f64 {
    assert!(!rows.is_empty(), "no rows to aggregate");
    rows.iter().map(|r| r.overhead(idx)).sum::<f64>() / rows.len() as f64
}

/// Geometric-mean overhead of scheme `idx` across `rows` (SPEC-style
/// aggregation).
///
/// # Panics
///
/// Panics if `rows` is empty.
pub fn mean_overhead(rows: &[OverheadRow], idx: usize) -> f64 {
    assert!(!rows.is_empty(), "no rows to aggregate");
    let log_sum: f64 = rows
        .iter()
        .map(|r| (1.0 + r.overhead(idx)).ln())
        .sum::<f64>();
    (log_sum / rows.len() as f64).exp() - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{KernelSpec, Workload};
    use unxpec_cpu::UnsafeBaseline;
    use unxpec_defense::{CleanupSpec, ConstantTimeRollback};

    fn mini_suite() -> Vec<Workload> {
        vec![Workload::new(KernelSpec {
            name: "branchy",
            working_set_lines: 256,
            branch_mask: 1,
            pointer_chase: false,
            extra_alus: 2,
            loads_per_iter: 1,
            stores: false,
            tail_alus: 3,
            cold_mask: 0,
            seed: 11,
        })]
    }

    #[test]
    fn constant_time_overhead_grows_with_the_constant() {
        let suite = mini_suite();
        let unsafe_f: DefenseFactory<'_> = &|| Box::new(UnsafeBaseline);
        let c25: DefenseFactory<'_> = &|| Box::new(ConstantTimeRollback::new(25));
        let c65: DefenseFactory<'_> = &|| Box::new(ConstantTimeRollback::new(65));
        let rows = measure_overheads(
            &suite,
            &[("unsafe", unsafe_f), ("const25", c25), ("const65", c65)],
            20_000,
            40_000,
        );
        let o25 = rows[0].overhead(1);
        let o65 = rows[0].overhead(2);
        assert!(
            o25 > 0.03,
            "25-cycle constant must cost something, got {o25}"
        );
        assert!(
            o65 > o25 * 1.5,
            "65 cycles must cost much more ({o25} vs {o65})"
        );
    }

    #[test]
    fn cleanupspec_is_cheap_without_constant() {
        let suite = mini_suite();
        let unsafe_f: DefenseFactory<'_> = &|| Box::new(UnsafeBaseline);
        let cs: DefenseFactory<'_> = &|| Box::new(CleanupSpec::new());
        let rows = measure_overheads(
            &suite,
            &[("unsafe", unsafe_f), ("cleanupspec", cs)],
            20_000,
            40_000,
        );
        let o = rows[0].overhead(1);
        assert!(
            (-0.02..0.20).contains(&o),
            "CleanupSpec alone should cost little (paper: ~5%), got {o}"
        );
    }

    #[test]
    fn mean_overhead_aggregates() {
        let rows = vec![
            OverheadRow {
                workload: "a".into(),
                cycles: vec![("base".into(), 100), ("x".into(), 121)],
            },
            OverheadRow {
                workload: "b".into(),
                cycles: vec![("base".into(), 100), ("x".into(), 100)],
            },
        ];
        let m = mean_overhead(&rows, 1);
        assert!(
            (m - 0.1).abs() < 0.01,
            "geomean of 21% and 0% ~ 10%, got {m}"
        );
    }
}
