//! Synthetic SPEC-CPU-2017-like workloads.
//!
//! The paper's Fig. 12 measures the overhead of constant-time rollback
//! on the (license-protected) SPEC CPU 2017 suite. These kernels stand
//! in for it: each is a small micro-ISA loop with a calibrated branch-
//! misprediction profile and cache footprint, named after the SPEC rate
//! benchmark whose behaviour it caricatures. What Fig. 12 actually
//! measures — how often the core squashes, and therefore how much a
//! per-squash constant stall costs — is reproduced by construction; see
//! DESIGN.md for the substitution rationale.
//!
//! # Examples
//!
//! ```
//! use unxpec_workloads::{spec2017_like_suite, Workload};
//! use unxpec_cpu::{Core, UnsafeBaseline};
//!
//! let suite = spec2017_like_suite();
//! assert!(suite.len() >= 10);
//! let mut core = Core::table_i();
//! let w = &suite[0];
//! let cycles = w.measure(&mut core, 2_000, 10_000);
//! assert!(cycles > 0);
//! ```

mod kernels;
mod runner;

pub use kernels::{fast_forward_friendly_suite, spec2017_like_suite, KernelSpec, Workload};
pub use runner::{
    arith_mean_overhead, mean_overhead, measure_overheads, measure_overheads_with_mode,
    DefenseFactory, OverheadRow,
};
