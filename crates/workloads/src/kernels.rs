//! Kernel generators.

use rand::rngs::SmallRng;
use rand::{seq::SliceRandom, Rng, SeedableRng};
use unxpec_cpu::{Cond, Core, Cycle, Program, ProgramBuilder, Reg};
use unxpec_mem::Addr;

/// Table base in the simulated address space (clear of the attack
/// layout).
const TABLE_BASE: u64 = 0x4000_0000;

const R_I: Reg = Reg(1);
const R_TBL: Reg = Reg(2);
const R_LCG: Reg = Reg(3);
const R_IDX: Reg = Reg(4);
const R_ADDR: Reg = Reg(5);
const R_V: Reg = Reg(6);
const R_B: Reg = Reg(7);
const R_W: Reg = Reg(8);
const R_CNT: Reg = Reg(9);
const R_V2: Reg = Reg(10);

/// Shape parameters of one synthetic kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelSpec {
    /// Display name (the SPEC 2017 benchmark it caricatures).
    pub name: &'static str,
    /// Data-table footprint in cache lines (8 words per line). 512
    /// lines fit in L1; 32 K lines (2 MB) thrash the L2.
    pub working_set_lines: u64,
    /// The in-loop data-dependent branch is taken when
    /// `value & branch_mask == 0`; mask 0 makes it always-taken
    /// (predictable), mask 1 a 50/50 coin (maximally mispredicted).
    pub branch_mask: u64,
    /// Serialize loads through a pointer chain (mcf-style) instead of
    /// LCG indexing.
    pub pointer_chase: bool,
    /// Extra ALU work inside the branch body.
    pub extra_alus: usize,
    /// Independent loads per iteration.
    pub loads_per_iter: usize,
    /// Whether the body stores back to the table.
    pub stores: bool,
    /// Serial multiply chain executed every iteration (controls the
    /// squash *frequency* independently of the branch profile).
    pub tail_alus: usize,
    /// Hot/cold access mix: when nonzero, only one in `cold_mask + 1`
    /// accesses touches the full working set; the rest stay in a hot
    /// 128-line region, giving SPEC-like L1 miss rates of a few percent
    /// instead of the ~90% a uniformly random stream would have.
    pub cold_mask: u64,
    /// Table-content seed.
    pub seed: u64,
}

impl KernelSpec {
    /// Table size in 8-byte elements.
    pub fn elements(&self) -> u64 {
        self.working_set_lines * 8
    }
}

/// A generated workload: spec + assembled program.
/// # Examples
///
/// ```
/// use unxpec_workloads::spec2017_like_suite;
/// use unxpec_cpu::Core;
///
/// let suite = spec2017_like_suite();
/// let mcf = suite.iter().find(|w| w.name() == "mcf_r").unwrap();
/// let mut core = Core::table_i();
/// mcf.install(&mut core);
/// let r = core.run_for(mcf.program(), 2_000);
/// assert!(r.stats.ipc() < 0.5, "pointer chasing is memory bound");
/// ```
#[derive(Debug, Clone)]
pub struct Workload {
    spec: KernelSpec,
    program: Program,
}

impl Workload {
    /// Builds the workload program from its spec.
    ///
    /// # Panics
    ///
    /// Panics if the working set is not a power of two.
    pub fn new(spec: KernelSpec) -> Self {
        Self::with_unroll(spec, 1)
    }

    /// Like [`Workload::new`] but with the loop body replicated `unroll`
    /// times per backward branch. Large unroll factors produce the long
    /// committed straight-line stretches the two-speed core's
    /// fast-forward interpreter feeds on; `unroll = 1` is the classic
    /// branch-per-iteration shape.
    ///
    /// # Panics
    ///
    /// Panics if the working set is not a power of two or `unroll` is 0.
    pub fn with_unroll(spec: KernelSpec, unroll: usize) -> Self {
        assert!(
            spec.elements().is_power_of_two(),
            "working set must be a power of two"
        );
        assert!(unroll > 0, "unroll factor must be at least 1");
        let program = build_program(&spec, unroll);
        Workload { spec, program }
    }

    /// The kernel's display name.
    pub fn name(&self) -> &'static str {
        self.spec.name
    }

    /// The shape parameters.
    pub fn spec(&self) -> &KernelSpec {
        &self.spec
    }

    /// The assembled program (an infinite loop; bound it with
    /// `run_for`).
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Writes the data table into `core`'s memory.
    pub fn install(&self, core: &mut Core) {
        let mut rng = SmallRng::seed_from_u64(self.spec.seed);
        let n = self.spec.elements();
        if self.spec.pointer_chase {
            // A single random cycle covering every element, so the chase
            // visits the whole working set.
            let mut perm: Vec<u64> = (0..n).collect();
            perm[1..].shuffle(&mut rng);
            let mem = core.mem_mut();
            for i in 0..n as usize {
                let from = perm[i];
                let to = perm[(i + 1) % n as usize];
                mem.write_u64(Addr::new(TABLE_BASE + from * 8), to);
            }
        } else {
            let mem = core.mem_mut();
            for w in 0..n {
                mem.write_u64(Addr::new(TABLE_BASE + w * 8), rng.gen());
            }
        }
    }

    /// Installs the table, runs `warmup` committed instructions, then
    /// `measure` more, returning the cycles of the measured window —
    /// the paper's `sim_ticks - startCycles` methodology.
    pub fn measure(&self, core: &mut Core, warmup: u64, measure: u64) -> Cycle {
        self.install(core);
        let r = core.run_with_milestone(self.program(), Some(warmup), warmup + measure);
        let start = r.stats.milestone_cycle.unwrap_or(0);
        r.stats.cycles - start
    }
}

fn build_program(spec: &KernelSpec, unroll: usize) -> Program {
    let mut b = ProgramBuilder::new();
    let index_mask = spec.elements() - 1;
    // Heavily unrolled bodies rotate across independent register lanes,
    // the way a compiler assigns unrolled loop instances their own
    // accumulators: one serial LCG/accumulator chain threaded through
    // every instance would leave the core's dispatch width idle and
    // make the "straight-line compute" suite secretly latency-bound.
    // Classic single-instance bodies (`unroll < 4`, including the whole
    // SPEC-like suite) keep the original single-lane register
    // assignment and produce byte-identical programs. Pointer chases
    // stay single-lane too: the chase is a serial data structure.
    let lanes: usize = if unroll >= 4 && !spec.pointer_chase {
        4
    } else {
        1
    };
    let r_lcg = [R_LCG, Reg(11), Reg(12), Reg(13)];
    let r_idx = [R_IDX, Reg(14), Reg(15), Reg(16)];
    let r_addr = [R_ADDR, Reg(17), Reg(18), Reg(19)];
    let r_v = [R_V, Reg(20), Reg(21), Reg(22)];
    let r_w = [R_W, Reg(23), Reg(24), Reg(25)];
    b.mov(R_I, 0);
    b.mov(R_TBL, TABLE_BASE);
    b.mov(R_LCG, spec.seed | 1);
    b.mov(R_CNT, 0);
    b.mov(R_W, 1);
    for lane in 1..lanes {
        // Distinct odd seeds per lane keep the index streams
        // uncorrelated, like distinct unrolled strides would be.
        b.mov(
            r_lcg[lane],
            spec.seed.wrapping_add(lane as u64 * 0x9e37_79b9_7f4a_7c15) | 1,
        );
        b.mov(r_w[lane], 1);
    }
    b.label("loop");
    for instance in 0..unroll {
        let lane = instance % lanes;
        if spec.pointer_chase {
            // i = tbl[i]; the loaded successor doubles as the branch value.
            b.shl(R_ADDR, R_I, 3u64);
            b.add(R_ADDR, R_ADDR, R_TBL);
            b.load(R_I, R_ADDR, 0);
            b.add(R_V, R_I, 0u64);
        } else {
            // LCG index, then load the (random) table value.
            b.mul(r_lcg[lane], r_lcg[lane], 6364136223846793005u64);
            b.add(r_lcg[lane], r_lcg[lane], 1442695040888963407u64);
            b.shr(r_idx[lane], r_lcg[lane], 33u64);
            let hot_mask = (spec.elements().min(128 * 8)) - 1;
            if spec.cold_mask > 0 && hot_mask < index_mask {
                // Branch-free hot/cold select: cold (full-range) index only
                // when the chosen LCG bits are all zero.
                b.shr(R_B, r_lcg[lane], 40u64);
                b.and(R_B, R_B, spec.cold_mask);
                b.sub(R_B, R_B, 1u64);
                b.shr(R_B, R_B, 63u64); // 1 iff cold
                b.mul(R_B, R_B, index_mask ^ hot_mask);
                b.or(R_B, R_B, hot_mask);
                b.and(r_idx[lane], r_idx[lane], R_B);
            } else {
                b.and(r_idx[lane], r_idx[lane], index_mask);
            }
            b.shl(r_addr[lane], r_idx[lane], 3u64);
            b.add(r_addr[lane], r_addr[lane], R_TBL);
            b.load(r_v[lane], r_addr[lane], 0);
        }
        for extra in 1..spec.loads_per_iter {
            b.load(R_V2, r_addr[lane], (extra * 8 % 64) as i64);
        }
        // Data-dependent branch.
        let skip_label = format!("skip_body_{instance}");
        if spec.branch_mask > 0 {
            b.and(R_B, r_v[lane], spec.branch_mask);
            b.branch(Cond::Ne, R_B, 0u64, &skip_label);
        }
        // The taken/not-taken paths must *diverge*: the body perturbs the
        // future index stream, so a wrong path does not simply prefetch the
        // correct path's next loads (which would make every rollback undo a
        // useful prefetch — real wrong paths rarely do that).
        if spec.pointer_chase {
            // The chase's address stream is the data structure itself, so
            // full spatial divergence is impossible; keep the body ALU-only.
            // A wrong path that runs ahead down the chain acts as a prefetch
            // the Undo rollback destroys — a real cost of Undo schemes on
            // pointer-chasing code, kept rare via the branch profile.
            b.xor(R_W, R_W, R_V);
        } else {
            b.xor(r_lcg[lane], r_lcg[lane], r_v[lane]);
        }
        for _ in 0..spec.extra_alus {
            b.mul(r_w[lane], r_w[lane], 0x9e37u64);
            b.add(r_w[lane], r_w[lane], r_v[lane]);
        }
        if spec.stores {
            b.store(r_w[lane], r_addr[lane], 0);
        }
        if spec.branch_mask > 0 {
            b.label(&skip_label);
        }
        // Per-iteration serial work on the common path (serial within
        // the lane — the chain is the point of `tail_alus`).
        for _ in 0..spec.tail_alus {
            b.mul(r_w[lane], r_w[lane], 0x2545u64);
        }
    }
    // Loop control: a perfectly predictable backward branch.
    b.add(R_CNT, R_CNT, 1u64);
    b.branch(Cond::Ne, R_CNT, 0u64, "loop");
    b.halt(); // unreachable in practice; run_for bounds execution
    b.build()
}

/// The 12-kernel suite standing in for the SPEC CPU 2017 rate
/// benchmarks of Fig. 12.
pub fn spec2017_like_suite() -> Vec<Workload> {
    let specs = [
        // name, ws lines, branch mask, chase, body alus, loads, stores, tail, cold mask
        ("perlbench_r", 512, 1, false, 4, 1, false, 6, 15),
        ("gcc_r", 4096, 1, false, 2, 2, false, 5, 15),
        ("mcf_r", 65536, 7, true, 1, 1, false, 0, 0),
        ("omnetpp_r", 16384, 7, true, 2, 1, false, 3, 0),
        ("xalancbmk_r", 2048, 1, false, 3, 2, false, 6, 15),
        ("x264_r", 8192, 7, false, 2, 2, true, 3, 31),
        ("deepsjeng_r", 1024, 1, false, 3, 1, false, 4, 15),
        ("leela_r", 1024, 3, false, 2, 1, false, 4, 15),
        ("exchange2_r", 256, 7, false, 6, 1, false, 1, 0),
        ("xz_r", 8192, 3, false, 2, 2, true, 2, 15),
        ("lbm_r", 32768, 15, false, 2, 2, true, 2, 7),
        ("namd_r", 512, 7, false, 8, 1, false, 3, 0),
    ];
    specs
        .into_iter()
        .enumerate()
        .map(
            |(i, (name, ws, mask, chase, alus, loads, stores, tail, cold))| {
                Workload::new(KernelSpec {
                    name,
                    working_set_lines: ws,
                    branch_mask: mask,
                    pointer_chase: chase,
                    extra_alus: alus,
                    loads_per_iter: loads,
                    stores,
                    tail_alus: tail,
                    cold_mask: cold,
                    seed: 0xbe9c_0000 + i as u64,
                })
            },
        )
        .collect()
}

/// Fast-forward-friendly kernels: no in-loop data-dependent branch and a
/// heavily unrolled body, so committed straight-line stretches of several
/// hundred instructions separate consecutive (perfectly predictable)
/// loop-control branches. These are the workloads the two-speed core's
/// throughput claim is measured on — the SPEC-like suite above branches
/// every iteration and bounds fast-forward coverage by design.
pub fn fast_forward_friendly_suite() -> Vec<Workload> {
    let specs = [
        // name, ws lines, body alus, loads, stores, tail, cold mask, unroll
        // Working sets stay L1-resident (64x8 = 512 lines in Table I):
        // hierarchy traffic costs both modes the same wall time, so a
        // miss-bound kernel would only dilute the mode comparison.
        ("ff_stream", 512, 6, 1, false, 2, 0, 96),
        ("ff_compute", 256, 10, 1, false, 4, 0, 64),
        ("ff_blocked", 128, 4, 2, true, 2, 15, 80),
    ];
    specs
        .into_iter()
        .enumerate()
        .map(|(i, (name, ws, alus, loads, stores, tail, cold, unroll))| {
            Workload::with_unroll(
                KernelSpec {
                    name,
                    working_set_lines: ws,
                    branch_mask: 0,
                    pointer_chase: false,
                    extra_alus: alus,
                    loads_per_iter: loads,
                    stores,
                    tail_alus: tail,
                    cold_mask: cold,
                    seed: 0xfa57_0000 + i as u64,
                },
                unroll,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use unxpec_cpu::Core;

    fn small_branchy() -> Workload {
        Workload::new(KernelSpec {
            name: "branchy",
            working_set_lines: 128,
            branch_mask: 1,
            pointer_chase: false,
            extra_alus: 2,
            loads_per_iter: 1,
            stores: false,
            tail_alus: 2,
            cold_mask: 0,
            seed: 7,
        })
    }

    #[test]
    fn suite_has_twelve_distinct_kernels() {
        let suite = spec2017_like_suite();
        assert_eq!(suite.len(), 12);
        let mut names: Vec<_> = suite.iter().map(|w| w.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 12);
    }

    #[test]
    fn branchy_kernel_mispredicts_predictable_kernel_does_not() {
        let mut core = Core::table_i();
        let branchy = small_branchy();
        branchy.install(&mut core);
        let r = core.run_for(branchy.program(), 20_000);
        let branchy_rate = r.stats.mispredict_rate();

        let mut core2 = Core::table_i();
        let predictable = Workload::new(KernelSpec {
            branch_mask: 0,
            name: "pred",
            ..*small_branchy().spec()
        });
        predictable.install(&mut core2);
        let r2 = core2.run_for(predictable.program(), 20_000);
        let pred_rate = r2.stats.mispredict_rate();
        assert!(
            branchy_rate > 0.1,
            "coin-flip branch should mispredict often, got {branchy_rate}"
        );
        assert!(
            pred_rate < 0.02,
            "mask-0 kernel should be predictable, got {pred_rate}"
        );
    }

    #[test]
    fn pointer_chase_visits_whole_working_set() {
        let spec = KernelSpec {
            name: "chase",
            working_set_lines: 16,
            branch_mask: 0,
            pointer_chase: true,
            extra_alus: 0,
            loads_per_iter: 1,
            stores: false,
            tail_alus: 0,
            cold_mask: 0,
            seed: 3,
        };
        let w = Workload::new(spec);
        let mut core = Core::table_i();
        w.install(&mut core);
        // Chase the permutation in software: must be a single cycle of
        // length `elements`.
        let n = spec.elements();
        let mut seen = vec![false; n as usize];
        let mut i = 0u64;
        for _ in 0..n {
            assert!(!seen[i as usize], "permutation revisits {i} early");
            seen[i as usize] = true;
            i = core.mem().read_u64(Addr::new(TABLE_BASE + i * 8));
        }
        assert_eq!(i, 0, "chain must close into a cycle");
    }

    #[test]
    fn measure_excludes_warmup() {
        let w = small_branchy();
        let mut core = Core::table_i();
        let measured = w.measure(&mut core, 5_000, 10_000);
        let mut core2 = Core::table_i();
        let total = {
            w.install(&mut core2);
            core2.run_for(w.program(), 15_000).stats.cycles
        };
        assert!(
            measured < total,
            "warmup must be excluded ({measured} vs {total})"
        );
        assert!(measured > 0);
    }

    #[test]
    fn memory_bound_kernel_has_lower_ipc() {
        let suite = spec2017_like_suite();
        let mcf = suite.iter().find(|w| w.name() == "mcf_r").unwrap();
        let namd = suite.iter().find(|w| w.name() == "namd_r").unwrap();
        let ipc = |w: &Workload| {
            let mut core = Core::table_i();
            w.install(&mut core);
            core.run_for(w.program(), 8_000).stats.ipc()
        };
        let (mcf_ipc, namd_ipc) = (ipc(mcf), ipc(namd));
        assert!(
            mcf_ipc < namd_ipc / 2.0,
            "pointer chasing ({mcf_ipc}) must be far slower than compute ({namd_ipc})"
        );
    }
}
