//! Property tests for addressing and the backing store.

#![allow(clippy::disallowed_methods, clippy::disallowed_macros)] // tests are exempt from the no-panic policy

use proptest::prelude::*;
use unxpec_mem::{Addr, LayoutBuilder, LineAddr, Memory, CACHE_LINE_BYTES};

proptest! {
    #[test]
    fn line_base_and_offset_partition_the_address(raw in any::<u64>()) {
        let a = Addr::new(raw);
        prop_assert_eq!(a.line_base().raw() + a.line_offset(), raw);
        prop_assert!(a.line_offset() < CACHE_LINE_BYTES);
        prop_assert_eq!(a.line().base().line(), a.line());
    }

    #[test]
    fn line_roundtrip(line in any::<u64>() ) {
        // Avoid shift overflow at the extreme top of the space.
        let line = line >> 6;
        let l = LineAddr::new(line);
        prop_assert_eq!(l.base().line(), l);
    }

    #[test]
    fn memory_holds_last_write(
        writes in proptest::collection::vec((0u64..1 << 20, any::<u64>()), 1..200)
    ) {
        let mut mem = Memory::new();
        let mut model = std::collections::HashMap::new();
        for (slot, value) in &writes {
            let addr = Addr::new(slot * 8);
            mem.write_u64(addr, *value);
            model.insert(*slot, *value);
        }
        for (slot, value) in model {
            prop_assert_eq!(mem.read_u64(Addr::new(slot * 8)), value);
        }
    }

    #[test]
    fn byte_writes_do_not_clobber_neighbours(
        base in 0u64..1 << 16,
        value in any::<u8>(),
    ) {
        let mut mem = Memory::new();
        let addr = Addr::new(base);
        mem.write_u8(addr.offset(1), 0xAA);
        mem.write_u8(addr, value);
        prop_assert_eq!(mem.read_u8(addr), value);
        prop_assert_eq!(mem.read_u8(addr.offset(1)), 0xAA);
    }

    #[test]
    fn layout_arrays_never_share_cache_lines(
        sizes in proptest::collection::vec(1u64..2000, 2..12)
    ) {
        let mut builder = LayoutBuilder::new(0x1000);
        for (i, size) in sizes.iter().enumerate() {
            builder = builder.array(&format!("a{i}"), *size);
        }
        let layout = builder.build();
        let handles: Vec<_> = (0..sizes.len())
            .map(|i| layout.array(&format!("a{i}")))
            .collect();
        for (i, a) in handles.iter().enumerate() {
            for b in &handles[..i] {
                let a_lines = a.base().line().raw()..=a.byte(a.len_bytes() - 1).line().raw();
                let b_lines = b.base().line().raw()..=b.byte(b.len_bytes() - 1).line().raw();
                prop_assert!(
                    a_lines.end() < b_lines.start() || b_lines.end() < a_lines.start(),
                    "arrays {i} overlap lines"
                );
            }
        }
    }
}
