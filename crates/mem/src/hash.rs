//! Deterministic fast hashing for line-addressed maps.
//!
//! The backing store is consulted on every simulated load and store, so
//! its map must not pay SipHash prices for 8-byte keys. This hasher is
//! the classic Fx/rustc word-folding multiply: one rotate, one xor and
//! one multiply per 8-byte word. Two properties matter here:
//!
//! * **deterministic** — no per-process random state, so `Debug` dumps
//!   and iteration-dependent diagnostics are stable across runs (the
//!   simulation itself never observes map order);
//! * **high-entropy top bits** — hashbrown steers on the upper bits of
//!   the hash, and the final multiply avalanches the low address bits
//!   (which, for line addresses, are the only ones that vary) upward.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative word-folding hasher (FxHash-style), deterministic.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher64 {
    state: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher64 {
    #[inline]
    fn fold(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher64 {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            self.fold(u64::from_le_bytes(word));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.fold(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.fold(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.fold(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher64`] — plugs into `HashMap`.
pub type BuildFxHasher = BuildHasherDefault<FxHasher64>;

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn deterministic_across_instances() {
        let mut a = FxHasher64::default();
        let mut b = FxHasher64::default();
        a.write_u64(0xdead_beef);
        b.write_u64(0xdead_beef);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn nearby_keys_spread() {
        // Sequential line addresses must not collapse onto a few
        // buckets: check the top byte (hashbrown's steering bits)
        // takes many distinct values over a small dense range.
        let tops: std::collections::HashSet<u8> = (0..256u64)
            .map(|i| {
                let mut h = FxHasher64::default();
                h.write_u64(i);
                (h.finish() >> 56) as u8
            })
            .collect();
        assert!(tops.len() > 128, "only {} distinct top bytes", tops.len());
    }

    #[test]
    fn works_as_a_map_hasher() {
        let mut m: HashMap<u64, u64, BuildFxHasher> = HashMap::default();
        for i in 0..1000 {
            m.insert(i, i * 3);
        }
        assert_eq!(m.get(&999), Some(&2997));
    }
}
