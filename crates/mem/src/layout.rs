//! Named, line-aligned carve-outs of the simulated address space.
//!
//! Attack programs and workloads refer to arrays such as the probe array
//! `P[64 * 256]` or the bound variable `N` by name; [`LayoutBuilder`]
//! assigns them non-overlapping, line-aligned address ranges.

use std::collections::HashMap;

use crate::{Addr, CACHE_LINE_BYTES};

/// A named array placed in the simulated address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrayHandle {
    base: Addr,
    len_bytes: u64,
}

impl ArrayHandle {
    /// Base byte address of the array.
    pub fn base(&self) -> Addr {
        self.base
    }

    /// Length in bytes.
    pub fn len_bytes(&self) -> u64 {
        self.len_bytes
    }

    /// Address of byte `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds — layouts are trusted
    /// infrastructure; transient *simulated* out-of-bounds accesses go
    /// through raw addresses instead.
    pub fn byte(&self, index: u64) -> Addr {
        assert!(index < self.len_bytes, "byte index {index} out of bounds");
        self.base.offset(index as i64)
    }

    /// Address of the `index`-th 8-byte word.
    ///
    /// # Panics
    ///
    /// Panics if the word lies outside the array.
    pub fn word(&self, index: u64) -> Addr {
        let off = index * 8;
        assert!(
            off + 8 <= self.len_bytes,
            "word index {index} out of bounds"
        );
        self.base.offset(off as i64)
    }

    /// Address of the start of the `index`-th cache line of the array.
    ///
    /// # Panics
    ///
    /// Panics if the line lies outside the array.
    pub fn line(&self, index: u64) -> Addr {
        let off = index * CACHE_LINE_BYTES;
        assert!(off < self.len_bytes, "line index {index} out of bounds");
        self.base.offset(off as i64)
    }

    /// Number of whole cache lines the array spans.
    pub fn lines(&self) -> u64 {
        self.len_bytes / CACHE_LINE_BYTES
    }
}

/// A layout lookup failure, carrying the missing name and what the
/// layout actually holds so a typo in an attack program reads as a
/// diagnostic rather than a bare panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayoutError {
    /// The name that was requested.
    pub name: String,
    /// Every name the layout does define, sorted.
    pub known: Vec<String>,
}

impl std::fmt::Display for LayoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "no array named {:?} in layout (known: {})",
            self.name,
            self.known.join(", ")
        )
    }
}

impl std::error::Error for LayoutError {}

/// A finished address-space layout: name → [`ArrayHandle`].
#[derive(Debug, Clone, Default)]
pub struct MemoryLayout {
    arrays: HashMap<String, ArrayHandle>,
    end: Addr,
}

impl MemoryLayout {
    /// Looks up an array by name.
    pub fn get(&self, name: &str) -> Option<ArrayHandle> {
        self.arrays.get(name).copied()
    }

    /// Looks up an array by name, reporting the known names on failure.
    pub fn try_array(&self, name: &str) -> Result<ArrayHandle, LayoutError> {
        self.get(name).ok_or_else(|| {
            let mut known: Vec<String> = self.arrays.keys().cloned().collect();
            known.sort();
            LayoutError {
                name: name.to_owned(),
                known,
            }
        })
    }

    /// Looks up an array by name.
    ///
    /// # Panics
    ///
    /// Panics if no array with that name exists; use [`MemoryLayout::get`]
    /// or [`MemoryLayout::try_array`] for fallible lookups.
    // A documented panicking accessor over try_array, kept for test and
    // driver ergonomics.
    #[allow(clippy::disallowed_methods)]
    pub fn array(&self, name: &str) -> ArrayHandle {
        self.try_array(name)
            .map_err(|e| e.to_string())
            .expect("layout lookup")
    }

    /// First address past every allocated array.
    pub fn end(&self) -> Addr {
        self.end
    }

    /// Iterates over `(name, handle)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, ArrayHandle)> {
        self.arrays.iter().map(|(k, v)| (k.as_str(), *v))
    }
}

/// Builder assigning non-overlapping line-aligned ranges to named arrays.
///
/// # Examples
///
/// ```
/// use unxpec_mem::LayoutBuilder;
///
/// let layout = LayoutBuilder::new(0x10_000)
///     .array("P", 64 * 256)
///     .array("A", 256)
///     .build();
/// let p = layout.array("P");
/// assert!(p.base().is_aligned(64));
/// assert_ne!(p.base(), layout.array("A").base());
/// ```
#[derive(Debug)]
pub struct LayoutBuilder {
    next: Addr,
    arrays: HashMap<String, ArrayHandle>,
}

impl LayoutBuilder {
    /// Starts a layout at `base` (rounded up to a line boundary).
    pub fn new(base: u64) -> Self {
        let aligned = (base + CACHE_LINE_BYTES - 1) & !(CACHE_LINE_BYTES - 1);
        LayoutBuilder {
            next: Addr::new(aligned),
            arrays: HashMap::new(),
        }
    }

    /// Allocates `len_bytes` (rounded up to whole lines) under `name`.
    ///
    /// A gap line is left between consecutive arrays so that no two arrays
    /// ever share a cache line.
    ///
    /// # Panics
    ///
    /// Panics if the name is reused.
    pub fn array(mut self, name: &str, len_bytes: u64) -> Self {
        let len = len_bytes.max(1);
        let rounded = (len + CACHE_LINE_BYTES - 1) & !(CACHE_LINE_BYTES - 1);
        let handle = ArrayHandle {
            base: self.next,
            len_bytes: rounded,
        };
        let prev = self.arrays.insert(name.to_owned(), handle);
        assert!(prev.is_none(), "array {name:?} allocated twice");
        // One guard line between arrays.
        self.next = self.next.offset((rounded + CACHE_LINE_BYTES) as i64);
        self
    }

    /// Finishes the layout.
    pub fn build(self) -> MemoryLayout {
        MemoryLayout {
            arrays: self.arrays,
            end: self.next,
        }
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;

    #[test]
    fn arrays_are_line_aligned_and_disjoint() {
        let layout = LayoutBuilder::new(0x1001)
            .array("a", 100)
            .array("b", 64)
            .build();
        let a = layout.array("a");
        let b = layout.array("b");
        assert!(a.base().is_aligned(64));
        assert!(b.base().is_aligned(64));
        // 100 bytes round to 128; plus a guard line.
        assert!(b.base().raw() >= a.base().raw() + 128 + 64);
    }

    #[test]
    fn indexing_helpers() {
        let layout = LayoutBuilder::new(0).array("p", 64 * 4).build();
        let p = layout.array("p");
        assert_eq!(p.lines(), 4);
        assert_eq!(p.line(3) - p.base(), 192);
        assert_eq!(p.word(2) - p.base(), 16);
        assert_eq!(p.byte(63) - p.base(), 63);
    }

    #[test]
    #[should_panic(expected = "allocated twice")]
    fn duplicate_name_panics() {
        let _ = LayoutBuilder::new(0).array("x", 8).array("x", 8);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_line_panics() {
        let layout = LayoutBuilder::new(0).array("p", 64).build();
        layout.array("p").line(1);
    }

    #[test]
    fn missing_array_is_none() {
        let layout = LayoutBuilder::new(0).build();
        assert!(layout.get("nope").is_none());
    }

    #[test]
    fn missing_array_error_names_known_arrays() {
        let layout = LayoutBuilder::new(0).array("P", 64).array("A", 64).build();
        let err = layout.try_array("nope").expect_err("lookup must fail");
        assert_eq!(err.name, "nope");
        assert_eq!(err.known, vec!["A".to_string(), "P".to_string()]);
        let msg = err.to_string();
        assert!(msg.contains("no array named \"nope\""), "{msg}");
        assert!(msg.contains("known: A, P"), "{msg}");
    }
}
