//! Byte and cache-line address newtypes.

use std::fmt;
use std::ops::{Add, Sub};

/// Size of a cache line in bytes (gem5 / Table I configuration).
pub const CACHE_LINE_BYTES: u64 = 64;

/// Number of low address bits covered by the line offset (`log2(64)`).
pub const LINE_OFFSET_BITS: u32 = 6;

/// A byte address in the simulated physical address space.
///
/// # Examples
///
/// ```
/// use unxpec_mem::Addr;
///
/// let a = Addr::new(0x1000);
/// assert_eq!(a.offset(8).raw(), 0x1008);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u64);

impl Addr {
    /// Creates a byte address.
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// The raw address value.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The cache line containing this byte.
    pub const fn line(self) -> LineAddr {
        LineAddr(self.0 >> LINE_OFFSET_BITS)
    }

    /// The byte offset within the containing cache line.
    pub const fn line_offset(self) -> u64 {
        self.0 & (CACHE_LINE_BYTES - 1)
    }

    /// This address displaced by `delta` bytes (may be negative).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the displacement under- or overflows the
    /// address space.
    pub fn offset(self, delta: i64) -> Addr {
        Addr(self.0.wrapping_add(delta as u64))
    }

    /// Whether the address is aligned to `align` bytes (a power of two).
    pub const fn is_aligned(self, align: u64) -> bool {
        self.0 & (align - 1) == 0
    }

    /// The address rounded down to the start of its cache line.
    pub const fn line_base(self) -> Addr {
        Addr(self.0 & !(CACHE_LINE_BYTES - 1))
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Addr({:#x})", self.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

impl Add<u64> for Addr {
    type Output = Addr;

    fn add(self, rhs: u64) -> Addr {
        Addr(self.0 + rhs)
    }
}

impl Sub<Addr> for Addr {
    type Output = u64;

    fn sub(self, rhs: Addr) -> u64 {
        self.0 - rhs.0
    }
}

/// A cache-line address: a byte address with the line offset stripped.
///
/// # Examples
///
/// ```
/// use unxpec_mem::{Addr, LineAddr};
///
/// assert_eq!(Addr::new(0x107f).line(), LineAddr::new(0x41));
/// assert_eq!(LineAddr::new(0x41).base(), Addr::new(0x1040));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Creates a line address from a raw line number.
    pub const fn new(raw: u64) -> Self {
        LineAddr(raw)
    }

    /// The raw line number.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The byte address of the first byte of the line.
    pub const fn base(self) -> Addr {
        Addr(self.0 << LINE_OFFSET_BITS)
    }

    /// The line `delta` lines after this one.
    pub const fn offset(self, delta: u64) -> LineAddr {
        LineAddr(self.0 + delta)
    }
}

impl fmt::Debug for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LineAddr({:#x})", self.0)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {:#x}", self.0)
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;

    #[test]
    fn line_of_address() {
        assert_eq!(Addr::new(0).line(), LineAddr::new(0));
        assert_eq!(Addr::new(63).line(), LineAddr::new(0));
        assert_eq!(Addr::new(64).line(), LineAddr::new(1));
        assert_eq!(Addr::new(0x1040).line(), LineAddr::new(0x41));
    }

    #[test]
    fn line_offset_wraps_within_line() {
        assert_eq!(Addr::new(0x1047).line_offset(), 7);
        assert_eq!(Addr::new(0x1047).line_base(), Addr::new(0x1040));
    }

    #[test]
    fn offset_and_sub_roundtrip() {
        let a = Addr::new(0x2000);
        assert_eq!(a.offset(16) - a, 16);
        assert_eq!(a.offset(-32).raw(), 0x1fe0);
    }

    #[test]
    fn alignment() {
        assert!(Addr::new(0x1000).is_aligned(64));
        assert!(!Addr::new(0x1008).is_aligned(64));
        assert!(Addr::new(0x1008).is_aligned(8));
    }

    #[test]
    fn line_base_roundtrip() {
        let l = LineAddr::new(0x55);
        assert_eq!(l.base().line(), l);
        assert_eq!(l.offset(3), LineAddr::new(0x58));
    }
}
