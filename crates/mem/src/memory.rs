//! Sparse, line-granular architectural backing store.

use std::collections::HashMap;

use crate::hash::BuildFxHasher;
use crate::{Addr, LineAddr, CACHE_LINE_BYTES};

/// The architectural memory of the simulated machine.
///
/// Lines not yet written read as zero. The store is the single source of
/// truth for data values; caches only track which lines are resident, so a
/// rollback of cache *state* never needs to touch data.
///
/// # Examples
///
/// ```
/// use unxpec_mem::{Addr, Memory};
///
/// let mut mem = Memory::new();
/// mem.write_u64(Addr::new(0x100), 42);
/// assert_eq!(mem.read_u64(Addr::new(0x100)), 42);
/// assert_eq!(mem.read_u64(Addr::new(0x108)), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Memory {
    // Keyed with the deterministic Fx hasher: this map sits on the
    // critical path of every simulated load and store, and its order is
    // never observable, so SipHash buys nothing here.
    lines: HashMap<LineAddr, [u8; CACHE_LINE_BYTES as usize], BuildFxHasher>,
}

impl Memory {
    /// Creates an empty (all-zero) memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: Addr) -> u8 {
        match self.lines.get(&addr.line()) {
            Some(line) => line[addr.line_offset() as usize],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: Addr, value: u8) {
        let line = self.lines.entry(addr.line()).or_insert([0; 64]);
        line[addr.line_offset() as usize] = value;
    }

    /// Reads a little-endian 64-bit word.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 8-byte aligned; the simulated ISA only
    /// issues aligned word accesses, so a misaligned address here is a bug
    /// in program construction.
    pub fn read_u64(&self, addr: Addr) -> u64 {
        assert!(addr.is_aligned(8), "misaligned 8-byte load at {addr}");
        match self.lines.get(&addr.line()) {
            Some(line) => {
                let off = addr.line_offset() as usize;
                let mut word = [0u8; 8];
                word.copy_from_slice(&line[off..off + 8]);
                u64::from_le_bytes(word)
            }
            None => 0,
        }
    }

    /// Writes a little-endian 64-bit word.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 8-byte aligned.
    pub fn write_u64(&mut self, addr: Addr, value: u64) {
        assert!(addr.is_aligned(8), "misaligned 8-byte store at {addr}");
        let line = self.lines.entry(addr.line()).or_insert([0; 64]);
        let off = addr.line_offset() as usize;
        line[off..off + 8].copy_from_slice(&value.to_le_bytes());
    }

    /// Number of lines that have ever been written.
    pub fn resident_lines(&self) -> usize {
        self.lines.len()
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_memory_reads_zero() {
        let mem = Memory::new();
        assert_eq!(mem.read_u8(Addr::new(0xdead_beef)), 0);
        assert_eq!(mem.read_u64(Addr::new(0xdead_bee8)), 0);
    }

    #[test]
    fn byte_and_word_views_agree() {
        let mut mem = Memory::new();
        mem.write_u64(Addr::new(0x40), 0x0102_0304_0506_0708);
        assert_eq!(mem.read_u8(Addr::new(0x40)), 0x08); // little-endian
        assert_eq!(mem.read_u8(Addr::new(0x47)), 0x01);
    }

    #[test]
    fn writes_are_line_sparse() {
        let mut mem = Memory::new();
        mem.write_u8(Addr::new(0), 1);
        mem.write_u8(Addr::new(63), 2);
        mem.write_u8(Addr::new(64), 3);
        assert_eq!(mem.resident_lines(), 2);
    }

    #[test]
    #[should_panic(expected = "misaligned")]
    fn misaligned_word_load_panics() {
        Memory::new().read_u64(Addr::new(0x41));
    }

    #[test]
    fn word_overwrite() {
        let mut mem = Memory::new();
        let a = Addr::new(0x80);
        mem.write_u64(a, u64::MAX);
        mem.write_u64(a, 7);
        assert_eq!(mem.read_u64(a), 7);
    }
}
