//! Memory addressing primitives and the flat backing store used by the
//! unxpec simulator.
//!
//! The simulated machine uses byte addressing with 64-byte cache lines,
//! matching the gem5 configuration the unXpec paper evaluates on. Two
//! newtypes keep byte addresses and line addresses statically distinct:
//!
//! ```
//! use unxpec_mem::{Addr, LineAddr};
//!
//! let a = Addr::new(0x1040);
//! assert_eq!(a.line(), LineAddr::new(0x41));
//! assert_eq!(a.line_offset(), 0);
//! ```
//!
//! [`Memory`] is the architectural backing store: a sparse, line-granular
//! map from line address to 64 data bytes. The cache hierarchy only tracks
//! *presence* and metadata of lines; data values always come from this
//! store, so secret-dependent address computation in attack programs works
//! exactly as it would on real hardware.
//!
//! [`MemoryLayout`] carves named, line-aligned arrays out of the address
//! space — the probe array `P`, the victim array `A`, the bound variable
//! `N`, eviction-set regions — so that attack code and tests can talk about
//! addresses symbolically.

mod addr;
mod fault;
mod hash;
mod layout;
mod memory;
pub mod seed;

pub use addr::{Addr, LineAddr, CACHE_LINE_BYTES, LINE_OFFSET_BITS};
pub use fault::FaultStream;
pub use hash::{BuildFxHasher, FxHasher64};
pub use layout::{ArrayHandle, LayoutBuilder, LayoutError, MemoryLayout};
pub use memory::Memory;
