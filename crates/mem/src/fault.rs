//! Deterministic, counter-addressed random streams for fault injection.
//!
//! A [`FaultStream`] is the primitive every injector draws from. Unlike
//! a stateful RNG whose output depends on how many values anyone else
//! consumed, each draw here is a pure function of `(seed, counter)` —
//! the stream is just [`splitmix64`](crate::seed::splitmix64) indexed
//! by a private draw counter. Two consequences matter for the
//! simulator:
//!
//! 1. **Replayability.** A diagnostics bundle only needs the seed and
//!    the draw count to replay every fault decision of a trial.
//! 2. **Schedule isolation.** Distinct injection sites derive distinct
//!    sub-streams with [`FaultStream::fork`], so adding a draw at one
//!    site never shifts the decisions made at another.

use crate::seed::{fnv1a64, splitmix64};

/// A deterministic stream of fault-injection decisions.
///
/// # Examples
///
/// ```
/// use unxpec_mem::FaultStream;
///
/// let mut a = FaultStream::new(7);
/// let mut b = FaultStream::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// assert_eq!(a.draws(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultStream {
    seed: u64,
    counter: u64,
}

impl FaultStream {
    /// A stream rooted at `seed`.
    pub fn new(seed: u64) -> Self {
        FaultStream { seed, counter: 0 }
    }

    /// A labelled sub-stream: decisions at one injection site stay
    /// independent of the draw count at every other site.
    pub fn fork(&self, label: &str) -> Self {
        FaultStream::new(splitmix64(self.seed ^ fnv1a64(label)))
    }

    /// The seed this stream was rooted at.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// How many values have been drawn (for diagnostics bundles).
    pub fn draws(&self) -> u64 {
        self.counter
    }

    /// The next 64-bit value of the stream.
    pub fn next_u64(&mut self) -> u64 {
        let v = splitmix64(self.seed ^ self.counter.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        self.counter += 1;
        v
    }

    /// `true` with probability `per_mille / 1000` (uniform, unbiased
    /// enough for injection rates; `per_mille >= 1000` always fires).
    pub fn fires(&mut self, per_mille: u32) -> bool {
        if per_mille == 0 {
            return false;
        }
        if per_mille >= 1000 {
            // Still consume a draw so that a rate change never shifts
            // the alignment of later decisions.
            self.counter += 1;
            return true;
        }
        self.next_u64() % 1000 < u64::from(per_mille)
    }

    /// A uniform pick in `0..n` (`n == 0` returns 0 without drawing).
    pub fn pick(&mut self, n: usize) -> usize {
        if n == 0 {
            return 0;
        }
        (self.next_u64() % n as u64) as usize
    }

    /// A uniform value in `lo..=hi` (degenerate ranges return `lo`
    /// without drawing).
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        lo + self.next_u64() % (hi - lo + 1)
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_a_pure_function_of_seed_and_counter() {
        let mut a = FaultStream::new(42);
        let first: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let mut b = FaultStream::new(42);
        let second: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(first, second);
        assert_eq!(a.draws(), 8);
    }

    #[test]
    fn forks_are_label_sensitive_and_counter_independent() {
        let mut root = FaultStream::new(9);
        // Draining the parent must not move the children.
        let before = root.fork("mshr");
        for _ in 0..100 {
            root.next_u64();
        }
        assert_eq!(before, root.fork("mshr"));
        assert_ne!(root.fork("mshr").next_u64(), root.fork("fill").next_u64());
    }

    #[test]
    fn rate_zero_never_fires_and_consumes_nothing() {
        let mut s = FaultStream::new(3);
        for _ in 0..100 {
            assert!(!s.fires(0));
        }
        assert_eq!(s.draws(), 0);
    }

    #[test]
    fn rate_full_always_fires_but_still_counts_draws() {
        let mut s = FaultStream::new(3);
        for _ in 0..10 {
            assert!(s.fires(1000));
        }
        assert_eq!(s.draws(), 10);
    }

    #[test]
    fn mid_rates_fire_roughly_proportionally() {
        let mut s = FaultStream::new(0x5eed);
        let hits = (0..10_000).filter(|_| s.fires(100)).count();
        assert!((800..1200).contains(&hits), "~10% expected, got {hits}");
    }

    #[test]
    fn pick_stays_in_bounds() {
        let mut s = FaultStream::new(1);
        for _ in 0..1000 {
            assert!(s.pick(7) < 7);
        }
        assert_eq!(s.pick(0), 0);
    }

    #[test]
    fn range_is_inclusive_and_degenerate_safe() {
        let mut s = FaultStream::new(2);
        for _ in 0..1000 {
            let v = s.range(10, 13);
            assert!((10..=13).contains(&v));
        }
        assert_eq!(s.range(5, 5), 5);
        assert_eq!(s.range(9, 3), 9);
    }
}
