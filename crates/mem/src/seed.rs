//! The workspace-wide seed-derivation primitives.
//!
//! These live at the bottom of the crate graph so every layer — the
//! experiment drivers in `unxpec::experiments::seeding`, the cache
//! fault-injection streams, the harness trial enumeration — derives
//! seeds with the *same* arithmetic. A trial's seed, and every fault
//! decision made under it, is a pure function of `(root, label, index)`
//! and never of execution order, which is what keeps an N-way parallel
//! sweep byte-identical to a serial one even under injection.
//!
//! Derivation is [`splitmix64`] over `root XOR fnv1a64(label)`:
//! splitmix64 is a full-period bijective finalizer, so distinct labels
//! can never collapse onto one stream, and the scheme needs no state.

/// Sebastiano Vigna's splitmix64 finalizer: a bijective avalanche mix.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// FNV-1a over `label`'s bytes — the stable label hash.
pub fn fnv1a64(label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The seed for the stream `label` under `root`.
pub fn stream(root: u64, label: &str) -> u64 {
    splitmix64(root ^ fnv1a64(label))
}

/// The seed for repetition `index` of stream `label` under `root`
/// (e.g. one trial of a seed-axis sweep).
pub fn indexed(root: u64, label: &str, index: u64) -> u64 {
    splitmix64(stream(root, label).wrapping_add(index.wrapping_mul(0x9e37_79b9_7f4a_7c15)))
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_label_sensitive_and_stable() {
        assert_ne!(stream(1, "pdf"), stream(1, "leakage"));
        assert_ne!(stream(1, "pdf"), stream(2, "pdf"));
        assert_eq!(stream(7, "rate"), stream(7, "rate"));
    }

    #[test]
    fn splitmix_is_bijective_on_samples() {
        let mut seen = std::collections::HashSet::new();
        for x in 0..10_000u64 {
            assert!(seen.insert(splitmix64(x)));
        }
    }
}
