//! Property tests for the CPU building blocks.

#![allow(clippy::disallowed_methods, clippy::disallowed_macros)] // tests are exempt from the no-panic policy

use proptest::prelude::*;
use unxpec_cpu::{
    AluOp, BimodalPredictor, BranchPredictor, Cond, Core, GsharePredictor, ProgramBuilder, Reg,
};

proptest! {
    #[test]
    fn alu_matches_u64_semantics(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!(AluOp::Add.apply(a, b), a.wrapping_add(b));
        prop_assert_eq!(AluOp::Sub.apply(a, b), a.wrapping_sub(b));
        prop_assert_eq!(AluOp::Mul.apply(a, b), a.wrapping_mul(b));
        prop_assert_eq!(AluOp::And.apply(a, b), a & b);
        prop_assert_eq!(AluOp::Or.apply(a, b), a | b);
        prop_assert_eq!(AluOp::Xor.apply(a, b), a ^ b);
    }

    #[test]
    fn cond_matches_comparisons(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!(Cond::Lt.eval(a, b), a < b);
        prop_assert_eq!(Cond::Ge.eval(a, b), a >= b);
        prop_assert_eq!(Cond::Eq.eval(a, b), a == b);
        prop_assert_eq!(Cond::Ne.eval(a, b), a != b);
    }

    #[test]
    fn straight_line_arithmetic_is_exact(values in proptest::collection::vec(any::<u64>(), 1..16)) {
        // r1 accumulates a xor-rotate fold of the inputs; compare
        // against the same fold in Rust.
        let mut b = ProgramBuilder::new();
        b.mov(Reg(1), 0);
        for (i, v) in values.iter().enumerate() {
            b.mov(Reg(2), *v);
            b.xor(Reg(1), Reg(1), Reg(2));
            b.shl(Reg(3), Reg(1), ((i % 7) + 1) as u64);
            b.add(Reg(1), Reg(1), Reg(3));
        }
        b.halt();
        let got = Core::table_i().run(&b.build()).reg(Reg(1));
        let mut expect = 0u64;
        for (i, v) in values.iter().enumerate() {
            expect ^= v;
            expect = expect.wrapping_add(expect.wrapping_shl(((i % 7) + 1) as u32));
        }
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn predictors_saturate_on_constant_direction(
        pc in 0usize..10_000,
        taken in any::<bool>(),
        warm in 2usize..20,
    ) {
        let mut bimodal = BimodalPredictor::new(1024);
        let mut gshare = GsharePredictor::new(1024, 6);
        for _ in 0..warm {
            bimodal.update(pc, taken);
        }
        // Gshare's index moves with the history, so it needs the history
        // register to saturate (6 bits) before its steady-state counter
        // trains.
        for _ in 0..warm + 8 {
            gshare.update(pc, taken);
        }
        prop_assert_eq!(bimodal.predict(pc), taken);
        prop_assert_eq!(gshare.predict(pc), taken);
    }

    #[test]
    fn loop_counts_exactly(n in 1u64..300) {
        let mut b = ProgramBuilder::new();
        b.mov(Reg(1), 0);
        b.label("loop");
        b.add(Reg(1), Reg(1), 1u64);
        b.branch(Cond::Lt, Reg(1), n, "loop");
        b.halt();
        let r = Core::table_i().run(&b.build());
        prop_assert_eq!(r.reg(Reg(1)), n);
        prop_assert_eq!(r.stats.branches, n);
    }

    #[test]
    fn stores_commit_in_program_order(slots in proptest::collection::vec((0u64..32, any::<u64>()), 1..40)) {
        let mut b = ProgramBuilder::new();
        b.mov(Reg(1), 0x8000);
        for (slot, val) in &slots {
            b.mov(Reg(2), *val);
            b.store(Reg(2), Reg(1), (slot * 8) as i64);
        }
        b.halt();
        let mut core = Core::table_i();
        core.run(&b.build());
        let mut model = std::collections::HashMap::new();
        for (slot, val) in &slots {
            model.insert(*slot, *val);
        }
        for (slot, val) in model {
            prop_assert_eq!(
                core.mem().read_u64(unxpec_mem::Addr::new(0x8000 + slot * 8)),
                val
            );
        }
    }
}

mod two_speed {
    //! Mode-switch equivalence: a fast-forward run that drops to the
    //! detailed core at every branch and re-engages afterwards
    //! (ff→detailed→ff→…) must be indistinguishable from an
    //! all-detailed run — registers, memory, cache residency, and,
    //! inside the exactness envelope, the cycle count itself.
    //!
    //! The generator stays inside that envelope by construction: every
    //! memory operation is followed by a fence (memory traffic settles
    //! before the next hand-off), programs stay under 192 total
    //! instructions (the detailed core's ROB never fills, so ROB
    //! occupancy cannot skew dispatch), every address is a static
    //! offset off the seeded table base, and `rdtscp` is left out (its
    //! serializing read is a speculation-measurement primitive, not
    //! straight-line compute).

    use proptest::prelude::*;
    use unxpec_cpu::{Cond, Core, ExecMode, ProgramBuilder, Reg};
    use unxpec_mem::Addr;

    const TABLE: u64 = 0x8000;
    const TABLE_WORDS: u64 = 64;
    /// Table base register; never a destination, so addresses stay in
    /// the seeded range even on wrong paths.
    const R_TBL: Reg = Reg(1);

    #[derive(Debug, Clone, Copy)]
    enum SafeOp {
        Mov(u8, u64),
        /// (op selector, dst, a, b-register)
        AluRR(u8, u8, u8, u8),
        /// (op selector, dst, a, immediate)
        AluRI(u8, u8, u8, u64),
        /// (dst, table word); a fence follows every load.
        Load(u8, u8),
        /// (src, table word); a fence follows every store.
        Store(u8, u8),
        /// (table word); a fence follows every flush.
        Flush(u8),
        Nop,
    }

    fn emit(b: &mut ProgramBuilder, op: SafeOp) {
        let reg = |r: u8| Reg(2 + (r % 6)); // r2..r7, never the base
        let src = |r: u8| Reg(1 + (r % 7)); // r1..r7, base readable
        let word = |w: u8| (u64::from(w) % TABLE_WORDS) as i64 * 8;
        match op {
            SafeOp::Mov(dst, imm) => {
                b.mov(reg(dst), imm);
            }
            SafeOp::AluRR(sel, dst, a, rb) => {
                alu(b, sel, reg(dst), src(a), src(rb));
            }
            SafeOp::AluRI(sel, dst, a, imm) => {
                alu(b, sel, reg(dst), src(a), imm);
            }
            SafeOp::Load(dst, w) => {
                b.load(reg(dst), R_TBL, word(w));
                b.fence();
            }
            SafeOp::Store(s, w) => {
                b.store(src(s), R_TBL, word(w));
                b.fence();
            }
            SafeOp::Flush(w) => {
                b.flush(R_TBL, word(w));
                b.fence();
            }
            SafeOp::Nop => {
                b.nop();
            }
        }
    }

    fn alu(b: &mut ProgramBuilder, sel: u8, dst: Reg, a: Reg, rhs: impl Into<unxpec_cpu::Operand>) {
        match sel % 8 {
            0 => b.add(dst, a, rhs),
            1 => b.sub(dst, a, rhs),
            2 => b.mul(dst, a, rhs),
            3 => b.and(dst, a, rhs),
            4 => b.or(dst, a, rhs),
            5 => b.xor(dst, a, rhs),
            6 => b.shl(dst, a, rhs),
            _ => b.shr(dst, a, rhs),
        };
    }

    fn safe_op() -> impl Strategy<Value = SafeOp> {
        prop_oneof![
            (any::<u8>(), any::<u64>()).prop_map(|(d, i)| SafeOp::Mov(d, i)),
            (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>())
                .prop_map(|(s, d, a, b)| SafeOp::AluRR(s, d, a, b)),
            (any::<u8>(), any::<u8>(), any::<u8>(), any::<u64>())
                .prop_map(|(s, d, a, i)| SafeOp::AluRI(s, d, a, i)),
            (any::<u8>(), any::<u8>()).prop_map(|(d, w)| SafeOp::Load(d, w)),
            (any::<u8>(), any::<u8>()).prop_map(|(s, w)| SafeOp::Store(s, w)),
            any::<u8>().prop_map(SafeOp::Flush),
            Just(SafeOp::Nop),
        ]
    }

    type Block = (Vec<SafeOp>, Vec<SafeOp>, (u8, u8, u64));

    fn block() -> impl Strategy<Value = Block> {
        (
            proptest::collection::vec(safe_op(), 1..6),
            proptest::collection::vec(safe_op(), 1..4),
            (any::<u8>(), any::<u8>(), any::<u64>()),
        )
    }

    fn build(blocks: &[Block]) -> unxpec_cpu::Program {
        let mut b = ProgramBuilder::new();
        b.mov(R_TBL, TABLE);
        for (i, (straight, skipped, (csel, careg, cimm))) in blocks.iter().enumerate() {
            for &op in straight {
                emit(&mut b, op);
            }
            // A real data-dependent branch: the skipped sub-block runs
            // only on the fall-through path, so mispredicted frames
            // squash genuinely divergent work in both runs.
            let cond = match csel % 4 {
                0 => Cond::Lt,
                1 => Cond::Ge,
                2 => Cond::Eq,
                _ => Cond::Ne,
            };
            let label = format!("skip_{i}");
            b.branch(cond, Reg(1 + (careg % 7)), *cimm, &label);
            for &op in skipped {
                emit(&mut b, op);
            }
            b.label(&label);
        }
        b.halt();
        b.build()
    }

    fn seed_table(core: &mut Core) {
        for w in 0..TABLE_WORDS {
            core.mem_mut().write_u64(
                Addr::new(TABLE + w * 8),
                w.wrapping_mul(0x9e37_79b9) ^ 0xabcd,
            );
        }
    }

    proptest! {
        #[test]
        fn mode_switching_matches_all_detailed(blocks in proptest::collection::vec(block(), 1..6)) {
            let program = build(&blocks);
            prop_assert!(program.len() < 192, "generator left the exactness envelope");

            let mut det = Core::table_i();
            seed_table(&mut det);
            let rd = det.run(&program);

            let mut ff = Core::table_i();
            ff.set_mode(ExecMode::FastForward);
            seed_table(&mut ff);
            let rf = ff.run(&program);

            // The fast path must actually engage: every program opens
            // with the straight-line table-base prologue.
            prop_assert!(rf.stats.ff_regions > 0, "fast-forward never engaged");
            prop_assert_eq!(rd.stats.ff_regions, 0, "detailed run must not fast-forward");

            prop_assert_eq!(rf.regs, rd.regs, "architectural registers diverged");
            prop_assert_eq!(rf.stats.cycles, rd.stats.cycles, "cycle counts diverged");
            prop_assert_eq!(rf.stats.committed_insts, rd.stats.committed_insts);
            prop_assert_eq!(rf.stats.committed_loads, rd.stats.committed_loads);
            prop_assert_eq!(rf.stats.branches, rd.stats.branches);
            prop_assert_eq!(rf.stats.mispredicts, rd.stats.mispredicts);
            prop_assert_eq!(rf.stats.squashes.len(), rd.stats.squashes.len());

            for w in 0..TABLE_WORDS {
                let addr = Addr::new(TABLE + w * 8);
                prop_assert_eq!(
                    ff.mem().read_u64(addr),
                    det.mem().read_u64(addr),
                    "memory diverged at table word {}", w
                );
                prop_assert_eq!(
                    ff.hierarchy().l1_contains(addr.line()),
                    det.hierarchy().l1_contains(addr.line()),
                    "L1 residency diverged at table word {}", w
                );
            }
        }
    }
}

mod asm_roundtrip {
    use proptest::prelude::*;
    use unxpec_cpu::{parse_asm, AluOp, Cond, Inst, Operand, ProgramBuilder, Reg};

    fn inst_strategy(len: usize) -> impl Strategy<Value = Inst> {
        let reg = (0u8..32).prop_map(Reg);
        let operand = prop_oneof![
            (0u8..32).prop_map(|r| Operand::Reg(Reg(r))),
            any::<u64>().prop_map(Operand::Imm),
        ];
        let alu = prop_oneof![
            Just(AluOp::Add),
            Just(AluOp::Sub),
            Just(AluOp::Mul),
            Just(AluOp::And),
            Just(AluOp::Or),
            Just(AluOp::Xor),
            Just(AluOp::Shl),
            Just(AluOp::Shr),
        ];
        let cond = prop_oneof![
            Just(Cond::Lt),
            Just(Cond::Ge),
            Just(Cond::Eq),
            Just(Cond::Ne)
        ];
        prop_oneof![
            (reg.clone(), any::<u64>()).prop_map(|(dst, imm)| Inst::MovImm { dst, imm }),
            (alu, reg.clone(), reg.clone(), operand.clone())
                .prop_map(|(op, dst, a, b)| Inst::Alu { op, dst, a, b }),
            (reg.clone(), reg.clone(), -512i64..512).prop_map(|(dst, base, offset)| Inst::Load {
                dst,
                base,
                offset: offset & !7
            }),
            (reg.clone(), reg.clone(), -512i64..512).prop_map(|(src, base, offset)| Inst::Store {
                src,
                base,
                offset: offset & !7
            }),
            (reg.clone(), -512i64..512).prop_map(|(base, offset)| Inst::Flush { base, offset }),
            Just(Inst::Fence),
            reg.clone().prop_map(|dst| Inst::ReadTime { dst }),
            (cond, reg.clone(), operand, 0..len).prop_map(|(cond, a, b, target)| Inst::Branch {
                cond,
                a,
                b,
                target
            }),
            (0..len).prop_map(|target| Inst::Jump { target }),
            reg.clone().prop_map(|target| Inst::JumpInd { target }),
            (0..len, reg.clone()).prop_map(|(target, sp)| Inst::Call { target, sp }),
            reg.prop_map(|sp| Inst::Ret { sp }),
            Just(Inst::Nop),
            Just(Inst::Halt),
        ]
    }

    proptest! {
        #[test]
        fn listing_round_trips_through_the_assembler(
            insts in proptest::collection::vec(inst_strategy(32), 1..32)
        ) {
            let mut b = ProgramBuilder::new();
            for inst in &insts {
                b.push(*inst);
            }
            let original = b.build();
            // Strip the PC column the listing prints.
            let listing: String = original
                .to_string()
                .lines()
                .map(|l| {
                    l.trim_start().split_once(char::is_whitespace).map(|x| x.1)
                        .unwrap_or("")
                        .trim()
                        .to_string()
                })
                .collect::<Vec<_>>()
                .join("\n");
            let reparsed = parse_asm(&listing).unwrap();
            prop_assert_eq!(original.instructions(), reparsed.instructions());
        }
    }
}
