//! Property tests for the CPU building blocks.

#![allow(clippy::disallowed_methods, clippy::disallowed_macros)] // tests are exempt from the no-panic policy

use proptest::prelude::*;
use unxpec_cpu::{
    AluOp, BimodalPredictor, BranchPredictor, Cond, Core, GsharePredictor, ProgramBuilder, Reg,
};

proptest! {
    #[test]
    fn alu_matches_u64_semantics(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!(AluOp::Add.apply(a, b), a.wrapping_add(b));
        prop_assert_eq!(AluOp::Sub.apply(a, b), a.wrapping_sub(b));
        prop_assert_eq!(AluOp::Mul.apply(a, b), a.wrapping_mul(b));
        prop_assert_eq!(AluOp::And.apply(a, b), a & b);
        prop_assert_eq!(AluOp::Or.apply(a, b), a | b);
        prop_assert_eq!(AluOp::Xor.apply(a, b), a ^ b);
    }

    #[test]
    fn cond_matches_comparisons(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!(Cond::Lt.eval(a, b), a < b);
        prop_assert_eq!(Cond::Ge.eval(a, b), a >= b);
        prop_assert_eq!(Cond::Eq.eval(a, b), a == b);
        prop_assert_eq!(Cond::Ne.eval(a, b), a != b);
    }

    #[test]
    fn straight_line_arithmetic_is_exact(values in proptest::collection::vec(any::<u64>(), 1..16)) {
        // r1 accumulates a xor-rotate fold of the inputs; compare
        // against the same fold in Rust.
        let mut b = ProgramBuilder::new();
        b.mov(Reg(1), 0);
        for (i, v) in values.iter().enumerate() {
            b.mov(Reg(2), *v);
            b.xor(Reg(1), Reg(1), Reg(2));
            b.shl(Reg(3), Reg(1), ((i % 7) + 1) as u64);
            b.add(Reg(1), Reg(1), Reg(3));
        }
        b.halt();
        let got = Core::table_i().run(&b.build()).reg(Reg(1));
        let mut expect = 0u64;
        for (i, v) in values.iter().enumerate() {
            expect ^= v;
            expect = expect.wrapping_add(expect.wrapping_shl(((i % 7) + 1) as u32));
        }
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn predictors_saturate_on_constant_direction(
        pc in 0usize..10_000,
        taken in any::<bool>(),
        warm in 2usize..20,
    ) {
        let mut bimodal = BimodalPredictor::new(1024);
        let mut gshare = GsharePredictor::new(1024, 6);
        for _ in 0..warm {
            bimodal.update(pc, taken);
        }
        // Gshare's index moves with the history, so it needs the history
        // register to saturate (6 bits) before its steady-state counter
        // trains.
        for _ in 0..warm + 8 {
            gshare.update(pc, taken);
        }
        prop_assert_eq!(bimodal.predict(pc), taken);
        prop_assert_eq!(gshare.predict(pc), taken);
    }

    #[test]
    fn loop_counts_exactly(n in 1u64..300) {
        let mut b = ProgramBuilder::new();
        b.mov(Reg(1), 0);
        b.label("loop");
        b.add(Reg(1), Reg(1), 1u64);
        b.branch(Cond::Lt, Reg(1), n, "loop");
        b.halt();
        let r = Core::table_i().run(&b.build());
        prop_assert_eq!(r.reg(Reg(1)), n);
        prop_assert_eq!(r.stats.branches, n);
    }

    #[test]
    fn stores_commit_in_program_order(slots in proptest::collection::vec((0u64..32, any::<u64>()), 1..40)) {
        let mut b = ProgramBuilder::new();
        b.mov(Reg(1), 0x8000);
        for (slot, val) in &slots {
            b.mov(Reg(2), *val);
            b.store(Reg(2), Reg(1), (slot * 8) as i64);
        }
        b.halt();
        let mut core = Core::table_i();
        core.run(&b.build());
        let mut model = std::collections::HashMap::new();
        for (slot, val) in &slots {
            model.insert(*slot, *val);
        }
        for (slot, val) in model {
            prop_assert_eq!(
                core.mem().read_u64(unxpec_mem::Addr::new(0x8000 + slot * 8)),
                val
            );
        }
    }
}

mod asm_roundtrip {
    use proptest::prelude::*;
    use unxpec_cpu::{parse_asm, AluOp, Cond, Inst, Operand, ProgramBuilder, Reg};

    fn inst_strategy(len: usize) -> impl Strategy<Value = Inst> {
        let reg = (0u8..32).prop_map(Reg);
        let operand = prop_oneof![
            (0u8..32).prop_map(|r| Operand::Reg(Reg(r))),
            any::<u64>().prop_map(Operand::Imm),
        ];
        let alu = prop_oneof![
            Just(AluOp::Add),
            Just(AluOp::Sub),
            Just(AluOp::Mul),
            Just(AluOp::And),
            Just(AluOp::Or),
            Just(AluOp::Xor),
            Just(AluOp::Shl),
            Just(AluOp::Shr),
        ];
        let cond = prop_oneof![
            Just(Cond::Lt),
            Just(Cond::Ge),
            Just(Cond::Eq),
            Just(Cond::Ne)
        ];
        prop_oneof![
            (reg.clone(), any::<u64>()).prop_map(|(dst, imm)| Inst::MovImm { dst, imm }),
            (alu, reg.clone(), reg.clone(), operand.clone())
                .prop_map(|(op, dst, a, b)| Inst::Alu { op, dst, a, b }),
            (reg.clone(), reg.clone(), -512i64..512).prop_map(|(dst, base, offset)| Inst::Load {
                dst,
                base,
                offset: offset & !7
            }),
            (reg.clone(), reg.clone(), -512i64..512).prop_map(|(src, base, offset)| Inst::Store {
                src,
                base,
                offset: offset & !7
            }),
            (reg.clone(), -512i64..512).prop_map(|(base, offset)| Inst::Flush { base, offset }),
            Just(Inst::Fence),
            reg.clone().prop_map(|dst| Inst::ReadTime { dst }),
            (cond, reg.clone(), operand, 0..len).prop_map(|(cond, a, b, target)| Inst::Branch {
                cond,
                a,
                b,
                target
            }),
            (0..len).prop_map(|target| Inst::Jump { target }),
            reg.clone().prop_map(|target| Inst::JumpInd { target }),
            (0..len, reg.clone()).prop_map(|(target, sp)| Inst::Call { target, sp }),
            reg.prop_map(|sp| Inst::Ret { sp }),
            Just(Inst::Nop),
            Just(Inst::Halt),
        ]
    }

    proptest! {
        #[test]
        fn listing_round_trips_through_the_assembler(
            insts in proptest::collection::vec(inst_strategy(32), 1..32)
        ) {
            let mut b = ProgramBuilder::new();
            for inst in &insts {
                b.push(*inst);
            }
            let original = b.build();
            // Strip the PC column the listing prints.
            let listing: String = original
                .to_string()
                .lines()
                .map(|l| {
                    l.trim_start().split_once(char::is_whitespace).map(|x| x.1)
                        .unwrap_or("")
                        .trim()
                        .to_string()
                })
                .collect::<Vec<_>>()
                .join("\n");
            let reparsed = parse_asm(&listing).unwrap();
            prop_assert_eq!(original.instructions(), reparsed.instructions());
        }
    }
}
