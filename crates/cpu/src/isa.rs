//! The micro-ISA executed by the simulated core.
//!
//! The instruction set is deliberately small — just enough to express the
//! paper's attack code (Algorithms 1 and 2, the unXpec sender/receiver)
//! and the synthetic workloads: ALU ops, loads/stores, `clflush`-style
//! flushes, memory fences, an attacker-readable cycle counter (`rdtscp`),
//! and conditional branches that go through the branch predictor.

use std::fmt;

/// Number of architectural registers.
pub const NUM_REGS: usize = 32;

/// An architectural register `r0..r31`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub u8);

impl Reg {
    /// Index into the register file.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A register or immediate operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operand {
    /// Register operand.
    Reg(Reg),
    /// Immediate operand.
    Imm(u64),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(i) => write!(f, "{i}"),
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<u64> for Operand {
    fn from(i: u64) -> Self {
        Operand::Imm(i)
    }
}

/// ALU operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication (longer latency).
    Mul,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical left shift.
    Shl,
    /// Logical right shift.
    Shr,
}

impl AluOp {
    /// Applies the operation.
    pub fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => a.wrapping_shl(b as u32),
            AluOp::Shr => a.wrapping_shr(b as u32),
        }
    }
}

/// Branch condition comparing a register with an operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cond {
    /// `a < b` (unsigned).
    Lt,
    /// `a >= b` (unsigned).
    Ge,
    /// `a == b`.
    Eq,
    /// `a != b`.
    Ne,
}

impl Cond {
    /// Evaluates the condition.
    pub fn eval(self, a: u64, b: u64) -> bool {
        match self {
            Cond::Lt => a < b,
            Cond::Ge => a >= b,
            Cond::Eq => a == b,
            Cond::Ne => a != b,
        }
    }
}

/// A resolved branch target: an index into the program.
pub type PcIndex = usize;

/// One micro-instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Inst {
    /// `dst = imm`.
    MovImm {
        /// Destination register.
        dst: Reg,
        /// Immediate value.
        imm: u64,
    },
    /// `dst = a <op> b`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination register.
        dst: Reg,
        /// Left source.
        a: Reg,
        /// Right source.
        b: Operand,
    },
    /// `dst = mem[base + offset]` (8-byte load through the D-cache).
    Load {
        /// Destination register.
        dst: Reg,
        /// Base address register.
        base: Reg,
        /// Byte displacement.
        offset: i64,
    },
    /// `mem[base + offset] = src` (committed stores only touch memory
    /// and caches at commit, like a real store buffer).
    Store {
        /// Value to store.
        src: Reg,
        /// Base address register.
        base: Reg,
        /// Byte displacement.
        offset: i64,
    },
    /// `clflush` of the line containing `base + offset`.
    Flush {
        /// Base address register.
        base: Reg,
        /// Byte displacement.
        offset: i64,
    },
    /// Memory fence: younger instructions do not dispatch until every
    /// older memory operation has completed (the paper's trick for
    /// zeroing out T4 of the cleanup timeline).
    Fence,
    /// `dst = current cycle` — an `rdtscp`-like serializing timer read
    /// that waits for all older instructions to complete.
    ReadTime {
        /// Destination register.
        dst: Reg,
    },
    /// Conditional branch, predicted by the branch predictor.
    Branch {
        /// Condition code.
        cond: Cond,
        /// Left comparand.
        a: Reg,
        /// Right comparand.
        b: Operand,
        /// Target when the condition holds.
        target: PcIndex,
    },
    /// Unconditional jump.
    Jump {
        /// Target.
        target: PcIndex,
    },
    /// Indirect jump: the target PC is the value of a register. The
    /// front end predicts it through the BTB — the Spectre-v2 attack
    /// surface.
    JumpInd {
        /// Register holding the target PC.
        target: Reg,
    },
    /// Call: pushes the return address onto the in-memory stack at
    /// `[sp - 8]` (decrementing `sp`), pushes it onto the return stack
    /// buffer, and jumps to `target`.
    Call {
        /// Static call target.
        target: PcIndex,
        /// Stack-pointer register.
        sp: Reg,
    },
    /// Return: loads the return address from `[sp]` (incrementing
    /// `sp`). The front end predicts through the return stack buffer —
    /// the SpectreRSB / ret2spec attack surface: if the architectural
    /// return address diverges from the RSB, speculation runs at the
    /// stale predicted site.
    Ret {
        /// Stack-pointer register.
        sp: Reg,
    },
    /// No operation (pipeline filler).
    Nop,
    /// Stops the program.
    Halt,
}

impl Inst {
    /// Whether this instruction reads or writes memory.
    pub fn is_memory(self) -> bool {
        matches!(
            self,
            Inst::Load { .. } | Inst::Store { .. } | Inst::Flush { .. }
        )
    }

    /// Whether this is a control-flow instruction.
    pub fn is_control(self) -> bool {
        matches!(
            self,
            Inst::Branch { .. }
                | Inst::Jump { .. }
                | Inst::JumpInd { .. }
                | Inst::Call { .. }
                | Inst::Ret { .. }
                | Inst::Halt
        )
    }

    /// Whether the front end opens a speculation frame at this
    /// instruction: conditional branches (the predictor), indirect jumps
    /// (the BTB), and returns (the RSB) all execute younger instructions
    /// before their real target is known.
    pub fn is_speculation_source(self) -> bool {
        matches!(
            self,
            Inst::Branch { .. } | Inst::JumpInd { .. } | Inst::Ret { .. }
        )
    }

    /// The architectural register this instruction writes, if any.
    ///
    /// `Call` and `Ret` report the stack pointer they adjust; `Store`
    /// and `Flush` write memory, not a register.
    pub fn def_reg(self) -> Option<Reg> {
        match self {
            Inst::MovImm { dst, .. }
            | Inst::Alu { dst, .. }
            | Inst::Load { dst, .. }
            | Inst::ReadTime { dst } => Some(dst),
            Inst::Call { sp, .. } | Inst::Ret { sp } => Some(sp),
            Inst::Store { .. }
            | Inst::Flush { .. }
            | Inst::Fence
            | Inst::Branch { .. }
            | Inst::Jump { .. }
            | Inst::JumpInd { .. }
            | Inst::Nop
            | Inst::Halt => None,
        }
    }

    /// The architectural registers this instruction reads, in operand
    /// order (at most three).
    pub fn src_regs(self) -> impl Iterator<Item = Reg> {
        let reg_of = |op: Operand| match op {
            Operand::Reg(r) => Some(r),
            Operand::Imm(_) => None,
        };
        let srcs: [Option<Reg>; 3] = match self {
            Inst::Alu { a, b, .. } => [Some(a), reg_of(b), None],
            Inst::Load { base, .. } | Inst::Flush { base, .. } => [Some(base), None, None],
            Inst::Store { src, base, .. } => [Some(src), Some(base), None],
            Inst::Branch { a, b, .. } => [Some(a), reg_of(b), None],
            Inst::JumpInd { target } => [Some(target), None, None],
            Inst::Call { sp, .. } | Inst::Ret { sp } => [Some(sp), None, None],
            Inst::MovImm { .. }
            | Inst::Fence
            | Inst::ReadTime { .. }
            | Inst::Jump { .. }
            | Inst::Nop
            | Inst::Halt => [None, None, None],
        };
        srcs.into_iter().flatten()
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Inst::MovImm { dst, imm } => write!(f, "mov {dst}, {imm:#x}"),
            Inst::Alu { op, dst, a, b } => write!(f, "{op:?} {dst}, {a}, {b}").map(|_| ()),
            Inst::Load { dst, base, offset } => write!(f, "load {dst}, [{base}{offset:+}]"),
            Inst::Store { src, base, offset } => write!(f, "store [{base}{offset:+}], {src}"),
            Inst::Flush { base, offset } => write!(f, "clflush [{base}{offset:+}]"),
            Inst::Fence => write!(f, "mfence"),
            Inst::ReadTime { dst } => write!(f, "rdtscp {dst}"),
            Inst::Branch { cond, a, b, target } => {
                write!(f, "b{cond:?} {a}, {b} -> @{target}")
            }
            Inst::Jump { target } => write!(f, "jmp @{target}"),
            Inst::JumpInd { target } => write!(f, "jmp [{target}]"),
            Inst::Call { target, sp } => write!(f, "call @{target}, {sp}"),
            Inst::Ret { sp } => write!(f, "ret {sp}"),
            Inst::Nop => write!(f, "nop"),
            Inst::Halt => write!(f, "halt"),
        }
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;

    #[test]
    fn alu_semantics() {
        assert_eq!(AluOp::Add.apply(2, 3), 5);
        assert_eq!(AluOp::Sub.apply(2, 3), u64::MAX);
        assert_eq!(AluOp::Mul.apply(1 << 40, 1 << 40), 0); // wraps
        assert_eq!(AluOp::Shl.apply(1, 6), 64);
        assert_eq!(AluOp::Shr.apply(128, 3), 16);
        assert_eq!(AluOp::Xor.apply(0b1100, 0b1010), 0b0110);
    }

    #[test]
    fn cond_semantics() {
        assert!(Cond::Lt.eval(1, 2));
        assert!(!Cond::Lt.eval(2, 2));
        assert!(Cond::Ge.eval(2, 2));
        assert!(Cond::Eq.eval(7, 7));
        assert!(Cond::Ne.eval(7, 8));
    }

    #[test]
    fn classification() {
        assert!(Inst::Load {
            dst: Reg(0),
            base: Reg(1),
            offset: 0
        }
        .is_memory());
        assert!(!Inst::Fence.is_control());
        assert!(Inst::Halt.is_control());
        assert!(!Inst::Nop.is_memory());
    }

    #[test]
    fn def_and_src_regs_cover_the_dataflow() {
        let load = Inst::Load {
            dst: Reg(1),
            base: Reg(2),
            offset: 8,
        };
        assert_eq!(load.def_reg(), Some(Reg(1)));
        assert_eq!(load.src_regs().collect::<Vec<_>>(), vec![Reg(2)]);

        let alu = Inst::Alu {
            op: AluOp::Add,
            dst: Reg(3),
            a: Reg(4),
            b: Operand::Reg(Reg(5)),
        };
        assert_eq!(alu.def_reg(), Some(Reg(3)));
        assert_eq!(alu.src_regs().collect::<Vec<_>>(), vec![Reg(4), Reg(5)]);

        let store = Inst::Store {
            src: Reg(6),
            base: Reg(7),
            offset: 0,
        };
        assert_eq!(store.def_reg(), None);
        assert_eq!(store.src_regs().collect::<Vec<_>>(), vec![Reg(6), Reg(7)]);

        let ret = Inst::Ret { sp: Reg(30) };
        assert_eq!(ret.def_reg(), Some(Reg(30)));
        assert_eq!(ret.src_regs().collect::<Vec<_>>(), vec![Reg(30)]);

        assert_eq!(Inst::Fence.def_reg(), None);
        assert_eq!(Inst::Fence.src_regs().count(), 0);
    }

    #[test]
    fn speculation_sources_are_the_predicted_control_flow() {
        assert!(Inst::Branch {
            cond: Cond::Lt,
            a: Reg(0),
            b: Operand::Imm(1),
            target: 0,
        }
        .is_speculation_source());
        assert!(Inst::JumpInd { target: Reg(1) }.is_speculation_source());
        assert!(Inst::Ret { sp: Reg(30) }.is_speculation_source());
        assert!(!Inst::Jump { target: 0 }.is_speculation_source());
        assert!(!Inst::Call {
            target: 0,
            sp: Reg(30)
        }
        .is_speculation_source());
        assert!(!Inst::Halt.is_speculation_source());
    }

    #[test]
    fn display_is_nonempty() {
        let insts = [
            Inst::MovImm {
                dst: Reg(1),
                imm: 5,
            },
            Inst::Fence,
            Inst::Halt,
            Inst::Branch {
                cond: Cond::Lt,
                a: Reg(0),
                b: Operand::Imm(4),
                target: 9,
            },
        ];
        for i in insts {
            assert!(!format!("{i}").is_empty());
        }
    }
}
