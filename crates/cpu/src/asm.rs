//! Text assembler for the micro-ISA.
//!
//! Lets attack programs and test kernels live in `.asm` files instead of
//! builder code. The accepted syntax is exactly what [`Program`]'s
//! `Display` listing prints (minus the PC column), so
//! `parse(program.to_string())` round-trips:
//!
//! ```text
//! ; one measurement round (comments with ';' or '#')
//! start:
//!   mov r1, 0x1000
//!   load r2, [r1+0]
//!   Add r3, r2, 5
//!   bLt r3, 10 -> start    ; labels or numeric @targets
//!   rdtscp r20
//!   halt
//! ```

use std::collections::HashMap;
use std::fmt;

use crate::isa::{AluOp, Cond, Inst, Operand, Reg};
use crate::program::{Program, ProgramBuilder};

/// An assembly parse error with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAsmError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseAsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseAsmError {}

fn err(line: usize, message: impl Into<String>) -> ParseAsmError {
    ParseAsmError {
        line,
        message: message.into(),
    }
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, ParseAsmError> {
    let tok = tok.trim();
    let num = tok
        .strip_prefix('r')
        .or_else(|| tok.strip_prefix('R'))
        .ok_or_else(|| err(line, format!("expected register, got {tok:?}")))?;
    let n: u8 = num
        .parse()
        .map_err(|_| err(line, format!("bad register {tok:?}")))?;
    if (n as usize) < crate::isa::NUM_REGS {
        Ok(Reg(n))
    } else {
        Err(err(line, format!("register {tok} out of range")))
    }
}

fn parse_imm(tok: &str, line: usize) -> Result<u64, ParseAsmError> {
    let tok = tok.trim();
    let parsed = if let Some(hex) = tok.strip_prefix("0x").or_else(|| tok.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        tok.parse()
    };
    parsed.map_err(|_| err(line, format!("bad immediate {tok:?}")))
}

fn parse_operand(tok: &str, line: usize) -> Result<Operand, ParseAsmError> {
    let tok = tok.trim();
    if tok.starts_with('r') || tok.starts_with('R') {
        parse_reg(tok, line).map(Operand::Reg)
    } else {
        parse_imm(tok, line).map(Operand::Imm)
    }
}

/// Parses `[rN+off]` / `[rN-off]` / `[rN]` into `(base, offset)`.
fn parse_mem(tok: &str, line: usize) -> Result<(Reg, i64), ParseAsmError> {
    let tok = tok.trim();
    let inner = tok
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| err(line, format!("expected [reg+offset], got {tok:?}")))?;
    if let Some(plus) = inner.find('+') {
        let base = parse_reg(&inner[..plus], line)?;
        let off = parse_imm(&inner[plus + 1..], line)? as i64;
        Ok((base, off))
    } else if let Some(minus) = inner.rfind('-') {
        let base = parse_reg(&inner[..minus], line)?;
        let off = parse_imm(&inner[minus + 1..], line)? as i64;
        Ok((base, -off))
    } else {
        Ok((parse_reg(inner, line)?, 0))
    }
}

fn split_args(rest: &str) -> Vec<String> {
    rest.split(',').map(|a| a.trim().to_string()).collect()
}

fn parse_alu(op: AluOp, rest: &str, line: usize) -> Result<Inst, ParseAsmError> {
    let args = split_args(rest);
    if args.len() != 3 {
        return Err(err(line, "ALU ops take 3 operands"));
    }
    Ok(Inst::Alu {
        op,
        dst: parse_reg(&args[0], line)?,
        a: parse_reg(&args[1], line)?,
        b: parse_operand(&args[2], line)?,
    })
}

/// A parsed branch target: a label name or a numeric `@N`.
#[derive(Debug, Clone)]
enum Target {
    Label(String),
    Absolute(usize),
}

fn parse_target(tok: &str, line: usize) -> Result<Target, ParseAsmError> {
    let tok = tok.trim();
    if let Some(num) = tok.strip_prefix('@') {
        num.parse()
            .map(Target::Absolute)
            .map_err(|_| err(line, format!("bad absolute target {tok:?}")))
    } else if tok.is_empty() {
        Err(err(line, "missing branch target"))
    } else {
        Ok(Target::Label(tok.to_string()))
    }
}

/// Parses an assembly listing into a [`Program`].
///
/// # Errors
///
/// Returns the first syntax error with its source line, or an error for
/// an undefined label.
///
/// # Examples
///
/// ```
/// use unxpec_cpu::{parse_asm, Core, Reg};
///
/// let program = parse_asm(
///     "mov r1, 21\n\
///      add r2, r1, r1\n\
///      halt\n",
/// ).unwrap();
/// assert_eq!(Core::table_i().run(&program).reg(Reg(2)), 42);
/// ```
pub fn parse_asm(text: &str) -> Result<Program, ParseAsmError> {
    // First pass: strip comments, collect label positions and raw
    // instruction lines.
    let mut items: Vec<(usize, String)> = Vec::new(); // (src line, inst text)
    let mut labels: HashMap<String, usize> = HashMap::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let code = raw.split([';', '#']).next().unwrap_or("").trim();
        if code.is_empty() {
            continue;
        }
        if let Some(name) = code.strip_suffix(':') {
            let name = name.trim();
            if name.is_empty() || name.contains(char::is_whitespace) {
                return Err(err(line_no, format!("bad label {code:?}")));
            }
            if labels.insert(name.to_string(), items.len()).is_some() {
                return Err(err(line_no, format!("label {name:?} defined twice")));
            }
        } else {
            items.push((line_no, code.to_string()));
        }
    }

    let resolve = |target: Target, line: usize| -> Result<usize, ParseAsmError> {
        match target {
            Target::Absolute(pc) => Ok(pc),
            Target::Label(name) => labels
                .get(&name)
                .copied()
                .ok_or_else(|| err(line, format!("undefined label {name:?}"))),
        }
    };

    // Invert the label map so labels attach during the build pass.
    let mut labels_at: HashMap<usize, Vec<String>> = HashMap::new();
    for (name, pc) in &labels {
        labels_at.entry(*pc).or_default().push(name.clone());
    }

    let mut b = ProgramBuilder::new();
    for (index, (line, code)) in items.iter().enumerate() {
        let (line, code) = (*line, code.clone());
        if let Some(names) = labels_at.get(&index) {
            for name in names {
                b.label(name);
            }
        }
        let (mnemonic, rest) = match code.find(char::is_whitespace) {
            Some(i) => (&code[..i], code[i..].trim()),
            None => (code.as_str(), ""),
        };
        let lower = mnemonic.to_ascii_lowercase();
        let inst = match lower.as_str() {
            "mov" => {
                let args = split_args(rest);
                if args.len() != 2 {
                    return Err(err(line, "mov takes 2 operands"));
                }
                Inst::MovImm {
                    dst: parse_reg(&args[0], line)?,
                    imm: parse_imm(&args[1], line)?,
                }
            }
            "add" => parse_alu(AluOp::Add, rest, line)?,
            "sub" => parse_alu(AluOp::Sub, rest, line)?,
            "mul" => parse_alu(AluOp::Mul, rest, line)?,
            "and" => parse_alu(AluOp::And, rest, line)?,
            "or" => parse_alu(AluOp::Or, rest, line)?,
            "xor" => parse_alu(AluOp::Xor, rest, line)?,
            "shl" => parse_alu(AluOp::Shl, rest, line)?,
            "shr" => parse_alu(AluOp::Shr, rest, line)?,
            "load" => {
                let args = split_args(rest);
                if args.len() != 2 {
                    return Err(err(line, "load takes `dst, [base+off]`"));
                }
                let (base, offset) = parse_mem(&args[1], line)?;
                Inst::Load {
                    dst: parse_reg(&args[0], line)?,
                    base,
                    offset,
                }
            }
            "store" => {
                let args = split_args(rest);
                if args.len() != 2 {
                    return Err(err(line, "store takes `[base+off], src`"));
                }
                let (base, offset) = parse_mem(&args[0], line)?;
                Inst::Store {
                    src: parse_reg(&args[1], line)?,
                    base,
                    offset,
                }
            }
            "clflush" => {
                let (base, offset) = parse_mem(rest, line)?;
                Inst::Flush { base, offset }
            }
            "mfence" | "fence" => Inst::Fence,
            "rdtscp" | "rdtsc" => Inst::ReadTime {
                dst: parse_reg(rest, line)?,
            },
            "jmp" | "jump" => {
                if rest.starts_with('[') {
                    let (base, offset) = parse_mem(rest, line)?;
                    if offset != 0 {
                        return Err(err(line, "indirect jumps take a bare register"));
                    }
                    Inst::JumpInd { target: base }
                } else {
                    Inst::Jump {
                        target: resolve(parse_target(rest, line)?, line)?,
                    }
                }
            }
            "call" => {
                let args = split_args(rest);
                if args.len() != 2 {
                    return Err(err(line, "call takes `target, sp`"));
                }
                Inst::Call {
                    target: resolve(parse_target(&args[0], line)?, line)?,
                    sp: parse_reg(&args[1], line)?,
                }
            }
            "ret" => Inst::Ret {
                sp: parse_reg(rest, line)?,
            },
            "nop" => Inst::Nop,
            "halt" => Inst::Halt,
            _ if lower.starts_with('b') => {
                let cond = match &lower[1..] {
                    "lt" => Cond::Lt,
                    "ge" => Cond::Ge,
                    "eq" => Cond::Eq,
                    "ne" => Cond::Ne,
                    _ => return Err(err(line, format!("unknown mnemonic {mnemonic:?}"))),
                };
                // `bLt r1, r2 -> label` or `blt r1, r2, label`.
                let (operands, target) = if let Some(arrow) = rest.find("->") {
                    (&rest[..arrow], rest[arrow + 2..].trim())
                } else {
                    let args = rest;
                    match args.rfind(',') {
                        Some(i) => (&args[..i], args[i + 1..].trim()),
                        None => return Err(err(line, "branch needs a target")),
                    }
                };
                let args = split_args(operands);
                if args.len() != 2 {
                    return Err(err(line, "branch takes 2 comparands"));
                }
                Inst::Branch {
                    cond,
                    a: parse_reg(&args[0], line)?,
                    b: parse_operand(&args[1], line)?,
                    target: resolve(parse_target(target, line)?, line)?,
                }
            }
            other => return Err(err(line, format!("unknown mnemonic {other:?}"))),
        };
        b.push(inst);
    }
    // Trailing labels (pointing one past the last instruction).
    if let Some(names) = labels_at.get(&b.here()) {
        for name in names {
            b.label(name);
        }
    }
    Ok(b.build())
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;
    use crate::core::Core;

    #[test]
    fn parses_a_full_program() {
        let program = parse_asm(
            "; compute 10 * 4 via a loop\n\
             mov r1, 0\n\
             mov r2, 0\n\
             loop:\n\
             add r1, r1, 4   # accumulate\n\
             add r2, r2, 1\n\
             bLt r2, 10 -> loop\n\
             halt\n",
        )
        .unwrap();
        let r = Core::table_i().run(&program);
        assert_eq!(r.reg(Reg(1)), 40);
    }

    #[test]
    fn memory_and_fence_syntax() {
        let program = parse_asm(
            "mov r1, 0x2000\n\
             mov r2, 99\n\
             store [r1+8], r2\n\
             clflush [r1+8]\n\
             mfence\n\
             load r3, [r1+8]\n\
             rdtscp r4\n\
             halt\n",
        )
        .unwrap();
        let mut core = Core::table_i();
        let r = core.run(&program);
        assert_eq!(r.reg(Reg(3)), 99);
        assert!(r.reg(Reg(4)) > 100, "flushed reload goes to memory");
    }

    #[test]
    fn indirect_jump_syntax() {
        let program = parse_asm(
            "mov r1, 4\n\
             jmp [r1]\n\
             mov r2, 1\n\
             halt\n\
             mov r3, 7\n\
             halt\n",
        )
        .unwrap();
        let r = Core::table_i().run(&program);
        assert_eq!(r.reg(Reg(3)), 7);
        assert_eq!(r.reg(Reg(2)), 0);
    }

    #[test]
    fn display_listing_round_trips() {
        let mut b = ProgramBuilder::new();
        b.mov(Reg(1), 0x40);
        b.label("back");
        b.load(Reg(2), Reg(1), 8);
        b.sub(Reg(2), Reg(2), 1u64);
        b.store(Reg(2), Reg(1), -8);
        b.branch(Cond::Ne, Reg(2), Reg(3), "back");
        b.flush(Reg(1), 0);
        b.fence();
        b.rdtsc(Reg(4));
        b.jump_ind(Reg(1));
        b.nop();
        b.halt();
        let original = b.build();
        // Strip the PC column the listing prints.
        let listing: String = original
            .to_string()
            .lines()
            .map(|l| {
                let t = l.trim_start();
                if t.ends_with(':') {
                    t.to_string()
                } else {
                    // "  12  inst" -> "inst"
                    t.split_once(char::is_whitespace)
                        .map(|x| x.1)
                        .unwrap_or("")
                        .trim()
                        .to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        let reparsed = parse_asm(&listing).unwrap();
        assert_eq!(original.instructions(), reparsed.instructions());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_asm("mov r1, 1\nbogus r2\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));
        let e = parse_asm("jmp nowhere\n").unwrap_err();
        assert!(e.message.contains("undefined label"));
        let e = parse_asm("mov r99, 1\n").unwrap_err();
        assert!(e.message.contains("out of range"));
    }

    #[test]
    fn duplicate_label_is_an_error() {
        let e = parse_asm("x:\nnop\nx:\nhalt\n").unwrap_err();
        assert!(e.message.contains("twice"));
    }
}
