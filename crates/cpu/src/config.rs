//! Core configuration (the processor row of Table I).

use crate::Cycle;

/// Out-of-order core parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreConfig {
    /// Instructions dispatched per cycle.
    pub dispatch_width: u64,
    /// Reorder-buffer entries (192 in Table I).
    pub rob_entries: usize,
    /// Loads that may issue per cycle.
    pub load_ports: u64,
    /// Simple ALU latency.
    pub alu_latency: Cycle,
    /// Multiply latency.
    pub mul_latency: Cycle,
    /// Cycles from operands-ready to branch resolution.
    pub branch_resolve_latency: Cycle,
    /// Pipeline-refill penalty after any squash, before the defense's
    /// cleanup stall is added.
    pub squash_penalty: Cycle,
    /// Latency of the timer read itself.
    pub timer_latency: Cycle,
    /// Upper bound on simulated cycles per `run` (runaway guard).
    pub max_cycles: Cycle,
    /// Upper bound on committed instructions per `run`.
    pub max_insts: u64,
}

impl CoreConfig {
    /// The configuration of Table I: a 2 GHz out-of-order core with a
    /// 192-entry ROB.
    pub fn table_i() -> Self {
        CoreConfig {
            dispatch_width: 4,
            rob_entries: 192,
            load_ports: 2,
            alu_latency: 1,
            mul_latency: 3,
            branch_resolve_latency: 1,
            squash_penalty: 5,
            timer_latency: 2,
            max_cycles: 2_000_000_000,
            max_insts: 4_000_000_000,
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if any width or capacity is zero.
    pub fn validate(&self) {
        assert!(self.dispatch_width > 0, "dispatch width must be positive");
        assert!(self.rob_entries > 0, "ROB must have entries");
        assert!(self.load_ports > 0, "need at least one load port");
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self::table_i()
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;

    #[test]
    fn table_i_matches_paper() {
        let cfg = CoreConfig::table_i();
        assert_eq!(cfg.rob_entries, 192);
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "ROB")]
    fn zero_rob_panics() {
        let mut cfg = CoreConfig::table_i();
        cfg.rob_entries = 0;
        cfg.validate();
    }
}
