//! Per-instruction execution traces (gem5's `--debug-flags=Exec`
//! analogue), for debugging attack programs and inspecting speculation.

use std::fmt;

use unxpec_cache::Cycle;

use crate::isa::{Inst, PcIndex};

/// One executed (possibly wrong-path) instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Dynamic sequence number.
    pub seq: u64,
    /// Static PC.
    pub pc: PcIndex,
    /// The instruction.
    pub inst: Inst,
    /// Dispatch cycle.
    pub dispatch_cycle: Cycle,
    /// Completion cycle.
    pub complete_cycle: Cycle,
    /// Whether the instruction executed on a wrong (to-be-squashed)
    /// path.
    pub wrong_path: bool,
}

/// A full run trace.
/// # Examples
///
/// ```
/// use unxpec_cpu::{Core, ProgramBuilder, Reg};
///
/// let mut core = Core::table_i();
/// core.set_tracing(true);
/// let mut b = ProgramBuilder::new();
/// b.mov(Reg(1), 7);
/// b.halt();
/// let trace = core.run(&b.build()).trace.unwrap();
/// assert_eq!(trace.len(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecTrace {
    /// Events in dispatch order.
    pub events: Vec<TraceEvent>,
}

impl ExecTrace {
    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events that executed on the wrong path.
    pub fn wrong_path_events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(|e| e.wrong_path)
    }

    /// Events touching memory (loads/stores/flushes).
    pub fn memory_events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(|e| e.inst.is_memory())
    }

    /// Execution count per static PC, ascending by PC — how often each
    /// instruction ran, wrong-path executions included (re-executions of
    /// a PC inside a speculation loop show up as counts > 1).
    pub fn per_pc_histogram(&self) -> Vec<(PcIndex, u64)> {
        let mut counts: std::collections::BTreeMap<PcIndex, u64> = Default::default();
        for e in &self.events {
            *counts.entry(e.pc).or_insert(0) += 1;
        }
        counts.into_iter().collect()
    }

    /// Hand-rolled JSON dump:
    /// `{"events": [{"seq": .., "pc": .., "inst": "..", "dispatch_cycle":
    /// .., "complete_cycle": .., "wrong_path": bool}, ...]}`.
    ///
    /// The instruction is its `Display` rendering with `"` and `\`
    /// escaped; every other field is a bare integer or boolean, so the
    /// output is valid JSON by construction.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"events\": [");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let inst = e
                .inst
                .to_string()
                .replace('\\', "\\\\")
                .replace('"', "\\\"");
            out.push_str(&format!(
                "\n  {{\"seq\": {}, \"pc\": {}, \"inst\": \"{}\", \"dispatch_cycle\": {}, \"complete_cycle\": {}, \"wrong_path\": {}}}",
                e.seq, e.pc, inst, e.dispatch_cycle, e.complete_cycle, e.wrong_path
            ));
        }
        out.push_str("\n]}\n");
        out
    }
}

impl fmt::Display for ExecTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "  seq      cycle..done  path  pc    instruction")?;
        for e in &self.events {
            writeln!(
                f,
                "  {:>5}  {:>6}..{:<6}  {}  @{:<4} {}",
                e.seq,
                e.dispatch_cycle,
                e.complete_cycle,
                if e.wrong_path { "WP " } else { "   " },
                e.pc,
                e.inst
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;
    use crate::isa::Reg;

    fn event(seq: u64, wrong: bool, inst: Inst) -> TraceEvent {
        TraceEvent {
            seq,
            pc: seq as usize,
            inst,
            dispatch_cycle: seq,
            complete_cycle: seq + 1,
            wrong_path: wrong,
        }
    }

    #[test]
    fn filters_work() {
        let trace = ExecTrace {
            events: vec![
                event(0, false, Inst::Nop),
                event(
                    1,
                    true,
                    Inst::Load {
                        dst: Reg(1),
                        base: Reg(2),
                        offset: 0,
                    },
                ),
                event(2, false, Inst::Fence),
            ],
        };
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.wrong_path_events().count(), 1);
        assert_eq!(trace.memory_events().count(), 1);
    }

    fn mixed_trace() -> ExecTrace {
        ExecTrace {
            events: vec![
                event(0, false, Inst::Nop),
                event(
                    1,
                    true,
                    Inst::Load {
                        dst: Reg(1),
                        base: Reg(2),
                        offset: 0,
                    },
                ),
                event(2, true, Inst::Nop),
                event(
                    3,
                    false,
                    Inst::Store {
                        src: Reg(1),
                        base: Reg(2),
                        offset: 0,
                    },
                ),
            ],
        }
    }

    #[test]
    fn filters_on_mixed_trace_partition_correctly() {
        let trace = mixed_trace();
        let wrong: Vec<u64> = trace.wrong_path_events().map(|e| e.seq).collect();
        assert_eq!(wrong, vec![1, 2]);
        let mem: Vec<u64> = trace.memory_events().map(|e| e.seq).collect();
        assert_eq!(mem, vec![1, 3]);
        // The two filters overlap only on the wrong-path load.
        let wrong_mem: Vec<u64> = trace
            .memory_events()
            .filter(|e| e.wrong_path)
            .map(|e| e.seq)
            .collect();
        assert_eq!(wrong_mem, vec![1]);
    }

    #[test]
    fn per_pc_histogram_counts_reexecutions() {
        let mut trace = mixed_trace();
        // PC 1 executes twice (e.g. wrong path then replay).
        trace.events.push(event(4, false, Inst::Nop));
        trace.events[4].pc = 1;
        let hist = trace.per_pc_histogram();
        assert_eq!(hist, vec![(0, 1), (1, 2), (2, 1), (3, 1)]);
    }

    #[test]
    fn json_export_is_well_formed() {
        let trace = mixed_trace();
        let json = trace.to_json();
        assert!(json.starts_with("{\"events\": ["));
        assert!(json.contains("\"wrong_path\": true"));
        assert!(json.contains("\"wrong_path\": false"));
        assert_eq!(json.matches("\"seq\"").count(), trace.len());
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        // No raw quotes can leak from the instruction rendering.
        let inst_text = Inst::Load {
            dst: Reg(1),
            base: Reg(2),
            offset: 0,
        }
        .to_string();
        assert!(json.contains(&inst_text.replace('"', "\\\"")));
    }

    #[test]
    fn empty_trace_exports_empty_array() {
        let json = ExecTrace::default().to_json();
        assert_eq!(json, "{\"events\": [\n]}\n");
    }

    #[test]
    fn display_marks_wrong_path() {
        let trace = ExecTrace {
            events: vec![event(0, true, Inst::Nop)],
        };
        assert!(trace.to_string().contains("WP"));
    }
}
