//! Per-instruction execution traces (gem5's `--debug-flags=Exec`
//! analogue), for debugging attack programs and inspecting speculation.

use std::fmt;

use unxpec_cache::Cycle;

use crate::isa::{Inst, PcIndex};

/// One executed (possibly wrong-path) instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Dynamic sequence number.
    pub seq: u64,
    /// Static PC.
    pub pc: PcIndex,
    /// The instruction.
    pub inst: Inst,
    /// Dispatch cycle.
    pub dispatch_cycle: Cycle,
    /// Completion cycle.
    pub complete_cycle: Cycle,
    /// Whether the instruction executed on a wrong (to-be-squashed)
    /// path.
    pub wrong_path: bool,
}

/// A full run trace.
/// # Examples
///
/// ```
/// use unxpec_cpu::{Core, ProgramBuilder, Reg};
///
/// let mut core = Core::table_i();
/// core.set_tracing(true);
/// let mut b = ProgramBuilder::new();
/// b.mov(Reg(1), 7);
/// b.halt();
/// let trace = core.run(&b.build()).trace.unwrap();
/// assert_eq!(trace.len(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecTrace {
    /// Events in dispatch order.
    pub events: Vec<TraceEvent>,
}

impl ExecTrace {
    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events that executed on the wrong path.
    pub fn wrong_path_events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(|e| e.wrong_path)
    }

    /// Events touching memory (loads/stores/flushes).
    pub fn memory_events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(|e| e.inst.is_memory())
    }
}

impl fmt::Display for ExecTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "  seq      cycle..done  path  pc    instruction")?;
        for e in &self.events {
            writeln!(
                f,
                "  {:>5}  {:>6}..{:<6}  {}  @{:<4} {}",
                e.seq,
                e.dispatch_cycle,
                e.complete_cycle,
                if e.wrong_path { "WP " } else { "   " },
                e.pc,
                e.inst
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Reg;

    fn event(seq: u64, wrong: bool, inst: Inst) -> TraceEvent {
        TraceEvent {
            seq,
            pc: seq as usize,
            inst,
            dispatch_cycle: seq,
            complete_cycle: seq + 1,
            wrong_path: wrong,
        }
    }

    #[test]
    fn filters_work() {
        let trace = ExecTrace {
            events: vec![
                event(0, false, Inst::Nop),
                event(1, true, Inst::Load { dst: Reg(1), base: Reg(2), offset: 0 }),
                event(2, false, Inst::Fence),
            ],
        };
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.wrong_path_events().count(), 1);
        assert_eq!(trace.memory_events().count(), 1);
    }

    #[test]
    fn display_marks_wrong_path() {
        let trace = ExecTrace {
            events: vec![event(0, true, Inst::Nop)],
        };
        assert!(trace.to_string().contains("WP"));
    }
}
