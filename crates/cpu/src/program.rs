//! Programs and the label-resolving builder that assembles them.

use std::collections::HashMap;
use std::fmt;

use crate::isa::{AluOp, Cond, Inst, Operand, PcIndex, Reg};

/// An assembled program: a vector of instructions with resolved targets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    insts: Vec<Inst>,
    labels: HashMap<String, PcIndex>,
}

impl Program {
    /// Instruction at `pc`, if in range.
    pub fn fetch(&self, pc: PcIndex) -> Option<Inst> {
        self.insts.get(pc).copied()
    }

    /// Number of static instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Position of a named label.
    pub fn label(&self, name: &str) -> Option<PcIndex> {
        self.labels.get(name).copied()
    }

    /// The instruction listing.
    pub fn instructions(&self) -> &[Inst] {
        &self.insts
    }

    /// All defined labels as `(name, position)` pairs, in unspecified
    /// order (static-analysis passes use this to name CFG nodes).
    pub fn labels(&self) -> impl Iterator<Item = (&str, PcIndex)> {
        self.labels.iter().map(|(name, pc)| (name.as_str(), *pc))
    }

    /// Positions of every `Call` instruction — the return sites
    /// (`pc + 1`) are what the return stack buffer can predict, which
    /// is exactly the transient-successor set of a `Ret`.
    pub fn call_sites(&self) -> impl Iterator<Item = PcIndex> + '_ {
        self.insts
            .iter()
            .enumerate()
            .filter(|(_, i)| matches!(i, Inst::Call { .. }))
            .map(|(pc, _)| pc)
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut by_pc: HashMap<PcIndex, Vec<&str>> = HashMap::new();
        for (name, pc) in &self.labels {
            by_pc.entry(*pc).or_default().push(name);
        }
        for (pc, inst) in self.insts.iter().enumerate() {
            if let Some(names) = by_pc.get(&pc) {
                for name in names {
                    writeln!(f, "{name}:")?;
                }
            }
            writeln!(f, "  {pc:4}  {inst}")?;
        }
        Ok(())
    }
}

/// Unresolved branch targets during assembly.
#[derive(Debug, Clone)]
enum Pending {
    Branch { at: PcIndex, label: String },
    Jump { at: PcIndex, label: String },
    Call { at: PcIndex, label: String },
}

/// An assembly error surfaced by [`ProgramBuilder::try_build`].
///
/// Carries the offending label name and the instruction index so a
/// workload generator composing programs from fragments can report
/// *which* emitted instruction referenced the missing target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A branch, jump, or call referenced a label that was never
    /// defined. `at` is the index of the referencing instruction.
    UndefinedLabel { label: String, at: PcIndex },
    /// A label name was bound at two positions.
    DuplicateLabel {
        label: String,
        first: PcIndex,
        second: PcIndex,
    },
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UndefinedLabel { label, at } => {
                write!(
                    f,
                    "undefined label {label:?} referenced by instruction {at}"
                )
            }
            AsmError::DuplicateLabel {
                label,
                first,
                second,
            } => {
                write!(
                    f,
                    "label {label:?} defined twice (instruction {first} and {second})"
                )
            }
        }
    }
}

impl std::error::Error for AsmError {}

/// Assembler with forward-reference label support.
///
/// # Examples
///
/// ```
/// use unxpec_cpu::{ProgramBuilder, Reg, Cond};
///
/// let mut b = ProgramBuilder::new();
/// b.mov(Reg(1), 0);
/// b.label("loop");
/// b.add(Reg(1), Reg(1), 1);
/// b.branch(Cond::Lt, Reg(1), 10, "loop");
/// b.halt();
/// let prog = b.build();
/// assert_eq!(prog.label("loop"), Some(1));
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    insts: Vec<Inst>,
    labels: HashMap<String, PcIndex>,
    pending: Vec<Pending>,
    duplicates: Vec<AsmError>,
}

impl ProgramBuilder {
    /// Starts an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current instruction index (where the next instruction lands).
    pub fn here(&self) -> PcIndex {
        self.insts.len()
    }

    /// Defines `name` at the current position.
    ///
    /// Redefining a label is recorded and reported as an
    /// [`AsmError::DuplicateLabel`] when the program is built.
    pub fn label(&mut self, name: &str) -> &mut Self {
        let here = self.here();
        if let Some(first) = self.labels.insert(name.to_owned(), here) {
            self.duplicates.push(AsmError::DuplicateLabel {
                label: name.to_owned(),
                first,
                second: here,
            });
        }
        self
    }

    /// Emits a raw instruction.
    pub fn push(&mut self, inst: Inst) -> &mut Self {
        self.insts.push(inst);
        self
    }

    /// `dst = imm`.
    pub fn mov(&mut self, dst: Reg, imm: u64) -> &mut Self {
        self.push(Inst::MovImm { dst, imm })
    }

    /// `dst = a + b`.
    pub fn add(&mut self, dst: Reg, a: Reg, b: impl Into<Operand>) -> &mut Self {
        self.push(Inst::Alu {
            op: AluOp::Add,
            dst,
            a,
            b: b.into(),
        })
    }

    /// `dst = a - b`.
    pub fn sub(&mut self, dst: Reg, a: Reg, b: impl Into<Operand>) -> &mut Self {
        self.push(Inst::Alu {
            op: AluOp::Sub,
            dst,
            a,
            b: b.into(),
        })
    }

    /// `dst = a * b`.
    pub fn mul(&mut self, dst: Reg, a: Reg, b: impl Into<Operand>) -> &mut Self {
        self.push(Inst::Alu {
            op: AluOp::Mul,
            dst,
            a,
            b: b.into(),
        })
    }

    /// `dst = a & b`.
    pub fn and(&mut self, dst: Reg, a: Reg, b: impl Into<Operand>) -> &mut Self {
        self.push(Inst::Alu {
            op: AluOp::And,
            dst,
            a,
            b: b.into(),
        })
    }

    /// `dst = a ^ b`.
    pub fn xor(&mut self, dst: Reg, a: Reg, b: impl Into<Operand>) -> &mut Self {
        self.push(Inst::Alu {
            op: AluOp::Xor,
            dst,
            a,
            b: b.into(),
        })
    }

    /// `dst = a | b`.
    pub fn or(&mut self, dst: Reg, a: Reg, b: impl Into<Operand>) -> &mut Self {
        self.push(Inst::Alu {
            op: AluOp::Or,
            dst,
            a,
            b: b.into(),
        })
    }

    /// `dst = a << b`.
    pub fn shl(&mut self, dst: Reg, a: Reg, b: impl Into<Operand>) -> &mut Self {
        self.push(Inst::Alu {
            op: AluOp::Shl,
            dst,
            a,
            b: b.into(),
        })
    }

    /// `dst = a >> b`.
    pub fn shr(&mut self, dst: Reg, a: Reg, b: impl Into<Operand>) -> &mut Self {
        self.push(Inst::Alu {
            op: AluOp::Shr,
            dst,
            a,
            b: b.into(),
        })
    }

    /// `dst = mem[base + offset]`.
    pub fn load(&mut self, dst: Reg, base: Reg, offset: i64) -> &mut Self {
        self.push(Inst::Load { dst, base, offset })
    }

    /// `mem[base + offset] = src`.
    pub fn store(&mut self, src: Reg, base: Reg, offset: i64) -> &mut Self {
        self.push(Inst::Store { src, base, offset })
    }

    /// `clflush [base + offset]`.
    pub fn flush(&mut self, base: Reg, offset: i64) -> &mut Self {
        self.push(Inst::Flush { base, offset })
    }

    /// Memory fence.
    pub fn fence(&mut self) -> &mut Self {
        self.push(Inst::Fence)
    }

    /// `dst = rdtscp()`.
    pub fn rdtsc(&mut self, dst: Reg) -> &mut Self {
        self.push(Inst::ReadTime { dst })
    }

    /// `nop`.
    pub fn nop(&mut self) -> &mut Self {
        self.push(Inst::Nop)
    }

    /// Conditional branch to `label` (forward references allowed).
    pub fn branch(&mut self, cond: Cond, a: Reg, b: impl Into<Operand>, label: &str) -> &mut Self {
        let at = self.here();
        self.pending.push(Pending::Branch {
            at,
            label: label.to_owned(),
        });
        self.push(Inst::Branch {
            cond,
            a,
            b: b.into(),
            target: usize::MAX,
        })
    }

    /// Indirect jump through `target` (the register holds a PC index;
    /// use [`Program::label`] positions or [`ProgramBuilder::here`] to
    /// compute them).
    pub fn jump_ind(&mut self, target: Reg) -> &mut Self {
        self.push(Inst::JumpInd { target })
    }

    /// Call to `label` with `sp` as the stack pointer.
    pub fn call(&mut self, label: &str, sp: Reg) -> &mut Self {
        let at = self.here();
        self.pending.push(Pending::Call {
            at,
            label: label.to_owned(),
        });
        self.push(Inst::Call {
            target: usize::MAX,
            sp,
        })
    }

    /// Return through `sp`.
    pub fn ret(&mut self, sp: Reg) -> &mut Self {
        self.push(Inst::Ret { sp })
    }

    /// Unconditional jump to `label`.
    pub fn jump(&mut self, label: &str) -> &mut Self {
        let at = self.here();
        self.pending.push(Pending::Jump {
            at,
            label: label.to_owned(),
        });
        self.push(Inst::Jump { target: usize::MAX })
    }

    /// `halt`.
    pub fn halt(&mut self) -> &mut Self {
        self.push(Inst::Halt)
    }

    /// Resolves labels and produces the program.
    ///
    /// # Panics
    ///
    /// Panics if assembly fails; use [`ProgramBuilder::try_build`] for
    /// the recoverable form.
    // A documented panicking wrapper over try_build, kept for test and
    // builder ergonomics.
    #[allow(clippy::disallowed_methods)]
    pub fn build(self) -> Program {
        self.try_build()
            .map_err(|e| e.to_string())
            .expect("assembly")
    }

    /// Resolves labels and produces the program, reporting duplicate
    /// definitions and unresolved references as typed [`AsmError`]s
    /// instead of panicking.
    pub fn try_build(mut self) -> Result<Program, AsmError> {
        if let Some(dup) = std::mem::take(&mut self.duplicates).into_iter().next() {
            return Err(dup);
        }
        for pending in std::mem::take(&mut self.pending) {
            match pending {
                Pending::Branch { at, label } => {
                    let target = self.lookup(label, at)?;
                    if let Inst::Branch { target: t, .. } = &mut self.insts[at] {
                        *t = target;
                    }
                }
                Pending::Jump { at, label } => {
                    let target = self.lookup(label, at)?;
                    if let Inst::Jump { target: t, .. } = &mut self.insts[at] {
                        *t = target;
                    }
                }
                Pending::Call { at, label } => {
                    let target = self.lookup(label, at)?;
                    if let Inst::Call { target: t, .. } = &mut self.insts[at] {
                        *t = target;
                    }
                }
            }
        }
        Ok(Program {
            insts: self.insts,
            labels: self.labels,
        })
    }

    /// Looks up `label` for the instruction at `at`.
    fn lookup(&self, label: String, at: PcIndex) -> Result<PcIndex, AsmError> {
        match self.labels.get(&label) {
            Some(target) => Ok(*target),
            None => Err(AsmError::UndefinedLabel { label, at }),
        }
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut b = ProgramBuilder::new();
        b.jump("end");
        b.label("back");
        b.nop();
        b.branch(Cond::Eq, Reg(0), 0u64, "back");
        b.label("end");
        b.halt();
        let p = b.build();
        assert_eq!(p.fetch(0), Some(Inst::Jump { target: 3 }));
        match p.fetch(2) {
            Some(Inst::Branch { target, .. }) => assert_eq!(target, 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn undefined_label_is_a_typed_error() {
        let mut b = ProgramBuilder::new();
        b.nop();
        b.jump("nowhere");
        let err = b.try_build().expect_err("must not assemble");
        assert_eq!(
            err,
            AsmError::UndefinedLabel {
                label: "nowhere".into(),
                at: 1,
            }
        );
        assert!(err.to_string().contains("undefined label \"nowhere\""));
        assert!(err.to_string().contains("instruction 1"));
    }

    #[test]
    fn duplicate_label_is_a_typed_error() {
        let mut b = ProgramBuilder::new();
        b.label("x");
        b.nop();
        b.label("x");
        b.halt();
        let err = b.try_build().expect_err("must not assemble");
        assert_eq!(
            err,
            AsmError::DuplicateLabel {
                label: "x".into(),
                first: 0,
                second: 1,
            }
        );
    }

    #[test]
    #[should_panic(expected = "undefined label")]
    fn build_panics_on_assembly_error() {
        let mut b = ProgramBuilder::new();
        b.jump("nowhere");
        let _ = b.build();
    }

    #[test]
    fn labels_and_call_sites_enumerate() {
        let mut b = ProgramBuilder::new();
        b.label("entry");
        b.call("f", Reg(30));
        b.halt();
        b.label("f");
        b.call("g", Reg(30));
        b.ret(Reg(30));
        b.label("g");
        b.ret(Reg(30));
        let p = b.build();
        let mut labels: Vec<(&str, PcIndex)> = p.labels().collect();
        labels.sort();
        assert_eq!(labels, vec![("entry", 0), ("f", 2), ("g", 4)]);
        let calls: Vec<PcIndex> = p.call_sites().collect();
        assert_eq!(calls, vec![0, 2]);
    }

    #[test]
    fn display_lists_labels() {
        let mut b = ProgramBuilder::new();
        b.label("start");
        b.mov(Reg(1), 3);
        b.halt();
        let text = b.build().to_string();
        assert!(text.contains("start:"));
        assert!(text.contains("mov r1"));
    }

    #[test]
    fn fetch_out_of_range_is_none() {
        let mut b = ProgramBuilder::new();
        b.halt();
        let p = b.build();
        assert!(p.fetch(1).is_none());
        assert_eq!(p.len(), 1);
        assert!(!p.is_empty());
    }
}
