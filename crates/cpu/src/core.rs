//! The out-of-order speculative core.
//!
//! # Model
//!
//! The core walks the dynamic instruction stream along the *predicted*
//! path, computing values eagerly and timing in closed form: every
//! instruction gets a dispatch cycle (bounded by dispatch width, ROB
//! occupancy and fences), an operand-ready cycle (last-writer chains
//! through the register file) and a completion cycle (functional-unit or
//! cache latency). Loads issue real cache accesses — including on the
//! wrong path, which is exactly the speculative pollution unXpec and
//! CleanupSpec are about.
//!
//! Every conditional branch opens a *speculation frame* holding a
//! register checkpoint and the cache effects accumulated while the frame
//! is open. When the branch's operands become ready the frame resolves:
//!
//! * predicted correctly — the frame pops; its loads' speculative tags
//!   commit once no enclosing frame remains;
//! * mispredicted — the frame and everything younger squash. The core
//!   cancels inflight speculative misses, hands the [`Defense`] the exact
//!   fill effects of the squashed loads, rolls back the register state to
//!   the checkpoint, and resumes fetch at the correct target once the
//!   defense says cleanup is done (plus a pipeline-refill penalty).
//!
//! The defense's stall is the T3–T5 window of the paper's Fig. 1; the
//! [`SquashRecord`]s collected per run expose T1–T2 (resolution time) and
//! T2–T6 (cleanup) to the experiment harness.

use unxpec_cache::{CacheHierarchy, Cycle, Effect, HierarchyConfig, SpecTag};
use unxpec_mem::{Addr, Memory};
use unxpec_telemetry::{Event, MetricsRegistry, Telemetry};

use crate::config::CoreConfig;
use crate::defense::{Defense, FillPolicy, SquashInfo, UnsafeBaseline};
use crate::isa::{Inst, Operand, PcIndex, Reg, NUM_REGS};
use crate::predictor::{BimodalPredictor, BranchPredictor, Btb, ReturnStackBuffer};
use crate::program::Program;
use crate::sanitizer::{InvariantViolation, RollbackCheck, Sanitizer, SanitizerConfig};
use crate::stats::{RunStats, SquashRecord};
use crate::trace::{ExecTrace, TraceEvent};

/// Execution speed of the core (ROADMAP item 2(b)).
///
/// The default is the fully detailed model; [`ExecMode::FastForward`]
/// enables the two-speed core, which runs architecturally-committed
/// straight-line regions in a functional interpreter and drops back
/// into the detailed core at every speculation source
/// (branch / indirect jump / return), staying detailed until the
/// speculative episode fully resolves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExecMode {
    /// Cycle-accurate out-of-order modeling for every instruction.
    #[default]
    Detailed,
    /// Two-speed: functional interpretation between speculative
    /// episodes, detailed modeling inside them.
    FastForward,
}

impl ExecMode {
    /// Stable label, used by CLIs and the sweep digest.
    pub fn label(self) -> &'static str {
        match self {
            ExecMode::Detailed => "detailed",
            ExecMode::FastForward => "fast-forward",
        }
    }
}

/// Result of running a program.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Aggregate statistics and squash records.
    pub stats: RunStats,
    /// Final architectural register file.
    pub regs: [u64; NUM_REGS],
    /// Whether the run stopped on a cycle or instruction bound rather
    /// than `Halt`.
    pub hit_limit: bool,
    /// Per-instruction execution trace, if tracing was enabled.
    pub trace: Option<ExecTrace>,
}

impl RunResult {
    /// Convenience register read.
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }
}

/// A speculation frame: one unresolved conditional branch.
///
/// Frames are pooled by the [`Core`] and recycled across branches: the
/// struct is ~600 bytes of checkpoint state plus two effect buffers, so
/// allocating (and memmoving) one per branch dominated the cycle loop.
/// Pooled frames live in `Box`es — pushing one into the open-frame
/// stack moves a pointer, not the checkpoint arrays — and their effect
/// buffers keep their capacity from squash to squash.
#[derive(Debug)]
struct Frame {
    epoch: SpecTag,
    branch_pc: PcIndex,
    dispatch_cycle: Cycle,
    resolve_cycle: Cycle,
    mispredicted: bool,
    correct_pc: PcIndex,
    ckpt_regs: [u64; NUM_REGS],
    ckpt_avail: [Cycle; NUM_REGS],
    ckpt_last_complete: Cycle,
    ckpt_last_mem: Cycle,
    open_seq: u64,
    /// `(seq, effect)` of loads executed while this frame was open.
    effects: Vec<(u64, Effect)>,
    /// `(seq, line)` of invisible-policy speculative loads (filled only
    /// at commit).
    spec_lines: Vec<(u64, unxpec_mem::LineAddr)>,
    /// Run-wide load/instruction counts when the frame opened. The
    /// frame's own totals are derived by subtraction at squash time, so
    /// dispatch never walks the open-frame stack to bump counters.
    loads_at_open: u64,
    insts_at_open: u64,
}

impl Frame {
    /// A blank frame for the pool.
    fn blank() -> Self {
        Frame {
            epoch: SpecTag(0),
            branch_pc: 0,
            dispatch_cycle: 0,
            resolve_cycle: 0,
            mispredicted: false,
            correct_pc: 0,
            ckpt_regs: [0; NUM_REGS],
            ckpt_avail: [0; NUM_REGS],
            ckpt_last_complete: 0,
            ckpt_last_mem: 0,
            open_seq: 0,
            effects: Vec::new(),
            spec_lines: Vec::new(),
            loads_at_open: 0,
            insts_at_open: 0,
        }
    }

    /// Re-arms a pooled frame for a new unresolved branch, snapshotting
    /// the architectural checkpoint from `st`. The effect buffers are
    /// cleared but keep their capacity.
    #[allow(clippy::too_many_arguments)]
    fn arm(
        &mut self,
        st: &Exec,
        epoch: SpecTag,
        branch_pc: PcIndex,
        dispatch_cycle: Cycle,
        resolve_cycle: Cycle,
        mispredicted: bool,
        correct_pc: PcIndex,
        open_seq: u64,
    ) {
        self.epoch = epoch;
        self.branch_pc = branch_pc;
        self.dispatch_cycle = dispatch_cycle;
        self.resolve_cycle = resolve_cycle;
        self.mispredicted = mispredicted;
        self.correct_pc = correct_pc;
        self.ckpt_regs = st.regs;
        self.ckpt_avail = st.avail;
        self.ckpt_last_complete = st.last_complete;
        self.ckpt_last_mem = st.last_mem;
        self.open_seq = open_seq;
        self.effects.clear();
        self.spec_lines.clear();
        self.loads_at_open = st.loads_issued;
        self.insts_at_open = st.dispatched();
    }
}

/// The simulated machine: core + caches + memory + predictor + defense.
///
/// State (caches, predictor training, the monotonic clock) persists
/// across [`Core::run`] calls, so an attack can run its preparation and
/// measurement rounds as separate programs against a warm machine, just
/// like successive iterations of a real attack process.
#[derive(Debug)]
pub struct Core {
    cfg: CoreConfig,
    hier: CacheHierarchy,
    mem: Memory,
    predictor: Box<dyn BranchPredictor>,
    btb: Btb,
    ras: ReturnStackBuffer,
    defense: Box<dyn Defense>,
    clock: Cycle,
    next_epoch: u64,
    next_seq: u64,
    mode: ExecMode,
    tracing: bool,
    telemetry: Telemetry,
    /// Recycled speculation frames (see [`Frame`]); popped on branch
    /// dispatch, pushed back on resolve/squash. The boxing is the
    /// point (not `clippy::vec_box` noise): moving a frame between the
    /// pool and the open-frame stack must move a pointer, not ~600
    /// bytes of checkpoint arrays.
    #[allow(clippy::vec_box)]
    frame_pool: Vec<Box<Frame>>,
    /// Open-frame stack storage, reused across runs.
    #[allow(clippy::vec_box)]
    frames_storage: Vec<Box<Frame>>,
    /// ROB release-cycle queue storage, reused across runs.
    rob_storage: std::collections::VecDeque<Cycle>,
    /// Scratch effect list handed to the defense on squash/commit;
    /// reused so steady-state squashes allocate nothing.
    effects_scratch: Vec<Effect>,
    /// Optional runtime invariant sanitizer (`None` costs one pointer
    /// check at squash boundaries and nothing in the dispatch loop).
    sanitizer: Option<Box<Sanitizer>>,
    /// Per-PC straight-line span lengths for the fast-forward
    /// interpreter, precomputed at run start (fast-forward runs only).
    /// `ff_spans[pc]` counts the consecutive instructions starting at
    /// `pc` that neither transfer control nor fence — the stretch the
    /// span fast path may execute without per-instruction loop-head
    /// checks. Storage is reused across runs.
    ff_spans: Vec<u32>,
    /// Pre-decoded span-safe instructions, parallel to the program (and
    /// to [`Self::ff_spans`]): the span loop dispatches once on the flat
    /// [`FfUop::kind`] instead of walking the nested `Inst` → `Operand`
    /// → `AluOp` matches per instruction. Storage is reused across runs.
    ff_plan: Vec<FfUop>,
}

impl Core {
    /// Builds a machine with the Table-I core/cache configuration, a
    /// bimodal predictor and no defense (unsafe baseline).
    pub fn new(core_cfg: CoreConfig, hier_cfg: HierarchyConfig) -> Self {
        core_cfg.validate();
        Core {
            cfg: core_cfg,
            hier: CacheHierarchy::new(hier_cfg, 1),
            mem: Memory::new(),
            predictor: Box::new(BimodalPredictor::default()),
            btb: Btb::new(),
            ras: ReturnStackBuffer::default(),
            defense: Box::new(UnsafeBaseline),
            clock: 0,
            next_epoch: 1,
            next_seq: 1,
            mode: ExecMode::Detailed,
            tracing: false,
            telemetry: Telemetry::disabled(),
            frame_pool: Vec::new(),
            frames_storage: Vec::new(),
            rob_storage: std::collections::VecDeque::new(),
            effects_scratch: Vec::new(),
            sanitizer: None,
            ff_spans: Vec::new(),
            ff_plan: Vec::new(),
        }
    }

    /// Returns `frame` to the pool, dropping its per-branch contents but
    /// keeping the effect buffers' capacity.
    fn recycle_frame(&mut self, frame: Box<Frame>) {
        self.frame_pool.push(frame);
    }

    /// A frame from the pool (or a fresh one while the pool warms up).
    fn take_frame(&mut self) -> Box<Frame> {
        self.frame_pool
            .pop()
            .unwrap_or_else(|| Box::new(Frame::blank()))
    }

    /// Table-I machine with the default configuration everywhere.
    pub fn table_i() -> Self {
        Self::new(CoreConfig::table_i(), HierarchyConfig::table_i())
    }

    /// Replaces the defense.
    pub fn set_defense(&mut self, defense: Box<dyn Defense>) -> &mut Self {
        self.defense = defense;
        self
    }

    /// Replaces the branch predictor.
    pub fn set_predictor(&mut self, predictor: Box<dyn BranchPredictor>) -> &mut Self {
        self.predictor = predictor;
        self
    }

    /// The branch target buffer (inspection and explicit poisoning).
    pub fn btb(&self) -> &Btb {
        &self.btb
    }

    /// The branch target buffer, mutable.
    pub fn btb_mut(&mut self) -> &mut Btb {
        &mut self.btb
    }

    /// The return stack buffer (inspection).
    pub fn ras(&self) -> &ReturnStackBuffer {
        &self.ras
    }

    /// The active defense's name.
    pub fn defense_name(&self) -> &'static str {
        self.defense.name()
    }

    /// The active defense's counter report (empty for defenses without
    /// counters).
    pub fn defense_report(&self) -> String {
        self.defense.report()
    }

    /// Architectural memory.
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// Architectural memory, mutable (test and attack setup).
    pub fn mem_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// Cache hierarchy.
    pub fn hierarchy(&self) -> &CacheHierarchy {
        &self.hier
    }

    /// Cache hierarchy, mutable (noise configuration, instrumentation).
    pub fn hierarchy_mut(&mut self) -> &mut CacheHierarchy {
        &mut self.hier
    }

    /// The monotonic machine clock (advances across runs).
    pub fn clock(&self) -> Cycle {
        self.clock
    }

    /// The core configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// Selects the execution mode for subsequent runs (see [`ExecMode`]).
    pub fn set_mode(&mut self, mode: ExecMode) -> &mut Self {
        self.mode = mode;
        self
    }

    /// The configured execution mode.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// Enables or disables per-instruction tracing for subsequent runs.
    pub fn set_tracing(&mut self, on: bool) -> &mut Self {
        self.tracing = on;
        self
    }

    /// Attaches a telemetry handle: the core emits pipeline and squash
    /// events through it, and the cache hierarchy shares the same sink.
    /// The default handle is disabled and costs one branch per probe.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) -> &mut Self {
        self.hier.set_telemetry(telemetry.clone());
        self.telemetry = telemetry;
        self
    }

    /// The core's telemetry handle.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Enables the runtime invariant sanitizer for subsequent runs.
    ///
    /// The sanitizer is purely observational: with no faults injected,
    /// checked runs produce byte-identical results to unchecked runs.
    /// Violations are recorded (first one wins), emitted as
    /// `Event::InvariantTrip`, and surfaced by [`Core::run_checked`].
    pub fn set_sanitizer(&mut self, cfg: SanitizerConfig) -> &mut Self {
        self.sanitizer = Some(Box::new(Sanitizer::new(cfg)));
        self
    }

    /// Disables the sanitizer.
    pub fn clear_sanitizer(&mut self) -> &mut Self {
        self.sanitizer = None;
        self
    }

    /// The sanitizer state, if enabled.
    pub fn sanitizer(&self) -> Option<&Sanitizer> {
        self.sanitizer.as_deref()
    }

    /// Removes and returns the first invariant violation recorded by the
    /// sanitizer, if any.
    pub fn take_invariant_trip(&mut self) -> Option<InvariantViolation> {
        self.sanitizer.as_deref_mut().and_then(Sanitizer::take_trip)
    }

    /// Runs `program` with the invariant sanitizer active, returning a
    /// typed error if any invariant trips.
    ///
    /// Enables a default-configured sanitizer if none is set; a sanitizer
    /// installed via [`Core::set_sanitizer`] (e.g. with a custom livelock
    /// budget) is kept.
    ///
    /// # Errors
    ///
    /// Returns the first [`InvariantViolation`] observed during the run.
    /// The run itself still terminates cleanly (the violation ends it
    /// early with `hit_limit` semantics), so the machine can keep being
    /// used afterwards — with suspect state.
    pub fn run_checked(&mut self, program: &Program) -> Result<RunResult, InvariantViolation> {
        self.run_checked_for(program, u64::MAX)
    }

    /// Like [`Core::run_checked`] with a committed-instruction bound.
    ///
    /// # Errors
    ///
    /// Returns the first [`InvariantViolation`] observed during the run.
    pub fn run_checked_for(
        &mut self,
        program: &Program,
        max_committed: u64,
    ) -> Result<RunResult, InvariantViolation> {
        if self.sanitizer.is_none() {
            self.sanitizer = Some(Box::new(Sanitizer::new(SanitizerConfig::default())));
        }
        if let Some(san) = self.sanitizer.as_deref_mut() {
            san.reset();
        }
        let result = self.run_for(program, max_committed);
        match self.take_invariant_trip() {
            Some(violation) => Err(violation),
            None => Ok(result),
        }
    }

    /// Registers machine-level counters into `reg`: the cache
    /// hierarchy's and the active defense's. Per-run counters come from
    /// [`RunStats::record_metrics`] on the result.
    pub fn record_metrics(&self, reg: &mut MetricsRegistry) {
        self.hier.record_metrics(reg);
        self.defense.record_metrics(reg);
    }

    /// Services a cross-thread/cross-core read probe for `line` through
    /// the active defense (CleanupSpec answers dummy misses for
    /// speculative installs; the baseline answers honestly).
    pub fn external_probe(&mut self, line: unxpec_mem::LineAddr) -> unxpec_cache::ExternalProbe {
        let cycle = self.clock;
        self.defense
            .serve_external_probe(&mut self.hier, line, cycle)
    }

    /// Runs `program` until `Halt` (or a safety bound).
    pub fn run(&mut self, program: &Program) -> RunResult {
        self.run_for(program, u64::MAX)
    }

    /// Runs `program` until `Halt`, a safety bound, or `max_committed`
    /// committed instructions — the analogue of gem5's `maxinst` used by
    /// the paper's Fig. 12 methodology.
    pub fn run_for(&mut self, program: &Program, max_committed: u64) -> RunResult {
        self.run_with_milestone(program, None, max_committed)
    }

    /// Like [`Core::run_for`], additionally recording the cycle at which
    /// `milestone` committed instructions had retired — gem5's
    /// `startCycles`, used to exclude warmup from measurements.
    pub fn run_with_milestone(
        &mut self,
        program: &Program,
        milestone: Option<u64>,
        max_committed: u64,
    ) -> RunResult {
        let start_cycle = self.clock;
        // Fast-forward is only engaged for runs the functional path can
        // model faithfully: per-instruction tracing needs the detailed
        // core's event stream, and fault injection hooks the detailed
        // access path.
        let ff = self.mode == ExecMode::FastForward
            && !self.tracing
            && self.hier.fault_injector().is_none();
        if ff {
            self.compute_ff_plan(program);
        }
        let mut st = Exec {
            pc: 0,
            regs: [0; NUM_REGS],
            avail: [start_cycle; NUM_REGS],
            cur_cycle: start_cycle,
            slots_left: self.cfg.dispatch_width,
            last_complete: start_cycle,
            last_mem: start_cycle,
            fence_floor: start_cycle,
            frames: std::mem::take(&mut self.frames_storage),
            rob: std::mem::take(&mut self.rob_storage),
            load_issue_cycle: 0,
            loads_in_cycle: 0,
            loads_issued: 0,
            stats: RunStats::default(),
            hit_limit: false,
            trace: if self.tracing { Some(Vec::new()) } else { None },
            trace_seq: 0,
            tel_seq: 0,
            earliest_resolve: None,
            mispredict_frames: 0,
            earliest_mispredict: None,
        };

        loop {
            // Safety bounds.
            if st.cur_cycle - start_cycle > self.cfg.max_cycles
                || st.stats.committed_insts >= max_committed.min(self.cfg.max_insts)
            {
                st.hit_limit = true;
                break;
            }
            // A tripped invariant ends the run at the next loop head:
            // the machine state is already suspect, so continuing would
            // only bury the root cause.
            if self.sanitizer.as_deref().is_some_and(Sanitizer::tripped) {
                st.hit_limit = true;
                break;
            }
            if st.stats.milestone_cycle.is_none() {
                if let Some(m) = milestone {
                    if st.stats.committed_insts >= m {
                        st.stats.milestone_cycle = Some(st.cur_cycle - start_cycle);
                    }
                }
            }

            // Two-speed core: with no open frames, every in-flight
            // instruction is architecturally committed, so straight-line
            // code runs in the functional interpreter until the next
            // speculation source. The memory system must also be
            // quiescent: the functional path has no MSHR merge, so an
            // in-flight miss (e.g. a squashed wrong-path load whose MSHR
            // the rollback leaves running) must drain in detailed mode,
            // where a re-execution of the same line merges and waits.
            // Re-entering the loop re-checks bounds; the follow-up probe
            // makes no progress and falls through to the detailed core
            // for the trigger instruction.
            if ff
                && st.frames.is_empty()
                && self.hier.memory_quiescent(st.cur_cycle)
                && self.fast_forward(&mut st, program, start_cycle, milestone, max_committed)
            {
                continue;
            }

            // Resolve frames whose branches have resolved by now.
            let peek = st.peek_dispatch_cycle();
            if let Some(idx) = st.earliest_resolvable(peek) {
                self.resolve_frame(&mut st, idx);
                continue;
            }

            // Fetch.
            let inst = match program.fetch(st.pc) {
                Some(inst) => inst,
                None => {
                    if let Some(resolve) = st.earliest_mispredict_resolve() {
                        // Wrong-path fetch ran off the program; stall
                        // until the squash redirects us.
                        st.stall_to(resolve);
                        continue;
                    }
                    // Correct path fell off the end: treat as halt.
                    break;
                }
            };

            if inst == Inst::Halt {
                if let Some(resolve) = st.earliest_mispredict_resolve() {
                    st.stall_to(resolve);
                    continue;
                }
                // Drain remaining (correct) frames and finish.
                while let Some(idx) = st.earliest_frame() {
                    let r = st.frames[idx].resolve_cycle;
                    st.stall_to(r);
                    self.resolve_frame(&mut st, idx);
                }
                break;
            }

            // ROB occupancy.
            if st.rob.len() >= self.cfg.rob_entries {
                if let Some(release) = st.rob.pop_front() {
                    if release > st.peek_dispatch_cycle() {
                        // Retirement watchdog: a release absurdly far in
                        // the future (a wedged fill) would stall forever;
                        // convert it to a typed livelock instead.
                        let stalled = release - st.peek_dispatch_cycle();
                        if let Some(san) = self.sanitizer.as_deref_mut() {
                            let budget = san.config().livelock_budget;
                            if budget > 0 && stalled > budget {
                                let violation = InvariantViolation::Livelock {
                                    pc: st.pc,
                                    rob_head: release,
                                    cycles_stalled: stalled,
                                };
                                self.telemetry.emit(Event::InvariantTrip {
                                    cycle: st.cur_cycle,
                                    code: violation.code(),
                                    detail: violation.detail(),
                                });
                                san.note(violation);
                                st.hit_limit = true;
                                break;
                            }
                        }
                        st.stall_to(release);
                        // Frames may resolve during the stall.
                        continue;
                    }
                }
            }

            let d = st.take_dispatch_slot(self.cfg.dispatch_width);
            self.execute(&mut st, program, inst, d);
        }

        // Run-end structural audit (no-op when the sanitizer is off or
        // already tripped).
        self.structural_checks(&st);

        let end = st.cur_cycle.max(st.last_complete);
        st.stats.cycles = end - start_cycle;
        self.clock = end + 1;
        // Hand the run's scratch structures back for the next run:
        // frames still open at a limit-bounded exit go to the pool, and
        // the (now empty) stack and ROB queue keep their capacity.
        while let Some(frame) = st.frames.pop() {
            self.frame_pool.push(frame);
        }
        self.frames_storage = st.frames;
        st.rob.clear();
        self.rob_storage = st.rob;
        RunResult {
            stats: st.stats,
            regs: st.regs,
            hit_limit: st.hit_limit,
            trace: st.trace.map(|events| ExecTrace { events }),
        }
    }

    /// Rebuilds [`Self::ff_spans`] and [`Self::ff_plan`] for `program`:
    /// one backward pass marking, per PC, how many consecutive
    /// instructions from there on are span-safe — they neither transfer
    /// control (every transfer re-enters the outer loop so `pc` stays
    /// explicit) nor fence (a fence's `stall_to` can advance the clock
    /// arbitrarily, which would break the span fast path's
    /// one-cycle-per-instruction headroom bound against `max_cycles`) —
    /// and pre-decoding each instruction into its flat [`FfUop`] form.
    fn compute_ff_plan(&mut self, program: &Program) {
        let insts = program.instructions();
        self.ff_spans.clear();
        self.ff_spans.resize(insts.len(), 0);
        self.ff_plan.clear();
        self.ff_plan
            .extend(insts.iter().map(|&inst| FfUop::decode(inst)));
        let mut run = 0u32;
        for (i, uop) in self.ff_plan.iter().enumerate().rev() {
            run = match uop.kind {
                FfKind::Barrier => 0,
                _ => run.saturating_add(1),
            };
            self.ff_spans[i] = run;
        }
    }

    /// The fast-forward functional interpreter: executes committed
    /// straight-line instructions from the current PC until the next
    /// speculation source (`Branch` / `JumpInd` / `Ret`), `Halt`, the
    /// program end, or a run bound. Returns whether any instruction was
    /// executed.
    ///
    /// Timing state advances with the exact detailed-mode formulas —
    /// dispatch-slot arithmetic, operand-ready chains, load ports,
    /// fences, the hierarchy's bank bookings and noise stream — so the
    /// hand-off back into the detailed core is seamless. What is skipped
    /// is machinery committed straight-line code cannot need: ROB
    /// modeling, MSHR entries, per-instruction telemetry and trace,
    /// effect fan-out (there is no open frame to undo into), and
    /// wrong-path logic. The sanitizer's structural audit brackets every
    /// region so a hand-off that corrupts cache structure trips
    /// immediately.
    fn fast_forward(
        &mut self,
        st: &mut Exec,
        program: &Program,
        start_cycle: Cycle,
        milestone: Option<u64>,
        max_committed: u64,
    ) -> bool {
        // Hoisted loop invariants: the config scalars and the combined
        // instruction bound are loop-constant, and the milestone only
        // needs re-checking while it is still pending — committed
        // counts are monotone, so once recorded it stays recorded.
        let inst_limit = max_committed.min(self.cfg.max_insts);
        let cycle_limit = start_cycle.saturating_add(self.cfg.max_cycles);
        let dispatch_width = self.cfg.dispatch_width;
        let load_ports = self.cfg.load_ports;
        let alu_latency = self.cfg.alu_latency;
        let mul_latency = self.cfg.mul_latency;
        let mut milestone_pending = milestone.filter(|_| st.stats.milestone_cycle.is_none());
        let insts = program.instructions();
        let mut executed = 0u64;
        loop {
            // Same per-instruction bounds and milestone discipline as the
            // detailed loop head.
            if st.cur_cycle > cycle_limit || st.stats.committed_insts >= inst_limit {
                break;
            }
            if let Some(m) = milestone_pending {
                if st.stats.committed_insts >= m {
                    st.stats.milestone_cycle = Some(st.cur_cycle - start_cycle);
                    milestone_pending = None;
                }
            }
            let Some(&inst) = insts.get(st.pc) else {
                break;
            };
            if inst == Inst::Halt || inst.is_speculation_source() {
                break;
            }
            if executed == 0 {
                self.structural_checks(st);
                self.telemetry.emit(Event::ModeSwitch {
                    cycle: st.cur_cycle,
                    fast_forward: true,
                });
                st.stats.ff_regions += 1;
            }

            // Span fast path: a precomputed stretch of span-safe
            // instructions runs in a tight slice loop with the loop-head
            // checks amortized to once per span. The clamps keep it
            // exactly equivalent to per-instruction execution: the span
            // stops at the instruction bound, at a pending milestone (so
            // the head records it at the same commit count), and within
            // the cycle headroom (the clock advances at most one cycle
            // per dispatched instruction, so `cycle_limit` cannot be
            // crossed mid-span). The arms below mirror the general path
            // minus per-instruction `pc`/counter updates, which batch.
            let mut span = u64::from(self.ff_spans.get(st.pc).copied().unwrap_or(0));
            span = span.min(inst_limit - st.stats.committed_insts);
            if let Some(m) = milestone_pending {
                span = span.min(m - st.stats.committed_insts);
            }
            span = span.min(cycle_limit - st.cur_cycle);
            if span > 1 {
                let end = st.pc + span as usize;
                // The clock, dispatch slots, and completion horizons live
                // in locals for the span: nothing inside a span can stall
                // the clock or move the fence floor, so the only per-inst
                // state updates are these registers plus the register
                // file — written back once when the span ends.
                let mut cur_cycle = st.cur_cycle;
                let mut slots_left = st.slots_left;
                let mut last_complete = st.last_complete;
                let mut last_mem = st.last_mem;
                let fence_floor = st.fence_floor;
                // Register-register / register-immediate ALU arms share
                // everything but the operand-ready chain and the value
                // expression; the macros keep the sixteen arms honest
                // about using identical timing math.
                macro_rules! rr {
                    ($u:expr, $d:expr, $lat:expr, $f:expr) => {{
                        let av = st.regs[$u.ai()];
                        let bv = st.regs[$u.bi()];
                        let ready = st.avail[$u.ai()].max(st.avail[$u.bi()]).max($d);
                        let done = ready + $lat;
                        st.regs[$u.dsti()] = $f(av, bv);
                        st.avail[$u.dsti()] = done;
                        done
                    }};
                }
                macro_rules! ri {
                    ($u:expr, $d:expr, $lat:expr, $f:expr) => {{
                        let av = st.regs[$u.ai()];
                        let ready = st.avail[$u.ai()].max($d);
                        let done = ready + $lat;
                        st.regs[$u.dsti()] = $f(av, $u.imm);
                        st.avail[$u.dsti()] = done;
                        done
                    }};
                }
                for &u in &self.ff_plan[st.pc..end] {
                    if slots_left == 0 {
                        cur_cycle += 1;
                        slots_left = dispatch_width;
                    }
                    slots_left -= 1;
                    let d = cur_cycle;
                    let complete = match u.kind {
                        FfKind::Nop => d,
                        FfKind::MovImm => {
                            st.regs[u.dsti()] = u.imm;
                            st.avail[u.dsti()] = d;
                            d
                        }
                        FfKind::AddRR => rr!(u, d, alu_latency, u64::wrapping_add),
                        FfKind::SubRR => rr!(u, d, alu_latency, u64::wrapping_sub),
                        FfKind::MulRR => rr!(u, d, mul_latency, u64::wrapping_mul),
                        FfKind::AndRR => rr!(u, d, alu_latency, |a, b| a & b),
                        FfKind::OrRR => rr!(u, d, alu_latency, |a, b| a | b),
                        FfKind::XorRR => rr!(u, d, alu_latency, |a, b| a ^ b),
                        FfKind::ShlRR => {
                            rr!(u, d, alu_latency, |a: u64, b: u64| a.wrapping_shl(b as u32))
                        }
                        FfKind::ShrRR => {
                            rr!(u, d, alu_latency, |a: u64, b: u64| a.wrapping_shr(b as u32))
                        }
                        FfKind::AddRI => ri!(u, d, alu_latency, u64::wrapping_add),
                        FfKind::SubRI => ri!(u, d, alu_latency, u64::wrapping_sub),
                        FfKind::MulRI => ri!(u, d, mul_latency, u64::wrapping_mul),
                        FfKind::AndRI => ri!(u, d, alu_latency, |a, b| a & b),
                        FfKind::OrRI => ri!(u, d, alu_latency, |a, b| a | b),
                        FfKind::XorRI => ri!(u, d, alu_latency, |a, b| a ^ b),
                        FfKind::ShlRI => {
                            ri!(u, d, alu_latency, |a: u64, b: u64| a.wrapping_shl(b as u32))
                        }
                        FfKind::ShrRI => {
                            ri!(u, d, alu_latency, |a: u64, b: u64| a.wrapping_shr(b as u32))
                        }
                        FfKind::Load => {
                            let addr = Addr::new(st.regs[u.ai()].wrapping_add(u.imm) & !7);
                            let ready = st.avail[u.ai()].max(d).max(fence_floor);
                            let start = st.alloc_load_slot(ready, load_ports);
                            let (done, _level) =
                                self.hier.access_data_functional(addr.line(), start);
                            st.regs[u.dsti()] = self.mem.read_u64(addr);
                            st.avail[u.dsti()] = done;
                            last_mem = last_mem.max(done);
                            st.stats.committed_loads += 1;
                            self.next_seq += 1;
                            st.loads_issued += 1;
                            done
                        }
                        FfKind::Store => {
                            let addr = Addr::new(st.regs[u.ai()].wrapping_add(u.imm) & !7);
                            let ready = st.avail[u.ai()]
                                .max(st.avail[u.dsti()])
                                .max(d)
                                .max(fence_floor);
                            self.mem.write_u64(addr, st.regs[u.dsti()]);
                            let (done, _level) =
                                self.hier.write_data_functional(addr.line(), ready);
                            last_mem = last_mem.max(done);
                            done
                        }
                        FfKind::Flush => {
                            let addr = Addr::new(st.regs[u.ai()].wrapping_add(u.imm));
                            let ready = st.avail[u.ai()].max(d).max(fence_floor);
                            let done = self.hier.flush_line(addr.line(), ready);
                            last_mem = last_mem.max(done);
                            done
                        }
                        FfKind::ReadTime => {
                            let start = last_complete.max(d);
                            st.regs[u.dsti()] = start;
                            st.avail[u.dsti()] = start + self.cfg.timer_latency;
                            start + self.cfg.timer_latency
                        }
                        // Excluded from spans by compute_ff_plan.
                        FfKind::Barrier => {
                            debug_assert!(false, "barrier instruction inside a span");
                            d
                        }
                    };
                    last_complete = last_complete.max(complete);
                }
                st.cur_cycle = cur_cycle;
                st.slots_left = slots_left;
                st.last_complete = last_complete;
                st.last_mem = last_mem;
                st.pc = end;
                st.stats.committed_insts += span;
                executed += span;
                continue;
            }

            executed += 1;
            st.stats.committed_insts += 1;
            let d = st.take_dispatch_slot(dispatch_width);
            let mut complete = d;
            match inst {
                Inst::Nop => {
                    st.pc += 1;
                }
                Inst::MovImm { dst, imm } => {
                    st.regs[dst.index()] = imm;
                    st.avail[dst.index()] = d;
                    st.pc += 1;
                }
                Inst::Alu { op, dst, a, b } => {
                    let (bv, bav) = st.operand(b);
                    let ready = st.avail[a.index()].max(bav).max(d);
                    let av = st.regs[a.index()];
                    use crate::isa::AluOp;
                    let (val, done) = match op {
                        AluOp::Add => (av.wrapping_add(bv), ready + alu_latency),
                        AluOp::Sub => (av.wrapping_sub(bv), ready + alu_latency),
                        AluOp::Mul => (av.wrapping_mul(bv), ready + mul_latency),
                        AluOp::And => (av & bv, ready + alu_latency),
                        AluOp::Or => (av | bv, ready + alu_latency),
                        AluOp::Xor => (av ^ bv, ready + alu_latency),
                        AluOp::Shl => (av.wrapping_shl(bv as u32), ready + alu_latency),
                        AluOp::Shr => (av.wrapping_shr(bv as u32), ready + alu_latency),
                    };
                    st.regs[dst.index()] = val;
                    st.avail[dst.index()] = done;
                    complete = done;
                    st.pc += 1;
                }
                Inst::Load { dst, base, offset } => {
                    // No open frame means no speculation tag, which in the
                    // detailed core forces `FillPolicy::Eager` regardless
                    // of the defense — so the functional fill is exact.
                    let addr = Addr::new(st.regs[base.index()].wrapping_add(offset as u64) & !7);
                    let ready = st.avail[base.index()].max(d).max(st.fence_floor);
                    let start = st.alloc_load_slot(ready, load_ports);
                    let (done, _level) = self.hier.access_data_functional(addr.line(), start);
                    st.regs[dst.index()] = self.mem.read_u64(addr);
                    st.avail[dst.index()] = done;
                    st.last_mem = st.last_mem.max(done);
                    complete = done;
                    st.stats.committed_loads += 1;
                    // Keep the load sequence numbering aligned with the
                    // detailed core: frames armed after this region derive
                    // their effect-retention cutoffs from these counters.
                    self.next_seq += 1;
                    st.loads_issued += 1;
                    st.pc += 1;
                }
                Inst::Store { src, base, offset } => {
                    let addr = Addr::new(st.regs[base.index()].wrapping_add(offset as u64) & !7);
                    let ready = st.avail[base.index()]
                        .max(st.avail[src.index()])
                        .max(d)
                        .max(st.fence_floor);
                    self.mem.write_u64(addr, st.regs[src.index()]);
                    let (done, _level) = self.hier.write_data_functional(addr.line(), ready);
                    st.last_mem = st.last_mem.max(done);
                    complete = done;
                    st.pc += 1;
                }
                Inst::Flush { base, offset } => {
                    let addr = Addr::new(st.regs[base.index()].wrapping_add(offset as u64));
                    let ready = st.avail[base.index()].max(d).max(st.fence_floor);
                    let done = self.hier.flush_line(addr.line(), ready);
                    st.last_mem = st.last_mem.max(done);
                    complete = done;
                    st.pc += 1;
                }
                Inst::Fence => {
                    let done = st.last_mem.max(d);
                    st.fence_floor = st.fence_floor.max(done);
                    st.stall_to(done);
                    complete = done;
                    st.pc += 1;
                }
                Inst::ReadTime { dst } => {
                    let start = st.last_complete.max(d);
                    st.regs[dst.index()] = start;
                    st.avail[dst.index()] = start + self.cfg.timer_latency;
                    complete = start + self.cfg.timer_latency;
                    st.pc += 1;
                }
                Inst::Jump { target } => {
                    st.pc = target;
                }
                Inst::Call { target, sp } => {
                    let ret_pc = (st.pc + 1) as u64;
                    let new_sp = st.regs[sp.index()].wrapping_sub(8);
                    let ready = st.avail[sp.index()].max(d).max(st.fence_floor);
                    st.regs[sp.index()] = new_sp;
                    st.avail[sp.index()] = ready + 1;
                    let addr = Addr::new(new_sp & !7);
                    self.mem.write_u64(addr, ret_pc);
                    let (done, _level) = self.hier.write_data_functional(addr.line(), ready);
                    st.last_mem = st.last_mem.max(done);
                    complete = done;
                    self.ras.push(st.pc + 1);
                    st.pc = target;
                }
                // Speculation sources and Halt exit the region above.
                Inst::Branch { .. } | Inst::JumpInd { .. } | Inst::Ret { .. } | Inst::Halt => {}
            }
            st.last_complete = st.last_complete.max(complete);
        }
        if executed > 0 {
            st.stats.ff_committed_insts += executed;
            self.telemetry.emit(Event::ModeSwitch {
                cycle: st.cur_cycle,
                fast_forward: false,
            });
            self.structural_checks(st);
        }
        executed > 0
    }

    fn execute(&mut self, st: &mut Exec, _program: &Program, inst: Inst, d: Cycle) {
        let pc = st.pc;
        let wrong_path = st.has_mispredicted_frame();
        if wrong_path {
            st.stats.squashed_insts += 1;
        } else {
            st.stats.committed_insts += 1;
        }
        let squash_at = st.earliest_mispredict_resolve();
        self.telemetry.emit(Event::Dispatch {
            cycle: d,
            seq: st.tel_seq,
            pc,
        });

        let mut complete = d; // instruction completion for ROB release
        match inst {
            Inst::Nop => {
                st.pc += 1;
            }
            Inst::MovImm { dst, imm } => {
                st.regs[dst.index()] = imm;
                st.avail[dst.index()] = d;
                st.pc += 1;
            }
            Inst::Alu { op, dst, a, b } => {
                let (bv, bav) = st.operand(b);
                let ready = st.avail[a.index()].max(bav).max(d);
                let lat = match op {
                    crate::isa::AluOp::Mul => self.cfg.mul_latency,
                    _ => self.cfg.alu_latency,
                };
                let done = ready + lat;
                st.regs[dst.index()] = op.apply(st.regs[a.index()], bv);
                st.avail[dst.index()] = done;
                complete = done;
                st.pc += 1;
            }
            Inst::Load { dst, base, offset } => {
                let addr = Addr::new(st.regs[base.index()].wrapping_add(offset as u64) & !7);
                let ready = st.avail[base.index()].max(d).max(st.fence_floor);
                let start = st.alloc_load_slot(ready, self.cfg.load_ports);
                let suppressed = squash_at.filter(|&s| start >= s);
                if let Some(squash) = suppressed {
                    // Squash arrives before this load could issue: it
                    // never produces a value, so dependents only become
                    // "ready" at the squash itself (where they die too).
                    // This keeps dependent wrong-path loads from firing
                    // with a garbage address.
                    st.regs[dst.index()] = 0;
                    st.avail[dst.index()] = squash;
                    complete = start;
                } else {
                    let tag = st.youngest_epoch();
                    let policy = if tag.is_some() {
                        self.defense.fill_policy()
                    } else {
                        FillPolicy::Eager
                    };
                    // Fill-at-commit policies track the line instead of
                    // filling now.
                    let mut deferred_line = None;
                    let outcome = match policy {
                        FillPolicy::Eager => self.hier.access_data(addr.line(), start, tag),
                        FillPolicy::Invisible => {
                            deferred_line = Some(addr.line());
                            let mut o = self.hier.access_data_no_fill(addr.line(), start);
                            o.complete_cycle += self.defense.speculative_load_extra_latency();
                            o
                        }
                        FillPolicy::DelayOnMiss => {
                            if self.hier.l1_contains(addr.line()) {
                                // Speculative hits proceed normally.
                                self.hier.access_data(addr.line(), start, tag)
                            } else if self.defense.delayed_load_value_predicted() {
                                // Value prediction supplies the result;
                                // the shadow request validates it without
                                // touching cache state.
                                deferred_line = Some(addr.line());
                                self.hier.access_data_no_fill(addr.line(), start)
                            } else {
                                // The request waits until every enclosing
                                // branch resolves, then pays the miss.
                                deferred_line = Some(addr.line());
                                let resolve_all = st
                                    .frames
                                    .iter()
                                    .map(|f| f.resolve_cycle)
                                    .max()
                                    .unwrap_or(start)
                                    .max(start);
                                if wrong_path {
                                    // Squashed before it can issue: it
                                    // never books bank or L2 time (no
                                    // contention footprint — the very
                                    // property delay-on-miss buys).
                                    let lat = self.hier.estimate_access_latency(addr.line());
                                    unxpec_cache::AccessOutcome {
                                        issue_cycle: start,
                                        complete_cycle: resolve_all + lat,
                                        level: unxpec_cache::HitLevel::Memory,
                                        effects: vec![],
                                    }
                                } else {
                                    let mut o =
                                        self.hier.access_data_no_fill(addr.line(), resolve_all);
                                    o.issue_cycle = start;
                                    o
                                }
                            }
                        }
                    };
                    self.telemetry.emit(Event::Issue {
                        cycle: start,
                        seq: st.tel_seq,
                        pc,
                    });
                    let value = self.mem.read_u64(addr);
                    st.regs[dst.index()] = value;
                    st.avail[dst.index()] = outcome.complete_cycle;
                    st.last_mem = st.last_mem.max(outcome.complete_cycle);
                    complete = outcome.complete_cycle;
                    if !wrong_path {
                        st.stats.committed_loads += 1;
                    }
                    let seq = self.next_seq;
                    self.next_seq += 1;
                    st.loads_issued += 1;
                    if !outcome.effects.is_empty() || deferred_line.is_some() {
                        for f in &mut st.frames {
                            for e in &outcome.effects {
                                f.effects.push((seq, *e));
                            }
                            if let Some(line) = deferred_line {
                                f.spec_lines.push((seq, line));
                            }
                        }
                    }
                }
                st.pc += 1;
            }
            Inst::Store { src, base, offset } => {
                let addr = Addr::new(st.regs[base.index()].wrapping_add(offset as u64) & !7);
                let ready = st.avail[base.index()]
                    .max(st.avail[src.index()])
                    .max(d)
                    .max(st.fence_floor);
                if wrong_path {
                    // Stores never leave the store buffer speculatively.
                    complete = ready + 1;
                } else {
                    self.mem.write_u64(addr, st.regs[src.index()]);
                    let outcome = self.hier.write_data(addr.line(), ready);
                    st.last_mem = st.last_mem.max(outcome.complete_cycle);
                    complete = outcome.complete_cycle;
                }
                st.pc += 1;
            }
            Inst::Flush { base, offset } => {
                let addr = Addr::new(st.regs[base.index()].wrapping_add(offset as u64));
                let ready = st.avail[base.index()].max(d).max(st.fence_floor);
                if wrong_path {
                    complete = ready + 1;
                } else {
                    let done = self.hier.flush_line(addr.line(), ready);
                    st.last_mem = st.last_mem.max(done);
                    complete = done;
                }
                st.pc += 1;
            }
            Inst::Fence => {
                // Younger instructions wait for all older memory traffic.
                let done = st.last_mem.max(d);
                st.fence_floor = st.fence_floor.max(done);
                // The fence also gates dispatch itself.
                st.stall_to(done);
                complete = done;
                st.pc += 1;
            }
            Inst::ReadTime { dst } => {
                // Serializing timer read: waits for every older
                // instruction to complete, like rdtscp + lfence.
                let start = st.last_complete.max(d);
                st.regs[dst.index()] = start;
                st.avail[dst.index()] = start + self.cfg.timer_latency;
                complete = start + self.cfg.timer_latency;
                st.pc += 1;
            }
            Inst::Jump { target } => {
                st.pc = target;
            }
            Inst::Branch { cond, a, b, target } => {
                let (bv, bav) = st.operand(b);
                let ready = st.avail[a.index()].max(bav).max(d);
                let resolve = ready + self.cfg.branch_resolve_latency;
                let actual = cond.eval(st.regs[a.index()], bv);
                let predicted = self.predictor.predict(st.pc);
                // Predictor state updates at commit: wrong-path branches
                // never train it (they are squashed before retiring).
                if !wrong_path {
                    self.predictor.update(st.pc, actual);
                    st.stats.branches += 1;
                    if predicted != actual {
                        st.stats.mispredicts += 1;
                    }
                }
                let correct_pc = if actual { target } else { st.pc + 1 };
                let followed_pc = if predicted { target } else { st.pc + 1 };
                let epoch = SpecTag(self.next_epoch);
                self.next_epoch += 1;
                let mut frame = self.take_frame();
                frame.arm(
                    st,
                    epoch,
                    st.pc,
                    d,
                    resolve,
                    predicted != actual,
                    correct_pc,
                    self.next_seq,
                );
                st.frames.push(frame);
                st.refresh_frame_cache();
                complete = resolve;
                st.pc = followed_pc;
            }
            Inst::JumpInd { target } => {
                let ready = st.avail[target.index()].max(d);
                let resolve = ready + self.cfg.branch_resolve_latency;
                let actual = st.regs[target.index()] as PcIndex;
                // BTB miss predicts fall-through (the front end has no
                // better guess and keeps fetching sequentially).
                let predicted = self.btb.predict(st.pc).unwrap_or(st.pc + 1);
                if !wrong_path {
                    self.btb.update(st.pc, actual);
                    st.stats.branches += 1;
                    if predicted != actual {
                        st.stats.mispredicts += 1;
                    }
                }
                let epoch = SpecTag(self.next_epoch);
                self.next_epoch += 1;
                let mut frame = self.take_frame();
                frame.arm(
                    st,
                    epoch,
                    st.pc,
                    d,
                    resolve,
                    predicted != actual,
                    actual,
                    self.next_seq,
                );
                st.frames.push(frame);
                st.refresh_frame_cache();
                complete = resolve;
                st.pc = predicted;
            }
            Inst::Call { target, sp } => {
                // Push the return address onto the in-memory stack; like
                // stores, the write drains at commit (wrong-path calls
                // leave memory untouched).
                let ret_pc = (st.pc + 1) as u64;
                let new_sp = st.regs[sp.index()].wrapping_sub(8);
                let ready = st.avail[sp.index()].max(d).max(st.fence_floor);
                st.regs[sp.index()] = new_sp;
                st.avail[sp.index()] = ready + 1;
                if wrong_path {
                    complete = ready + 1;
                } else {
                    let addr = Addr::new(new_sp & !7);
                    self.mem.write_u64(addr, ret_pc);
                    let outcome = self.hier.write_data(addr.line(), ready);
                    st.last_mem = st.last_mem.max(outcome.complete_cycle);
                    complete = outcome.complete_cycle;
                    // The RSB snapshots the predicted return site.
                    self.ras.push(st.pc + 1);
                }
                st.pc = target;
            }
            Inst::Ret { sp } => {
                // The architectural target is loaded from the stack; the
                // front end follows the RSB immediately.
                let addr = Addr::new(st.regs[sp.index()] & !7);
                let ready = st.avail[sp.index()].max(d).max(st.fence_floor);
                let start = st.alloc_load_slot(ready, self.cfg.load_ports);
                st.regs[sp.index()] = st.regs[sp.index()].wrapping_add(8);
                st.avail[sp.index()] = ready + 1;
                let suppressed = squash_at.map(|sq| start >= sq).unwrap_or(false);
                if suppressed {
                    // Dies before it can issue; treat like a suppressed
                    // load with an unreachable frame.
                    complete = start;
                    st.pc += 1;
                } else {
                    let tag = st.youngest_epoch();
                    self.telemetry.emit(Event::Issue {
                        cycle: start,
                        seq: st.tel_seq,
                        pc,
                    });
                    let outcome = self.hier.access_data(addr.line(), start, tag);
                    let actual = self.mem.read_u64(addr) as PcIndex;
                    let resolve = outcome.complete_cycle + self.cfg.branch_resolve_latency;
                    let predicted = if wrong_path {
                        self.ras.peek().unwrap_or(st.pc + 1)
                    } else {
                        self.ras.pop().unwrap_or(st.pc + 1)
                    };
                    st.last_mem = st.last_mem.max(outcome.complete_cycle);
                    if !wrong_path {
                        st.stats.branches += 1;
                        if predicted != actual {
                            st.stats.mispredicts += 1;
                        }
                    }
                    let seq = self.next_seq;
                    self.next_seq += 1;
                    st.loads_issued += 1;
                    if !outcome.effects.is_empty() {
                        for f in &mut st.frames {
                            for e in &outcome.effects {
                                f.effects.push((seq, *e));
                            }
                        }
                    }
                    let epoch = SpecTag(self.next_epoch);
                    self.next_epoch += 1;
                    let mut frame = self.take_frame();
                    frame.arm(
                        st,
                        epoch,
                        st.pc,
                        d,
                        resolve,
                        predicted != actual,
                        actual,
                        self.next_seq,
                    );
                    st.frames.push(frame);
                    st.refresh_frame_cache();
                    complete = resolve;
                    st.pc = predicted;
                }
            }
            // Halt is intercepted by the main loop before dispatch, so
            // there is nothing to execute; `complete` stays at `d`.
            Inst::Halt => {}
        }

        st.last_complete = st.last_complete.max(complete);
        // ROB release: in-order commit discipline.
        let release = st.rob.back().copied().unwrap_or(0).max(complete);
        st.rob.push_back(release);
        self.telemetry.emit(Event::Complete {
            cycle: complete,
            seq: st.tel_seq,
            pc,
            wrong_path,
        });
        st.tel_seq += 1;
        if let Some(trace) = st.trace.as_mut() {
            trace.push(TraceEvent {
                seq: st.trace_seq,
                pc,
                inst,
                dispatch_cycle: d,
                complete_cycle: complete,
                wrong_path,
            });
            st.trace_seq += 1;
        }
    }

    /// Resolves the frame at `idx` (its branch's resolve cycle has been
    /// reached).
    fn resolve_frame(&mut self, st: &mut Exec, idx: usize) {
        if !st.frames[idx].mispredicted {
            let frame = st.frames.remove(idx);
            st.refresh_frame_cache();
            st.stall_to(frame.resolve_cycle);
            if st.frames.is_empty() {
                if !frame.effects.is_empty() {
                    self.effects_scratch.clear();
                    self.effects_scratch
                        .extend(frame.effects.iter().map(|(_, e)| *e));
                    self.defense
                        .on_commit_epoch(&mut self.hier, &self.effects_scratch);
                }
                // Invisible-policy loads expose their data now: the
                // buffered fills become architectural.
                for (_, line) in &frame.spec_lines {
                    self.hier.access_data(*line, frame.resolve_cycle, None);
                }
            }
            self.recycle_frame(frame);
            return;
        }

        // Mis-speculation: squash this frame and everything younger
        // (draining in place — no tail Vec is split off).
        let mut drained = st.frames.drain(idx..);
        let Some(frame) = drained.next() else {
            // `idx` always comes from `earliest_frame`, so the drain is
            // never empty; bail out rather than panic if it ever is.
            return;
        };
        for younger in drained {
            self.frame_pool.push(younger);
        }
        st.refresh_frame_cache();
        let resolve = frame.resolve_cycle;
        self.effects_scratch.clear();
        self.effects_scratch
            .extend(frame.effects.iter().map(|(_, e)| *e));
        let open_seq = frame.open_seq;
        let squashed_loads = (st.loads_issued - frame.loads_at_open) as usize;
        let squashed_insts = (st.dispatched() - frame.insts_at_open) as usize;

        let l1_installs = self.effects_scratch.iter().filter(|e| e.is_l1()).count();
        let l1_evictions = self
            .effects_scratch
            .iter()
            .filter(|e| e.is_l1() && e.victim().is_some())
            .count();
        let info = SquashInfo {
            resolve_cycle: resolve,
            branch_pc: frame.branch_pc,
            epoch: frame.epoch,
            transient_effects: &self.effects_scratch,
            squashed_loads,
            squashed_insts,
        };
        self.telemetry.emit(Event::SquashBegin {
            cycle: resolve,
            branch_pc: frame.branch_pc,
            epoch: frame.epoch.0,
            squashed_loads: squashed_loads as u64,
            squashed_insts: squashed_insts as u64,
        });
        let redirect = self.defense.on_squash(&mut self.hier, &info).max(resolve);
        self.telemetry.emit(Event::SquashEnd {
            cycle: redirect,
            branch_pc: frame.branch_pc,
            epoch: frame.epoch.0,
        });
        if self.sanitizer.is_some() {
            self.rollback_oracle(frame.epoch, redirect);
            self.structural_checks(st);
        }

        // Roll the architectural path back to the checkpoint.
        st.regs = frame.ckpt_regs;
        st.avail = frame.ckpt_avail;
        st.last_complete = frame.ckpt_last_complete.max(redirect);
        st.last_mem = frame.ckpt_last_mem.max(redirect);
        st.pc = frame.correct_pc;
        st.stall_to(redirect + self.cfg.squash_penalty);

        // Squashed loads' effects vanish from enclosing frames too: the
        // defense already rolled them back.
        for f in &mut st.frames {
            f.effects.retain(|(seq, _)| *seq < open_seq);
            f.spec_lines.retain(|(seq, _)| *seq < open_seq);
        }

        st.stats.cleanup_stall_cycles += redirect - resolve;
        st.stats.squashes.push(SquashRecord {
            branch_pc: frame.branch_pc,
            dispatch_cycle: frame.dispatch_cycle,
            resolve_cycle: resolve,
            redirect_cycle: redirect,
            squashed_loads,
            l1_installs,
            l1_evictions,
        });
    }

    /// Structural invariant audit: occupancy recounts, the MSHR ledger,
    /// and ROB release-queue monotonicity. Runs at squash boundaries and
    /// at run end — never per instruction — and records the first
    /// violation as an `Event::InvariantTrip` plus a typed trip on the
    /// sanitizer. No-op when the sanitizer is off or already tripped.
    fn structural_checks(&mut self, st: &Exec) {
        let Some(san) = self.sanitizer.as_deref_mut() else {
            return;
        };
        if san.tripped() {
            return;
        }
        let cfg = *san.config();
        let mut found = None;
        if cfg.check_occupancy {
            if let Err((counted, recounted)) = self.hier.l1d().verify_occupancy() {
                found = Some(InvariantViolation::OccupancyMismatch {
                    level: 1,
                    counted,
                    recounted,
                });
            } else if let Err((counted, recounted)) = self.hier.l2().verify_occupancy() {
                found = Some(InvariantViolation::OccupancyMismatch {
                    level: 2,
                    counted,
                    recounted,
                });
            }
        }
        if found.is_none() && cfg.check_mshr {
            if let Err((allocated, released, live)) = self.hier.mshrs().verify_accounting() {
                found = Some(InvariantViolation::MshrLeak {
                    allocated,
                    released,
                    live,
                });
            }
        }
        if found.is_none() && cfg.check_rob {
            let mut prev = 0;
            for &next in &st.rob {
                if next < prev {
                    found = Some(InvariantViolation::RobOrder { prev, next });
                    break;
                }
                prev = next;
            }
        }
        san.record_check();
        if let Some(violation) = found {
            self.telemetry.emit(Event::InvariantTrip {
                cycle: st.cur_cycle,
                code: violation.code(),
                detail: violation.detail(),
            });
            san.note(violation);
        }
    }

    /// Rollback-exactness oracle, run right after a squash handled by a
    /// defense claiming [`Defense::rollback_exact`]: verify line by line
    /// that the caches look as if the squashed loads never ran.
    ///
    /// Two tiers:
    /// * *tag check* (unconditional) — no line installed by a squashed
    ///   load may still carry a squashed-epoch speculation tag;
    /// * *residency checks* (skipped once spurious-evict faults have
    ///   fired, because an injected eviction legitimately removes lines
    ///   the defense restored) — installed L1 lines are gone unless they
    ///   were prior-resident victims getting restored, and every
    ///   non-speculative victim is back.
    ///
    /// `self.effects_scratch` still holds the squashed effect list the
    /// defense saw.
    fn rollback_oracle(&mut self, epoch: SpecTag, cycle: Cycle) {
        let Some(san) = self.sanitizer.as_deref_mut() else {
            return;
        };
        if san.tripped() || !san.config().check_rollback || !self.defense.rollback_exact() {
            return;
        }
        let spurious_evicts = self
            .hier
            .fault_injector()
            .map_or(0, |f| f.count(unxpec_cache::FaultKind::SpuriousEvict))
            > 0;
        let mut found = None;
        for effect in &self.effects_scratch {
            let line = effect.installed_line();
            let tag = if effect.is_l1() {
                self.hier.l1d().spec_tag(line)
            } else {
                self.hier.l2().spec_tag(line)
            };
            if tag.is_some_and(|t| t.0 >= epoch.0) {
                found = Some(InvariantViolation::RollbackMismatch {
                    line: line.raw(),
                    which: RollbackCheck::TagRemains,
                });
                break;
            }
        }
        if found.is_none() && !spurious_evicts {
            for effect in &self.effects_scratch {
                if !effect.is_l1() {
                    continue;
                }
                let line = effect.installed_line();
                // A transient install of a line that an older squashed
                // fill evicted (non-speculatively resident before the
                // window) legitimately ends up resident again: the
                // rollback restores it as that fill's victim.
                let reinstated = self.effects_scratch.iter().any(|e| {
                    e.is_l1()
                        && e.victim()
                            .is_some_and(|v| !v.was_speculative && v.line == line)
                });
                if !reinstated && self.hier.l1_contains(line) {
                    found = Some(InvariantViolation::RollbackMismatch {
                        line: line.raw(),
                        which: RollbackCheck::InstallSurvived,
                    });
                    break;
                }
                if let Some(victim) = effect.victim() {
                    if !victim.was_speculative && !self.hier.l1_contains(victim.line) {
                        found = Some(InvariantViolation::RollbackMismatch {
                            line: victim.line.raw(),
                            which: RollbackCheck::VictimLost,
                        });
                        break;
                    }
                }
            }
        }
        san.record_check();
        if let Some(violation) = found {
            self.telemetry.emit(Event::InvariantTrip {
                cycle,
                code: violation.code(),
                detail: violation.detail(),
            });
            san.note(violation);
        }
    }
}

/// Dispatch tag for a pre-decoded span-safe instruction. ALU ops split
/// into register/immediate forms so the span loop resolves the right
/// operand at decode time instead of re-matching `Operand` per
/// execution, and the op folds into the same dispatch as the kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FfKind {
    Nop,
    MovImm,
    AddRR,
    SubRR,
    MulRR,
    AndRR,
    OrRR,
    XorRR,
    ShlRR,
    ShrRR,
    AddRI,
    SubRI,
    MulRI,
    AndRI,
    OrRI,
    XorRI,
    ShlRI,
    ShrRI,
    Load,
    Store,
    Flush,
    ReadTime,
    /// Anything not span-safe (control flow, fences, `Halt`). Present in
    /// the plan so it stays index-parallel to the program, but
    /// [`Core::compute_ff_plan`] gives these PCs a zero span length, so
    /// the span loop never dispatches one.
    Barrier,
}

/// One pre-decoded span-safe instruction: a flat `(kind, regs, imm)`
/// record the fast-forward span loop executes with a single jump-table
/// dispatch. `dst` holds the source register for `Store` (which writes
/// memory, not a register); `imm` holds the immediate for `MovImm` and
/// `*RI` forms and the byte displacement (as raw `u64` bits) for memory
/// ops.
#[derive(Debug, Clone, Copy)]
struct FfUop {
    kind: FfKind,
    dst: u8,
    a: u8,
    b: u8,
    imm: u64,
}

impl FfUop {
    /// Register-file index of the `dst` field. Decode validated the raw
    /// number, so the mask is a no-op that lets the span loop index the
    /// register file without bounds checks.
    #[inline(always)]
    fn dsti(self) -> usize {
        (self.dst & (NUM_REGS as u8 - 1)) as usize
    }

    /// Register-file index of the `a` field (see [`Self::dsti`]).
    #[inline(always)]
    fn ai(self) -> usize {
        (self.a & (NUM_REGS as u8 - 1)) as usize
    }

    /// Register-file index of the `b` field (see [`Self::dsti`]).
    #[inline(always)]
    fn bi(self) -> usize {
        (self.b & (NUM_REGS as u8 - 1)) as usize
    }

    fn decode(inst: Inst) -> FfUop {
        use crate::isa::AluOp;
        let uop = |kind, dst: u8, a: u8, b: u8, imm: u64| {
            // The detailed path panics on an out-of-range register at
            // execution; pre-decode keeps that contract by rejecting it
            // here, which is what makes the masked (unchecked) indexing
            // in the span loop exact.
            assert!(
                (dst as usize) < NUM_REGS && (a as usize) < NUM_REGS && (b as usize) < NUM_REGS,
                "register out of range in fast-forward pre-decode"
            );
            FfUop {
                kind,
                dst,
                a,
                b,
                imm,
            }
        };
        match inst {
            Inst::Nop => uop(FfKind::Nop, 0, 0, 0, 0),
            Inst::MovImm { dst, imm } => uop(FfKind::MovImm, dst.0, 0, 0, imm),
            Inst::Alu { op, dst, a, b } => {
                let (rr, ri) = match op {
                    AluOp::Add => (FfKind::AddRR, FfKind::AddRI),
                    AluOp::Sub => (FfKind::SubRR, FfKind::SubRI),
                    AluOp::Mul => (FfKind::MulRR, FfKind::MulRI),
                    AluOp::And => (FfKind::AndRR, FfKind::AndRI),
                    AluOp::Or => (FfKind::OrRR, FfKind::OrRI),
                    AluOp::Xor => (FfKind::XorRR, FfKind::XorRI),
                    AluOp::Shl => (FfKind::ShlRR, FfKind::ShlRI),
                    AluOp::Shr => (FfKind::ShrRR, FfKind::ShrRI),
                };
                match b {
                    Operand::Reg(r) => uop(rr, dst.0, a.0, r.0, 0),
                    Operand::Imm(i) => uop(ri, dst.0, a.0, 0, i),
                }
            }
            Inst::Load { dst, base, offset } => uop(FfKind::Load, dst.0, base.0, 0, offset as u64),
            Inst::Store { src, base, offset } => {
                uop(FfKind::Store, src.0, base.0, 0, offset as u64)
            }
            Inst::Flush { base, offset } => uop(FfKind::Flush, 0, base.0, 0, offset as u64),
            Inst::ReadTime { dst } => uop(FfKind::ReadTime, dst.0, 0, 0, 0),
            Inst::Fence
            | Inst::Branch { .. }
            | Inst::Jump { .. }
            | Inst::JumpInd { .. }
            | Inst::Call { .. }
            | Inst::Ret { .. }
            | Inst::Halt => uop(FfKind::Barrier, 0, 0, 0, 0),
        }
    }
}

/// Per-run mutable execution state.
struct Exec {
    pc: PcIndex,
    regs: [u64; NUM_REGS],
    avail: [Cycle; NUM_REGS],
    cur_cycle: Cycle,
    slots_left: u64,
    last_complete: Cycle,
    last_mem: Cycle,
    fence_floor: Cycle,
    /// Open speculation frames, oldest first (boxed so push/drain move
    /// pointers, not checkpoint arrays — see [`Core::frame_pool`]).
    #[allow(clippy::vec_box)]
    frames: Vec<Box<Frame>>,
    rob: std::collections::VecDeque<Cycle>,
    load_issue_cycle: Cycle,
    loads_in_cycle: u64,
    /// Loads issued this run (wrong-path included) — the minuend for
    /// per-frame load counts derived at squash time.
    loads_issued: u64,
    stats: RunStats,
    hit_limit: bool,
    trace: Option<Vec<TraceEvent>>,
    trace_seq: u64,
    tel_seq: u64,
    /// Cached frame-stack summary, refreshed only when the stack
    /// changes (per branch, not per instruction): the min resolve cycle
    /// and its index, the mispredicted-frame count, and the earliest
    /// mispredicted resolve. `resolve_cycle` and `mispredicted` are
    /// immutable after a frame is pushed, so the cache cannot go stale
    /// between stack mutations.
    earliest_resolve: Option<(Cycle, usize)>,
    mispredict_frames: usize,
    earliest_mispredict: Option<Cycle>,
}

impl Exec {
    fn operand(&self, op: Operand) -> (u64, Cycle) {
        match op {
            Operand::Reg(r) => (self.regs[r.index()], self.avail[r.index()]),
            Operand::Imm(i) => (i, 0),
        }
    }

    fn peek_dispatch_cycle(&self) -> Cycle {
        if self.slots_left == 0 {
            self.cur_cycle + 1
        } else {
            self.cur_cycle
        }
    }

    fn take_dispatch_slot(&mut self, width: u64) -> Cycle {
        if self.slots_left == 0 {
            self.cur_cycle += 1;
            self.slots_left = width;
        }
        self.slots_left -= 1;
        self.cur_cycle
    }

    fn stall_to(&mut self, cycle: Cycle) {
        if cycle > self.cur_cycle {
            self.cur_cycle = cycle;
            self.slots_left = 0; // fresh cycle starts on next dispatch
        }
    }

    fn alloc_load_slot(&mut self, ready: Cycle, ports: u64) -> Cycle {
        let mut start = ready;
        if start < self.load_issue_cycle {
            start = self.load_issue_cycle;
        }
        if start == self.load_issue_cycle && self.loads_in_cycle >= ports {
            start += 1;
        }
        if start > self.load_issue_cycle {
            self.load_issue_cycle = start;
            self.loads_in_cycle = 0;
        }
        self.loads_in_cycle += 1;
        start
    }

    fn youngest_epoch(&self) -> Option<SpecTag> {
        self.frames.last().map(|f| f.epoch)
    }

    /// Instructions dispatched this run (committed + squashed) — the
    /// minuend for per-frame instruction counts derived at squash time.
    fn dispatched(&self) -> u64 {
        self.stats.committed_insts + self.stats.squashed_insts
    }

    /// Rebuilds the cached frame-stack summary. Called after every
    /// push/remove/drain of `frames`; the per-instruction queries below
    /// then read the cache in O(1) instead of rescanning the stack.
    fn refresh_frame_cache(&mut self) {
        self.earliest_resolve = None;
        self.mispredict_frames = 0;
        self.earliest_mispredict = None;
        for (i, f) in self.frames.iter().enumerate() {
            // Strict `<` keeps the first index on ties, matching the
            // old `min_by_key` scan.
            if self
                .earliest_resolve
                .is_none_or(|(c, _)| f.resolve_cycle < c)
            {
                self.earliest_resolve = Some((f.resolve_cycle, i));
            }
            if f.mispredicted {
                self.mispredict_frames += 1;
                self.earliest_mispredict = Some(
                    self.earliest_mispredict
                        .map_or(f.resolve_cycle, |c| c.min(f.resolve_cycle)),
                );
            }
        }
    }

    fn has_mispredicted_frame(&self) -> bool {
        self.mispredict_frames > 0
    }

    fn earliest_mispredict_resolve(&self) -> Option<Cycle> {
        self.earliest_mispredict
    }

    fn earliest_frame(&self) -> Option<usize> {
        self.earliest_resolve.map(|(_, i)| i)
    }

    fn earliest_resolvable(&self, now: Cycle) -> Option<usize> {
        match self.earliest_resolve {
            Some((c, i)) if c <= now => Some(i),
            _ => None,
        }
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;
    use crate::isa::Cond;
    use crate::predictor::NeverTaken;
    use crate::program::ProgramBuilder;

    fn run(b: ProgramBuilder) -> RunResult {
        Core::table_i().run(&b.build())
    }

    #[test]
    fn straight_line_alu() {
        let mut b = ProgramBuilder::new();
        b.mov(Reg(1), 10);
        b.mov(Reg(2), 4);
        b.sub(Reg(3), Reg(1), Reg(2));
        b.mul(Reg(4), Reg(3), 7u64);
        b.halt();
        let r = run(b);
        assert_eq!(r.reg(Reg(3)), 6);
        assert_eq!(r.reg(Reg(4)), 42);
        assert_eq!(r.stats.committed_insts, 4);
        assert!(!r.hit_limit);
    }

    #[test]
    fn load_reads_architectural_memory() {
        let mut core = Core::table_i();
        core.mem_mut().write_u64(Addr::new(0x1000), 0xabcd);
        let mut b = ProgramBuilder::new();
        b.mov(Reg(1), 0x1000);
        b.load(Reg(2), Reg(1), 0);
        b.halt();
        let r = core.run(&b.build());
        assert_eq!(r.reg(Reg(2)), 0xabcd);
        assert_eq!(r.stats.committed_loads, 1);
    }

    #[test]
    fn store_then_load_forwards_value() {
        let mut b = ProgramBuilder::new();
        b.mov(Reg(1), 0x2000);
        b.mov(Reg(2), 99);
        b.store(Reg(2), Reg(1), 0);
        b.load(Reg(3), Reg(1), 0);
        b.halt();
        assert_eq!(run(b).reg(Reg(3)), 99);
    }

    #[test]
    fn second_load_hits_and_is_faster() {
        let mut core = Core::table_i();
        let mut b = ProgramBuilder::new();
        b.mov(Reg(1), 0x3000);
        b.load(Reg(2), Reg(1), 0);
        b.rdtsc(Reg(10));
        b.load(Reg(3), Reg(1), 0);
        b.rdtsc(Reg(11));
        b.halt();
        let r = core.run(&b.build());
        let hit_time = r.reg(Reg(11)) - r.reg(Reg(10));
        // An L1 hit plus timer overhead: far less than the ~118-cycle
        // cold miss.
        assert!(hit_time < 20, "hit path took {hit_time} cycles");
    }

    #[test]
    fn loop_with_backward_branch_terminates() {
        let mut b = ProgramBuilder::new();
        b.mov(Reg(1), 0);
        b.label("loop");
        b.add(Reg(1), Reg(1), 1u64);
        b.branch(Cond::Lt, Reg(1), 100u64, "loop");
        b.halt();
        let r = run(b);
        assert_eq!(r.reg(Reg(1)), 100);
        assert_eq!(r.stats.branches, 100);
        // The bimodal predictor learns the loop quickly; only the first
        // few and the exit mispredict.
        assert!(
            r.stats.mispredicts <= 4,
            "{} mispredicts",
            r.stats.mispredicts
        );
    }

    #[test]
    fn mispredicted_branch_squashes_and_rolls_back_registers() {
        let mut core = Core::table_i();
        core.set_predictor(Box::new(NeverTaken));
        let mut b = ProgramBuilder::new();
        b.mov(Reg(1), 5);
        // Taken branch, predicted not-taken -> the fall-through is the
        // wrong path; r2 must be rolled back.
        b.branch(Cond::Lt, Reg(1), 10u64, "target");
        b.mov(Reg(2), 0xbad);
        b.halt();
        b.label("target");
        b.mov(Reg(3), 0x600d);
        b.halt();
        let r = core.run(&b.build());
        assert_eq!(r.reg(Reg(3)), 0x600d);
        assert_eq!(r.reg(Reg(2)), 0, "wrong-path write must be squashed");
        assert_eq!(r.stats.mispredicts, 1);
        assert_eq!(r.stats.squashes.len(), 1);
    }

    #[test]
    fn wrong_path_load_leaves_footprint_under_unsafe_baseline() {
        let mut core = Core::table_i();
        core.set_predictor(Box::new(NeverTaken));
        let probe = Addr::new(0x8000);
        let mut b = ProgramBuilder::new();
        b.mov(Reg(1), 1);
        // Slow condition: make the comparand a flushed memory load so the
        // wrong path has time to run.
        b.mov(Reg(4), 0x4000);
        b.load(Reg(5), Reg(4), 0); // cold-miss comparand
        b.branch(Cond::Eq, Reg(5), 0u64, "skip"); // actual: taken (mem reads 0)
        b.mov(Reg(6), probe.raw());
        b.load(Reg(7), Reg(6), 0); // transient load
        b.label("skip");
        b.halt();
        let r = core.run(&b.build());
        assert_eq!(r.stats.mispredicts, 1);
        let rec = &r.stats.squashes[0];
        assert_eq!(rec.squashed_loads, 1);
        assert_eq!(rec.l1_installs, 1);
        // Unsafe baseline: the transient line stays cached.
        assert!(core.hierarchy().l1_contains(probe.line()));
        // Resolution time is dominated by the comparand's memory miss.
        assert!(
            rec.resolution_time() > 100,
            "resolution {}",
            rec.resolution_time()
        );
        // No defense: cleanup is free.
        assert_eq!(rec.cleanup_cycles(), 0);
    }

    #[test]
    fn suppressed_wrong_path_load_never_issues() {
        let mut core = Core::table_i();
        core.set_predictor(Box::new(NeverTaken));
        let probe = Addr::new(0x9000);
        let mut b = ProgramBuilder::new();
        // Fast-resolving branch: the wrong-path load depends on a slow
        // load, so the squash arrives before it can issue.
        b.mov(Reg(1), 5);
        b.branch(Cond::Lt, Reg(1), 10u64, "skip"); // taken, predicted NT
        b.mov(Reg(4), 0x7000);
        b.load(Reg(5), Reg(4), 0); // issues (independent)
        b.add(Reg(6), Reg(5), probe.raw());
        b.load(Reg(7), Reg(6), 0); // depends on r5: start >= squash
        b.label("skip");
        b.halt();
        let r = core.run(&b.build());
        assert_eq!(r.stats.mispredicts, 1);
        // The dependent load never issued, so no line around `probe+0`
        // was installed. (r5 reads 0 so r6 == probe.)
        assert!(!core.hierarchy().l1_contains(probe.line()));
    }

    #[test]
    fn fence_orders_measurement_after_flush() {
        let mut core = Core::table_i();
        let addr = Addr::new(0x5000);
        let mut b = ProgramBuilder::new();
        b.mov(Reg(1), addr.raw());
        b.load(Reg(2), Reg(1), 0);
        b.flush(Reg(1), 0);
        b.fence();
        b.rdtsc(Reg(10));
        b.load(Reg(3), Reg(1), 0); // must miss: flush completed first
        b.rdtsc(Reg(11));
        b.halt();
        let r = core.run(&b.build());
        let t = r.reg(Reg(11)) - r.reg(Reg(10));
        assert!(t > 100, "flushed load must go to memory, took {t}");
    }

    #[test]
    fn rdtsc_measures_elapsed_cycles() {
        let mut b = ProgramBuilder::new();
        b.rdtsc(Reg(1));
        b.mov(Reg(3), 0x6000);
        b.load(Reg(4), Reg(3), 0); // cold miss ~118 cycles
        b.rdtsc(Reg(2));
        b.halt();
        let r = run(b);
        let dt = r.reg(Reg(2)) - r.reg(Reg(1));
        assert!(dt >= 118, "expected >= miss latency, got {dt}");
        assert!(dt < 200, "unreasonably slow: {dt}");
    }

    #[test]
    fn run_for_stops_at_instruction_budget() {
        let mut b = ProgramBuilder::new();
        b.mov(Reg(1), 0);
        b.label("spin");
        b.add(Reg(1), Reg(1), 1u64);
        b.jump("spin");
        let mut core = Core::table_i();
        let r = core.run_for(&b.build(), 1000);
        assert!(r.hit_limit);
        assert!(r.stats.committed_insts >= 1000);
        assert!(r.stats.committed_insts < 1100);
    }

    #[test]
    fn clock_is_monotonic_across_runs() {
        let mut core = Core::table_i();
        let mut b = ProgramBuilder::new();
        b.rdtsc(Reg(1));
        b.halt();
        let p = b.build();
        let t1 = core.run(&p).reg(Reg(1));
        let t2 = core.run(&p).reg(Reg(1));
        assert!(t2 > t1, "clock must advance across runs");
    }

    #[test]
    fn nested_mispredicts_roll_back_cleanly() {
        let mut core = Core::table_i();
        core.set_predictor(Box::new(NeverTaken));
        let mut b = ProgramBuilder::new();
        // Outer branch: slow comparand, actually taken (mispredicted).
        b.mov(Reg(1), 0x4100);
        b.load(Reg(2), Reg(1), 0); // slow, reads 0
        b.branch(Cond::Eq, Reg(2), 0u64, "outer_t");
        // Wrong path: contains another (inner) mispredicted branch.
        b.mov(Reg(3), 1);
        b.branch(Cond::Eq, Reg(3), 1u64, "inner_t");
        b.mov(Reg(4), 2);
        b.label("inner_t");
        b.mov(Reg(5), 3);
        b.halt();
        b.label("outer_t");
        b.mov(Reg(6), 42);
        b.halt();
        let r = core.run(&b.build());
        assert_eq!(r.reg(Reg(6)), 42);
        assert_eq!(r.reg(Reg(5)), 0, "wrong-path effects must vanish");
        assert!(!r.stats.squashes.is_empty());
    }

    #[test]
    fn rob_capacity_bounds_speculation_window() {
        // A huge wrong-path body cannot dispatch more than ROB entries.
        let mut core = Core::table_i();
        core.set_predictor(Box::new(NeverTaken));
        let mut b = ProgramBuilder::new();
        b.mov(Reg(1), 0x4200);
        b.load(Reg(2), Reg(1), 0); // slow comparand
        b.branch(Cond::Eq, Reg(2), 0u64, "t"); // taken, predicted NT
        for _ in 0..1000 {
            b.nop();
        }
        b.label("t");
        b.halt();
        let r = core.run(&b.build());
        // At most rob_entries instructions could be in flight.
        assert!(
            r.stats.squashed_insts <= 192 + 8,
            "squashed {}",
            r.stats.squashed_insts
        );
    }

    #[test]
    fn branch_resolution_time_tracks_comparand_chain() {
        // f(N)-style nested dependent loads lengthen resolution linearly
        // (the paper's Fig. 2 x-axis).
        let mut times = Vec::new();
        for n in 1..=3u64 {
            let mut core = Core::table_i();
            core.set_predictor(Box::new(NeverTaken));
            // Build a pointer chain: mem[0x8000*k] holds address of next.
            for k in 0..n {
                core.mem_mut().write_u64(
                    Addr::new(0x10_0000 + k * 0x1000),
                    0x10_0000 + (k + 1) * 0x1000,
                );
            }
            let mut b = ProgramBuilder::new();
            b.mov(Reg(1), 0x10_0000);
            for _ in 0..n {
                b.load(Reg(1), Reg(1), 0);
            }
            b.branch(Cond::Ne, Reg(1), 0u64, "t"); // taken, predicted NT
            b.nop();
            b.label("t");
            b.halt();
            let r = core.run(&b.build());
            times.push(r.stats.squashes[0].resolution_time());
        }
        assert!(times[1] > times[0] + 80, "{times:?}");
        assert!(times[2] > times[1] + 80, "{times:?}");
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod trace_tests {
    use super::*;
    use crate::isa::Cond;
    use crate::predictor::NeverTaken;
    use crate::program::ProgramBuilder;

    #[test]
    fn tracing_is_off_by_default() {
        let mut b = ProgramBuilder::new();
        b.nop();
        b.halt();
        let r = Core::table_i().run(&b.build());
        assert!(r.trace.is_none());
    }

    #[test]
    fn trace_records_every_executed_instruction() {
        let mut core = Core::table_i();
        core.set_tracing(true);
        let mut b = ProgramBuilder::new();
        b.mov(Reg(1), 1);
        b.add(Reg(2), Reg(1), Reg(1));
        b.halt();
        let r = core.run(&b.build());
        let trace = r.trace.expect("tracing enabled");
        assert_eq!(trace.len(), 2, "halt is not dispatched");
        assert!(trace.events[0].dispatch_cycle <= trace.events[1].dispatch_cycle);
        assert!(!trace.events[0].wrong_path);
    }

    #[test]
    fn trace_marks_wrong_path_instructions() {
        let mut core = Core::table_i();
        core.set_tracing(true);
        core.set_predictor(Box::new(NeverTaken));
        let mut b = ProgramBuilder::new();
        b.mov(Reg(4), 0x4000);
        b.load(Reg(5), Reg(4), 0); // slow comparand (reads 0)
        b.branch(Cond::Eq, Reg(5), 0u64, "skip"); // taken, predicted NT
        b.mov(Reg(6), 0xbad); // wrong path
        b.mov(Reg(7), 0xbad2); // wrong path
        b.label("skip");
        b.mov(Reg(8), 0x600d);
        b.halt();
        let r = core.run(&b.build());
        let trace = r.trace.expect("tracing enabled");
        let wrong: Vec<_> = trace.wrong_path_events().collect();
        assert!(wrong.len() >= 2, "wrong-path movs must appear: {trace}");
        // The wrong path falls through into `skip` too, so the mov
        // appears twice: once wrong-path, then re-executed correctly
        // after the squash.
        let good = trace
            .events
            .iter()
            .rev()
            .find(|e| matches!(e.inst, Inst::MovImm { imm: 0x600d, .. }))
            .expect("correct-path mov");
        assert!(!good.wrong_path, "{trace}");
        assert!(good.dispatch_cycle > wrong[0].dispatch_cycle);
    }

    #[test]
    fn trace_renders() {
        let mut core = Core::table_i();
        core.set_tracing(true);
        let mut b = ProgramBuilder::new();
        b.mov(Reg(1), 7);
        b.halt();
        let r = core.run(&b.build());
        let text = r.trace.unwrap().to_string();
        assert!(text.contains("mov r1"));
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod edge_tests {
    use super::*;
    use crate::isa::Cond;
    use crate::predictor::NeverTaken;
    use crate::program::ProgramBuilder;

    #[test]
    fn mshr_pressure_serializes_excess_misses() {
        // 32 independent misses against 16 MSHRs: the second half must
        // wait for entries to free.
        let mut b = ProgramBuilder::new();
        b.rdtsc(Reg(20));
        for i in 0..32u64 {
            b.mov(Reg(1), 0x10_0000 + i * 0x1000);
            b.load(Reg(2), Reg(1), 0);
        }
        b.rdtsc(Reg(21));
        b.halt();
        let r = Core::table_i().run(&b.build());
        let t = r.reg(Reg(21)) - r.reg(Reg(20));
        // 32 misses at an 8-cycle bank interval is ~256 cycles minimum;
        // far less than 32 serialized misses (3776).
        assert!(t > 250, "{t}");
        assert!(t < 1000, "{t}");
    }

    #[test]
    fn flush_of_dirty_line_writes_back() {
        let mut core = Core::table_i();
        let mut b = ProgramBuilder::new();
        b.mov(Reg(1), 0x9000);
        b.mov(Reg(2), 0xfeed);
        b.store(Reg(2), Reg(1), 0);
        b.flush(Reg(1), 0);
        b.fence();
        b.halt();
        core.run(&b.build());
        assert!(!core
            .hierarchy()
            .l1_contains(unxpec_mem::Addr::new(0x9000).line()));
        assert!(
            core.hierarchy().l1_stats().writebacks + core.hierarchy().l2_stats().writebacks > 0
        );
        // The value survives architecturally.
        assert_eq!(core.mem().read_u64(Addr::new(0x9000)), 0xfeed);
    }

    #[test]
    fn load_ports_bound_issue_rate() {
        // 8 independent L1 hits with 2 load ports take >= 4 issue
        // cycles.
        let mut core = Core::table_i();
        let mut warm = ProgramBuilder::new();
        warm.mov(Reg(1), 0xa000);
        for i in 0..8i64 {
            warm.load(Reg(2), Reg(1), i * 64);
        }
        warm.halt();
        core.run(&warm.build());
        let mut b = ProgramBuilder::new();
        b.mov(Reg(1), 0xa000);
        b.fence();
        b.rdtsc(Reg(20));
        for i in 0..8i64 {
            b.load(Reg(2), Reg(1), i * 64);
        }
        b.rdtsc(Reg(21));
        b.halt();
        let r = core.run(&b.build());
        let t = r.reg(Reg(21)) - r.reg(Reg(20));
        assert!(t >= 7, "2 ports x 4 cycles plus hit latency, got {t}");
    }

    #[test]
    fn wrong_path_store_never_reaches_memory_or_cache() {
        let mut core = Core::table_i();
        core.set_predictor(Box::new(NeverTaken));
        let mut b = ProgramBuilder::new();
        b.mov(Reg(1), 0x4000);
        b.load(Reg(2), Reg(1), 0); // slow comparand, reads 0
        b.branch(Cond::Eq, Reg(2), 0u64, "skip"); // taken, predicted NT
                                                  // Wrong path: a store that must not land.
        b.mov(Reg(3), 0xbad);
        b.mov(Reg(4), 0xb000);
        b.store(Reg(3), Reg(4), 0);
        b.label("skip");
        b.halt();
        core.run(&b.build());
        assert_eq!(core.mem().read_u64(Addr::new(0xb000)), 0);
        assert!(!core.hierarchy().l1_contains(Addr::new(0xb000).line()));
    }

    #[test]
    fn fence_drains_stores_before_later_loads() {
        let mut core = Core::table_i();
        let mut b = ProgramBuilder::new();
        b.mov(Reg(1), 0xc000);
        b.mov(Reg(2), 7);
        b.store(Reg(2), Reg(1), 0);
        b.fence();
        b.load(Reg(3), Reg(1), 0);
        b.halt();
        let r = core.run(&b.build());
        assert_eq!(r.reg(Reg(3)), 7);
    }

    #[test]
    fn back_to_back_runs_do_not_leak_register_state() {
        let mut core = Core::table_i();
        let mut b1 = ProgramBuilder::new();
        b1.mov(Reg(5), 0xaaaa);
        b1.halt();
        core.run(&b1.build());
        let mut b2 = ProgramBuilder::new();
        b2.add(Reg(6), Reg(5), 1u64); // r5 must read as 0 in a fresh run
        b2.halt();
        let r = core.run(&b2.build());
        assert_eq!(r.reg(Reg(6)), 1, "register file must reset per run");
    }

    #[test]
    fn deep_nesting_of_correct_branches_commits_cleanly() {
        // A tower of correctly predicted branches over slow comparands:
        // all frames resolve correct, speculative loads commit.
        let mut core = Core::table_i();
        let mut b = ProgramBuilder::new();
        b.mov(Reg(1), 0x4000);
        b.load(Reg(2), Reg(1), 0); // slow, reads 0
        for i in 0..6 {
            // Never-taken branches (r2 == 0): predicted not-taken.
            b.branch(Cond::Ne, Reg(2), 0u64, &format!("t{i}"));
        }
        b.mov(Reg(3), 0xd000);
        b.load(Reg(4), Reg(3), 0); // speculative under 6 frames
        for i in 0..6 {
            b.label(&format!("t{i}"));
        }
        b.halt();
        let r = core.run(&b.build());
        assert_eq!(r.stats.mispredicts, 0);
        assert!(core.hierarchy().l1_contains(Addr::new(0xd000).line()));
        assert!(
            !core.hierarchy().l1_is_speculative(Addr::new(0xd000).line()),
            "commit must clear the tag once all frames resolve"
        );
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod telemetry_tests {
    use super::*;
    use crate::isa::Cond;
    use crate::predictor::NeverTaken;
    use crate::program::ProgramBuilder;

    #[test]
    fn pipeline_events_pair_dispatch_and_complete() {
        let mut core = Core::table_i();
        let tel = Telemetry::ring(4096);
        core.set_telemetry(tel.clone());
        let mut b = ProgramBuilder::new();
        b.mov(Reg(1), 0x1000);
        b.load(Reg(2), Reg(1), 0);
        b.halt();
        core.run(&b.build());
        let events = tel.snapshot();
        let dispatches = events
            .iter()
            .filter(|e| matches!(e, Event::Dispatch { .. }))
            .count();
        let completes = events
            .iter()
            .filter(|e| matches!(e, Event::Complete { .. }))
            .count();
        assert_eq!(dispatches, 2, "mov + load dispatch (halt does not)");
        assert_eq!(dispatches, completes);
        // The load issued exactly once and the hierarchy logged its miss
        // into the same sink.
        assert_eq!(
            events
                .iter()
                .filter(|e| matches!(e, Event::Issue { .. }))
                .count(),
            1
        );
        assert!(events.iter().any(|e| matches!(e, Event::CacheMiss { .. })));
    }

    #[test]
    fn squash_brackets_the_defense_stall() {
        let mut core = Core::table_i();
        core.set_predictor(Box::new(NeverTaken));
        let tel = Telemetry::ring(4096);
        core.set_telemetry(tel.clone());
        let mut b = ProgramBuilder::new();
        b.mov(Reg(4), 0x4000);
        b.load(Reg(5), Reg(4), 0); // slow comparand, reads 0
        b.branch(Cond::Eq, Reg(5), 0u64, "skip"); // taken, predicted NT
        b.mov(Reg(6), 0x8000);
        b.load(Reg(7), Reg(6), 0); // transient load
        b.label("skip");
        b.halt();
        let r = core.run(&b.build());
        assert_eq!(r.stats.mispredicts, 1);
        let events = tel.snapshot();
        let begin = events
            .iter()
            .find_map(|e| match *e {
                Event::SquashBegin {
                    cycle,
                    epoch,
                    squashed_loads,
                    ..
                } => Some((cycle, epoch, squashed_loads)),
                _ => None,
            })
            .expect("squash_begin emitted");
        let end = events
            .iter()
            .find_map(|e| match *e {
                Event::SquashEnd { cycle, epoch, .. } => Some((cycle, epoch)),
                _ => None,
            })
            .expect("squash_end emitted");
        assert_eq!(begin.1, end.1, "same epoch");
        assert_eq!(begin.2, 1, "one squashed load");
        let rec = &r.stats.squashes[0];
        assert_eq!(begin.0, rec.resolve_cycle);
        assert_eq!(end.0, rec.redirect_cycle);
    }

    #[test]
    fn disabled_telemetry_changes_nothing() {
        let run = |attach: bool| {
            let mut core = Core::table_i();
            if attach {
                core.set_telemetry(Telemetry::disabled());
            }
            let mut b = ProgramBuilder::new();
            b.mov(Reg(1), 0x2000);
            b.load(Reg(2), Reg(1), 0);
            b.halt();
            let r = core.run(&b.build());
            (r.stats.cycles, r.reg(Reg(2)))
        };
        assert_eq!(run(false), run(true));
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod jump_ind_tests {
    use super::*;
    use crate::program::ProgramBuilder;

    #[test]
    fn trained_indirect_jump_predicts_correctly() {
        let mut core = Core::table_i();
        // A loop dispatching the same indirect jump repeatedly.
        let mut b = ProgramBuilder::new();
        b.mov(Reg(2), 0);
        b.label("loop");
        b.mov(Reg(1), 0); // patched below: target = @body
        let patch_at = b.here() - 1;
        b.jump_ind(Reg(1));
        b.label("body");
        b.add(Reg(2), Reg(2), 1u64);
        b.branch(crate::isa::Cond::Lt, Reg(2), 50u64, "loop");
        b.halt();
        let mut program = b.build();
        let body = program.label("body").unwrap();
        // Patch the mov to hold the real target.
        let _ = &mut program;
        let mut b2 = ProgramBuilder::new();
        for (i, inst) in program.instructions().iter().enumerate() {
            if i == patch_at {
                b2.mov(Reg(1), body as u64);
            } else {
                b2.push(*inst);
            }
        }
        let program = b2.build();
        let r = core.run(&program);
        assert_eq!(r.reg(Reg(2)), 50);
        // The fall-through IS @body here, so even the cold BTB predicts
        // right; from then on the trained entry keeps it right. Only the
        // loop-exit conditional branch mispredicts.
        assert!(r.stats.mispredicts <= 2, "{}", r.stats.mispredicts);
    }

    #[test]
    fn cold_btb_mispredicts_a_non_fallthrough_target() {
        let mut core = Core::table_i();
        let mut b = ProgramBuilder::new();
        b.mov(Reg(1), 5); // target = @5 (the "far" label below)
        b.jump_ind(Reg(1));
        b.mov(Reg(2), 0xbad); // fall-through: wrong path on cold BTB
        b.mov(Reg(3), 0xbad);
        b.halt();
        // @5:
        b.mov(Reg(4), 0x600d);
        b.halt();
        let r = core.run(&b.build());
        assert_eq!(r.reg(Reg(4)), 0x600d);
        assert_eq!(r.reg(Reg(2)), 0, "wrong-path write rolled back");
        assert_eq!(r.stats.mispredicts, 1);
        // The BTB learned the target.
        assert_eq!(core.btb().predict(1), Some(5));
    }

    #[test]
    fn poisoned_btb_sends_speculation_to_the_wrong_gadget() {
        // The Spectre-v2 primitive: an attacker-trained BTB entry makes
        // the victim's indirect jump transiently execute a gadget the
        // architectural target never reaches.
        let mut core = Core::table_i();
        let probe = Addr::new(0xa000);
        let mut b = ProgramBuilder::new();
        // r1 = actual target (@benign), loaded slowly so speculation has
        // a window; mem[0x4000] holds the benign target index.
        b.mov(Reg(2), 0x4000);
        b.load(Reg(1), Reg(2), 0);
        b.jump_ind(Reg(1)); // pc = 2
        b.label("gadget");
        b.mov(Reg(6), probe.raw());
        b.load(Reg(7), Reg(6), 0); // transient probe load
        b.halt();
        b.label("benign");
        b.mov(Reg(5), 1);
        b.halt();
        let program = b.build();
        let benign = program.label("benign").unwrap();
        let gadget = program.label("gadget").unwrap();
        core.mem_mut().write_u64(Addr::new(0x4000), benign as u64);
        // Poison: the attacker previously drove this jump to the gadget.
        core.btb_mut().update(2, gadget);
        let r = core.run(&program);
        assert_eq!(r.reg(Reg(5)), 1, "architectural path is benign");
        assert_eq!(r.stats.mispredicts, 1);
        // Under the unsafe baseline the gadget's footprint remains.
        assert!(core.hierarchy().l1_contains(probe.line()));
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod call_ret_tests {
    use super::*;
    use crate::program::ProgramBuilder;

    const SP: Reg = Reg(30);

    #[test]
    fn call_and_ret_round_trip() {
        let mut b = ProgramBuilder::new();
        b.mov(SP, 0x9_0000);
        b.call("double", SP);
        b.add(Reg(3), Reg(2), 1u64); // after return
        b.halt();
        b.label("double");
        b.mov(Reg(2), 20);
        b.add(Reg(2), Reg(2), Reg(2));
        b.ret(SP);
        let r = Core::table_i().run(&b.build());
        assert_eq!(r.reg(Reg(2)), 40);
        assert_eq!(r.reg(Reg(3)), 41);
        assert_eq!(r.reg(SP), 0x9_0000, "sp balanced");
        assert_eq!(r.stats.mispredicts, 0, "RSB predicts a clean return");
    }

    #[test]
    fn nested_calls_return_in_order() {
        let mut b = ProgramBuilder::new();
        b.mov(SP, 0x9_0000);
        b.call("outer", SP);
        b.halt();
        b.label("outer");
        b.add(Reg(1), Reg(1), 1u64);
        b.call("inner", SP);
        b.add(Reg(3), Reg(1), Reg(2));
        b.ret(SP);
        b.label("inner");
        b.mov(Reg(2), 10);
        b.ret(SP);
        let r = Core::table_i().run(&b.build());
        assert_eq!(r.reg(Reg(3)), 11);
        assert_eq!(r.stats.mispredicts, 0);
    }

    #[test]
    fn overwritten_return_address_mispredicts_through_the_rsb() {
        // SpectreRSB's primitive: the architectural return target is
        // changed under the RSB's feet, so `ret` speculates at the
        // stale call site.
        let mut b = ProgramBuilder::new();
        b.mov(SP, 0x9_0000);
        b.call("f", SP);
        b.mov(Reg(9), 0xbad); // stale return site: transient only
        b.halt();
        b.label("escape");
        b.mov(Reg(8), 0x600d);
        b.halt();
        b.label("f");
        // Overwrite [sp] with @escape, then flush the stack line so the
        // ret's target load is slow (a wide speculation window).
        b.mov(Reg(1), 0); // patched: escape pc
        let patch_at = b.here() - 1;
        b.store(Reg(1), SP, 0);
        b.flush(SP, 0);
        b.fence();
        b.ret(SP);
        let program = b.build();
        let escape = program.label("escape").unwrap();
        let mut b2 = ProgramBuilder::new();
        for (i, inst) in program.instructions().iter().enumerate() {
            if i == patch_at {
                b2.mov(Reg(1), escape as u64);
            } else {
                b2.push(*inst);
            }
        }
        let r = Core::table_i().run(&b2.build());
        assert_eq!(r.reg(Reg(8)), 0x600d, "architectural path follows memory");
        assert_eq!(r.reg(Reg(9)), 0, "stale-site write rolled back");
        assert_eq!(r.stats.mispredicts, 1, "RSB vs memory divergence");
        // The squash record shows a slow resolution (flushed stack load).
        assert!(r.stats.squashes[0].resolution_time() > 100);
    }

    #[test]
    fn wrong_path_calls_do_not_corrupt_the_rsb() {
        let mut core = Core::table_i();
        core.set_predictor(Box::new(crate::predictor::NeverTaken));
        let mut b = ProgramBuilder::new();
        b.mov(SP, 0x9_0000);
        b.mov(Reg(1), 0x4000);
        b.load(Reg(2), Reg(1), 0); // slow comparand, reads 0
        b.branch(crate::isa::Cond::Eq, Reg(2), 0u64, "skip"); // taken, predicted NT
        b.call("noise", SP); // wrong path: must not push the RSB
        b.label("skip");
        b.call("f", SP);
        b.halt();
        b.label("noise");
        b.ret(SP);
        b.label("f");
        b.ret(SP);
        let r = core.run(&b.build());
        // The architectural call/ret pair still predicts cleanly: only
        // the branch mispredicted.
        assert_eq!(r.stats.mispredicts, 1);
        assert_eq!(core.ras().depth(), 0, "balanced RSB after the run");
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod fast_forward_tests {
    use super::*;
    use crate::isa::Cond;
    use crate::program::ProgramBuilder;
    use unxpec_mem::Addr;

    /// Straight-line stretches with fence-settled memory traffic, broken
    /// up by data-dependent branches — the shape whose two-speed
    /// execution is provably exact (every access completes before the
    /// next one issues, so skipping MSHR entries cannot change timing).
    fn settled_mixed_program() -> Program {
        let mut b = ProgramBuilder::new();
        b.mov(Reg(1), 0x8000);
        b.mov(Reg(2), 0);
        b.mov(Reg(5), 0);
        for i in 0..20i64 {
            b.add(Reg(3), Reg(2), i as u64);
            b.mul(Reg(4), Reg(3), 3u64);
            b.load(Reg(6), Reg(1), i * 64);
            b.fence();
            b.add(Reg(2), Reg(2), Reg(6));
            b.store(Reg(2), Reg(1), i * 64);
            b.fence();
        }
        b.and(Reg(7), Reg(2), 1u64);
        b.branch(Cond::Eq, Reg(7), 0u64, "even");
        b.add(Reg(5), Reg(5), 1u64);
        b.label("even");
        for _ in 0..10 {
            b.mul(Reg(8), Reg(2), 7u64);
            b.add(Reg(5), Reg(5), Reg(8));
        }
        b.halt();
        b.build()
    }

    fn seed_memory(core: &mut Core) {
        for i in 0..20u64 {
            core.mem_mut()
                .write_u64(Addr::new(0x8000 + i * 64), i * 3 + 1);
        }
    }

    #[test]
    fn fast_forward_matches_detailed_exactly_on_settled_program() {
        let program = settled_mixed_program();
        let mut detailed = Core::table_i();
        seed_memory(&mut detailed);
        let rd = detailed.run(&program);

        let mut ff = Core::table_i();
        ff.set_mode(ExecMode::FastForward);
        seed_memory(&mut ff);
        let rf = ff.run(&program);

        assert_eq!(rf.regs, rd.regs, "architectural registers diverged");
        assert_eq!(rf.stats.cycles, rd.stats.cycles, "cycle counts diverged");
        assert_eq!(rf.stats.committed_insts, rd.stats.committed_insts);
        assert_eq!(rf.stats.committed_loads, rd.stats.committed_loads);
        assert_eq!(rf.stats.branches, rd.stats.branches);
        assert_eq!(rf.stats.mispredicts, rd.stats.mispredicts);
        assert_eq!(rf.stats.squashes.len(), rd.stats.squashes.len());
        for i in 0..20u64 {
            let line = Addr::new(0x8000 + i * 64).line();
            assert_eq!(
                ff.hierarchy().l1_contains(line),
                detailed.hierarchy().l1_contains(line),
                "L1 residency diverged for line {i}"
            );
        }
        assert!(rf.stats.ff_regions > 0, "fast-forward never engaged");
        assert!(rf.stats.ff_committed_insts > 0);
        assert_eq!(rd.stats.ff_regions, 0, "detailed run must not fast-forward");
    }

    #[test]
    fn fast_forward_waits_for_inflight_wrong_path_miss() {
        // Fuzz-found divergence, minimized: a mispredicted branch whose
        // wrong path issues a load miss, squashed while the miss is
        // still in flight. The rollback leaves the MSHR running, so the
        // committed re-execution of the same load *merges* with it in
        // the detailed core and waits for the fill (~130 cycles) — but
        // the functional path has no MSHR merge and would hit the
        // already-installed L1 line in 4 cycles. The memory-quiescence
        // gate keeps the region after the squash in detailed mode until
        // the miss drains, so both runs report identical cycles.
        let mut b = ProgramBuilder::new();
        b.mov(Reg(1), 0x8000);
        b.flush(Reg(1), 40);
        b.fence();
        // Taken branch (r2 == 0 < imm); predicted not-taken, so the
        // fall-through wrong path runs the load at "skip" speculatively.
        b.branch(Cond::Lt, Reg(2), 1u64, "skip");
        b.mul(Reg(4), Reg(1), Reg(4));
        b.nop();
        b.label("skip");
        b.load(Reg(7), Reg(1), 336);
        b.fence();
        b.halt();
        let program = b.build();

        let mut detailed = Core::table_i();
        seed_memory(&mut detailed);
        let rd = detailed.run(&program);

        let mut ff = Core::table_i();
        ff.set_mode(ExecMode::FastForward);
        seed_memory(&mut ff);
        let rf = ff.run(&program);

        assert_eq!(rd.stats.squashes.len(), 1, "the branch must mispredict");
        assert_eq!(rf.stats.squashes.len(), 1);
        assert_eq!(rf.regs, rd.regs, "architectural registers diverged");
        assert_eq!(rf.stats.cycles, rd.stats.cycles, "cycle counts diverged");
        assert!(rf.stats.ff_regions > 0, "fast-forward never engaged");
    }

    #[test]
    fn fast_forward_is_inert_without_the_mode() {
        let program = settled_mixed_program();
        let mut core = Core::table_i();
        let r = core.run(&program);
        assert_eq!(r.stats.ff_regions, 0);
        assert_eq!(r.stats.ff_committed_insts, 0);
    }

    #[test]
    fn tracing_disengages_fast_forward() {
        // Per-instruction tracing needs the detailed event stream, so a
        // traced run silently stays all-detailed even in FF mode.
        let program = settled_mixed_program();
        let mut core = Core::table_i();
        core.set_mode(ExecMode::FastForward).set_tracing(true);
        let r = core.run(&program);
        assert_eq!(r.stats.ff_regions, 0);
        let trace = r.trace.expect("tracing was enabled");
        assert_eq!(
            trace.events.len() as u64,
            r.stats.committed_insts + r.stats.squashed_insts,
            "trace must cover every dispatched instruction"
        );
    }

    #[test]
    fn sanitizer_stays_clean_across_mode_switches() {
        let program = settled_mixed_program();
        let mut core = Core::table_i();
        core.set_mode(ExecMode::FastForward);
        seed_memory(&mut core);
        let r = core
            .run_checked(&program)
            .expect("no invariant may trip across FF/detailed hand-offs");
        assert!(r.stats.ff_regions > 0, "fast-forward must engage");
    }

    #[test]
    fn milestone_accounting_matches_between_modes() {
        let program = settled_mixed_program();
        let mut detailed = Core::table_i();
        let rd = detailed.run_with_milestone(&program, Some(50), u64::MAX);
        let mut ff = Core::table_i();
        ff.set_mode(ExecMode::FastForward);
        let rf = ff.run_with_milestone(&program, Some(50), u64::MAX);
        assert_eq!(rf.stats.milestone_cycle, rd.stats.milestone_cycle);
    }

    #[test]
    fn mode_switch_events_bracket_regions() {
        let program = settled_mixed_program();
        let sink = unxpec_telemetry::Telemetry::ring(4096);
        let mut core = Core::table_i();
        core.set_mode(ExecMode::FastForward)
            .set_telemetry(sink.clone());
        let r = core.run(&program);
        let events = sink.snapshot();
        let switches: Vec<bool> = events
            .iter()
            .filter_map(|e| match e {
                Event::ModeSwitch { fast_forward, .. } => Some(*fast_forward),
                _ => None,
            })
            .collect();
        assert_eq!(
            switches.len() as u64,
            2 * r.stats.ff_regions,
            "every region must open and close a switch span"
        );
        for pair in switches.chunks(2) {
            assert_eq!(pair, [true, false], "spans must alternate enter/exit");
        }
    }
}
