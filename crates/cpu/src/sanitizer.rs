//! Runtime invariant sanitizer: an optional checking layer over the
//! cycle loop.
//!
//! The simulator's correctness rests on a handful of structural
//! invariants — the incremental cache-occupancy counters match a recount,
//! every allocated MSHR entry is eventually released, the ROB release
//! queue is monotone, the ROB head keeps retiring, and an exact-rollback
//! defense really does leave the caches as if the transient loads never
//! ran. In normal operation these hold by construction; under fault
//! injection (see `unxpec_cache::FaultInjector`) or a seeded mutation
//! they can be violated, and the sanitizer's job is to turn such a
//! violation into a *typed*, reportable [`InvariantViolation`] instead of
//! silently-wrong results or an unbounded stall.
//!
//! The sanitizer is opt-in (`Core::set_sanitizer`) and purely
//! observational: with it enabled and no faults injected, runs are
//! byte-identical to runs without it. Checks run at squash boundaries and
//! at run end — never per instruction — so the checked configuration
//! stays cheap enough for CI sweeps.

use std::fmt;

use unxpec_cache::Cycle;

use crate::isa::PcIndex;

/// Which rollback-exactness property failed (see
/// [`InvariantViolation::RollbackMismatch`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RollbackCheck {
    /// A line installed by a squashed load still carries a squashed
    /// speculation tag.
    TagRemains,
    /// A line installed by a squashed load is still resident after the
    /// defense claimed exact rollback.
    InstallSurvived,
    /// A non-speculative victim evicted by a squashed load was not
    /// restored.
    VictimLost,
}

impl RollbackCheck {
    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            RollbackCheck::TagRemains => "tag_remains",
            RollbackCheck::InstallSurvived => "install_survived",
            RollbackCheck::VictimLost => "victim_lost",
        }
    }
}

/// A violated runtime invariant, reported as a typed error rather than a
/// panic or a hang.
///
/// Every variant has a stable numeric [`code`](InvariantViolation::code)
/// used by the `Event::InvariantTrip` telemetry event, so traces remain
/// decodable without this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvariantViolation {
    /// A cache's incremental occupancy counter disagrees with a full
    /// recount of its valid slots (code 1).
    OccupancyMismatch {
        /// Cache level (1 = L1D, 2 = L2).
        level: u8,
        /// The incremental counter's value.
        counted: usize,
        /// The ground-truth recount.
        recounted: usize,
    },
    /// The MSHR allocate/release ledger does not balance against the
    /// live entry list, or occupancy exceeds capacity (code 2).
    MshrLeak {
        /// Lifetime allocations.
        allocated: u64,
        /// Lifetime releases (retirements + cancellations).
        released: u64,
        /// Entries currently live.
        live: usize,
    },
    /// The ROB release queue went non-monotone: a younger instruction
    /// would retire before an older one (code 3).
    RobOrder {
        /// The older entry's release cycle.
        prev: Cycle,
        /// The younger entry's (earlier!) release cycle.
        next: Cycle,
    },
    /// The ROB head failed to retire within the configured budget — the
    /// typed form of what would otherwise be a wedged, non-terminating
    /// run (code 4).
    Livelock {
        /// PC the front end was stuck at.
        pc: PcIndex,
        /// Release cycle of the ROB head everyone is waiting on.
        rob_head: Cycle,
        /// How far in the future that release lies.
        cycles_stalled: Cycle,
    },
    /// An exact-rollback defense left the caches in a state inconsistent
    /// with "the transient loads never ran" (code 5).
    RollbackMismatch {
        /// The line whose post-rollback state is wrong.
        line: u64,
        /// Which exactness property failed.
        which: RollbackCheck,
    },
}

impl InvariantViolation {
    /// Stable numeric code, mirrored into `Event::InvariantTrip`.
    pub fn code(&self) -> u64 {
        match self {
            InvariantViolation::OccupancyMismatch { .. } => 1,
            InvariantViolation::MshrLeak { .. } => 2,
            InvariantViolation::RobOrder { .. } => 3,
            InvariantViolation::Livelock { .. } => 4,
            InvariantViolation::RollbackMismatch { .. } => 5,
        }
    }

    /// Short snake_case name (manifest and diagnostics keys).
    pub fn name(&self) -> &'static str {
        match self {
            InvariantViolation::OccupancyMismatch { .. } => "occupancy_mismatch",
            InvariantViolation::MshrLeak { .. } => "mshr_leak",
            InvariantViolation::RobOrder { .. } => "rob_order",
            InvariantViolation::Livelock { .. } => "livelock",
            InvariantViolation::RollbackMismatch { .. } => "rollback_mismatch",
        }
    }

    /// One `u64` of variant-specific detail for the telemetry event:
    /// packed counter values, the stalled-for cycle count, or the
    /// offending line address.
    pub fn detail(&self) -> u64 {
        match *self {
            InvariantViolation::OccupancyMismatch {
                counted, recounted, ..
            } => ((counted as u64) << 32) | (recounted as u64 & 0xffff_ffff),
            InvariantViolation::MshrLeak {
                allocated,
                released,
                ..
            } => (allocated << 32) | (released & 0xffff_ffff),
            InvariantViolation::RobOrder { next, .. } => next,
            InvariantViolation::Livelock { cycles_stalled, .. } => cycles_stalled,
            InvariantViolation::RollbackMismatch { line, .. } => line,
        }
    }
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            InvariantViolation::OccupancyMismatch {
                level,
                counted,
                recounted,
            } => write!(
                f,
                "L{level} occupancy counter {counted} disagrees with recount {recounted}"
            ),
            InvariantViolation::MshrLeak {
                allocated,
                released,
                live,
            } => write!(
                f,
                "MSHR ledger imbalance: {allocated} allocated, {released} released, {live} live"
            ),
            InvariantViolation::RobOrder { prev, next } => {
                write!(f, "ROB release queue non-monotone: {next} after {prev}")
            }
            InvariantViolation::Livelock {
                pc,
                rob_head,
                cycles_stalled,
            } => write!(
                f,
                "livelock at pc {pc}: ROB head retires at {rob_head}, \
                 {cycles_stalled} cycles past the watchdog budget"
            ),
            InvariantViolation::RollbackMismatch { line, which } => write!(
                f,
                "rollback not exact for line {:#x}: {}",
                line,
                which.name()
            ),
        }
    }
}

impl std::error::Error for InvariantViolation {}

/// Configuration for the sanitizer's checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SanitizerConfig {
    /// Retirement forward-progress budget: if the ROB head's release lies
    /// more than this many cycles in the future, the run ends in a typed
    /// [`InvariantViolation::Livelock`]. `0` disables the watchdog.
    pub livelock_budget: Cycle,
    /// Recount cache occupancy against the incremental counters.
    pub check_occupancy: bool,
    /// Check the MSHR allocate/release ledger.
    pub check_mshr: bool,
    /// Check ROB release-queue monotonicity.
    pub check_rob: bool,
    /// Run the rollback-exactness oracle after every squash (only
    /// meaningful when the active defense claims
    /// [`crate::Defense::rollback_exact`]).
    pub check_rollback: bool,
}

impl Default for SanitizerConfig {
    fn default() -> Self {
        SanitizerConfig {
            // Generous against real workloads (the longest legitimate
            // stall is a memory round trip plus queueing, well under
            // 10^4 cycles) yet far below a wedged fill's 2^30.
            livelock_budget: 1_000_000,
            check_occupancy: true,
            check_mshr: true,
            check_rob: true,
            check_rollback: true,
        }
    }
}

/// Sanitizer state held by the core: the configuration, how many check
/// passes ran, and the first violation observed (later checks are
/// skipped once tripped — the machine state is already suspect).
#[derive(Debug, Clone)]
pub struct Sanitizer {
    cfg: SanitizerConfig,
    checks_run: u64,
    trip: Option<InvariantViolation>,
}

impl Sanitizer {
    /// A sanitizer with `cfg`.
    pub fn new(cfg: SanitizerConfig) -> Self {
        Sanitizer {
            cfg,
            checks_run: 0,
            trip: None,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SanitizerConfig {
        &self.cfg
    }

    /// Whether a violation has been recorded.
    pub fn tripped(&self) -> bool {
        self.trip.is_some()
    }

    /// The first recorded violation, if any.
    pub fn trip(&self) -> Option<&InvariantViolation> {
        self.trip.as_ref()
    }

    /// Removes and returns the recorded violation.
    pub fn take_trip(&mut self) -> Option<InvariantViolation> {
        self.trip.take()
    }

    /// Records `violation` if none is recorded yet; returns whether it
    /// was stored (i.e. it is the first).
    pub fn note(&mut self, violation: InvariantViolation) -> bool {
        if self.trip.is_none() {
            self.trip = Some(violation);
            true
        } else {
            false
        }
    }

    /// Counts one completed check pass (structural checks or oracle).
    pub fn record_check(&mut self) {
        self.checks_run += 1;
    }

    /// How many check passes have run.
    pub fn checks_run(&self) -> u64 {
        self.checks_run
    }

    /// Clears the trip (kept across runs otherwise, so a violation in
    /// run N is still visible before run N+1 starts).
    pub fn reset(&mut self) {
        self.trip = None;
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_distinct() {
        let violations = [
            InvariantViolation::OccupancyMismatch {
                level: 1,
                counted: 3,
                recounted: 4,
            },
            InvariantViolation::MshrLeak {
                allocated: 10,
                released: 8,
                live: 1,
            },
            InvariantViolation::RobOrder { prev: 9, next: 5 },
            InvariantViolation::Livelock {
                pc: 7,
                rob_head: 1 << 30,
                cycles_stalled: 1 << 30,
            },
            InvariantViolation::RollbackMismatch {
                line: 0x40,
                which: RollbackCheck::InstallSurvived,
            },
        ];
        let codes: Vec<u64> = violations.iter().map(InvariantViolation::code).collect();
        assert_eq!(codes, vec![1, 2, 3, 4, 5]);
        for v in &violations {
            assert!(!v.name().is_empty());
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn note_keeps_only_the_first_violation() {
        let mut s = Sanitizer::new(SanitizerConfig::default());
        assert!(!s.tripped());
        assert!(s.note(InvariantViolation::RobOrder { prev: 2, next: 1 }));
        assert!(!s.note(InvariantViolation::RobOrder { prev: 9, next: 3 }));
        assert_eq!(
            s.trip(),
            Some(&InvariantViolation::RobOrder { prev: 2, next: 1 })
        );
        s.reset();
        assert!(!s.tripped());
    }

    #[test]
    fn detail_packs_variant_specific_numbers() {
        let v = InvariantViolation::OccupancyMismatch {
            level: 1,
            counted: 3,
            recounted: 4,
        };
        assert_eq!(v.detail(), (3 << 32) | 4);
        let l = InvariantViolation::Livelock {
            pc: 0,
            rob_head: 100,
            cycles_stalled: 42,
        };
        assert_eq!(l.detail(), 42);
    }

    #[test]
    fn default_budget_sits_between_workloads_and_wedges() {
        let cfg = SanitizerConfig::default();
        assert!(cfg.livelock_budget >= 100_000);
        assert!(cfg.livelock_budget < 1 << 30);
    }
}
