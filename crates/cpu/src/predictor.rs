//! Branch predictors.
//!
//! The attack mistrains a predictor; the default is the classic bimodal
//! table of 2-bit saturating counters, which the paper's POISON loop
//! trains toward "taken" so that the out-of-bounds invocation
//! mis-speculates into the branch body. A gshare predictor and two static
//! policies are provided for ablations (how many mistrain iterations does
//! each need?).

use crate::isa::PcIndex;

/// A direction predictor for conditional branches.
pub trait BranchPredictor: std::fmt::Debug + Send {
    /// Predicted direction for the branch at `pc`.
    fn predict(&mut self, pc: PcIndex) -> bool;

    /// Trains with the resolved direction of the branch at `pc`.
    fn update(&mut self, pc: PcIndex, taken: bool);

    /// Resets all state.
    fn reset(&mut self);
}

/// Bimodal predictor: per-PC 2-bit saturating counters.
#[derive(Debug, Clone)]
pub struct BimodalPredictor {
    counters: Vec<u8>,
    mask: usize,
}

impl BimodalPredictor {
    /// Creates a predictor with `entries` counters (power of two),
    /// initialized to weakly not-taken.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize) -> Self {
        assert!(entries.is_power_of_two(), "entries must be a power of two");
        BimodalPredictor {
            counters: vec![1; entries],
            mask: entries - 1,
        }
    }

    fn index(&self, pc: PcIndex) -> usize {
        // Cheap hash spreading nearby PCs.
        (pc.wrapping_mul(0x9e37_79b1)) & self.mask
    }

    /// Raw counter value for `pc` (tests).
    pub fn counter(&self, pc: PcIndex) -> u8 {
        self.counters[self.index(pc)]
    }
}

impl Default for BimodalPredictor {
    fn default() -> Self {
        Self::new(4096)
    }
}

impl BranchPredictor for BimodalPredictor {
    fn predict(&mut self, pc: PcIndex) -> bool {
        self.counters[self.index(pc)] >= 2
    }

    fn update(&mut self, pc: PcIndex, taken: bool) {
        let idx = self.index(pc);
        let c = &mut self.counters[idx];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }

    fn reset(&mut self) {
        self.counters.fill(1);
    }
}

/// Gshare predictor: global history xor-ed into the counter index.
#[derive(Debug, Clone)]
pub struct GsharePredictor {
    counters: Vec<u8>,
    mask: usize,
    history: usize,
    history_bits: u32,
}

impl GsharePredictor {
    /// Creates a gshare predictor with `entries` counters and
    /// `history_bits` of global history.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize, history_bits: u32) -> Self {
        assert!(entries.is_power_of_two(), "entries must be a power of two");
        GsharePredictor {
            counters: vec![1; entries],
            mask: entries - 1,
            history: 0,
            history_bits,
        }
    }

    fn index(&self, pc: PcIndex) -> usize {
        (pc.wrapping_mul(0x9e37_79b1) ^ self.history) & self.mask
    }
}

impl BranchPredictor for GsharePredictor {
    fn predict(&mut self, pc: PcIndex) -> bool {
        self.counters[self.index(pc)] >= 2
    }

    fn update(&mut self, pc: PcIndex, taken: bool) {
        let idx = self.index(pc);
        let c = &mut self.counters[idx];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        self.history = ((self.history << 1) | taken as usize) & ((1usize << self.history_bits) - 1);
    }

    fn reset(&mut self) {
        self.counters.fill(1);
        self.history = 0;
    }
}

/// A branch target buffer for indirect jumps: last-seen target per
/// static PC. This is exactly the structure Spectre v2 poisons — any
/// code that executed an indirect jump at the same PC trains the
/// prediction for the next one.
#[derive(Debug, Clone, Default)]
pub struct Btb {
    targets: std::collections::HashMap<PcIndex, PcIndex>,
}

impl Btb {
    /// An empty BTB.
    pub fn new() -> Self {
        Self::default()
    }

    /// Predicted target of the indirect jump at `pc`, if trained.
    pub fn predict(&self, pc: PcIndex) -> Option<PcIndex> {
        self.targets.get(&pc).copied()
    }

    /// Trains the entry for `pc` with the resolved `target`.
    pub fn update(&mut self, pc: PcIndex, target: PcIndex) {
        self.targets.insert(pc, target);
    }

    /// Clears all entries.
    pub fn reset(&mut self) {
        self.targets.clear();
    }

    /// Number of trained entries.
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// Whether the BTB is empty.
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }
}

/// A return stack buffer: a bounded LIFO of predicted return targets.
/// SpectreRSB / ret2spec desynchronize it from the architectural stack
/// (overwritten return addresses, overflow) so `ret` speculates to a
/// stale site.
#[derive(Debug, Clone)]
pub struct ReturnStackBuffer {
    stack: std::collections::VecDeque<PcIndex>,
    capacity: usize,
}

impl ReturnStackBuffer {
    /// An empty RSB with `capacity` entries (16 on the modeled core).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "RSB needs capacity");
        ReturnStackBuffer {
            stack: std::collections::VecDeque::new(),
            capacity,
        }
    }

    /// Pushes a return target, dropping the oldest on overflow.
    pub fn push(&mut self, target: PcIndex) {
        if self.stack.len() == self.capacity {
            self.stack.pop_front();
        }
        self.stack.push_back(target);
    }

    /// Pops the predicted return target.
    pub fn pop(&mut self) -> Option<PcIndex> {
        self.stack.pop_back()
    }

    /// Peeks the predicted return target without consuming it
    /// (wrong-path returns must not corrupt the stack).
    pub fn peek(&self) -> Option<PcIndex> {
        self.stack.back().copied()
    }

    /// Current depth.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Clears the buffer.
    pub fn reset(&mut self) {
        self.stack.clear();
    }
}

impl Default for ReturnStackBuffer {
    fn default() -> Self {
        Self::new(16)
    }
}

/// Static always-taken predictor (ablation).
#[derive(Debug, Clone, Copy, Default)]
pub struct AlwaysTaken;

impl BranchPredictor for AlwaysTaken {
    fn predict(&mut self, _pc: PcIndex) -> bool {
        true
    }

    fn update(&mut self, _pc: PcIndex, _taken: bool) {}

    fn reset(&mut self) {}
}

/// Static never-taken predictor (ablation).
#[derive(Debug, Clone, Copy, Default)]
pub struct NeverTaken;

impl BranchPredictor for NeverTaken {
    fn predict(&mut self, _pc: PcIndex) -> bool {
        false
    }

    fn update(&mut self, _pc: PcIndex, _taken: bool) {}

    fn reset(&mut self) {}
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;

    #[test]
    fn bimodal_trains_toward_taken() {
        let mut p = BimodalPredictor::new(64);
        assert!(!p.predict(5)); // weakly not-taken initially
        p.update(5, true);
        assert!(p.predict(5));
        p.update(5, true);
        assert_eq!(p.counter(5), 3);
    }

    #[test]
    fn bimodal_mistrain_then_mispredict() {
        // The Spectre pattern: many taken outcomes, then an actual
        // not-taken still predicts taken.
        let mut p = BimodalPredictor::new(64);
        for _ in 0..8 {
            p.update(7, true);
        }
        assert!(p.predict(7));
        p.update(7, false); // one wrong outcome does not flip a saturated counter
        assert!(p.predict(7));
    }

    #[test]
    fn bimodal_reset() {
        let mut p = BimodalPredictor::new(64);
        p.update(3, true);
        p.update(3, true);
        p.reset();
        assert!(!p.predict(3));
    }

    #[test]
    fn gshare_uses_history() {
        let mut p = GsharePredictor::new(256, 4);
        // Alternating pattern at one PC: gshare can learn it because the
        // history disambiguates, bimodal cannot.
        for _ in 0..64 {
            let taken = p.history & 1 == 0;
            p.update(9, taken);
        }
        // After training, prediction should follow the alternation most
        // of the time.
        let mut correct = 0;
        for _ in 0..32 {
            let expected = p.history & 1 == 0;
            if p.predict(9) == expected {
                correct += 1;
            }
            p.update(9, expected);
        }
        assert!(correct > 24, "gshare learned only {correct}/32");
    }

    #[test]
    fn btb_learns_last_target() {
        let mut btb = Btb::new();
        assert_eq!(btb.predict(5), None);
        btb.update(5, 100);
        assert_eq!(btb.predict(5), Some(100));
        btb.update(5, 200);
        assert_eq!(btb.predict(5), Some(200));
        assert_eq!(btb.len(), 1);
        btb.reset();
        assert!(btb.is_empty());
    }

    #[test]
    fn rsb_is_lifo_and_bounded() {
        let mut rsb = ReturnStackBuffer::new(2);
        rsb.push(10);
        rsb.push(20);
        rsb.push(30); // drops 10
        assert_eq!(rsb.peek(), Some(30));
        assert_eq!(rsb.pop(), Some(30));
        assert_eq!(rsb.pop(), Some(20));
        assert_eq!(rsb.pop(), None, "10 was dropped on overflow");
    }

    #[test]
    fn static_predictors_are_constant() {
        assert!(AlwaysTaken.predict(1));
        assert!(!NeverTaken.predict(1));
    }
}
