//! The hook through which safe-speculation defenses plug into the core.
//!
//! The core detects a mis-speculation, squashes younger instructions, and
//! then hands the defense everything it needs to undo (or hide) the
//! microarchitectural damage: the resolve cycle and the exact cache-state
//! effects of the squashed loads. The defense mutates the hierarchy and
//! returns the cycle at which the front end may redirect — the interval
//! between resolve and redirect is precisely the T3–T5 cleanup window of
//! the paper's Fig. 1, and its secret dependence is what unXpec measures.

use unxpec_cache::{CacheHierarchy, Cycle, Effect, ExternalProbe, SpecTag};
use unxpec_mem::LineAddr;

/// Everything the core knows about one squash event.
///
/// The effect list is borrowed from the core's reusable squash scratch
/// buffer rather than owned: squashes are the steady-state hot path of
/// every figure-reproduction run, and handing each defense an owned
/// `Vec` forced an allocation per squash for data the defense only
/// reads during `on_squash`.
#[derive(Debug, Clone)]
pub struct SquashInfo<'a> {
    /// Cycle the mispredicted branch resolved (T2).
    pub resolve_cycle: Cycle,
    /// Static PC of the mispredicted branch.
    pub branch_pc: usize,
    /// Speculation epoch being squashed (younger epochs die with it).
    pub epoch: SpecTag,
    /// Cache-state effects of the squashed loads, oldest first.
    pub transient_effects: &'a [Effect],
    /// Number of squashed loads that had issued a cache access.
    pub squashed_loads: usize,
    /// Number of squashed instructions of any kind.
    pub squashed_insts: usize,
}

/// How speculative loads interact with the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FillPolicy {
    /// Speculative loads fill the cache eagerly (Undo-style and the
    /// unsafe baseline).
    #[default]
    Eager,
    /// Speculative loads do not modify cache state; fills happen at epoch
    /// commit (Invisible-style, e.g. InvisiSpec).
    Invisible,
    /// Speculative loads that *hit* the L1 proceed; speculative L1
    /// misses are deferred until every enclosing branch resolves
    /// (delay-on-miss, Sakalis et al. ISCA 2019). No speculative
    /// footprint, no per-hit cost — the slowdown concentrates on
    /// speculative misses.
    DelayOnMiss,
}

/// A safe-speculation defense.
///
/// Implementations must be deterministic given the same inputs; all
/// randomness (e.g. fuzzy delays) must come from seeded state inside the
/// implementation.
pub trait Defense: std::fmt::Debug + Send {
    /// Short display name (used in experiment tables).
    fn name(&self) -> &'static str;

    /// Whether speculative loads fill the cache ([`FillPolicy::Eager`],
    /// the default) or stay invisible until commit.
    fn fill_policy(&self) -> FillPolicy {
        FillPolicy::Eager
    }

    /// Extra latency charged to every speculative load (Invisible
    /// schemes pay for validation/exposure traffic; zero by default).
    fn speculative_load_extra_latency(&self) -> Cycle {
        0
    }

    /// For [`FillPolicy::DelayOnMiss`]: whether this delayed load's
    /// value is supplied by a value predictor (letting execution
    /// continue without the delay). Called once per delayed load;
    /// implementations draw from their own seeded RNG.
    fn delayed_load_value_predicted(&mut self) -> bool {
        false
    }

    /// Whether `on_squash` claims *exact* state rollback — the caches
    /// end up as if the transient loads never ran. Defenses returning
    /// `true` opt into the sanitizer's rollback-exactness oracle, which
    /// re-checks the restored state line by line after every squash.
    /// Default `false` (the baseline leaves footprints; invisible
    /// schemes never create any).
    fn rollback_exact(&self) -> bool {
        false
    }

    /// Handles a squash: roll back or hide state as the scheme dictates
    /// and return the cycle at which the front end may resume fetching.
    ///
    /// The baseline (no defense) returns `info.resolve_cycle` unchanged;
    /// the core adds its own pipeline-refill penalty on top.
    fn on_squash(&mut self, hier: &mut CacheHierarchy, info: &SquashInfo<'_>) -> Cycle;

    /// Called when a speculation epoch resolves *correct*, with the
    /// effects of the loads that executed under it. The default clears
    /// the speculative tags — the install becomes architectural.
    fn on_commit_epoch(&mut self, hier: &mut CacheHierarchy, effects: &[Effect]) {
        for effect in effects {
            hier.commit_line(effect.installed_line());
        }
    }

    /// A human-readable dump of the defense's internal counters (shown
    /// by the `simulate` binary next to the gem5-style stats). Empty by
    /// default.
    fn report(&self) -> String {
        String::new()
    }

    /// Registers the defense's internal counters into `reg`, under a
    /// namespace derived from [`Defense::name`]. No-op by default —
    /// defenses without counters stay silent in the metrics dump.
    fn record_metrics(&self, _reg: &mut unxpec_telemetry::MetricsRegistry) {}

    /// Services a read request from another thread or core for `line`.
    ///
    /// The default is the unprotected behaviour: supply from the caches
    /// with the corresponding (attacker-timable) latency and downgrade
    /// M/E to Shared. CleanupSpec overrides this to answer with a dummy
    /// miss whenever the line is a not-yet-safe speculative install, so
    /// a cross-thread probe cannot see transient state during the
    /// speculation window (§II-B of the unXpec paper).
    fn serve_external_probe(
        &mut self,
        hier: &mut CacheHierarchy,
        line: LineAddr,
        cycle: Cycle,
    ) -> ExternalProbe {
        hier.serve_external_read(line, cycle)
    }
}

/// The unsafe baseline: squashed instructions leave their cache
/// footprints in place (classic Spectre-vulnerable behaviour).
#[derive(Debug, Clone, Copy, Default)]
pub struct UnsafeBaseline;

impl Defense for UnsafeBaseline {
    fn name(&self) -> &'static str {
        "unsafe-baseline"
    }

    fn on_squash(&mut self, hier: &mut CacheHierarchy, info: &SquashInfo<'_>) -> Cycle {
        // Footprints stay; tags are cleared so later squashes do not
        // confuse stale installs with their own.
        for effect in info.transient_effects {
            hier.commit_line(effect.installed_line());
        }
        info.resolve_cycle
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;
    use unxpec_cache::HierarchyConfig;
    use unxpec_mem::LineAddr;

    #[test]
    fn unsafe_baseline_keeps_footprints_and_adds_no_stall() {
        let mut hier = CacheHierarchy::new(HierarchyConfig::table_i(), 1);
        let line = LineAddr::new(0x77);
        let out = hier.access_data(line, 0, Some(SpecTag(1)));
        let info = SquashInfo {
            resolve_cycle: 500,
            branch_pc: 3,
            epoch: SpecTag(1),
            transient_effects: &out.effects,
            squashed_loads: 1,
            squashed_insts: 2,
        };
        let mut d = UnsafeBaseline;
        let resume = d.on_squash(&mut hier, &info);
        assert_eq!(resume, 500);
        assert!(hier.l1_contains(line), "footprint must remain");
        assert!(!hier.l1_is_speculative(line), "tag must be cleared");
    }
}
