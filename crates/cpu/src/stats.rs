//! Run statistics and squash records (the gem5-stats analogue).

use unxpec_cache::Cycle;

/// One squash event, recorded for experiment post-processing.
///
/// The paper's key quantities map directly: `resolution_time` is T1–T2 of
/// Fig. 1, `cleanup_cycles` is T3–T5 (the secret-dependent part), and the
/// counts say how much rollback work the defense performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SquashRecord {
    /// Static PC of the mispredicted branch.
    pub branch_pc: usize,
    /// Cycle the branch dispatched (start of the speculation window, T1).
    pub dispatch_cycle: Cycle,
    /// Cycle the branch resolved (T2).
    pub resolve_cycle: Cycle,
    /// Cycle the front end redirected (after defense cleanup, T6 minus
    /// the refill penalty).
    pub redirect_cycle: Cycle,
    /// Squashed loads that had issued cache accesses.
    pub squashed_loads: usize,
    /// L1 lines the squashed loads installed.
    pub l1_installs: usize,
    /// L1 victims those installs displaced (restoration candidates).
    pub l1_evictions: usize,
}

impl SquashRecord {
    /// T1–T2: branch resolution time. Saturates at zero: a branch that
    /// resolves the cycle it dispatches (or a record assembled from
    /// clamped cycles) must not wrap to `u64::MAX`.
    pub fn resolution_time(&self) -> Cycle {
        self.resolve_cycle.saturating_sub(self.dispatch_cycle)
    }

    /// T2–redirect: the defense's cleanup stall. Saturates at zero for
    /// zero-cost defenses whose redirect coincides with resolution.
    pub fn cleanup_cycles(&self) -> Cycle {
        self.redirect_cycle.saturating_sub(self.resolve_cycle)
    }
}

/// Aggregate statistics of one program run.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Total simulated cycles.
    pub cycles: Cycle,
    /// Committed (correct-path) instructions.
    pub committed_insts: u64,
    /// Committed loads.
    pub committed_loads: u64,
    /// Resolved conditional branches.
    pub branches: u64,
    /// Mispredicted branches.
    pub mispredicts: u64,
    /// Wrong-path (squashed) instructions executed.
    pub squashed_insts: u64,
    /// Cycles spent stalled in defense cleanup.
    pub cleanup_stall_cycles: Cycle,
    /// Per-squash detail records.
    pub squashes: Vec<SquashRecord>,
    /// Cycle count when the committed-instruction milestone was reached
    /// (see `Core::run_with_milestone`; the paper's `startinst_count`
    /// warmup methodology).
    pub milestone_cycle: Option<Cycle>,
    /// Committed instructions executed by the fast-forward functional
    /// interpreter (a subset of `committed_insts`; zero in all-detailed
    /// runs).
    pub ff_committed_insts: u64,
    /// Fast-forward regions entered (mode switches into the functional
    /// interpreter; zero in all-detailed runs).
    pub ff_regions: u64,
}

impl RunStats {
    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed_insts as f64 / self.cycles as f64
        }
    }

    /// Misprediction rate over resolved branches.
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.branches as f64
        }
    }

    /// Squashes per kilo-cycle (the driver of constant-time-rollback
    /// overhead in Fig. 12).
    pub fn squashes_per_kcycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.mispredicts as f64 * 1000.0 / self.cycles as f64
        }
    }

    /// Registers the run's counters under the `core.` namespace and its
    /// per-squash intervals as `squash.*` histograms.
    pub fn record_metrics(&self, reg: &mut unxpec_telemetry::MetricsRegistry) {
        reg.set("core.cycles", self.cycles);
        reg.set("core.committed_insts", self.committed_insts);
        reg.set("core.committed_loads", self.committed_loads);
        reg.set("core.branches", self.branches);
        reg.set("core.mispredicts", self.mispredicts);
        reg.set("core.squashed_insts", self.squashed_insts);
        reg.set("core.cleanup_stall_cycles", self.cleanup_stall_cycles);
        reg.set("core.ipc_milli", (self.ipc() * 1000.0).round() as u64);
        // Mode counters appear only for runs that actually fast-forwarded,
        // so detailed-mode metric dumps stay byte-identical to pre-two-speed
        // builds.
        if self.ff_regions > 0 {
            reg.set("core.mode.ff_committed_insts", self.ff_committed_insts);
            reg.set("core.mode.ff_regions", self.ff_regions);
            reg.set(
                "core.mode.detailed_committed_insts",
                self.committed_insts - self.ff_committed_insts,
            );
        }
        for r in &self.squashes {
            reg.observe("squash.resolution_time", r.resolution_time());
            reg.observe("squash.cleanup_cycles", r.cleanup_cycles());
        }
    }

    /// Renders the counters in the `key  value` style of a gem5 stats
    /// dump, using the names the unXpec artifact appendix extracts for
    /// its Fig. 12 methodology (`sim_ticks`,
    /// `system.cpu.fetch.startCycles`,
    /// `system.cpu.iew.lsq.thread0.extraCleanupSquashTimeCyclesXX`).
    /// `constant_rollback` labels the cleanup-stall counter with the
    /// enforced constant, as the artifact does per configuration.
    pub fn gem5_style_dump(&self, constant_rollback: Option<u64>) -> String {
        let mut out = String::new();
        let mut kv = |k: &str, v: u64| {
            out.push_str(&format!(
                "{k:<58} {v}
"
            ));
        };
        kv("sim_ticks", self.cycles);
        kv(
            "system.cpu.fetch.startCycles",
            self.milestone_cycle.unwrap_or(0),
        );
        kv("system.cpu.committedInsts", self.committed_insts);
        kv("system.cpu.committedLoads", self.committed_loads);
        kv("system.cpu.branchPred.condPredicted", self.branches);
        kv("system.cpu.branchPred.condIncorrect", self.mispredicts);
        kv("system.cpu.squashedInsts", self.squashed_insts);
        let key = match constant_rollback {
            Some(c) => format!("system.cpu.iew.lsq.thread0.extraCleanupSquashTimeCycles{c}"),
            None => "system.cpu.iew.lsq.thread0.extraCleanupSquashTimeCycles".to_string(),
        };
        kv(&key, self.cleanup_stall_cycles);
        out
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;

    #[test]
    fn record_intervals() {
        let r = SquashRecord {
            branch_pc: 1,
            dispatch_cycle: 100,
            resolve_cycle: 220,
            redirect_cycle: 242,
            squashed_loads: 1,
            l1_installs: 1,
            l1_evictions: 0,
        };
        assert_eq!(r.resolution_time(), 120);
        assert_eq!(r.cleanup_cycles(), 22);
    }

    #[test]
    fn same_cycle_resolution_is_zero_not_wraparound() {
        let r = SquashRecord {
            branch_pc: 1,
            dispatch_cycle: 100,
            resolve_cycle: 100,
            redirect_cycle: 100,
            squashed_loads: 0,
            l1_installs: 0,
            l1_evictions: 0,
        };
        assert_eq!(r.resolution_time(), 0);
        assert_eq!(r.cleanup_cycles(), 0);
    }

    #[test]
    fn out_of_order_cycles_saturate_to_zero() {
        // A record stitched together from clamped cycle values can end up
        // with redirect < resolve; the intervals must clamp, not wrap.
        let r = SquashRecord {
            branch_pc: 1,
            dispatch_cycle: 200,
            resolve_cycle: 150,
            redirect_cycle: 120,
            squashed_loads: 0,
            l1_installs: 0,
            l1_evictions: 0,
        };
        assert_eq!(r.resolution_time(), 0);
        assert_eq!(r.cleanup_cycles(), 0);
    }

    #[test]
    fn stats_rates() {
        let s = RunStats {
            cycles: 1000,
            committed_insts: 500,
            branches: 100,
            mispredicts: 10,
            ..RunStats::default()
        };
        assert!((s.ipc() - 0.5).abs() < 1e-12);
        assert!((s.mispredict_rate() - 0.1).abs() < 1e-12);
        assert!((s.squashes_per_kcycle() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = RunStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.mispredict_rate(), 0.0);
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod dump_tests {
    use super::*;

    #[test]
    fn gem5_dump_has_artifact_keys() {
        let s = RunStats {
            cycles: 1234,
            committed_insts: 500,
            mispredicts: 3,
            cleanup_stall_cycles: 66,
            milestone_cycle: Some(400),
            ..RunStats::default()
        };
        let dump = s.gem5_style_dump(Some(45));
        assert!(dump.contains("sim_ticks"));
        assert!(dump.contains("1234"));
        assert!(dump.contains("system.cpu.fetch.startCycles"));
        assert!(dump.contains("extraCleanupSquashTimeCycles45"));
        assert!(dump.contains("66"));
    }

    #[test]
    fn gem5_dump_without_constant_label() {
        let dump = RunStats::default().gem5_style_dump(None);
        assert!(dump.contains("extraCleanupSquashTimeCycles "));
        assert!(!dump.contains("Cycles0"));
    }
}
