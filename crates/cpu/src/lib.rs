//! Cycle-level out-of-order core with speculative execution.
//!
//! This crate provides the CPU half of the simulator substrate the unXpec
//! reproduction runs on: a small micro-ISA ([`Inst`]), an assembler
//! ([`ProgramBuilder`]), branch predictors, and the speculative core
//! ([`Core`]) that executes programs against a
//! [`unxpec_cache::CacheHierarchy`] while collecting the squash records
//! ([`SquashRecord`]) the paper's experiments are built from.
//!
//! Safe-speculation defenses plug in through the [`Defense`] trait; the
//! baseline [`UnsafeBaseline`] leaves transient cache footprints in place
//! (Spectre-vulnerable), while `unxpec-defense` provides CleanupSpec and
//! its variants.
//!
//! # Examples
//!
//! ```
//! use unxpec_cpu::{Core, ProgramBuilder, Reg};
//!
//! let mut b = ProgramBuilder::new();
//! b.mov(Reg(1), 21);
//! b.add(Reg(2), Reg(1), Reg(1));
//! b.halt();
//! let result = Core::table_i().run(&b.build());
//! assert_eq!(result.reg(Reg(2)), 42);
//! ```

mod asm;
mod config;
mod core;
mod defense;
mod isa;
mod predictor;
mod program;
mod sanitizer;
mod stats;
mod trace;

pub use crate::core::{Core, ExecMode, RunResult};
pub use asm::{parse_asm, ParseAsmError};
pub use config::CoreConfig;
pub use defense::{Defense, FillPolicy, SquashInfo, UnsafeBaseline};
pub use isa::{AluOp, Cond, Inst, Operand, PcIndex, Reg, NUM_REGS};
pub use predictor::{
    AlwaysTaken, BimodalPredictor, BranchPredictor, Btb, GsharePredictor, NeverTaken,
    ReturnStackBuffer,
};
pub use program::{AsmError, Program, ProgramBuilder};
pub use sanitizer::{InvariantViolation, RollbackCheck, Sanitizer, SanitizerConfig};
pub use stats::{RunStats, SquashRecord};
pub use trace::{ExecTrace, TraceEvent};

pub use unxpec_cache::Cycle;
