//! A deterministic network-chaos proxy for the sweep protocol.
//!
//! [`ChaosProxy`] sits between a client and the server, forwarding
//! line-delimited JSON frames both ways and injecting faults — delays,
//! frame splits, truncations, byte garbling, and connection severs —
//! decided *entirely* by a seed: fault `k` of direction `d` on
//! connection `c` is a pure function of
//! `indexed(seed, "chaos:<d>:<c>", k)`, never of wall-clock timing.
//! Run the same client workload through the same seed twice and the
//! same frames are damaged the same way, which is what lets the chaos
//! test matrix assert *byte-identical* sweep documents under every
//! fault kind instead of merely "it didn't crash".
//!
//! The proxy is frame-aware (it buffers up to a newline before rolling
//! for a fault) so damage lands on protocol-meaningful boundaries:
//! a truncation is a cut mid-frame, a split is a flush mid-frame, a
//! garble stamps a detectably-invalid byte over the frame opener (see
//! [`ChaosConfig::GARBLE_BYTE`]). Severing closes both stream halves,
//! so the peer observes a dead connection, exactly like a crashed
//! network path.
//!
//! The faults the proxy injects are precisely what the robustness
//! machinery claims to absorb: truncations exercise the bounded frame
//! reader's typed `FrameTruncated`, garbles exercise the client's
//! transport-damage reclassification of parse failures, severs
//! exercise reconnect + idempotent re-submit + sequence-resumed
//! streams, and delays exercise nothing but patience.

use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use unxpec::experiments::seeding::indexed;

use crate::error::ServiceError;

/// Per-frame fault probabilities, in permille (0–1000). The rolls are
/// evaluated in declaration order against one uniform draw, so the
/// sum must stay ≤ 1000; anything left over is a clean forward.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Root seed every fault decision derives from.
    pub seed: u64,
    /// Chance a frame is delayed by up to [`ChaosConfig::max_delay_ms`].
    pub delay_permille: u16,
    /// Chance a frame is written in two flushes (partial-read torture).
    pub split_permille: u16,
    /// Chance a frame is cut mid-line and the connection severed.
    pub truncate_permille: u16,
    /// Chance the frame opener is corrupted before forwarding.
    pub garble_permille: u16,
    /// Chance the connection is severed before the frame is sent.
    pub sever_permille: u16,
    /// Upper bound for injected delays, in milliseconds.
    pub max_delay_ms: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0,
            delay_permille: 0,
            split_permille: 0,
            truncate_permille: 0,
            garble_permille: 0,
            sever_permille: 0,
            max_delay_ms: 20,
        }
    }
}

/// What the proxy decided to do to one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Forward untouched.
    Clean,
    /// Forward after a bounded, seed-chosen delay.
    Delay,
    /// Forward in two separately flushed chunks.
    Split,
    /// Forward a prefix of the frame, then sever the connection.
    Truncate,
    /// Corrupt the frame's opening byte, then forward it whole.
    Garble,
    /// Sever the connection without forwarding the frame.
    Sever,
}

impl FaultKind {
    /// Stable label (metrics, test matrix names).
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::Clean => "clean",
            FaultKind::Delay => "delay",
            FaultKind::Split => "split",
            FaultKind::Truncate => "truncate",
            FaultKind::Garble => "garble",
            FaultKind::Sever => "sever",
        }
    }
}

impl ChaosConfig {
    /// The deterministic fault decision for frame `frame` of stream
    /// `label` (e.g. `"chaos:c2s:0"`). Pure: same config, same label,
    /// same index → same fault, independent of timing or interleaving.
    pub fn decide(&self, label: &str, frame: u64) -> FaultKind {
        let roll = (indexed(self.seed, label, frame) % 1000) as u16;
        let mut bound = self.delay_permille;
        if roll < bound {
            return FaultKind::Delay;
        }
        bound = bound.saturating_add(self.split_permille);
        if roll < bound {
            return FaultKind::Split;
        }
        bound = bound.saturating_add(self.truncate_permille);
        if roll < bound {
            return FaultKind::Truncate;
        }
        bound = bound.saturating_add(self.garble_permille);
        if roll < bound {
            return FaultKind::Garble;
        }
        bound = bound.saturating_add(self.sever_permille);
        if roll < bound {
            return FaultKind::Sever;
        }
        FaultKind::Clean
    }

    /// The seed-chosen delay for a [`FaultKind::Delay`] on this frame.
    pub fn delay_for(&self, label: &str, frame: u64) -> Duration {
        let bound = self.max_delay_ms.max(1);
        Duration::from_millis(indexed(self.seed, label, frame.wrapping_add(0x5de1)) % bound)
    }

    /// The byte a [`FaultKind::Garble`] stamps over the frame's first
    /// position: 0xFE is invalid UTF-8 *and* can never open a JSON
    /// value, so a garbled frame always fails the peer's parse as a
    /// typed error. The proxy deliberately injects only *detectable*
    /// corruption — a checksum-less JSON protocol cannot survive a
    /// silent mid-payload bit flip that happens to stay valid JSON,
    /// and a chaos fault that could silently alter results would make
    /// the matrix's byte-identity assertion meaningless.
    pub const GARBLE_BYTE: u8 = 0xfe;

    /// How many bytes of the frame a [`FaultKind::Truncate`] lets
    /// through (modulo length).
    pub fn truncate_for(&self, label: &str, frame: u64) -> usize {
        indexed(self.seed, label, frame.wrapping_add(0x7c01)) as usize
    }
}

/// A running chaos proxy: one listener, one forwarding pair of threads
/// per accepted connection.
pub struct ChaosProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Binds `listen` (port 0 for ephemeral) and forwards every
    /// connection to `upstream` under `config`'s fault streams.
    pub fn start(
        listen: &str,
        upstream: &str,
        config: ChaosConfig,
    ) -> Result<ChaosProxy, ServiceError> {
        let listener = TcpListener::bind(listen).map_err(|e| ServiceError::Bind {
            addr: listen.to_string(),
            error: e.to_string(),
        })?;
        let addr = listener.local_addr().map_err(|e| ServiceError::Bind {
            addr: listen.to_string(),
            error: e.to_string(),
        })?;
        let upstream = upstream.to_string();
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let conn_counter = Arc::new(AtomicU64::new(0));
        let thread = std::thread::Builder::new()
            .name("chaos-acceptor".to_string())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop2.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(client) = conn else { continue };
                    let Ok(server) = TcpStream::connect(&upstream) else {
                        let _ = client.shutdown(Shutdown::Both);
                        continue;
                    };
                    let conn_id = conn_counter.fetch_add(1, Ordering::SeqCst);
                    Self::pump_pair(client, server, config, conn_id);
                }
            })
            .map_err(|e| ServiceError::Accept(e.to_string()))?;
        Ok(ChaosProxy {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The proxy's listening address — point the client here.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    fn pump_pair(client: TcpStream, server: TcpStream, config: ChaosConfig, conn_id: u64) {
        let pair = client.try_clone().ok().zip(server.try_clone().ok());
        let Some((client2, server2)) = pair else {
            let _ = client.shutdown(Shutdown::Both);
            let _ = server.shutdown(Shutdown::Both);
            return;
        };
        let c2s = format!("chaos:c2s:{conn_id}");
        let s2c = format!("chaos:s2c:{conn_id}");
        let _ = std::thread::Builder::new()
            .name("chaos-c2s".to_string())
            .spawn(move || Self::pump(client, server, config, c2s));
        let _ = std::thread::Builder::new()
            .name("chaos-s2c".to_string())
            .spawn(move || Self::pump(server2, client2, config, s2c));
    }

    /// Forwards frames from `from` to `to`, one fault roll per frame.
    /// Returns when either side dies or a fault severs the path; both
    /// stream halves are shut down on the way out so the peers observe
    /// a clean kill rather than a half-open socket.
    fn pump(from: TcpStream, mut to: TcpStream, config: ChaosConfig, label: String) {
        let mut reader = BufReader::new(match from.try_clone() {
            Ok(r) => r,
            Err(_) => return,
        });
        let mut frame_index: u64 = 0;
        loop {
            let mut frame: Vec<u8> = Vec::new();
            match reader.read_until(b'\n', &mut frame) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
            let fault = config.decide(&label, frame_index);
            let survived = match fault {
                FaultKind::Clean => to.write_all(&frame).is_ok(),
                FaultKind::Delay => {
                    std::thread::sleep(config.delay_for(&label, frame_index));
                    to.write_all(&frame).is_ok()
                }
                FaultKind::Split => {
                    let cut = (frame.len() / 2).max(1).min(frame.len());
                    to.write_all(&frame[..cut]).is_ok()
                        && to.flush().is_ok()
                        && to.write_all(&frame[cut..]).is_ok()
                }
                FaultKind::Truncate => {
                    // Cut strictly inside the frame (never the whole
                    // line, which would be a clean forward).
                    let keep = if frame.len() > 1 {
                        config.truncate_for(&label, frame_index) % (frame.len() - 1)
                    } else {
                        0
                    };
                    let _ = to.write_all(&frame[..keep]);
                    let _ = to.flush();
                    false
                }
                FaultKind::Garble => {
                    // Stamp the detectably-invalid byte over the frame
                    // opener (never the trailing newline) — the frame
                    // still parses as a *frame*, never as valid JSON.
                    if frame.len() > 1 {
                        frame[0] = ChaosConfig::GARBLE_BYTE;
                    }
                    to.write_all(&frame).is_ok()
                }
                FaultKind::Sever => false,
            };
            frame_index += 1;
            if !survived {
                break;
            }
        }
        let _ = from.shutdown(Shutdown::Both);
        let _ = to.shutdown(Shutdown::Both);
    }

    /// Stops accepting. Existing pumps die with their connections.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;

    fn lossy(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            delay_permille: 100,
            split_permille: 100,
            truncate_permille: 100,
            garble_permille: 100,
            sever_permille: 100,
            max_delay_ms: 5,
        }
    }

    #[test]
    fn decisions_are_deterministic_and_label_scoped() {
        let config = lossy(42);
        for frame in 0..64 {
            assert_eq!(
                config.decide("chaos:c2s:0", frame),
                config.decide("chaos:c2s:0", frame),
                "same stream, same frame, same fault"
            );
        }
        let a: Vec<FaultKind> = (0..64).map(|f| config.decide("chaos:c2s:0", f)).collect();
        let b: Vec<FaultKind> = (0..64).map(|f| config.decide("chaos:s2c:0", f)).collect();
        let c: Vec<FaultKind> = (0..64).map(|f| config.decide("chaos:c2s:1", f)).collect();
        assert_ne!(a, b, "directions draw from independent streams");
        assert_ne!(a, c, "connections draw from independent streams");
        let other = lossy(43);
        let d: Vec<FaultKind> = (0..64).map(|f| other.decide("chaos:c2s:0", f)).collect();
        assert_ne!(a, d, "the seed moves every stream");
    }

    #[test]
    fn every_fault_kind_is_reachable_at_these_rates() {
        let config = lossy(7);
        let mut seen = std::collections::HashSet::new();
        for conn in 0..8 {
            for frame in 0..256 {
                seen.insert(config.decide(&format!("chaos:c2s:{conn}"), frame));
            }
        }
        for kind in [
            FaultKind::Clean,
            FaultKind::Delay,
            FaultKind::Split,
            FaultKind::Truncate,
            FaultKind::Garble,
            FaultKind::Sever,
        ] {
            assert!(seen.contains(&kind), "never rolled {:?}", kind.label());
        }
    }

    #[test]
    fn zero_rates_mean_clean_passthrough() {
        let config = ChaosConfig {
            seed: 9,
            ..ChaosConfig::default()
        };
        for frame in 0..128 {
            assert_eq!(config.decide("chaos:c2s:0", frame), FaultKind::Clean);
        }
    }

    #[test]
    fn garbled_frames_can_never_be_silently_accepted() {
        // The stamped opener must fail JSON parsing no matter what the
        // original frame was — otherwise a garble could silently alter
        // a results document instead of surfacing as a typed error.
        for original in ["{\"ok\": true}", "[1, 2]", "\"text\"", "12345"] {
            let mut frame = original.as_bytes().to_vec();
            frame.push(b'\n');
            frame[0] = ChaosConfig::GARBLE_BYTE;
            let line = String::from_utf8_lossy(&frame);
            assert!(
                unxpec_telemetry::json::parse(line.trim_end()).is_err(),
                "garbled frame parsed as JSON: {line:?}"
            );
        }
    }
}
