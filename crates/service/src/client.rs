//! A blocking client for the sweep service protocol.
//!
//! One TCP connection, line-delimited JSON both ways (see
//! [`crate::protocol`]). [`Client`] is the single-connection primitive;
//! [`ResilientClient`] wraps it with deterministic bounded-backoff
//! reconnection, idempotent re-submission, and sequence-numbered
//! stream resume, so a severed connection (or a restarted server)
//! costs a reconnect, never a lost session. Neither panics on
//! malformed server output — everything surfaces as a [`ServiceError`].

use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use unxpec_harness::RunPolicy;
use unxpec_telemetry::json::Value;
use unxpec_telemetry::{Event, Telemetry};

use crate::error::ServiceError;
use crate::protocol::{parse_response, read_frame, render_request, Request, MAX_FRAME_BYTES};

/// What `submit` returns.
#[derive(Debug, Clone, PartialEq)]
pub struct Submitted {
    /// Server-assigned job id.
    pub job: String,
    /// Enumerated trial count.
    pub trials: u64,
}

/// Job counters as reported by `status` / the final `stream` line.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RemoteStatus {
    /// Job id.
    pub job: String,
    /// Total trials.
    pub total: u64,
    /// Trials resolved with an output.
    pub done: u64,
    /// Of those, served from the cache (or coalesced).
    pub cached: u64,
    /// Failed trials.
    pub failed: u64,
    /// Skipped (cancelled) trials.
    pub skipped: u64,
    /// Trials still pending or running.
    pub open: u64,
    /// Whether every trial reached a terminal state.
    pub finished: bool,
}

/// A connected client.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

fn num(doc: &Value, field: &str) -> u64 {
    doc.get(field).and_then(Value::as_u64).unwrap_or(0)
}

fn status_from(doc: &Value) -> RemoteStatus {
    RemoteStatus {
        job: doc
            .get("job")
            .and_then(Value::as_str)
            .unwrap_or_default()
            .to_string(),
        total: num(doc, "total"),
        done: num(doc, "done"),
        cached: num(doc, "cached"),
        failed: num(doc, "failed"),
        skipped: num(doc, "skipped"),
        open: num(doc, "open"),
        finished: matches!(doc.get("finished"), Some(Value::Bool(true))),
    }
}

impl Client {
    /// Connects to a running service at `addr` (e.g. `127.0.0.1:9733`).
    pub fn connect(addr: &str) -> Result<Client, ServiceError> {
        let stream = TcpStream::connect(addr).map_err(|e| ServiceError::Io(e.to_string()))?;
        let reader = stream
            .try_clone()
            .map_err(|e| ServiceError::Io(e.to_string()))?;
        Ok(Client {
            writer: stream,
            reader: BufReader::new(reader),
        })
    }

    fn round_trip(&mut self, request: &Request) -> Result<Value, ServiceError> {
        self.writer
            .write_all(render_request(request).as_bytes())
            .map_err(|e| ServiceError::Io(e.to_string()))?;
        self.read_line()
    }

    fn read_line(&mut self) -> Result<Value, ServiceError> {
        // The same bounded reader the server uses: a garbled or
        // hostile peer cannot make the client buffer unbounded bytes,
        // and a mid-frame cut is the typed FrameTruncated.
        match read_frame(&mut self.reader, MAX_FRAME_BYTES)? {
            Some(line) => parse_response(line.trim_end()),
            None => Err(ServiceError::Io("server closed the connection".to_string())),
        }
    }

    /// Submits `spec` (harness `key=value` text) for `tenant`.
    pub fn submit(&mut self, tenant: &str, spec: &str) -> Result<Submitted, ServiceError> {
        let doc = self.round_trip(&Request::Submit {
            tenant: tenant.to_string(),
            spec: spec.to_string(),
        })?;
        let job = doc
            .get("job")
            .and_then(Value::as_str)
            .ok_or_else(|| ServiceError::Parse("submit response missing job".to_string()))?
            .to_string();
        Ok(Submitted {
            job,
            trials: num(&doc, "trials"),
        })
    }

    /// Fetches the job's counters.
    pub fn status(&mut self, job: &str) -> Result<RemoteStatus, ServiceError> {
        let doc = self.round_trip(&Request::Status {
            job: job.to_string(),
        })?;
        Ok(status_from(&doc))
    }

    /// Polls `status` until the job finishes and returns the final
    /// counters. On deadline expiry returns the typed
    /// [`ServiceError::WaitTimeout`] — mirroring the server-side
    /// `Service::wait` contract, a still-running job can never be
    /// mistaken for a finished one.
    pub fn wait(&mut self, job: &str, timeout: Duration) -> Result<RemoteStatus, ServiceError> {
        let deadline = Instant::now() + timeout;
        loop {
            let status = self.status(job)?;
            if status.finished {
                return Ok(status);
            }
            if Instant::now() >= deadline {
                return Err(ServiceError::WaitTimeout {
                    job: job.to_string(),
                    waited_ms: timeout.as_millis() as u64,
                });
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    /// Streams per-trial events until the job finishes; calls
    /// `on_progress` with `(done, total)` per event and returns the
    /// final status.
    pub fn stream(
        &mut self,
        job: &str,
        mut on_progress: impl FnMut(u64, u64),
    ) -> Result<RemoteStatus, ServiceError> {
        let mut seq = 0;
        self.stream_from(job, &mut seq, |doc| {
            on_progress(num(doc, "done"), num(doc, "total"));
        })
    }

    /// Streams per-trial events starting at sequence `*seq`, advancing
    /// `*seq` past every event received — the resume cursor a caller
    /// keeps across reconnects so a re-issued stream replays exactly
    /// the missed events. `on_event` sees each raw event document.
    pub fn stream_from(
        &mut self,
        job: &str,
        seq: &mut u64,
        mut on_event: impl FnMut(&Value),
    ) -> Result<RemoteStatus, ServiceError> {
        self.writer
            .write_all(
                render_request(&Request::Stream {
                    job: job.to_string(),
                    from: *seq,
                })
                .as_bytes(),
            )
            .map_err(|e| ServiceError::Io(e.to_string()))?;
        loop {
            let doc = self.read_line()?;
            if doc.get("event").and_then(Value::as_str).is_some() {
                *seq = num(&doc, "seq") + 1;
                on_event(&doc);
                continue;
            }
            return Ok(status_from(&doc));
        }
    }

    /// Fetches the deterministic result document of a finished job.
    pub fn results(&mut self, job: &str) -> Result<String, ServiceError> {
        let doc = self.round_trip(&Request::Results {
            job: job.to_string(),
        })?;
        doc.get("text")
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| ServiceError::Parse("results response missing text".to_string()))
    }

    /// Cancels the job's pending trials; returns how many were skipped.
    pub fn cancel(&mut self, job: &str) -> Result<u64, ServiceError> {
        let doc = self.round_trip(&Request::Cancel {
            job: job.to_string(),
        })?;
        Ok(num(&doc, "skipped"))
    }
}

/// A session-resuming client: [`Client`] plus deterministic bounded
/// reconnection.
///
/// Transport failures (dead connection, truncated frame, wire-garbled
/// response — a correct server never emits invalid JSON, so a parse
/// failure on a response is transport damage) trigger a reconnect
/// after the [`RunPolicy`]'s exponential backoff for that attempt —
/// the same bounded-backoff machinery the sweep pool retries trials
/// with. Typed [`ServiceError::Overloaded`] rejections instead honour
/// the *server's* `retry_after_ms` hint and do not consume the
/// connection. Everything else (bad spec, unknown job, version skew)
/// is returned immediately — retrying can't fix semantics.
///
/// What makes blind retry *safe* is the server's idempotent submit
/// (same tenant + same submission digest re-attaches to the existing
/// job) and the sequence-numbered stream (a re-issued `stream` with
/// the kept cursor replays exactly the missed events).
pub struct ResilientClient {
    addr: String,
    policy: RunPolicy,
    telemetry: Telemetry,
    conn: Option<Client>,
}

impl ResilientClient {
    /// Wraps `addr` with reconnect policy `policy` (only `retries`,
    /// `backoff_base`, and `backoff_cap` are used; `deadline` is the
    /// pool's concern, not the wire's).
    pub fn new(addr: &str, policy: RunPolicy) -> Self {
        ResilientClient {
            addr: addr.to_string(),
            policy,
            telemetry: Telemetry::disabled(),
            conn: None,
        }
    }

    /// Attaches an event sink; reconnects emit
    /// [`Event::ClientReconnect`].
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    fn transport_damage(error: &ServiceError) -> bool {
        matches!(
            error,
            ServiceError::Io(_) | ServiceError::FrameTruncated { .. } | ServiceError::Parse(_)
        )
    }

    /// Runs `op` against a live connection, reconnecting (with the
    /// policy's backoff) on transport damage and honouring the server's
    /// retry hint on overload, up to `retries` recoveries total.
    /// `resumed_seq` is the caller's live stream cursor (zero for
    /// non-stream ops); it labels reconnect events.
    fn with_conn<T>(
        &mut self,
        resumed_seq: &std::cell::Cell<u64>,
        mut op: impl FnMut(&mut Client) -> Result<T, ServiceError>,
    ) -> Result<T, ServiceError> {
        let mut attempt: u32 = 0;
        loop {
            let result = match self.conn.as_mut() {
                Some(client) => op(client),
                None => match Client::connect(&self.addr) {
                    Ok(mut client) => {
                        let r = op(&mut client);
                        self.conn = Some(client);
                        r
                    }
                    Err(e) => Err(e),
                },
            };
            let error = match result {
                Ok(value) => return Ok(value),
                Err(e) => e,
            };
            attempt += 1;
            if attempt > self.policy.retries {
                return Err(error);
            }
            if let ServiceError::Overloaded { retry_after_ms, .. } = &error {
                // The connection is fine; the server chose the wait.
                std::thread::sleep(Duration::from_millis(*retry_after_ms));
            } else if Self::transport_damage(&error) {
                self.conn = None;
                std::thread::sleep(self.policy.backoff_for(attempt));
                self.telemetry.emit(Event::ClientReconnect {
                    attempt: u64::from(attempt),
                    resumed_seq: resumed_seq.get(),
                });
            } else {
                return Err(error);
            }
        }
    }

    /// Submits (or re-attaches to) `spec` for `tenant`.
    pub fn submit(&mut self, tenant: &str, spec: &str) -> Result<Submitted, ServiceError> {
        self.with_conn(&std::cell::Cell::new(0), |c| c.submit(tenant, spec))
    }

    /// Streams `job` to completion across however many connections it
    /// takes, calling `on_progress` with `(done, total)` per event.
    /// The sequence cursor survives reconnects — each retry re-issues
    /// `stream` with `from` set to the cursor, so no event is ever
    /// delivered twice or skipped.
    pub fn stream(
        &mut self,
        job: &str,
        mut on_progress: impl FnMut(u64, u64),
    ) -> Result<RemoteStatus, ServiceError> {
        let seq = std::cell::Cell::new(0u64);
        self.with_conn(&seq, |c| {
            let mut cursor = seq.get();
            let result = c.stream_from(job, &mut cursor, |doc| {
                on_progress(num(doc, "done"), num(doc, "total"));
            });
            // Keep whatever advanced before a failure: the retry
            // resumes exactly there.
            seq.set(cursor);
            result
        })
    }

    /// Fetches the deterministic result document of a finished job.
    pub fn results(&mut self, job: &str) -> Result<String, ServiceError> {
        self.with_conn(&std::cell::Cell::new(0), |c| c.results(job))
    }

    /// Fetches the job's counters.
    pub fn status(&mut self, job: &str) -> Result<RemoteStatus, ServiceError> {
        self.with_conn(&std::cell::Cell::new(0), |c| c.status(job))
    }

    /// Polls `status` (reconnecting as needed) until the job finishes;
    /// a deadline expiry is the typed [`ServiceError::WaitTimeout`].
    pub fn wait(&mut self, job: &str, timeout: Duration) -> Result<RemoteStatus, ServiceError> {
        let deadline = Instant::now() + timeout;
        loop {
            let status = self.status(job)?;
            if status.finished {
                return Ok(status);
            }
            if Instant::now() >= deadline {
                return Err(ServiceError::WaitTimeout {
                    job: job.to_string(),
                    waited_ms: timeout.as_millis() as u64,
                });
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    /// Cancels the job's pending trials.
    pub fn cancel(&mut self, job: &str) -> Result<u64, ServiceError> {
        self.with_conn(&std::cell::Cell::new(0), |c| c.cancel(job))
    }
}
