//! A blocking client for the sweep service protocol.
//!
//! One TCP connection, line-delimited JSON both ways (see
//! [`crate::protocol`]). The client is what the `sweep-client` binary
//! and the integration tests speak; it never panics on malformed
//! server output — everything surfaces as a [`ServiceError`].

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use unxpec_telemetry::json::Value;

use crate::error::ServiceError;
use crate::protocol::{parse_response, render_request, Request};

/// What `submit` returns.
#[derive(Debug, Clone, PartialEq)]
pub struct Submitted {
    /// Server-assigned job id.
    pub job: String,
    /// Enumerated trial count.
    pub trials: u64,
}

/// Job counters as reported by `status` / the final `stream` line.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RemoteStatus {
    /// Job id.
    pub job: String,
    /// Total trials.
    pub total: u64,
    /// Trials resolved with an output.
    pub done: u64,
    /// Of those, served from the cache (or coalesced).
    pub cached: u64,
    /// Failed trials.
    pub failed: u64,
    /// Skipped (cancelled) trials.
    pub skipped: u64,
    /// Trials still pending or running.
    pub open: u64,
    /// Whether every trial reached a terminal state.
    pub finished: bool,
}

/// A connected client.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

fn num(doc: &Value, field: &str) -> u64 {
    doc.get(field).and_then(Value::as_u64).unwrap_or(0)
}

fn status_from(doc: &Value) -> RemoteStatus {
    RemoteStatus {
        job: doc
            .get("job")
            .and_then(Value::as_str)
            .unwrap_or_default()
            .to_string(),
        total: num(doc, "total"),
        done: num(doc, "done"),
        cached: num(doc, "cached"),
        failed: num(doc, "failed"),
        skipped: num(doc, "skipped"),
        open: num(doc, "open"),
        finished: matches!(doc.get("finished"), Some(Value::Bool(true))),
    }
}

impl Client {
    /// Connects to a running service at `addr` (e.g. `127.0.0.1:9733`).
    pub fn connect(addr: &str) -> Result<Client, ServiceError> {
        let stream = TcpStream::connect(addr).map_err(|e| ServiceError::Io(e.to_string()))?;
        let reader = stream
            .try_clone()
            .map_err(|e| ServiceError::Io(e.to_string()))?;
        Ok(Client {
            writer: stream,
            reader: BufReader::new(reader),
        })
    }

    fn round_trip(&mut self, request: &Request) -> Result<Value, ServiceError> {
        self.writer
            .write_all(render_request(request).as_bytes())
            .map_err(|e| ServiceError::Io(e.to_string()))?;
        self.read_line()
    }

    fn read_line(&mut self) -> Result<Value, ServiceError> {
        let mut line = String::new();
        let n = self
            .reader
            .read_line(&mut line)
            .map_err(|e| ServiceError::Io(e.to_string()))?;
        if n == 0 {
            return Err(ServiceError::Io("server closed the connection".to_string()));
        }
        parse_response(line.trim_end())
    }

    /// Submits `spec` (harness `key=value` text) for `tenant`.
    pub fn submit(&mut self, tenant: &str, spec: &str) -> Result<Submitted, ServiceError> {
        let doc = self.round_trip(&Request::Submit {
            tenant: tenant.to_string(),
            spec: spec.to_string(),
        })?;
        let job = doc
            .get("job")
            .and_then(Value::as_str)
            .ok_or_else(|| ServiceError::Parse("submit response missing job".to_string()))?
            .to_string();
        Ok(Submitted {
            job,
            trials: num(&doc, "trials"),
        })
    }

    /// Fetches the job's counters.
    pub fn status(&mut self, job: &str) -> Result<RemoteStatus, ServiceError> {
        let doc = self.round_trip(&Request::Status {
            job: job.to_string(),
        })?;
        Ok(status_from(&doc))
    }

    /// Polls `status` until the job finishes and returns the final
    /// counters. On deadline expiry returns the typed
    /// [`ServiceError::WaitTimeout`] — mirroring the server-side
    /// `Service::wait` contract, a still-running job can never be
    /// mistaken for a finished one.
    pub fn wait(&mut self, job: &str, timeout: Duration) -> Result<RemoteStatus, ServiceError> {
        let deadline = Instant::now() + timeout;
        loop {
            let status = self.status(job)?;
            if status.finished {
                return Ok(status);
            }
            if Instant::now() >= deadline {
                return Err(ServiceError::WaitTimeout {
                    job: job.to_string(),
                    waited_ms: timeout.as_millis() as u64,
                });
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    /// Streams progress until the job finishes; calls `on_progress`
    /// with `(done, total)` per event and returns the final status.
    pub fn stream(
        &mut self,
        job: &str,
        mut on_progress: impl FnMut(u64, u64),
    ) -> Result<RemoteStatus, ServiceError> {
        self.writer
            .write_all(
                render_request(&Request::Stream {
                    job: job.to_string(),
                })
                .as_bytes(),
            )
            .map_err(|e| ServiceError::Io(e.to_string()))?;
        loop {
            let doc = self.read_line()?;
            if doc.get("event").and_then(Value::as_str) == Some("progress") {
                on_progress(num(&doc, "done"), num(&doc, "total"));
                continue;
            }
            return Ok(status_from(&doc));
        }
    }

    /// Fetches the deterministic result document of a finished job.
    pub fn results(&mut self, job: &str) -> Result<String, ServiceError> {
        let doc = self.round_trip(&Request::Results {
            job: job.to_string(),
        })?;
        doc.get("text")
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| ServiceError::Parse("results response missing text".to_string()))
    }

    /// Cancels the job's pending trials; returns how many were skipped.
    pub fn cancel(&mut self, job: &str) -> Result<u64, ServiceError> {
        let doc = self.round_trip(&Request::Cancel {
            job: job.to_string(),
        })?;
        Ok(num(&doc, "skipped"))
    }
}
