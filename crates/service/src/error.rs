//! The service's typed error path.
//!
//! Everything the socket layer, the protocol parser, and the cache can
//! get wrong surfaces as a [`ServiceError`] — never a panic: the
//! server must survive any byte stream a client sends it, and the
//! crate's clippy deny tables (`disallowed_methods`/`disallowed_macros`)
//! enforce that lib code has no `unwrap`/`expect`/`panic!` to reach.
//!
//! The binaries map errors onto the workspace's exit-code convention:
//! `0` clean, `1` when a job finished degraded (poisoned / timed-out /
//! quarantined / cancelled trials), `2` on usage, connection, or
//! protocol errors.

/// Why a service operation failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The listener could not bind its address.
    Bind {
        /// Address that failed to bind.
        addr: String,
        /// The I/O error text.
        error: String,
    },
    /// Accepting a connection failed.
    Accept(String),
    /// Reading from or writing to a connection failed.
    Io(String),
    /// A request or response line was not valid protocol JSON.
    Parse(String),
    /// The peer speaks a different protocol version.
    Version {
        /// The version this build implements.
        expected: u32,
        /// The version the peer sent.
        got: u64,
    },
    /// The request named an operation the protocol doesn't have.
    UnknownOp(String),
    /// The request named a job the server doesn't know.
    UnknownJob(String),
    /// The job still has open trials (`results` before completion).
    NotFinished(String),
    /// A `wait` reached its deadline before the job finished. Distinct
    /// from a finished status so callers can never mistake a
    /// still-running job for a completed one.
    WaitTimeout {
        /// The job being waited on.
        job: String,
        /// How long the caller waited, in milliseconds.
        waited_ms: u64,
    },
    /// A submitted spec failed to parse or enumerate.
    Spec(String),
    /// The result cache could not be opened or written.
    Cache(String),
    /// The peer reported a failure (`{"ok": false, ...}`).
    Remote(String),
}

impl ServiceError {
    /// Stable machine-readable code carried in error responses.
    pub fn code(&self) -> &'static str {
        match self {
            ServiceError::Bind { .. } => "bind",
            ServiceError::Accept(_) => "accept",
            ServiceError::Io(_) => "io",
            ServiceError::Parse(_) => "parse",
            ServiceError::Version { .. } => "version",
            ServiceError::UnknownOp(_) => "unknown-op",
            ServiceError::UnknownJob(_) => "unknown-job",
            ServiceError::NotFinished(_) => "not-finished",
            ServiceError::WaitTimeout { .. } => "wait-timeout",
            ServiceError::Spec(_) => "spec",
            ServiceError::Cache(_) => "cache",
            ServiceError::Remote(_) => "remote",
        }
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Bind { addr, error } => write!(f, "bind {addr}: {error}"),
            ServiceError::Accept(e) => write!(f, "accept: {e}"),
            ServiceError::Io(e) => write!(f, "connection: {e}"),
            ServiceError::Parse(e) => write!(f, "protocol parse: {e}"),
            ServiceError::Version { expected, got } => write!(
                f,
                "protocol version mismatch: peer speaks v{got}, this build speaks v{expected}"
            ),
            ServiceError::UnknownOp(op) => write!(f, "unknown op {op:?}"),
            ServiceError::UnknownJob(job) => write!(f, "unknown job {job:?}"),
            ServiceError::NotFinished(job) => {
                write!(f, "job {job:?} still has open trials; wait or stream first")
            }
            ServiceError::WaitTimeout { job, waited_ms } => {
                write!(f, "job {job:?} still open after waiting {waited_ms} ms")
            }
            ServiceError::Spec(e) => write!(f, "spec: {e}"),
            ServiceError::Cache(e) => write!(f, "cache: {e}"),
            ServiceError::Remote(e) => write!(f, "server: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;

    #[test]
    fn codes_and_messages_are_stable() {
        let e = ServiceError::Version {
            expected: 1,
            got: 9,
        };
        assert_eq!(e.code(), "version");
        assert!(e.to_string().contains("v9"));
        assert_eq!(ServiceError::UnknownJob("j7".into()).code(), "unknown-job");
        assert!(ServiceError::UnknownJob("j7".into())
            .to_string()
            .contains("j7"));
        let timeout = ServiceError::WaitTimeout {
            job: "j3".into(),
            waited_ms: 250,
        };
        assert_eq!(timeout.code(), "wait-timeout");
        assert!(timeout.to_string().contains("250 ms"));
    }
}
