//! The service's typed error path.
//!
//! Everything the socket layer, the protocol parser, and the cache can
//! get wrong surfaces as a [`ServiceError`] — never a panic: the
//! server must survive any byte stream a client sends it, and the
//! crate's clippy deny tables (`disallowed_methods`/`disallowed_macros`)
//! enforce that lib code has no `unwrap`/`expect`/`panic!` to reach.
//!
//! The binaries map errors onto the workspace's exit-code convention:
//! `0` clean, `1` when a job finished degraded (poisoned / timed-out /
//! quarantined / cancelled trials), `2` on usage, connection, or
//! protocol errors.

/// Why a service operation failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The listener could not bind its address.
    Bind {
        /// Address that failed to bind.
        addr: String,
        /// The I/O error text.
        error: String,
    },
    /// Accepting a connection failed.
    Accept(String),
    /// Reading from or writing to a connection failed.
    Io(String),
    /// A request or response line was not valid protocol JSON.
    Parse(String),
    /// A frame exceeded the bounded reader's byte limit. Typed so a
    /// hostile or garbled peer cannot force unbounded buffering.
    FrameTooLarge {
        /// The configured frame byte limit.
        limit: usize,
        /// Bytes buffered before the reader gave up (>= limit).
        got: usize,
    },
    /// The stream ended inside an unterminated frame (peer died or a
    /// chaos fault cut the line mid-frame).
    FrameTruncated {
        /// Bytes of partial frame that had arrived.
        got: usize,
    },
    /// The peer speaks a different protocol version.
    Version {
        /// The version this build implements.
        expected: u32,
        /// The version the peer sent.
        got: u64,
    },
    /// The request named an operation the protocol doesn't have.
    UnknownOp(String),
    /// The request named a job the server doesn't know.
    UnknownJob(String),
    /// The job still has open trials (`results` before completion).
    NotFinished(String),
    /// A `wait` reached its deadline before the job finished. Distinct
    /// from a finished status so callers can never mistake a
    /// still-running job for a completed one.
    WaitTimeout {
        /// The job being waited on.
        job: String,
        /// How long the caller waited, in milliseconds.
        waited_ms: u64,
    },
    /// A submitted spec failed to parse or enumerate.
    Spec(String),
    /// The result cache could not be opened or written.
    Cache(String),
    /// The job journal could not be opened, appended, or compacted.
    Journal(String),
    /// Admission control rejected the submission: the server is over
    /// its job/byte budget, the tenant is over quota, or the server is
    /// draining. Carries the server's retry hint so clients can back
    /// off for a bounded, server-chosen interval.
    Overloaded {
        /// How long the client should wait before retrying, in ms.
        retry_after_ms: u64,
        /// Which budget rejected the submission (stable token:
        /// `jobs`, `bytes`, `tenant`, `draining`).
        reason: String,
    },
    /// The peer reported a failure (`{"ok": false, ...}`).
    Remote(String),
}

impl ServiceError {
    /// Stable machine-readable code carried in error responses.
    pub fn code(&self) -> &'static str {
        match self {
            ServiceError::Bind { .. } => "bind",
            ServiceError::Accept(_) => "accept",
            ServiceError::Io(_) => "io",
            ServiceError::Parse(_) => "parse",
            ServiceError::FrameTooLarge { .. } => "frame-too-large",
            ServiceError::FrameTruncated { .. } => "frame-truncated",
            ServiceError::Version { .. } => "version",
            ServiceError::UnknownOp(_) => "unknown-op",
            ServiceError::UnknownJob(_) => "unknown-job",
            ServiceError::NotFinished(_) => "not-finished",
            ServiceError::WaitTimeout { .. } => "wait-timeout",
            ServiceError::Spec(_) => "spec",
            ServiceError::Cache(_) => "cache",
            ServiceError::Journal(_) => "journal",
            ServiceError::Overloaded { .. } => "overloaded",
            ServiceError::Remote(_) => "remote",
        }
    }

    /// Whether a client may transparently retry the operation that
    /// produced this error: connection-level failures (the peer or the
    /// network died) and overload rejections are retryable; semantic
    /// errors (bad spec, unknown job, version skew) are not.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            ServiceError::Io(_)
                | ServiceError::FrameTruncated { .. }
                | ServiceError::Overloaded { .. }
        )
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Bind { addr, error } => write!(f, "bind {addr}: {error}"),
            ServiceError::Accept(e) => write!(f, "accept: {e}"),
            ServiceError::Io(e) => write!(f, "connection: {e}"),
            ServiceError::Parse(e) => write!(f, "protocol parse: {e}"),
            ServiceError::FrameTooLarge { limit, got } => write!(
                f,
                "frame exceeds the {limit}-byte bound ({got} bytes buffered)"
            ),
            ServiceError::FrameTruncated { got } => {
                write!(f, "stream ended inside an unterminated frame ({got} bytes)")
            }
            ServiceError::Version { expected, got } => write!(
                f,
                "protocol version mismatch: peer speaks v{got}, this build speaks v{expected}"
            ),
            ServiceError::UnknownOp(op) => write!(f, "unknown op {op:?}"),
            ServiceError::UnknownJob(job) => write!(f, "unknown job {job:?}"),
            ServiceError::NotFinished(job) => {
                write!(f, "job {job:?} still has open trials; wait or stream first")
            }
            ServiceError::WaitTimeout { job, waited_ms } => {
                write!(f, "job {job:?} still open after waiting {waited_ms} ms")
            }
            ServiceError::Spec(e) => write!(f, "spec: {e}"),
            ServiceError::Cache(e) => write!(f, "cache: {e}"),
            ServiceError::Journal(e) => write!(f, "journal: {e}"),
            ServiceError::Overloaded {
                retry_after_ms,
                reason,
            } => write!(
                f,
                "server overloaded ({reason}); retry after {retry_after_ms} ms"
            ),
            ServiceError::Remote(e) => write!(f, "server: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;

    #[test]
    fn codes_and_messages_are_stable() {
        let e = ServiceError::Version {
            expected: 1,
            got: 9,
        };
        assert_eq!(e.code(), "version");
        assert!(e.to_string().contains("v9"));
        assert_eq!(ServiceError::UnknownJob("j7".into()).code(), "unknown-job");
        assert!(ServiceError::UnknownJob("j7".into())
            .to_string()
            .contains("j7"));
        let timeout = ServiceError::WaitTimeout {
            job: "j3".into(),
            waited_ms: 250,
        };
        assert_eq!(timeout.code(), "wait-timeout");
        assert!(timeout.to_string().contains("250 ms"));
    }

    #[test]
    fn robustness_errors_have_distinct_codes_and_retry_classes() {
        let too_large = ServiceError::FrameTooLarge {
            limit: 1024,
            got: 2048,
        };
        assert_eq!(too_large.code(), "frame-too-large");
        assert!(too_large.to_string().contains("1024"));
        assert!(
            !too_large.is_retryable(),
            "an oversized frame will be oversized again"
        );

        let truncated = ServiceError::FrameTruncated { got: 17 };
        assert_eq!(truncated.code(), "frame-truncated");
        assert!(truncated.is_retryable(), "a cut line is a dead connection");

        let overloaded = ServiceError::Overloaded {
            retry_after_ms: 250,
            reason: "jobs".into(),
        };
        assert_eq!(overloaded.code(), "overloaded");
        assert!(overloaded.to_string().contains("250 ms"));
        assert!(overloaded.is_retryable());

        assert_eq!(ServiceError::Journal("torn".into()).code(), "journal");
        assert!(!ServiceError::Spec("bad".into()).is_retryable());
        assert!(ServiceError::Io("reset".into()).is_retryable());
    }
}
