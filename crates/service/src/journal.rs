//! The durable write-ahead job journal.
//!
//! Every state transition the scheduler must not forget — an accepted
//! submission, a per-cell completion, a cancellation — is appended to
//! one journal file as a self-delimiting, FNV-checksummed JSON line
//! *before* the transition is acknowledged to the client. On restart
//! the server replays the journal: jobs come back under their original
//! ids, completed cells resolve through the content-addressed result
//! cache (zero re-simulation), and only genuinely unfinished cells are
//! re-enqueued. A `kill -9` mid-sweep therefore costs nothing but the
//! cells that were actually in flight.
//!
//! Durability discipline (same family as the result cache):
//!
//! * **Append + flush per record** — each record is one `\n`-terminated
//!   line flushed to the OS before the write returns, so a killed
//!   *process* never loses an acknowledged record (only a power loss
//!   could, and the lenient loader bounds that cost to the torn tail).
//! * **Per-line FNV checksum** — every record carries an FNV-1a
//!   checksum over all of its fields; a flipped bit or a torn line
//!   fails validation on load.
//! * **Lenient line-by-line salvage** — loading never panics and never
//!   discards the whole journal: each line either parses and validates
//!   or is counted into [`JournalRecovery::dropped`] and skipped,
//!   mirroring the sweep manifest's crash-recovery contract.
//! * **Atomic compaction** — after a successful replay the journal is
//!   rewritten from the salvaged records through a `.tmp` sibling and
//!   `rename`, so corruption never accumulates and a crash mid-compact
//!   leaves the previous journal intact.
//!
//! What is deliberately *not* journaled: trial outputs (they live in
//! the result cache under the cell digest — the journal only records
//! *that* a cell finished), and failed slots (a poisoned or timed-out
//! cell should get a fresh chance after a restart).

use std::io::Write;
use std::path::{Path, PathBuf};

use unxpec::experiments::seeding::fnv1a64;
use unxpec_telemetry::json::{self, escape, Value};

use crate::error::ServiceError;

/// Record-format version; bump on any layout change so old journals
/// read as corrupt records instead of mis-parsing.
pub const JOURNAL_VERSION: u64 = 1;

/// One durable scheduler transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalRecord {
    /// A submission was accepted: job `job` (numeric part of `"j<n>"`)
    /// for `tenant`, with the spec exactly as the client sent it.
    Submit {
        /// Numeric job id (the `n` of `"j<n>"`).
        job: u64,
        /// Owning tenant.
        tenant: String,
        /// The submitted spec text, verbatim.
        spec_text: String,
    },
    /// Slot `slot` of job `job` completed with a result stored in the
    /// cache under `cell`.
    CellDone {
        /// Numeric job id.
        job: u64,
        /// Slot index within the job's enumeration order.
        slot: u64,
        /// The cell digest the output is cached under.
        cell: u64,
    },
    /// Job `job` was cancelled (pending slots skipped).
    Cancel {
        /// Numeric job id.
        job: u64,
    },
}

impl JournalRecord {
    fn type_tag(&self) -> &'static str {
        match self {
            JournalRecord::Submit { .. } => "submit",
            JournalRecord::CellDone { .. } => "done",
            JournalRecord::Cancel { .. } => "cancel",
        }
    }

    /// FNV-1a chain over every field; what detects torn/flipped lines.
    fn checksum(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        mix(JOURNAL_VERSION);
        mix(fnv1a64(self.type_tag()));
        match self {
            JournalRecord::Submit {
                job,
                tenant,
                spec_text,
            } => {
                mix(*job);
                mix(fnv1a64(tenant));
                mix(fnv1a64(spec_text));
            }
            JournalRecord::CellDone { job, slot, cell } => {
                mix(*job);
                mix(*slot);
                mix(*cell);
            }
            JournalRecord::Cancel { job } => mix(*job),
        }
        h
    }

    /// Renders the record as its one-line JSON form (with trailing
    /// newline).
    pub fn render(&self) -> String {
        let checksum = format!("{:#x}", self.checksum());
        match self {
            JournalRecord::Submit {
                job,
                tenant,
                spec_text,
            } => format!(
                "{{\"v\": {JOURNAL_VERSION}, \"type\": \"submit\", \"job\": {job}, \"tenant\": \"{}\", \"spec\": \"{}\", \"checksum\": \"{checksum}\"}}\n",
                escape(tenant),
                escape(spec_text)
            ),
            JournalRecord::CellDone { job, slot, cell } => format!(
                "{{\"v\": {JOURNAL_VERSION}, \"type\": \"done\", \"job\": {job}, \"slot\": {slot}, \"cell\": \"{cell:#x}\", \"checksum\": \"{checksum}\"}}\n"
            ),
            JournalRecord::Cancel { job } => format!(
                "{{\"v\": {JOURNAL_VERSION}, \"type\": \"cancel\", \"job\": {job}, \"checksum\": \"{checksum}\"}}\n"
            ),
        }
    }

    /// Parses and fully validates one journal line.
    pub fn parse(line: &str) -> Result<JournalRecord, String> {
        let doc = json::parse(line)?;
        if doc.get("v").and_then(Value::as_u64) != Some(JOURNAL_VERSION) {
            return Err("journal record version mismatch".to_string());
        }
        let field_u64 = |name: &str| -> Result<u64, String> {
            doc.get(name)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("record missing numeric field {name:?}"))
        };
        let field_str = |name: &str| -> Result<String, String> {
            doc.get(name)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("record missing string field {name:?}"))
        };
        let field_hex = |name: &str| -> Result<u64, String> {
            let s = field_str(name)?;
            let raw = s
                .strip_prefix("0x")
                .ok_or_else(|| format!("{name} {s:?} missing 0x prefix"))?;
            u64::from_str_radix(raw, 16).map_err(|e| format!("{name} {s:?}: {e}"))
        };
        let record = match field_str("type")?.as_str() {
            "submit" => JournalRecord::Submit {
                job: field_u64("job")?,
                tenant: field_str("tenant")?,
                spec_text: field_str("spec")?,
            },
            "done" => JournalRecord::CellDone {
                job: field_u64("job")?,
                slot: field_u64("slot")?,
                cell: field_hex("cell")?,
            },
            "cancel" => JournalRecord::Cancel {
                job: field_u64("job")?,
            },
            other => return Err(format!("unknown record type {other:?}")),
        };
        if record.checksum() != field_hex("checksum")? {
            return Err("record checksum mismatch".to_string());
        }
        Ok(record)
    }
}

/// What loading an existing journal recovered.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct JournalRecovery {
    /// Records that parsed and validated, in file order.
    pub records: Vec<JournalRecord>,
    /// Lines dropped as corrupt (torn tail, flipped bits, old
    /// versions). Typed and counted — salvage never panics.
    pub dropped: u64,
}

/// The append handle over one journal file.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: std::fs::File,
    records: u64,
}

impl Journal {
    /// Loads (leniently) whatever journal exists at `path`, compacts
    /// the salvaged records back atomically, and opens the file for
    /// appending. Returns the handle plus the recovery summary the
    /// server replays from.
    pub fn open(path: &Path) -> Result<(Journal, JournalRecovery), ServiceError> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(|e| {
                    ServiceError::Journal(format!("create {}: {e}", parent.display()))
                })?;
            }
        }
        let recovery = match std::fs::read_to_string(path) {
            Ok(text) => Self::salvage(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => JournalRecovery::default(),
            Err(e) => {
                return Err(ServiceError::Journal(format!(
                    "read {}: {e}",
                    path.display()
                )))
            }
        };
        // Compact: rewrite only the salvaged records, atomically, so a
        // corrupt tail doesn't survive into the next lifetime (and a
        // crash mid-compact leaves the old journal intact).
        let mut compacted = String::new();
        for record in &recovery.records {
            compacted.push_str(&record.render());
        }
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, &compacted)
            .map_err(|e| ServiceError::Journal(format!("write {}: {e}", tmp.display())))?;
        std::fs::rename(&tmp, path).map_err(|e| {
            ServiceError::Journal(format!(
                "rename {} -> {}: {e}",
                tmp.display(),
                path.display()
            ))
        })?;
        let file = std::fs::OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| ServiceError::Journal(format!("open {}: {e}", path.display())))?;
        Ok((
            Journal {
                path: path.to_path_buf(),
                file,
                records: recovery.records.len() as u64,
            },
            recovery,
        ))
    }

    /// Lenient line-by-line recovery: keep every line that parses and
    /// validates, count the rest. Never an error, never a panic.
    pub fn salvage(text: &str) -> JournalRecovery {
        let mut recovery = JournalRecovery::default();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            match JournalRecord::parse(line) {
                Ok(record) => recovery.records.push(record),
                Err(_) => recovery.dropped += 1,
            }
        }
        recovery
    }

    /// Appends one record and flushes it to the OS. After this returns,
    /// a killed process cannot lose the record.
    pub fn append(&mut self, record: &JournalRecord) -> Result<(), ServiceError> {
        self.file
            .write_all(record.render().as_bytes())
            .and_then(|()| self.file.flush())
            .map_err(|e| ServiceError::Journal(format!("append {}: {e}", self.path.display())))?;
        self.records += 1;
        Ok(())
    }

    /// Records appended or salvaged so far in this lifetime.
    pub fn len(&self) -> u64 {
        self.records
    }

    /// Whether the journal currently holds no records.
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    /// The journal file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("unxpec-journal-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("tmp dir");
        dir.join("journal.log")
    }

    fn sample_records() -> Vec<JournalRecord> {
        vec![
            JournalRecord::Submit {
                job: 1,
                tenant: "alice".into(),
                spec_text: "experiments = count\nseeds = 2\n".into(),
            },
            JournalRecord::CellDone {
                job: 1,
                slot: 0,
                cell: 0xdead_beef_cafe_f00d,
            },
            JournalRecord::Cancel { job: 1 },
        ]
    }

    #[test]
    fn records_round_trip_through_their_line_form() {
        for record in sample_records() {
            let line = record.render();
            assert!(line.ends_with('\n'), "self-delimiting");
            assert_eq!(line.matches('\n').count(), 1, "exactly one line");
            assert_eq!(
                JournalRecord::parse(line.trim_end()).expect("parse"),
                record
            );
        }
    }

    #[test]
    fn checksum_rejects_field_tampering() {
        let line = JournalRecord::Submit {
            job: 2,
            tenant: "bob".into(),
            spec_text: "seeds = 4".into(),
        }
        .render();
        let tampered = line.replacen("bob", "eve", 1);
        assert!(
            JournalRecord::parse(tampered.trim_end()).is_err(),
            "tenant swap must fail the checksum"
        );
        let tampered = line.replacen("\"job\": 2", "\"job\": 3", 1);
        assert!(JournalRecord::parse(tampered.trim_end()).is_err());
    }

    #[test]
    fn open_append_reload_preserves_order() {
        let path = tmp("roundtrip");
        {
            let (mut journal, recovery) = Journal::open(&path).expect("open fresh");
            assert!(recovery.records.is_empty());
            assert!(journal.is_empty());
            for record in sample_records() {
                journal.append(&record).expect("append");
            }
            assert_eq!(journal.len(), 3);
        }
        let (journal, recovery) = Journal::open(&path).expect("reopen");
        assert_eq!(recovery.records, sample_records());
        assert_eq!(recovery.dropped, 0);
        assert_eq!(journal.len(), 3);
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn torn_tail_is_salvaged_line_by_line_and_compacted_away() {
        let path = tmp("torn");
        {
            let (mut journal, _) = Journal::open(&path).expect("open");
            for record in sample_records() {
                journal.append(&record).expect("append");
            }
        }
        // Simulate a crash mid-append: a partial record at the tail.
        let mut text = std::fs::read_to_string(&path).expect("read");
        text.push_str("{\"v\": 1, \"type\": \"done\", \"job\": 9, \"slo");
        std::fs::write(&path, &text).expect("tear");

        let (_, recovery) = Journal::open(&path).expect("reopen");
        assert_eq!(recovery.records, sample_records(), "intact prefix kept");
        assert_eq!(recovery.dropped, 1, "torn tail counted, not fatal");

        // Compaction removed the torn line: a third open is clean.
        let (_, again) = Journal::open(&path).expect("third open");
        assert_eq!(again.dropped, 0, "compaction scrubbed the torn tail");
        assert_eq!(again.records.len(), 3);
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn version_skew_reads_as_dropped_not_misparsed() {
        let line = sample_records()[1]
            .render()
            .replacen("\"v\": 1", "\"v\": 99", 1);
        let recovery = Journal::salvage(&line);
        assert!(recovery.records.is_empty());
        assert_eq!(recovery.dropped, 1);
    }

    #[test]
    fn spec_text_with_newlines_and_quotes_survives() {
        let record = JournalRecord::Submit {
            job: 7,
            tenant: "tenant \"x\"".into(),
            spec_text: "experiments = a\n# comment with \\ and \"quotes\"\nseeds = 3\n".into(),
        };
        let line = record.render();
        assert_eq!(line.matches('\n').count(), 1, "newlines are escaped");
        assert_eq!(
            JournalRecord::parse(line.trim_end()).expect("parse"),
            record
        );
    }
}
