//! The line-delimited JSON wire protocol.
//!
//! One request per line, one response per line (the `stream` op sends
//! several lines, ending with a `"done"` event). Every request carries
//! an explicit `"v"` field so version skew fails with a typed
//! [`ServiceError::Version`] instead of a confusing parse error.
//!
//! Requests:
//!
//! ```text
//! {"v": 1, "op": "submit",  "tenant": "alice", "spec": "scale=quick\nexperiments=timing"}
//! {"v": 1, "op": "status",  "job": "j1"}
//! {"v": 1, "op": "results", "job": "j1"}
//! {"v": 1, "op": "stream",  "job": "j1"}
//! {"v": 1, "op": "cancel",  "job": "j1"}
//! ```
//!
//! Responses are `{"ok": true, ...}` on success and
//! `{"ok": false, "code": "<ServiceError code>", "error": "..."}` on
//! failure. The `results` payload contains only deterministic content
//! (trial keys, digests, metrics, rendered text in enumeration order),
//! which is what makes cache-served results byte-identical to a fresh
//! run; execution metadata (timings, cached counts) lives in `status`.

use unxpec_telemetry::json::{self, escape, Value};

use crate::error::ServiceError;

/// The protocol version this build speaks.
pub const PROTOCOL_VERSION: u32 = 1;

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit a sweep: the spec is the harness's `key=value` text.
    Submit {
        /// Tenant the job is accounted to (fair-share scheduling key).
        tenant: String,
        /// `SweepSpec::parse` input.
        spec: String,
    },
    /// Job progress and execution metadata.
    Status {
        /// Job id as returned by submit.
        job: String,
    },
    /// Deterministic result payload for a finished job.
    Results {
        /// Job id as returned by submit.
        job: String,
    },
    /// Progress events until the job finishes.
    Stream {
        /// Job id as returned by submit.
        job: String,
    },
    /// Cancel a job's pending trials.
    Cancel {
        /// Job id as returned by submit.
        job: String,
    },
}

fn field<'a>(doc: &'a Value, name: &str) -> Result<&'a str, ServiceError> {
    doc.get(name)
        .and_then(Value::as_str)
        .ok_or_else(|| ServiceError::Parse(format!("request missing string field {name:?}")))
}

/// Parses one request line, enforcing the protocol version first.
pub fn parse_request(line: &str) -> Result<Request, ServiceError> {
    let doc = json::parse(line).map_err(ServiceError::Parse)?;
    let got = doc
        .get("v")
        .and_then(Value::as_u64)
        .ok_or_else(|| ServiceError::Parse("request missing version field \"v\"".to_string()))?;
    if got != u64::from(PROTOCOL_VERSION) {
        return Err(ServiceError::Version {
            expected: PROTOCOL_VERSION,
            got,
        });
    }
    let op = field(&doc, "op")?;
    match op {
        "submit" => Ok(Request::Submit {
            tenant: field(&doc, "tenant")?.to_string(),
            spec: field(&doc, "spec")?.to_string(),
        }),
        "status" => Ok(Request::Status {
            job: field(&doc, "job")?.to_string(),
        }),
        "results" => Ok(Request::Results {
            job: field(&doc, "job")?.to_string(),
        }),
        "stream" => Ok(Request::Stream {
            job: field(&doc, "job")?.to_string(),
        }),
        "cancel" => Ok(Request::Cancel {
            job: field(&doc, "job")?.to_string(),
        }),
        other => Err(ServiceError::UnknownOp(other.to_string())),
    }
}

/// Renders a request line (the client side of [`parse_request`]).
pub fn render_request(request: &Request) -> String {
    match request {
        Request::Submit { tenant, spec } => format!(
            "{{\"v\": {PROTOCOL_VERSION}, \"op\": \"submit\", \"tenant\": \"{}\", \"spec\": \"{}\"}}\n",
            escape(tenant),
            escape(spec)
        ),
        Request::Status { job } => op_line("status", job),
        Request::Results { job } => op_line("results", job),
        Request::Stream { job } => op_line("stream", job),
        Request::Cancel { job } => op_line("cancel", job),
    }
}

fn op_line(op: &str, job: &str) -> String {
    format!(
        "{{\"v\": {PROTOCOL_VERSION}, \"op\": \"{op}\", \"job\": \"{}\"}}\n",
        escape(job)
    )
}

/// The error-response line for `error`.
pub fn error_response(error: &ServiceError) -> String {
    format!(
        "{{\"ok\": false, \"code\": \"{}\", \"error\": \"{}\"}}\n",
        error.code(),
        escape(&error.to_string())
    )
}

/// Parses one response line; `{"ok": false}` becomes
/// [`ServiceError::Remote`] carrying the server's message.
pub fn parse_response(line: &str) -> Result<Value, ServiceError> {
    let doc = json::parse(line).map_err(ServiceError::Parse)?;
    match doc.get("ok") {
        Some(Value::Bool(true)) => Ok(doc),
        Some(Value::Bool(false)) => {
            let code = doc.get("code").and_then(Value::as_str).unwrap_or("remote");
            let message = doc
                .get("error")
                .and_then(Value::as_str)
                .unwrap_or("unspecified failure");
            Err(ServiceError::Remote(format!("[{code}] {message}")))
        }
        _ => Ok(doc), // stream events carry no "ok" field
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Submit {
                tenant: "alice".into(),
                spec: "scale=quick\nexperiments=timing".into(),
            },
            Request::Status { job: "j1".into() },
            Request::Results { job: "j2".into() },
            Request::Stream { job: "j3".into() },
            Request::Cancel { job: "j4".into() },
        ];
        for req in reqs {
            let line = render_request(&req);
            assert_eq!(parse_request(line.trim_end()).expect("parse"), req);
        }
    }

    #[test]
    fn version_mismatch_is_typed() {
        let err = parse_request("{\"v\": 2, \"op\": \"status\", \"job\": \"j1\"}")
            .expect_err("must reject");
        assert_eq!(err.code(), "version");
        assert!(matches!(
            err,
            ServiceError::Version {
                expected: 1,
                got: 2
            }
        ));
    }

    #[test]
    fn garbage_and_unknown_ops_are_typed() {
        assert_eq!(
            parse_request("not json").expect_err("parse").code(),
            "parse"
        );
        assert_eq!(
            parse_request("{\"v\": 1, \"op\": \"frobnicate\"}")
                .expect_err("op")
                .code(),
            "unknown-op"
        );
        assert_eq!(
            parse_request("{\"v\": 1, \"op\": \"submit\", \"tenant\": \"t\"}")
                .expect_err("missing spec")
                .code(),
            "parse"
        );
    }

    #[test]
    fn error_responses_surface_as_remote() {
        let line = error_response(&ServiceError::UnknownJob("j9".into()));
        let err = parse_response(line.trim_end()).expect_err("remote");
        assert_eq!(err.code(), "remote");
        assert!(err.to_string().contains("unknown-job"));
        assert!(err.to_string().contains("j9"));
    }
}
