//! The line-delimited JSON wire protocol.
//!
//! One request per line, one response per line (the `stream` op sends
//! several lines, ending with a `"done"` event). Every request carries
//! an explicit `"v"` field so version skew fails with a typed
//! [`ServiceError::Version`] instead of a confusing parse error.
//!
//! Requests:
//!
//! ```text
//! {"v": 1, "op": "submit",  "tenant": "alice", "spec": "scale=quick\nexperiments=timing"}
//! {"v": 1, "op": "status",  "job": "j1"}
//! {"v": 1, "op": "results", "job": "j1"}
//! {"v": 1, "op": "stream",  "job": "j1", "from": 0}
//! {"v": 1, "op": "cancel",  "job": "j1"}
//! ```
//!
//! Frames are read through the bounded [`read_frame`] reader: a frame
//! over [`MAX_FRAME_BYTES`] is a typed `frame-too-large` error instead
//! of unbounded buffering, and a stream that ends mid-frame (a dead
//! peer, a chaos fault) is a typed `frame-truncated` error. The
//! `stream` op's `from` field is the per-job event sequence number to
//! resume from, so a reconnecting client replays exactly the trial
//! events it missed.
//!
//! Responses are `{"ok": true, ...}` on success and
//! `{"ok": false, "code": "<ServiceError code>", "error": "..."}` on
//! failure. The `results` payload contains only deterministic content
//! (trial keys, digests, metrics, rendered text in enumeration order),
//! which is what makes cache-served results byte-identical to a fresh
//! run; execution metadata (timings, cached counts) lives in `status`.

use std::io::BufRead;

use unxpec_telemetry::json::{self, escape, Value};

use crate::error::ServiceError;

/// The protocol version this build speaks.
pub const PROTOCOL_VERSION: u32 = 1;

/// The bounded reader's default frame limit. Specs are a few hundred
/// bytes and result documents a few hundred KiB at paper scale; 1 MiB
/// leaves an order of magnitude of headroom while keeping the worst
/// case a hostile peer can make either side buffer strictly bounded.
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// Reads one `\n`-terminated frame from `reader`, refusing to buffer
/// more than `limit` bytes.
///
/// * clean EOF at a frame boundary → `Ok(None)`;
/// * EOF inside an unterminated frame (the peer died, or a chaos fault
///   cut the line mid-frame) → typed [`ServiceError::FrameTruncated`];
/// * more than `limit` bytes without a newline → typed
///   [`ServiceError::FrameTooLarge`], raised *while* buffering, so a
///   hostile peer cannot make the reader hold unbounded memory.
///
/// Invalid UTF-8 is replaced rather than fatal: the JSON parse that
/// follows gives the garbled frame a typed `parse` error of its own.
pub fn read_frame(reader: &mut impl BufRead, limit: usize) -> Result<Option<String>, ServiceError> {
    let mut frame: Vec<u8> = Vec::new();
    loop {
        let chunk = reader
            .fill_buf()
            .map_err(|e| ServiceError::Io(e.to_string()))?;
        if chunk.is_empty() {
            if frame.is_empty() {
                return Ok(None);
            }
            return Err(ServiceError::FrameTruncated { got: frame.len() });
        }
        if let Some(newline) = chunk.iter().position(|&b| b == b'\n') {
            frame.extend_from_slice(&chunk[..newline]);
            reader.consume(newline + 1);
            if frame.len() > limit {
                return Err(ServiceError::FrameTooLarge {
                    limit,
                    got: frame.len(),
                });
            }
            return Ok(Some(String::from_utf8_lossy(&frame).into_owned()));
        }
        frame.extend_from_slice(chunk);
        let consumed = chunk.len();
        reader.consume(consumed);
        if frame.len() > limit {
            return Err(ServiceError::FrameTooLarge {
                limit,
                got: frame.len(),
            });
        }
    }
}

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit a sweep: the spec is the harness's `key=value` text.
    Submit {
        /// Tenant the job is accounted to (fair-share scheduling key).
        tenant: String,
        /// `SweepSpec::parse` input.
        spec: String,
    },
    /// Job progress and execution metadata.
    Status {
        /// Job id as returned by submit.
        job: String,
    },
    /// Deterministic result payload for a finished job.
    Results {
        /// Job id as returned by submit.
        job: String,
    },
    /// Per-trial events until the job finishes, starting from a
    /// sequence number so a reconnecting client can replay exactly the
    /// events it missed.
    Stream {
        /// Job id as returned by submit.
        job: String,
        /// First event sequence number to send (0 = from the start).
        from: u64,
    },
    /// Cancel a job's pending trials.
    Cancel {
        /// Job id as returned by submit.
        job: String,
    },
}

fn field<'a>(doc: &'a Value, name: &str) -> Result<&'a str, ServiceError> {
    doc.get(name)
        .and_then(Value::as_str)
        .ok_or_else(|| ServiceError::Parse(format!("request missing string field {name:?}")))
}

/// Parses one request line, enforcing the protocol version first.
pub fn parse_request(line: &str) -> Result<Request, ServiceError> {
    let doc = json::parse(line).map_err(ServiceError::Parse)?;
    let got = doc
        .get("v")
        .and_then(Value::as_u64)
        .ok_or_else(|| ServiceError::Parse("request missing version field \"v\"".to_string()))?;
    if got != u64::from(PROTOCOL_VERSION) {
        return Err(ServiceError::Version {
            expected: PROTOCOL_VERSION,
            got,
        });
    }
    let op = field(&doc, "op")?;
    match op {
        "submit" => Ok(Request::Submit {
            tenant: field(&doc, "tenant")?.to_string(),
            spec: field(&doc, "spec")?.to_string(),
        }),
        "status" => Ok(Request::Status {
            job: field(&doc, "job")?.to_string(),
        }),
        "results" => Ok(Request::Results {
            job: field(&doc, "job")?.to_string(),
        }),
        "stream" => Ok(Request::Stream {
            job: field(&doc, "job")?.to_string(),
            // Absent on pre-resume clients: replay from the start.
            from: doc.get("from").and_then(Value::as_u64).unwrap_or(0),
        }),
        "cancel" => Ok(Request::Cancel {
            job: field(&doc, "job")?.to_string(),
        }),
        other => Err(ServiceError::UnknownOp(other.to_string())),
    }
}

/// Renders a request line (the client side of [`parse_request`]).
pub fn render_request(request: &Request) -> String {
    match request {
        Request::Submit { tenant, spec } => format!(
            "{{\"v\": {PROTOCOL_VERSION}, \"op\": \"submit\", \"tenant\": \"{}\", \"spec\": \"{}\"}}\n",
            escape(tenant),
            escape(spec)
        ),
        Request::Status { job } => op_line("status", job),
        Request::Results { job } => op_line("results", job),
        Request::Stream { job, from } => format!(
            "{{\"v\": {PROTOCOL_VERSION}, \"op\": \"stream\", \"job\": \"{}\", \"from\": {from}}}\n",
            escape(job)
        ),
        Request::Cancel { job } => op_line("cancel", job),
    }
}

fn op_line(op: &str, job: &str) -> String {
    format!(
        "{{\"v\": {PROTOCOL_VERSION}, \"op\": \"{op}\", \"job\": \"{}\"}}\n",
        escape(job)
    )
}

/// The error-response line for `error`. Beyond the stable `code` and
/// the human-readable `error` text, structured variants carry their
/// fields as top-level JSON values so the client can reconstruct the
/// *typed* error — an `Overloaded` client honours `retry_after_ms`
/// without scraping it out of prose, and a version mismatch reports
/// both versions on both ends.
pub fn error_response(error: &ServiceError) -> String {
    let mut extra = String::new();
    match error {
        ServiceError::UnknownJob(job) | ServiceError::NotFinished(job) => {
            extra = format!(", \"job\": \"{}\"", escape(job));
        }
        ServiceError::WaitTimeout { job, waited_ms } => {
            extra = format!(", \"job\": \"{}\", \"waited_ms\": {waited_ms}", escape(job));
        }
        ServiceError::Version { expected, got } => {
            extra = format!(", \"expected\": {expected}, \"got\": {got}");
        }
        ServiceError::FrameTooLarge { limit, got } => {
            extra = format!(", \"limit\": {limit}, \"got\": {got}");
        }
        ServiceError::FrameTruncated { got } => {
            extra = format!(", \"got\": {got}");
        }
        ServiceError::Overloaded {
            retry_after_ms,
            reason,
        } => {
            extra = format!(
                ", \"retry_after_ms\": {retry_after_ms}, \"reason\": \"{}\"",
                escape(reason)
            );
        }
        _ => {}
    }
    format!(
        "{{\"ok\": false, \"code\": \"{}\", \"error\": \"{}\"{extra}}}\n",
        error.code(),
        escape(&error.to_string())
    )
}

/// Rebuilds the typed [`ServiceError`] from an error response's code
/// and structured fields — the client-side inverse of
/// [`error_response`]. Codes without a structured mapping (and codes
/// from future servers) degrade to [`ServiceError::Remote`].
fn typed_remote_error(doc: &Value) -> ServiceError {
    let code = doc.get("code").and_then(Value::as_str).unwrap_or("remote");
    let message = doc
        .get("error")
        .and_then(Value::as_str)
        .unwrap_or("unspecified failure");
    let str_field = |name: &str| {
        doc.get(name)
            .and_then(Value::as_str)
            .unwrap_or(message)
            .to_string()
    };
    let num_field = |name: &str| doc.get(name).and_then(Value::as_u64).unwrap_or(0);
    match code {
        "unknown-job" => ServiceError::UnknownJob(str_field("job")),
        "not-finished" => ServiceError::NotFinished(str_field("job")),
        "wait-timeout" => ServiceError::WaitTimeout {
            job: str_field("job"),
            waited_ms: num_field("waited_ms"),
        },
        "version" => ServiceError::Version {
            expected: num_field("expected") as u32,
            got: num_field("got"),
        },
        "frame-too-large" => ServiceError::FrameTooLarge {
            limit: num_field("limit") as usize,
            got: num_field("got") as usize,
        },
        "frame-truncated" => ServiceError::FrameTruncated {
            got: num_field("got") as usize,
        },
        "overloaded" => ServiceError::Overloaded {
            retry_after_ms: num_field("retry_after_ms"),
            reason: str_field("reason"),
        },
        "spec" => ServiceError::Spec(message.to_string()),
        "parse" => ServiceError::Parse(message.to_string()),
        _ => ServiceError::Remote(format!("[{code}] {message}")),
    }
}

/// Parses one response line; `{"ok": false}` becomes the typed
/// [`ServiceError`] the server raised (reconstructed from the response's
/// structured fields), falling back to [`ServiceError::Remote`] for
/// codes this build doesn't know.
pub fn parse_response(line: &str) -> Result<Value, ServiceError> {
    let doc = json::parse(line).map_err(ServiceError::Parse)?;
    match doc.get("ok") {
        Some(Value::Bool(true)) => Ok(doc),
        Some(Value::Bool(false)) => Err(typed_remote_error(&doc)),
        _ => Ok(doc), // stream events carry no "ok" field
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Submit {
                tenant: "alice".into(),
                spec: "scale=quick\nexperiments=timing".into(),
            },
            Request::Status { job: "j1".into() },
            Request::Results { job: "j2".into() },
            Request::Stream {
                job: "j3".into(),
                from: 0,
            },
            Request::Stream {
                job: "j3".into(),
                from: 17,
            },
            Request::Cancel { job: "j4".into() },
        ];
        for req in reqs {
            let line = render_request(&req);
            assert_eq!(parse_request(line.trim_end()).expect("parse"), req);
        }
    }

    #[test]
    fn version_mismatch_is_typed() {
        let err = parse_request("{\"v\": 2, \"op\": \"status\", \"job\": \"j1\"}")
            .expect_err("must reject");
        assert_eq!(err.code(), "version");
        assert!(matches!(
            err,
            ServiceError::Version {
                expected: 1,
                got: 2
            }
        ));
    }

    #[test]
    fn garbage_and_unknown_ops_are_typed() {
        assert_eq!(
            parse_request("not json").expect_err("parse").code(),
            "parse"
        );
        assert_eq!(
            parse_request("{\"v\": 1, \"op\": \"frobnicate\"}")
                .expect_err("op")
                .code(),
            "unknown-op"
        );
        assert_eq!(
            parse_request("{\"v\": 1, \"op\": \"submit\", \"tenant\": \"t\"}")
                .expect_err("missing spec")
                .code(),
            "parse"
        );
    }

    #[test]
    fn error_responses_reconstruct_typed_errors() {
        let errors = [
            ServiceError::UnknownJob("j9".into()),
            ServiceError::NotFinished("j2".into()),
            ServiceError::WaitTimeout {
                job: "j3".into(),
                waited_ms: 450,
            },
            ServiceError::Version {
                expected: 1,
                got: 7,
            },
            ServiceError::FrameTooLarge {
                limit: 1 << 20,
                got: (1 << 20) + 9,
            },
            ServiceError::FrameTruncated { got: 33 },
            ServiceError::Overloaded {
                retry_after_ms: 250,
                reason: "tenant".into(),
            },
        ];
        for original in errors {
            let line = error_response(&original);
            let rebuilt = parse_response(line.trim_end()).expect_err("error response");
            assert_eq!(
                rebuilt, original,
                "round trip must preserve the typed error: {line:?}"
            );
        }
    }

    #[test]
    fn version_mismatch_response_reports_both_versions() {
        let line = error_response(&ServiceError::Version {
            expected: 1,
            got: 9,
        });
        assert!(line.contains("\"expected\": 1"));
        assert!(line.contains("\"got\": 9"));
        let text = parse_response(line.trim_end())
            .expect_err("version")
            .to_string();
        assert!(text.contains("v9") && text.contains("v1"), "{text}");
    }

    #[test]
    fn unknown_codes_degrade_to_remote() {
        let err = parse_response(
            "{\"ok\": false, \"code\": \"from-the-future\", \"error\": \"no idea\"}",
        )
        .expect_err("remote");
        assert_eq!(err.code(), "remote");
        assert!(err.to_string().contains("from-the-future"));
    }

    #[test]
    fn read_frame_returns_whole_lines_and_clean_eof() {
        let mut reader = std::io::BufReader::new("{\"a\": 1}\n{\"b\": 2}\n".as_bytes());
        assert_eq!(
            read_frame(&mut reader, 64).expect("frame"),
            Some("{\"a\": 1}".to_string())
        );
        assert_eq!(
            read_frame(&mut reader, 64).expect("frame"),
            Some("{\"b\": 2}".to_string())
        );
        assert_eq!(read_frame(&mut reader, 64).expect("eof"), None);
    }

    #[test]
    fn read_frame_bounds_are_typed() {
        let mut oversized = std::io::BufReader::new("xxxxxxxxxx\n".as_bytes());
        let err = read_frame(&mut oversized, 4).expect_err("too large");
        assert_eq!(err.code(), "frame-too-large");
        assert!(matches!(err, ServiceError::FrameTooLarge { limit: 4, .. }));

        let mut torn = std::io::BufReader::new("{\"op\": \"subm".as_bytes());
        let err = read_frame(&mut torn, 64).expect_err("truncated");
        assert_eq!(err.code(), "frame-truncated");
        assert!(matches!(err, ServiceError::FrameTruncated { got: 12 }));
    }

    #[test]
    fn read_frame_refuses_unbounded_buffering_mid_frame() {
        // No newline at all and far more bytes than the limit: the
        // reader must give up while buffering, not after.
        let endless = vec![b'z'; 4096];
        let mut reader = std::io::BufReader::new(&endless[..]);
        let err = read_frame(&mut reader, 128).expect_err("bounded");
        assert!(matches!(err, ServiceError::FrameTooLarge { limit: 128, got } if got <= 4096+128));
    }
}
