//! A multi-tenant sweep job server with a persistent content-addressed
//! result cache.
//!
//! The crate turns the one-shot sweep harness (`unxpec-harness`) into a
//! long-running service: many clients submit [`SweepSpec`] jobs over a
//! line-delimited JSON TCP protocol, a fair-share scheduler slices
//! their trials onto the harness's work-stealing pool round-robin
//! across tenants, and every trial result is keyed by a stable
//! [`cell_digest`](unxpec_harness::cell_digest) and persisted in an
//! on-disk cache — a repeated cell is a cache hit whose results are
//! byte-identical to a fresh run, across server restarts.
//!
//! Layering:
//!
//! * [`protocol`] — the wire format (`submit`/`status`/`results`/
//!   `stream`/`cancel`, versioned, typed errors, bounded frames).
//! * [`cache`] — the sharded, checksummed, LRU-bounded result store.
//! * [`journal`] — the durable write-ahead job journal that makes a
//!   `kill -9` cost zero completed trials.
//! * [`server`] — the scheduler, admission control, the [`Service`]
//!   API, and the [`TcpFront`] listener.
//! * [`client`] — the blocking client plus the reconnecting
//!   [`ResilientClient`] the `sweep-client` binary uses.
//! * [`chaosproxy`] — a deterministic seed-driven network-fault proxy
//!   for torture-testing all of the above.
//!
//! Everything is std-only and panic-free (clippy deny tables ban
//! `unwrap`/`expect`/`panic!` in lib code); failures surface as
//! [`ServiceError`] and map onto the workspace's 0/1/2 exit-code
//! convention in the binaries.
//!
//! [`SweepSpec`]: unxpec_harness::SweepSpec

#![warn(missing_docs)]

pub mod cache;
pub mod chaosproxy;
pub mod client;
pub mod error;
pub mod journal;
pub mod protocol;
pub mod server;

pub use cache::{CacheConfig, CacheStats, ResultCache};
pub use chaosproxy::{ChaosConfig, ChaosProxy, FaultKind};
pub use client::{Client, RemoteStatus, ResilientClient, Submitted};
pub use error::ServiceError;
pub use journal::{Journal, JournalRecord, JournalRecovery};
pub use protocol::{parse_request, parse_response, render_request, Request, PROTOCOL_VERSION};
pub use server::{AdmissionConfig, JobStatus, Service, ServiceConfig, TcpFront};
