//! The multi-tenant sweep job server.
//!
//! [`Service`] owns the job table, the fair-share scheduler, and the
//! result cache. Clients submit [`SweepSpec`]s (as the harness's
//! `key=value` text); the scheduler slices pending trials into batches
//! for the harness's work-stealing pool, round-robining across
//! *tenants* so one tenant's thousand-trial sweep cannot starve
//! another's smoke test:
//!
//! * Each scheduling tick walks tenants in first-appearance order,
//!   starting one past the tenant that got the previous slot, and takes
//!   at most one trial per visit — dispatch order interleaves tenants
//!   even when their queue depths differ by orders of magnitude.
//! * Per-tenant concurrency inside a batch is additionally bounded by
//!   [`ServiceConfig::max_tenant_inflight`].
//! * Every candidate trial is first looked up in the
//!   [`ResultCache`] by its [`cell_digest`]; a hit resolves without
//!   consuming a pool slot. Identical cells *within* one batch are
//!   coalesced: one execution, every waiter shares the output.
//! * Failure handling reuses the sweep harness's machinery — the pool's
//!   retry/deadline/backoff [`RunPolicy`], plus cell-level quarantine
//!   after repeated poisonings so a deterministic panic cannot eat the
//!   retry budget of every tenant that submits it.
//!
//! The scheduler runs either on a background worker thread
//! ([`Service::start_worker`]) or manually ([`Service::tick`]), which is
//! how tests drive it deterministically. [`TcpFront`] is the
//! line-delimited JSON listener described in [`crate::protocol`].

use std::collections::HashMap;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use unxpec::cpu::ExecMode;
use unxpec::experiments::Scale;
use unxpec_harness::{
    aggregate, cell_digest, default_jobs, output_digest, run_tasks_with, submission_digest,
    Registry, RunPolicy, SweepSpec, TaskOutcome, Trial, TrialCtx, TrialOutput, TrialResult,
    DIGEST_VERSION, SIMULATOR_VERSION,
};
use unxpec_telemetry::{Event, MetricsHub, Telemetry};

use crate::cache::{CacheConfig, CacheStats, ResultCache};
use crate::error::ServiceError;
use crate::journal::{Journal, JournalRecord};
use crate::protocol::{self, Request};

/// Everything the service is configured with.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Pool worker threads per batch.
    pub jobs: usize,
    /// Retries per panicking trial.
    pub retries: u32,
    /// Per-trial wall-clock budget in ms; 0 = unbounded.
    pub deadline_ms: u64,
    /// Base retry backoff in ms (doubling, capped at 2 s).
    pub backoff_ms: u64,
    /// Poison/timeout count after which a cell is quarantined; 0
    /// disables quarantine.
    pub quarantine_after: u32,
    /// Max trials one tenant may hold in a single batch; 0 = no bound
    /// beyond the batch size itself.
    pub max_tenant_inflight: usize,
    /// Result cache location and bound; `None` runs cacheless.
    pub cache: Option<CacheConfig>,
    /// Live metrics sink (`service.*` names); `None` disables.
    pub hub: Option<MetricsHub>,
    /// Forces every submitted spec's execution mode (the `serve`
    /// binary's `--fast-forward`). Applied *before* cell digests are
    /// computed, so cached results never mix modes. `None` honours
    /// whatever mode the spec itself carries.
    pub mode_override: Option<ExecMode>,
    /// Durable write-ahead job journal path; `None` runs journal-less
    /// (a crash loses open jobs, though completed cells still survive
    /// in the result cache).
    pub journal: Option<PathBuf>,
    /// Admission-control budgets (all unbounded by default).
    pub admission: AdmissionConfig,
    /// Event sink for journal-replay / admission / lifecycle events;
    /// the default disabled handle costs one branch per emit.
    pub telemetry: Telemetry,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            jobs: default_jobs(),
            retries: 1,
            deadline_ms: 0,
            backoff_ms: 0,
            quarantine_after: 3,
            max_tenant_inflight: 0,
            cache: None,
            hub: None,
            mode_override: None,
            journal: None,
            admission: AdmissionConfig::default(),
            telemetry: Telemetry::disabled(),
        }
    }
}

/// Admission-control budgets. A submission that would exceed any of
/// them is rejected with the typed [`ServiceError::Overloaded`] —
/// carrying [`AdmissionConfig::retry_after_ms`] as the server-chosen
/// backoff hint — instead of being queued into an unbounded backlog.
/// Re-attaches to an existing job (same tenant, same submission
/// digest) are never rejected: a resuming client must always be able
/// to find its job, even mid-drain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Max unfinished jobs across all tenants; 0 = unbounded.
    pub max_open_jobs: usize,
    /// Max total spec bytes across unfinished jobs; 0 = unbounded.
    pub max_pending_bytes: usize,
    /// Max unfinished jobs per tenant; 0 = unbounded.
    pub max_tenant_open_jobs: usize,
    /// The retry hint carried by every `Overloaded` rejection, in ms.
    pub retry_after_ms: u64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_open_jobs: 0,
            max_pending_bytes: 0,
            max_tenant_open_jobs: 0,
            retry_after_ms: 250,
        }
    }
}

/// One trial's lifecycle inside a job.
#[derive(Debug, Clone, PartialEq)]
enum Slot {
    Pending,
    Running,
    Done {
        output: TrialOutput,
        digest: u64,
        cached: bool,
    },
    Failed {
        kind: &'static str,
        error: String,
        attempts: u32,
    },
    Skipped,
}

#[derive(Debug)]
struct JobEntry {
    id: String,
    /// Numeric part of `id` (`"j7"` → 7) — what the journal records.
    num: u64,
    tenant: String,
    spec: SweepSpec,
    /// The spec exactly as submitted: journaled verbatim so replay
    /// re-parses the same text, and summed for the byte budget.
    spec_text: String,
    /// [`submission_digest`] of the spec — the idempotency key that
    /// turns a re-submitted spec into a re-attach.
    sub_digest: u64,
    trials: Vec<Trial>,
    cells: Vec<u64>,
    slots: Vec<Slot>,
    /// Rendered per-trial event lines, one per terminal transition, in
    /// occurrence order. A `stream` request with `from: n` replays
    /// `events[n..]` — the session-resume ledger.
    events: Vec<String>,
    submitted: Instant,
    cancelled: bool,
    /// Whether the job's completion was already counted into metrics.
    counted: bool,
}

impl JobEntry {
    fn finished(&self) -> bool {
        !self
            .slots
            .iter()
            .any(|s| matches!(s, Slot::Pending | Slot::Running))
    }

    fn next_pending(&self) -> Option<usize> {
        self.slots.iter().position(|s| matches!(s, Slot::Pending))
    }

    /// Appends the terminal-transition event for `slot` to the job's
    /// replayable event ledger. Call *after* the slot is terminal.
    fn push_event(&mut self, slot: usize) {
        use unxpec_telemetry::json::escape;
        let seq = self.events.len();
        let key = escape(&self.trials[slot].key);
        let (done, total) = {
            let done = self
                .slots
                .iter()
                .filter(|s| !matches!(s, Slot::Pending | Slot::Running))
                .count();
            (done, self.slots.len())
        };
        let line = match &self.slots[slot] {
            Slot::Done { digest, cached, .. } => format!(
                "{{\"event\": \"trial\", \"seq\": {seq}, \"trial\": \"{key}\", \"state\": \"done\", \"digest\": \"{digest:#018x}\", \"cached\": {cached}, \"done\": {done}, \"total\": {total}}}\n"
            ),
            Slot::Failed { kind, .. } => format!(
                "{{\"event\": \"trial\", \"seq\": {seq}, \"trial\": \"{key}\", \"state\": \"failed\", \"kind\": \"{kind}\", \"done\": {done}, \"total\": {total}}}\n"
            ),
            Slot::Skipped => format!(
                "{{\"event\": \"trial\", \"seq\": {seq}, \"trial\": \"{key}\", \"state\": \"skipped\", \"done\": {done}, \"total\": {total}}}\n"
            ),
            Slot::Pending | Slot::Running => return,
        };
        self.events.push(line);
    }
}

/// A point-in-time view of one job, as returned by [`Service::status`].
#[derive(Debug, Clone, PartialEq)]
pub struct JobStatus {
    /// Job id (`"j1"`, `"j2"`, …).
    pub id: String,
    /// Owning tenant.
    pub tenant: String,
    /// Total enumerated trials.
    pub total: usize,
    /// Trials resolved with an output.
    pub done: usize,
    /// Of those, trials served from the cache (or coalesced).
    pub cached: usize,
    /// Trials that failed (poisoned / timed out / quarantined).
    pub failed: usize,
    /// Trials skipped by cancellation.
    pub skipped: usize,
    /// Trials still pending or running.
    pub open: usize,
    /// Whether the job was cancelled.
    pub cancelled: bool,
}

impl JobStatus {
    /// Whether every trial has reached a terminal slot.
    pub fn finished(&self) -> bool {
        self.open == 0
    }
}

#[derive(Debug, Default)]
struct SchedulerState {
    jobs: Vec<JobEntry>,
    next_job: u64,
    /// Tenants in first-appearance order — the round-robin ring.
    tenants: Vec<String>,
    /// Cross-job memo: cell digest → the `(job, slot)` holding a
    /// completed output for it. Jobs are never removed from `jobs`, so
    /// the indices stay valid for the server's lifetime. This is what
    /// lets a later job subscribe to an earlier job's result even when
    /// no disk cache is configured (or the entry was evicted).
    completed_cells: HashMap<u64, (usize, usize)>,
    /// Ring index of the tenant that gets the *next* slot.
    rr: usize,
    /// `(tenant, trial key)` per pool dispatch, in dispatch order. The
    /// fairness tests read this; it is capped so a long-lived server
    /// doesn't grow without bound.
    dispatch_log: Vec<(String, String)>,
    /// Consecutive poison/timeout count per cell digest.
    cell_failures: HashMap<u64, u32>,
    /// Cells quarantined after repeated failures.
    quarantined: std::collections::HashSet<u64>,
    /// Draining: stop admitting new work, finish (or leave journaled)
    /// what is in flight. Set by [`Service::begin_drain`] on SIGTERM.
    draining: bool,
    shutdown: bool,
}

const DISPATCH_LOG_CAP: usize = 4096;

struct Inner {
    state: Mutex<SchedulerState>,
    /// Wakes the worker thread on submissions and shutdown.
    wake: Condvar,
    /// Signals job completion to `wait`ers.
    done: Condvar,
    registry: Registry,
    config: ServiceConfig,
    cache: Option<Mutex<ResultCache>>,
    /// The write-ahead journal. Lock order: `state` → `journal` (the
    /// journal is never held across a cache or pool operation).
    journal: Option<Mutex<Journal>>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The job server. Cheap to share: clones of the `Arc` inside
/// [`TcpFront`] and the worker thread all point at one scheduler.
pub struct Service {
    inner: Arc<Inner>,
    worker: Option<JoinHandle<()>>,
}

/// What one pool task carries back: the experiment output, or the
/// (unreachable post-enumeration) registry miss.
type TaskValue = Result<TrialOutput, String>;

struct BatchItem {
    job: usize,
    slot: usize,
    cell: u64,
    experiment: String,
    variant: String,
    seed: u64,
    scale: Scale,
    mode: ExecMode,
}

impl Service {
    /// Builds a service over `registry`, opening the cache if one is
    /// configured and replaying the job journal if one is. Replay
    /// re-creates every journaled job under its original id, resolves
    /// journaled-done cells through the result cache (zero
    /// re-simulation), and re-enqueues only the cells the previous
    /// lifetime never finished. No scheduler runs yet: call
    /// [`Service::start_worker`] for a live server or [`Service::tick`]
    /// from tests.
    pub fn new(registry: Registry, config: ServiceConfig) -> Result<Self, ServiceError> {
        let cache = match &config.cache {
            Some(cache_config) => Some(Mutex::new(ResultCache::open(cache_config)?)),
            None => None,
        };
        let (journal, recovery) = match &config.journal {
            Some(path) => {
                let (journal, recovery) = Journal::open(path)?;
                (Some(Mutex::new(journal)), Some(recovery))
            }
            None => (None, None),
        };
        let service = Service {
            inner: Arc::new(Inner {
                state: Mutex::new(SchedulerState::default()),
                wake: Condvar::new(),
                done: Condvar::new(),
                registry,
                config,
                cache,
                journal,
            }),
            worker: None,
        };
        if let Some(recovery) = recovery {
            service.replay(&recovery);
        }
        service.publish_cache_stats();
        Ok(service)
    }

    /// Rebuilds scheduler state from a journal recovery. Lenient at
    /// every step: a record whose job vanished, whose spec no longer
    /// parses against this build's registry, or whose cell digest no
    /// longer matches its slot is dropped (and counted) rather than
    /// fatal — a journal can never brick the server.
    fn replay(&self, recovery: &crate::journal::JournalRecovery) {
        let inner = &self.inner;
        let mut st = lock(&inner.state);
        let mut dropped = recovery.dropped;
        let mut replayed = 0u64;
        for record in &recovery.records {
            match record {
                JournalRecord::Submit {
                    job,
                    tenant,
                    spec_text,
                } => {
                    let parsed = SweepSpec::parse(spec_text).ok().and_then(|mut spec| {
                        if let Some(mode) = inner.config.mode_override {
                            spec.mode = mode;
                        }
                        let trials = spec.enumerate(&inner.registry).ok()?;
                        Some((spec, trials))
                    });
                    let Some((spec, trials)) = parsed else {
                        dropped += 1;
                        continue;
                    };
                    let cells: Vec<u64> = trials
                        .iter()
                        .map(|t| cell_digest(&spec, &t.experiment, &t.variant, t.seed_index))
                        .collect();
                    let n = trials.len();
                    st.next_job = st.next_job.max(*job);
                    if !st.tenants.iter().any(|t| t == tenant) {
                        st.tenants.push(tenant.clone());
                    }
                    st.jobs.push(JobEntry {
                        id: format!("j{job}"),
                        num: *job,
                        tenant: tenant.clone(),
                        sub_digest: submission_digest(&spec),
                        spec,
                        spec_text: spec_text.clone(),
                        trials,
                        cells,
                        slots: vec![Slot::Pending; n],
                        events: Vec::new(),
                        submitted: Instant::now(),
                        cancelled: false,
                        counted: false,
                    });
                }
                JournalRecord::CellDone { job, slot, cell } => {
                    let Some(idx) = st.jobs.iter().position(|j| j.num == *job) else {
                        dropped += 1;
                        continue;
                    };
                    let slot = *slot as usize;
                    if st.jobs[idx].cells.get(slot) != Some(cell) {
                        // Spec semantics moved under the journal (new
                        // digest version, different enumeration): force
                        // a fresh run rather than trust a stale match.
                        dropped += 1;
                        continue;
                    }
                    // Same resolution chain as the scheduler: earlier
                    // replayed jobs first (memo), then the disk cache.
                    let memo = st.completed_cells.get(cell).copied().and_then(|(j, s)| {
                        match &st.jobs[j].slots[s] {
                            Slot::Done { output, digest, .. } => Some((output.clone(), *digest)),
                            _ => None,
                        }
                    });
                    let resolved = memo.or_else(|| {
                        inner
                            .cache
                            .as_ref()
                            .and_then(|c| lock(c).get(*cell))
                            .map(|output| {
                                let digest = output_digest(&output);
                                (output, digest)
                            })
                    });
                    // A miss (evicted, corrupt, cacheless server)
                    // leaves the cell Pending and it re-runs —
                    // correctness over thrift.
                    if let Some((output, digest)) = resolved {
                        st.jobs[idx].slots[slot] = Slot::Done {
                            output,
                            digest,
                            cached: true,
                        };
                        st.completed_cells.insert(*cell, (idx, slot));
                        st.jobs[idx].push_event(slot);
                        replayed += 1;
                    }
                }
                JournalRecord::Cancel { job } => {
                    let Some(idx) = st.jobs.iter().position(|j| j.num == *job) else {
                        dropped += 1;
                        continue;
                    };
                    st.jobs[idx].cancelled = true;
                    for s in 0..st.jobs[idx].slots.len() {
                        if matches!(st.jobs[idx].slots[s], Slot::Pending) {
                            st.jobs[idx].slots[s] = Slot::Skipped;
                            st.jobs[idx].push_event(s);
                        }
                    }
                }
            }
        }
        // Jobs that came back fully finished were already counted by
        // the previous lifetime; don't count their completion twice.
        for entry in &mut st.jobs {
            if entry.finished() {
                entry.counted = true;
            }
        }
        let requeued: u64 = st
            .jobs
            .iter()
            .flat_map(|j| j.slots.iter())
            .filter(|s| matches!(s, Slot::Pending))
            .count() as u64;
        let jobs = st.jobs.len() as u64;
        drop(st);
        let records = recovery.records.len() as u64;
        if let Some(hub) = &inner.config.hub {
            hub.update(|m| {
                m.set("service.journal.records", records);
                m.set("service.journal.jobs", jobs);
                m.set("service.journal.replayed", replayed);
                m.set("service.journal.requeued", requeued);
                m.set("service.journal.dropped", dropped);
            });
        }
        inner.config.telemetry.emit(Event::JournalReplay {
            records,
            replayed,
            requeued,
            dropped,
        });
        if requeued > 0 {
            inner.wake.notify_all();
        }
    }

    /// Spawns the background scheduler thread. Idempotent per service:
    /// a second call is ignored.
    pub fn start_worker(&mut self) {
        if self.worker.is_some() {
            return;
        }
        let inner = Arc::clone(&self.inner);
        let spawned = std::thread::Builder::new()
            .name("sweep-scheduler".to_string())
            .spawn(move || loop {
                let progressed = Inner::tick(&inner) > 0;
                let mut st = lock(&inner.state);
                if st.shutdown {
                    break;
                }
                if !progressed && !Inner::has_pending(&st) {
                    // Timed wait: a missed notify costs 50 ms, not a hang.
                    let (guard, _) = inner
                        .wake
                        .wait_timeout(st, Duration::from_millis(50))
                        .unwrap_or_else(PoisonError::into_inner);
                    st = guard;
                }
                drop(st);
            });
        if let Ok(handle) = spawned {
            self.worker = Some(handle);
        }
    }

    /// Parses and enumerates `spec_text` for `tenant`, queues the job,
    /// and returns `(job id, trial count)`.
    ///
    /// Submission is **idempotent**: if this tenant already has a
    /// non-cancelled job with the same [`submission_digest`], the
    /// existing job's id is returned instead of queuing a duplicate —
    /// a reconnecting client that lost the submit response simply
    /// re-attaches. New work is subject to admission control
    /// ([`AdmissionConfig`]) and refused with the typed
    /// [`ServiceError::Overloaded`] while draining; re-attaches are
    /// exempt from both.
    pub fn submit(&self, tenant: &str, spec_text: &str) -> Result<(String, usize), ServiceError> {
        let mut spec =
            SweepSpec::parse(spec_text).map_err(|e| ServiceError::Spec(format!("{e:?}")))?;
        if let Some(mode) = self.inner.config.mode_override {
            spec.mode = mode;
        }
        let sub_digest = submission_digest(&spec);
        let trials = spec
            .enumerate(&self.inner.registry)
            .map_err(|e| ServiceError::Spec(format!("{e:?}")))?;
        let cells: Vec<u64> = trials
            .iter()
            .map(|t| cell_digest(&spec, &t.experiment, &t.variant, t.seed_index))
            .collect();
        let n = trials.len();
        let mut st = lock(&self.inner.state);
        // Re-attach before admission: a resuming client must find its
        // job even when the server is saturated or draining.
        if let Some(existing) = st
            .jobs
            .iter()
            .find(|j| j.tenant == tenant && j.sub_digest == sub_digest && !j.cancelled)
        {
            let found = (existing.id.clone(), existing.trials.len());
            drop(st);
            self.hub_inc("service.jobs.reattached", 1);
            return Ok(found);
        }
        self.admit(&st, tenant, spec_text.len())?;
        st.next_job += 1;
        let num = st.next_job;
        let id = format!("j{num}");
        // Write-ahead: the journal holds the submission before the
        // scheduler can see it, so an acknowledged job survives kill -9.
        if let Some(journal) = &self.inner.journal {
            let record = JournalRecord::Submit {
                job: num,
                tenant: tenant.to_string(),
                spec_text: spec_text.to_string(),
            };
            if let Err(e) = lock(journal).append(&record) {
                st.next_job -= 1;
                return Err(e);
            }
        }
        if !st.tenants.iter().any(|t| t == tenant) {
            st.tenants.push(tenant.to_string());
        }
        st.jobs.push(JobEntry {
            id: id.clone(),
            num,
            tenant: tenant.to_string(),
            sub_digest,
            spec,
            spec_text: spec_text.to_string(),
            trials,
            cells,
            slots: vec![Slot::Pending; n],
            events: Vec::new(),
            submitted: Instant::now(),
            cancelled: false,
            counted: false,
        });
        drop(st);
        self.hub_inc("service.jobs.submitted", 1);
        self.inner.wake.notify_all();
        // Zero-trial jobs are born finished; tell any waiter.
        if n == 0 {
            self.inner.done.notify_all();
        }
        Ok((id, n))
    }

    /// Admission control for genuinely new work. Checks the cheapest
    /// signal first; every rejection carries the configured retry hint
    /// and a stable reason token (`draining`/`jobs`/`bytes`/`tenant`).
    fn admit(
        &self,
        st: &SchedulerState,
        tenant: &str,
        spec_bytes: usize,
    ) -> Result<(), ServiceError> {
        let admission = &self.inner.config.admission;
        let reject = |reason: &str, reason_code: u64| -> ServiceError {
            let retry_after_ms = admission.retry_after_ms;
            if let Some(hub) = &self.inner.config.hub {
                hub.inc("service.admission.rejected", 1);
                hub.inc(&format!("service.admission.rejected.{reason}"), 1);
            }
            self.inner.config.telemetry.emit(Event::AdmissionReject {
                reason_code,
                retry_after_ms,
            });
            ServiceError::Overloaded {
                retry_after_ms,
                reason: reason.to_string(),
            }
        };
        if st.draining {
            return Err(reject("draining", 4));
        }
        let open: Vec<&JobEntry> = st.jobs.iter().filter(|j| !j.finished()).collect();
        if admission.max_open_jobs > 0 && open.len() >= admission.max_open_jobs {
            return Err(reject("jobs", 1));
        }
        if admission.max_pending_bytes > 0 {
            let pending: usize = open.iter().map(|j| j.spec_text.len()).sum();
            if pending + spec_bytes > admission.max_pending_bytes {
                return Err(reject("bytes", 2));
            }
        }
        if admission.max_tenant_open_jobs > 0
            && open.iter().filter(|j| j.tenant == tenant).count() >= admission.max_tenant_open_jobs
        {
            return Err(reject("tenant", 3));
        }
        Ok(())
    }

    /// One scheduling pass: resolve what the cache can, run one pool
    /// batch for the rest. Returns the number of trials that reached a
    /// terminal slot (0 = nothing to do). Public so tests can drive
    /// the scheduler deterministically without the worker thread.
    pub fn tick(&self) -> usize {
        Inner::tick(&self.inner)
    }

    /// The job's current counters.
    pub fn status(&self, job: &str) -> Result<JobStatus, ServiceError> {
        let st = lock(&self.inner.state);
        let entry = Inner::find(&st, job)?;
        Ok(Inner::status_of(entry))
    }

    /// Blocks until `job` finishes; returns the final status. On
    /// deadline expiry with trials still open, returns the typed
    /// [`ServiceError::WaitTimeout`] — never an `Ok` that could be
    /// mistaken for completion (use [`Service::status`] to observe a
    /// still-running job's counters).
    pub fn wait(&self, job: &str, timeout: Duration) -> Result<JobStatus, ServiceError> {
        let deadline = Instant::now() + timeout;
        let mut st = lock(&self.inner.state);
        loop {
            let status = Inner::status_of(Inner::find(&st, job)?);
            if status.finished() {
                return Ok(status);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(ServiceError::WaitTimeout {
                    job: job.to_string(),
                    waited_ms: timeout.as_millis() as u64,
                });
            }
            let step = (deadline - now).min(Duration::from_millis(50));
            let (guard, _) = self
                .inner
                .done
                .wait_timeout(st, step)
                .unwrap_or_else(PoisonError::into_inner);
            st = guard;
        }
    }

    /// Marks every pending trial of `job` skipped. Running trials
    /// finish their current attempt. Returns the number skipped.
    pub fn cancel(&self, job: &str) -> Result<usize, ServiceError> {
        let mut st = lock(&self.inner.state);
        let index = st
            .jobs
            .iter()
            .position(|j| j.id == job)
            .ok_or_else(|| ServiceError::UnknownJob(job.to_string()))?;
        let entry = &mut st.jobs[index];
        entry.cancelled = true;
        let mut skipped = 0;
        for s in 0..entry.slots.len() {
            if matches!(entry.slots[s], Slot::Pending) {
                entry.slots[s] = Slot::Skipped;
                entry.push_event(s);
                skipped += 1;
            }
        }
        let finished = entry.finished();
        let num = entry.num;
        if let Some(journal) = &self.inner.journal {
            // Best-effort: a failed cancel append means a restarted
            // server re-enqueues the skipped cells, never loses data.
            let _ = lock(journal).append(&JournalRecord::Cancel { job: num });
        }
        drop(st);
        self.hub_inc("service.jobs.cancelled", 1);
        if finished {
            self.inner.done.notify_all();
        }
        Ok(skipped)
    }

    /// The deterministic result document for a finished job — see
    /// [`render_results`]. Errors if the job still has open trials.
    pub fn results(&self, job: &str) -> Result<String, ServiceError> {
        let st = lock(&self.inner.state);
        let entry = Inner::find(&st, job)?;
        if !entry.finished() {
            return Err(ServiceError::NotFinished(job.to_string()));
        }
        Ok(render_results(entry))
    }

    /// The `(tenant, trial key)` pool-dispatch sequence, for fairness
    /// assertions and debugging.
    pub fn dispatch_log(&self) -> Vec<(String, String)> {
        lock(&self.inner.state).dispatch_log.clone()
    }

    /// Cache counters, if a cache is configured.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.inner.cache.as_ref().map(|c| lock(c).stats())
    }

    /// The job's replayable event lines starting at sequence `from`,
    /// plus its current status — the `stream` op's resume primitive.
    pub fn events_since(
        &self,
        job: &str,
        from: usize,
    ) -> Result<(Vec<String>, JobStatus), ServiceError> {
        let st = lock(&self.inner.state);
        let entry = Inner::find(&st, job)?;
        let events = entry.events.get(from..).unwrap_or_default().to_vec();
        Ok((events, Inner::status_of(entry)))
    }

    /// Enters graceful drain: new submissions are refused with the
    /// typed `Overloaded{reason: "draining"}` while re-attaches,
    /// status, stream, results, and cancel keep working. The scheduler
    /// keeps running so in-flight jobs finish (anything that doesn't is
    /// already in the journal for the next lifetime).
    pub fn begin_drain(&self) {
        lock(&self.inner.state).draining = true;
        if let Some(hub) = &self.inner.config.hub {
            hub.set("service.draining", 1);
        }
    }

    /// Whether [`Service::begin_drain`] has been called.
    pub fn is_draining(&self) -> bool {
        lock(&self.inner.state).draining
    }

    /// Blocks until every job has finished or `timeout` elapses;
    /// returns whether the drain completed. Either way the journal and
    /// cache are already consistent — every accepted-but-unfinished
    /// cell is journaled, so a subsequent restart resumes it.
    pub fn drain(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut st = lock(&self.inner.state);
        st.draining = true;
        loop {
            if st.jobs.iter().all(JobEntry::finished) {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let step = (deadline - now).min(Duration::from_millis(50));
            let (guard, _) = self
                .inner
                .done
                .wait_timeout(st, step)
                .unwrap_or_else(PoisonError::into_inner);
            st = guard;
        }
    }

    /// Stops the worker thread (if running). Called by `Drop`.
    pub fn shutdown(&mut self) {
        lock(&self.inner.state).shutdown = true;
        self.inner.wake.notify_all();
        if let Some(handle) = self.worker.take() {
            let _ = handle.join();
        }
    }

    fn hub_inc(&self, name: &str, by: u64) {
        if let Some(hub) = &self.inner.config.hub {
            hub.inc(name, by);
        }
    }

    fn publish_cache_stats(&self) {
        Inner::publish_cache_stats(&self.inner);
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl Inner {
    fn find<'a>(st: &'a SchedulerState, job: &str) -> Result<&'a JobEntry, ServiceError> {
        st.jobs
            .iter()
            .find(|j| j.id == job)
            .ok_or_else(|| ServiceError::UnknownJob(job.to_string()))
    }

    fn status_of(entry: &JobEntry) -> JobStatus {
        let mut status = JobStatus {
            id: entry.id.clone(),
            tenant: entry.tenant.clone(),
            total: entry.slots.len(),
            done: 0,
            cached: 0,
            failed: 0,
            skipped: 0,
            open: 0,
            cancelled: entry.cancelled,
        };
        for slot in &entry.slots {
            match slot {
                Slot::Pending | Slot::Running => status.open += 1,
                Slot::Done { cached, .. } => {
                    status.done += 1;
                    if *cached {
                        status.cached += 1;
                    }
                }
                Slot::Failed { .. } => status.failed += 1,
                Slot::Skipped => status.skipped += 1,
            }
        }
        status
    }

    fn has_pending(st: &SchedulerState) -> bool {
        st.jobs.iter().any(|j| j.next_pending().is_some())
    }

    fn publish_cache_stats(inner: &Arc<Inner>) {
        let (Some(hub), Some(cache)) = (&inner.config.hub, &inner.cache) else {
            return;
        };
        let stats = lock(cache).stats();
        hub.update(|m| {
            m.set("service.cache.hits", stats.hits);
            m.set("service.cache.misses", stats.misses);
            m.set("service.cache.evictions", stats.evictions);
            m.set("service.cache.corrupt", stats.corrupt);
            m.set("service.cache.bytes", stats.bytes);
        });
    }

    /// One scheduling pass. See [`Service::tick`].
    fn tick(inner: &Arc<Inner>) -> usize {
        let mut st = lock(&inner.state);
        if st.shutdown {
            return 0;
        }
        let batch_cap = inner.config.jobs.max(1);
        let tenant_cap = if inner.config.max_tenant_inflight == 0 {
            usize::MAX
        } else {
            inner.config.max_tenant_inflight
        };
        let mut batch: Vec<BatchItem> = Vec::new();
        let mut waiters: HashMap<u64, Vec<(usize, usize)>> = HashMap::new();
        let mut inflight: std::collections::HashSet<u64> = std::collections::HashSet::new();
        let mut per_tenant: HashMap<String, usize> = HashMap::new();
        let mut resolved = 0usize;
        let mut cache_hits = 0u64;
        let mut memo_hits = 0u64;
        let mut quarantine_drops = 0u64;
        // Completed cells to journal this tick (job num, slot, cell).
        // Appended after the state lock drops; the Submit record always
        // precedes them because `submit` journals synchronously.
        let mut journal_done: Vec<JournalRecord> = Vec::new();

        loop {
            let n_tenants = st.tenants.len();
            if n_tenants == 0 || batch.len() >= batch_cap {
                break;
            }
            // One pass over the tenant ring, starting at `rr`, taking
            // at most one trial per tenant per visit. The start is
            // fixed before the pass: `rr` itself advances per dispatch.
            let start = st.rr;
            let mut progressed = false;
            for offset in 0..n_tenants {
                let ring = (start + offset) % n_tenants;
                let tenant = st.tenants[ring].clone();
                if *per_tenant.get(&tenant).unwrap_or(&0) >= tenant_cap {
                    continue;
                }
                let found = st.jobs.iter().enumerate().find_map(|(i, j)| {
                    if j.tenant == tenant {
                        j.next_pending().map(|s| (i, s))
                    } else {
                        None
                    }
                });
                let Some((job_idx, slot_idx)) = found else {
                    continue;
                };
                progressed = true;
                let cell = st.jobs[job_idx].cells[slot_idx];
                // Candidate chain, cheapest source first: quarantine,
                // then cells already dispatched this batch (before the
                // disk cache, so an in-batch duplicate never records a
                // spurious cache miss), then the disk cache, then the
                // cross-job completed-cell memo, then the pool.
                let memo_done = if st.quarantined.contains(&cell) || inflight.contains(&cell) {
                    None
                } else {
                    st.completed_cells.get(&cell).copied().and_then(|(j, s)| {
                        match &st.jobs[j].slots[s] {
                            Slot::Done { output, digest, .. } => Some((output.clone(), *digest)),
                            _ => None,
                        }
                    })
                };
                if st.quarantined.contains(&cell) {
                    st.jobs[job_idx].slots[slot_idx] = Slot::Failed {
                        kind: "quarantined",
                        error: "cell quarantined after repeated failures".to_string(),
                        attempts: 0,
                    };
                    st.jobs[job_idx].push_event(slot_idx);
                    resolved += 1;
                    quarantine_drops += 1;
                } else if inflight.contains(&cell) {
                    // Same cell already executing in this batch: share
                    // the leader's output instead of re-running it.
                    st.jobs[job_idx].slots[slot_idx] = Slot::Running;
                    waiters.entry(cell).or_default().push((job_idx, slot_idx));
                } else if let Some(output) = inner.cache.as_ref().and_then(|c| lock(c).get(cell)) {
                    let digest = output_digest(&output);
                    st.completed_cells.insert(cell, (job_idx, slot_idx));
                    st.jobs[job_idx].slots[slot_idx] = Slot::Done {
                        output,
                        digest,
                        cached: true,
                    };
                    st.jobs[job_idx].push_event(slot_idx);
                    journal_done.push(JournalRecord::CellDone {
                        job: st.jobs[job_idx].num,
                        slot: slot_idx as u64,
                        cell,
                    });
                    resolved += 1;
                    cache_hits += 1;
                } else if let Some((output, digest)) = memo_done {
                    // A previous job already computed this cell and the
                    // disk cache no longer has it (cacheless server or
                    // evicted entry): subscribe to that result instead
                    // of re-simulating.
                    st.jobs[job_idx].slots[slot_idx] = Slot::Done {
                        output,
                        digest,
                        cached: true,
                    };
                    st.jobs[job_idx].push_event(slot_idx);
                    journal_done.push(JournalRecord::CellDone {
                        job: st.jobs[job_idx].num,
                        slot: slot_idx as u64,
                        cell,
                    });
                    resolved += 1;
                    memo_hits += 1;
                } else {
                    let entry = &mut st.jobs[job_idx];
                    entry.slots[slot_idx] = Slot::Running;
                    let trial = &entry.trials[slot_idx];
                    let queued_us = entry.submitted.elapsed().as_micros() as u64;
                    let key = trial.key.clone();
                    batch.push(BatchItem {
                        job: job_idx,
                        slot: slot_idx,
                        cell,
                        experiment: trial.experiment.clone(),
                        variant: trial.variant.clone(),
                        seed: trial.seed,
                        scale: entry.spec.scale,
                        mode: entry.spec.mode,
                    });
                    inflight.insert(cell);
                    *per_tenant.entry(tenant.clone()).or_insert(0) += 1;
                    if st.dispatch_log.len() < DISPATCH_LOG_CAP {
                        st.dispatch_log.push((tenant.clone(), key));
                    }
                    if let Some(hub) = &inner.config.hub {
                        hub.observe(
                            &format!("service.tenant.{tenant}.queue_latency_us"),
                            queued_us,
                        );
                    }
                }
                // This tenant consumed the turn either way; the next
                // slot goes to the tenant after it.
                st.rr = (ring + 1) % n_tenants;
                if batch.len() >= batch_cap {
                    break;
                }
            }
            // Every pass either consumed at least one pending trial
            // (progressed) or proved there is nothing dispatchable.
            if !progressed {
                break;
            }
        }
        drop(st);

        let mut puts: Vec<(u64, TrialOutput)> = Vec::new();
        let executed = batch.len();
        if executed > 0 {
            let policy = RunPolicy {
                retries: inner.config.retries,
                deadline: (inner.config.deadline_ms > 0)
                    .then(|| Duration::from_millis(inner.config.deadline_ms)),
                backoff_base: Duration::from_millis(inner.config.backoff_ms),
                backoff_cap: Duration::from_secs(2),
            };
            let registry = &inner.registry;
            let (outcomes, _timings, _stats) = run_tasks_with(
                inner.config.jobs,
                executed,
                &policy,
                |index| -> TaskValue {
                    let item = &batch[index];
                    let experiment = registry
                        .get(&item.experiment)
                        .ok_or_else(|| format!("experiment {:?} vanished", item.experiment))?;
                    Ok(experiment.run(&TrialCtx {
                        seed: item.seed,
                        scale: item.scale,
                        variant: item.variant.clone(),
                        mode: item.mode,
                    }))
                },
                |_event| {},
            );

            let mut st = lock(&inner.state);
            let mut coalesced = 0u64;
            let mut poisoned = 0u64;
            let mut timed_out = 0u64;
            for (index, outcome) in outcomes.into_iter().enumerate() {
                let item = &batch[index];
                let fan_out = waiters.remove(&item.cell).unwrap_or_default();
                match outcome {
                    TaskOutcome::Done {
                        value: Ok(output),
                        attempts: _,
                    } => {
                        let digest = output_digest(&output);
                        st.cell_failures.remove(&item.cell);
                        for &(job_idx, slot_idx) in &fan_out {
                            st.jobs[job_idx].slots[slot_idx] = Slot::Done {
                                output: output.clone(),
                                digest,
                                cached: true,
                            };
                            st.jobs[job_idx].push_event(slot_idx);
                            journal_done.push(JournalRecord::CellDone {
                                job: st.jobs[job_idx].num,
                                slot: slot_idx as u64,
                                cell: item.cell,
                            });
                            coalesced += 1;
                        }
                        puts.push((item.cell, output.clone()));
                        st.completed_cells.insert(item.cell, (item.job, item.slot));
                        st.jobs[item.job].slots[item.slot] = Slot::Done {
                            output,
                            digest,
                            cached: false,
                        };
                        st.jobs[item.job].push_event(item.slot);
                        journal_done.push(JournalRecord::CellDone {
                            job: st.jobs[item.job].num,
                            slot: item.slot as u64,
                            cell: item.cell,
                        });
                    }
                    TaskOutcome::Done {
                        value: Err(error), ..
                    } => {
                        for &(job_idx, slot_idx) in &fan_out {
                            st.jobs[job_idx].slots[slot_idx] = Slot::Failed {
                                kind: "spec",
                                error: error.clone(),
                                attempts: 1,
                            };
                            st.jobs[job_idx].push_event(slot_idx);
                        }
                        st.jobs[item.job].slots[item.slot] = Slot::Failed {
                            kind: "spec",
                            error,
                            attempts: 1,
                        };
                        st.jobs[item.job].push_event(item.slot);
                    }
                    TaskOutcome::Poisoned { error, attempts } => {
                        poisoned += 1;
                        Self::record_failure(&mut st, inner, item.cell);
                        for &(job_idx, slot_idx) in &fan_out {
                            st.jobs[job_idx].slots[slot_idx] = Slot::Failed {
                                kind: "poisoned",
                                error: error.clone(),
                                attempts,
                            };
                            st.jobs[job_idx].push_event(slot_idx);
                        }
                        st.jobs[item.job].slots[item.slot] = Slot::Failed {
                            kind: "poisoned",
                            error,
                            attempts,
                        };
                        st.jobs[item.job].push_event(item.slot);
                    }
                    TaskOutcome::TimedOut { error, attempts } => {
                        timed_out += 1;
                        Self::record_failure(&mut st, inner, item.cell);
                        for &(job_idx, slot_idx) in &fan_out {
                            st.jobs[job_idx].slots[slot_idx] = Slot::Failed {
                                kind: "timed-out",
                                error: error.clone(),
                                attempts,
                            };
                            st.jobs[job_idx].push_event(slot_idx);
                        }
                        st.jobs[item.job].slots[item.slot] = Slot::Failed {
                            kind: "timed-out",
                            error,
                            attempts,
                        };
                        st.jobs[item.job].push_event(item.slot);
                    }
                }
            }
            if let Some(hub) = &inner.config.hub {
                hub.update(|m| {
                    m.inc("service.trials.executed", executed as u64);
                    m.inc("service.trials.coalesced", coalesced);
                    m.inc("service.trials.poisoned", poisoned);
                    m.inc("service.trials.timed_out", timed_out);
                });
            }
            drop(st);
        }

        // Persist fresh outputs outside the state lock (lock order is
        // always state → cache, never both held across the pool run).
        if let Some(cache) = &inner.cache {
            let mut guard = lock(cache);
            for (cell, output) in &puts {
                let _ = guard.put(*cell, output);
            }
        }

        // Journal completions after the cache put: a CellDone record
        // promises the output is resolvable on replay, so it must not
        // land before the cache entry it points at. Appends are
        // best-effort — a failed append costs a re-run after restart
        // (which the cache then absorbs), never correctness.
        if let Some(journal) = &inner.journal {
            let mut guard = lock(journal);
            for record in &journal_done {
                let _ = guard.append(record);
            }
        }

        // Completion bookkeeping: count each job's terminal transition
        // exactly once (a job with any failed trial counts as failed).
        let mut completed_jobs = 0u64;
        let mut failed_jobs = 0u64;
        {
            let mut st = lock(&inner.state);
            for entry in &mut st.jobs {
                if entry.finished() && !entry.counted {
                    entry.counted = true;
                    if entry.slots.iter().any(|s| matches!(s, Slot::Failed { .. })) {
                        failed_jobs += 1;
                    } else {
                        completed_jobs += 1;
                    }
                }
            }
        }
        if completed_jobs + failed_jobs > 0 {
            if let Some(hub) = &inner.config.hub {
                hub.update(|m| {
                    m.inc("service.jobs.completed", completed_jobs);
                    m.inc("service.jobs.failed", failed_jobs);
                });
            }
            inner.done.notify_all();
        }
        if let Some(hub) = &inner.config.hub {
            hub.inc("service.trials.cached", cache_hits);
            hub.inc("service.trials.memoized", memo_hits);
            hub.inc("service.trials.quarantined", quarantine_drops);
        }
        Self::publish_cache_stats(inner);
        if resolved > 0 {
            inner.done.notify_all();
        }
        resolved + executed
    }

    fn record_failure(st: &mut SchedulerState, inner: &Arc<Inner>, cell: u64) {
        let count = st.cell_failures.entry(cell).or_insert(0);
        *count += 1;
        let threshold = inner.config.quarantine_after;
        if threshold > 0 && *count >= threshold {
            st.quarantined.insert(cell);
        }
    }
}

/// Renders the deterministic result document for a finished job: trial
/// keys, output digests, metrics, and seed-axis aggregates, in
/// enumeration order. Contains *only* values that are pure functions
/// of the spec — no timings, no cache provenance — which is what makes
/// a cache-served rerun byte-identical to the cold run.
fn render_results(entry: &JobEntry) -> String {
    let mut out = String::new();
    out.push_str("# unxpec service results v1\n");
    out.push_str(&format!(
        "# digest-version {DIGEST_VERSION} simulator-version {SIMULATOR_VERSION}\n"
    ));
    out.push_str(&format!("spec {:#018x}\n", entry.spec.digest()));
    let mut completed: Vec<TrialResult> = Vec::new();
    for (index, slot) in entry.slots.iter().enumerate() {
        let trial = &entry.trials[index];
        match slot {
            Slot::Done { output, digest, .. } => {
                out.push_str(&format!("trial {} digest {:#018x}", trial.key, digest));
                if output.truncated {
                    out.push_str(" truncated");
                }
                out.push('\n');
                for (name, value) in &output.metrics {
                    out.push_str(&format!("  metric {name} {value}\n"));
                }
                completed.push(TrialResult {
                    trial: trial.clone(),
                    output: output.clone(),
                    digest: *digest,
                    attempts: 1,
                    resumed: false,
                });
            }
            Slot::Failed { kind, .. } => {
                out.push_str(&format!("trial {} failed {kind}\n", trial.key));
            }
            Slot::Skipped => {
                out.push_str(&format!("trial {} skipped\n", trial.key));
            }
            Slot::Pending | Slot::Running => {
                out.push_str(&format!("trial {} open\n", trial.key));
            }
        }
    }
    for a in aggregate(&completed) {
        out.push_str(&format!(
            "aggregate {} {} {} mean {} std {} min {} max {} n {}\n",
            a.experiment,
            a.variant,
            a.metric,
            a.summary.mean,
            a.summary.std_dev,
            a.summary.min,
            a.summary.max,
            a.summary.n
        ));
    }
    out
}

/// The line-delimited JSON TCP listener over a shared [`Service`].
pub struct TcpFront {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl TcpFront {
    /// Binds `addr` (port 0 for ephemeral) and starts accepting
    /// connections, each served on its own thread.
    pub fn start(service: Arc<Service>, addr: &str) -> Result<TcpFront, ServiceError> {
        let listener = TcpListener::bind(addr).map_err(|e| ServiceError::Bind {
            addr: addr.to_string(),
            error: e.to_string(),
        })?;
        let local = listener.local_addr().map_err(|e| ServiceError::Bind {
            addr: addr.to_string(),
            error: e.to_string(),
        })?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("sweep-acceptor".to_string())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop2.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let per_conn = Arc::clone(&service);
                    let _ = std::thread::Builder::new()
                        .name("sweep-conn".to_string())
                        .spawn(move || {
                            let _ = serve_connection(&per_conn, stream);
                        });
                }
            })
            .map_err(|e| ServiceError::Accept(e.to_string()))?;
        Ok(TcpFront {
            addr: local,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for TcpFront {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_connection(service: &Service, stream: TcpStream) -> Result<(), ServiceError> {
    let reader = stream
        .try_clone()
        .map_err(|e| ServiceError::Io(e.to_string()))?;
    let mut writer = stream;
    let mut reader = BufReader::new(reader);
    loop {
        // Bounded frame reader: a peer that never sends a newline can
        // make the server buffer at most MAX_FRAME_BYTES, and the
        // failure is a typed response, not a hung or bloated thread.
        let line = match protocol::read_frame(&mut reader, protocol::MAX_FRAME_BYTES) {
            Ok(Some(line)) => line,
            Ok(None) => return Ok(()),
            Err(e) => {
                // Tell the peer why before giving up on the stream: the
                // read position is mid-frame, so resynchronization is
                // impossible and the connection must close.
                let _ = writer.write_all(protocol::error_response(&e).as_bytes());
                return Err(e);
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let response = match protocol::parse_request(&line) {
            Ok(request) => handle_request(service, &mut writer, request),
            Err(e) => Err(e),
        };
        match response {
            Ok(body) => {
                writer
                    .write_all(body.as_bytes())
                    .map_err(|e| ServiceError::Io(e.to_string()))?;
            }
            Err(e) => {
                writer
                    .write_all(protocol::error_response(&e).as_bytes())
                    .map_err(|io| ServiceError::Io(io.to_string()))?;
            }
        }
    }
}

fn handle_request(
    service: &Service,
    writer: &mut TcpStream,
    request: Request,
) -> Result<String, ServiceError> {
    use unxpec_telemetry::json::escape;
    match request {
        Request::Submit { tenant, spec } => {
            let (job, trials) = service.submit(&tenant, &spec)?;
            Ok(format!(
                "{{\"ok\": true, \"job\": \"{}\", \"trials\": {trials}}}\n",
                escape(&job)
            ))
        }
        Request::Status { job } => {
            let s = service.status(&job)?;
            Ok(status_line(&s))
        }
        Request::Results { job } => {
            let text = service.results(&job)?;
            Ok(format!(
                "{{\"ok\": true, \"job\": \"{}\", \"text\": \"{}\"}}\n",
                escape(&job),
                escape(&text)
            ))
        }
        Request::Cancel { job } => {
            let skipped = service.cancel(&job)?;
            Ok(format!(
                "{{\"ok\": true, \"job\": \"{}\", \"skipped\": {skipped}}}\n",
                escape(&job)
            ))
        }
        Request::Stream { job, from } => {
            // Per-trial events from sequence `from` until the job
            // finishes, then one final status line with "ok". A
            // reconnecting client passes the last sequence number it
            // saw and receives exactly the events it missed — already-
            // delivered events are never re-sent, future ones arrive
            // as they happen.
            let mut next = from as usize;
            loop {
                let (events, status) = service.events_since(&job, next)?;
                for event in &events {
                    writer
                        .write_all(event.as_bytes())
                        .map_err(|e| ServiceError::Io(e.to_string()))?;
                }
                next += events.len();
                if status.finished() {
                    return Ok(status_line(&status));
                }
                match service.wait(&job, Duration::from_millis(200)) {
                    // Loop re-reads the ledger either way; a timeout
                    // just means no terminal transition yet.
                    Ok(_) | Err(ServiceError::WaitTimeout { .. }) => {}
                    Err(e) => return Err(e),
                }
            }
        }
    }
}

fn status_line(s: &JobStatus) -> String {
    use unxpec_telemetry::json::escape;
    format!(
        "{{\"ok\": true, \"job\": \"{}\", \"tenant\": \"{}\", \"total\": {}, \"done\": {}, \"cached\": {}, \"failed\": {}, \"skipped\": {}, \"open\": {}, \"finished\": {}, \"cancelled\": {}}}\n",
        escape(&s.id),
        escape(&s.tenant),
        s.total,
        s.done,
        s.cached,
        s.failed,
        s.skipped,
        s.open,
        s.finished(),
        s.cancelled
    )
}
