//! The multi-tenant sweep job server.
//!
//! [`Service`] owns the job table, the fair-share scheduler, and the
//! result cache. Clients submit [`SweepSpec`]s (as the harness's
//! `key=value` text); the scheduler slices pending trials into batches
//! for the harness's work-stealing pool, round-robining across
//! *tenants* so one tenant's thousand-trial sweep cannot starve
//! another's smoke test:
//!
//! * Each scheduling tick walks tenants in first-appearance order,
//!   starting one past the tenant that got the previous slot, and takes
//!   at most one trial per visit — dispatch order interleaves tenants
//!   even when their queue depths differ by orders of magnitude.
//! * Per-tenant concurrency inside a batch is additionally bounded by
//!   [`ServiceConfig::max_tenant_inflight`].
//! * Every candidate trial is first looked up in the
//!   [`ResultCache`] by its [`cell_digest`]; a hit resolves without
//!   consuming a pool slot. Identical cells *within* one batch are
//!   coalesced: one execution, every waiter shares the output.
//! * Failure handling reuses the sweep harness's machinery — the pool's
//!   retry/deadline/backoff [`RunPolicy`], plus cell-level quarantine
//!   after repeated poisonings so a deterministic panic cannot eat the
//!   retry budget of every tenant that submits it.
//!
//! The scheduler runs either on a background worker thread
//! ([`Service::start_worker`]) or manually ([`Service::tick`]), which is
//! how tests drive it deterministically. [`TcpFront`] is the
//! line-delimited JSON listener described in [`crate::protocol`].

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use unxpec::cpu::ExecMode;
use unxpec::experiments::Scale;
use unxpec_harness::{
    aggregate, cell_digest, default_jobs, output_digest, run_tasks_with, Registry, RunPolicy,
    SweepSpec, TaskOutcome, Trial, TrialCtx, TrialOutput, TrialResult, DIGEST_VERSION,
    SIMULATOR_VERSION,
};
use unxpec_telemetry::MetricsHub;

use crate::cache::{CacheConfig, CacheStats, ResultCache};
use crate::error::ServiceError;
use crate::protocol::{self, Request};

/// Everything the service is configured with.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Pool worker threads per batch.
    pub jobs: usize,
    /// Retries per panicking trial.
    pub retries: u32,
    /// Per-trial wall-clock budget in ms; 0 = unbounded.
    pub deadline_ms: u64,
    /// Base retry backoff in ms (doubling, capped at 2 s).
    pub backoff_ms: u64,
    /// Poison/timeout count after which a cell is quarantined; 0
    /// disables quarantine.
    pub quarantine_after: u32,
    /// Max trials one tenant may hold in a single batch; 0 = no bound
    /// beyond the batch size itself.
    pub max_tenant_inflight: usize,
    /// Result cache location and bound; `None` runs cacheless.
    pub cache: Option<CacheConfig>,
    /// Live metrics sink (`service.*` names); `None` disables.
    pub hub: Option<MetricsHub>,
    /// Forces every submitted spec's execution mode (the `serve`
    /// binary's `--fast-forward`). Applied *before* cell digests are
    /// computed, so cached results never mix modes. `None` honours
    /// whatever mode the spec itself carries.
    pub mode_override: Option<ExecMode>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            jobs: default_jobs(),
            retries: 1,
            deadline_ms: 0,
            backoff_ms: 0,
            quarantine_after: 3,
            max_tenant_inflight: 0,
            cache: None,
            hub: None,
            mode_override: None,
        }
    }
}

/// One trial's lifecycle inside a job.
#[derive(Debug, Clone, PartialEq)]
enum Slot {
    Pending,
    Running,
    Done {
        output: TrialOutput,
        digest: u64,
        cached: bool,
    },
    Failed {
        kind: &'static str,
        error: String,
        attempts: u32,
    },
    Skipped,
}

#[derive(Debug)]
struct JobEntry {
    id: String,
    tenant: String,
    spec: SweepSpec,
    trials: Vec<Trial>,
    cells: Vec<u64>,
    slots: Vec<Slot>,
    submitted: Instant,
    cancelled: bool,
    /// Whether the job's completion was already counted into metrics.
    counted: bool,
}

impl JobEntry {
    fn finished(&self) -> bool {
        !self
            .slots
            .iter()
            .any(|s| matches!(s, Slot::Pending | Slot::Running))
    }

    fn next_pending(&self) -> Option<usize> {
        self.slots.iter().position(|s| matches!(s, Slot::Pending))
    }
}

/// A point-in-time view of one job, as returned by [`Service::status`].
#[derive(Debug, Clone, PartialEq)]
pub struct JobStatus {
    /// Job id (`"j1"`, `"j2"`, …).
    pub id: String,
    /// Owning tenant.
    pub tenant: String,
    /// Total enumerated trials.
    pub total: usize,
    /// Trials resolved with an output.
    pub done: usize,
    /// Of those, trials served from the cache (or coalesced).
    pub cached: usize,
    /// Trials that failed (poisoned / timed out / quarantined).
    pub failed: usize,
    /// Trials skipped by cancellation.
    pub skipped: usize,
    /// Trials still pending or running.
    pub open: usize,
    /// Whether the job was cancelled.
    pub cancelled: bool,
}

impl JobStatus {
    /// Whether every trial has reached a terminal slot.
    pub fn finished(&self) -> bool {
        self.open == 0
    }
}

#[derive(Debug, Default)]
struct SchedulerState {
    jobs: Vec<JobEntry>,
    next_job: u64,
    /// Tenants in first-appearance order — the round-robin ring.
    tenants: Vec<String>,
    /// Cross-job memo: cell digest → the `(job, slot)` holding a
    /// completed output for it. Jobs are never removed from `jobs`, so
    /// the indices stay valid for the server's lifetime. This is what
    /// lets a later job subscribe to an earlier job's result even when
    /// no disk cache is configured (or the entry was evicted).
    completed_cells: HashMap<u64, (usize, usize)>,
    /// Ring index of the tenant that gets the *next* slot.
    rr: usize,
    /// `(tenant, trial key)` per pool dispatch, in dispatch order. The
    /// fairness tests read this; it is capped so a long-lived server
    /// doesn't grow without bound.
    dispatch_log: Vec<(String, String)>,
    /// Consecutive poison/timeout count per cell digest.
    cell_failures: HashMap<u64, u32>,
    /// Cells quarantined after repeated failures.
    quarantined: std::collections::HashSet<u64>,
    shutdown: bool,
}

const DISPATCH_LOG_CAP: usize = 4096;

struct Inner {
    state: Mutex<SchedulerState>,
    /// Wakes the worker thread on submissions and shutdown.
    wake: Condvar,
    /// Signals job completion to `wait`ers.
    done: Condvar,
    registry: Registry,
    config: ServiceConfig,
    cache: Option<Mutex<ResultCache>>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The job server. Cheap to share: clones of the `Arc` inside
/// [`TcpFront`] and the worker thread all point at one scheduler.
pub struct Service {
    inner: Arc<Inner>,
    worker: Option<JoinHandle<()>>,
}

/// What one pool task carries back: the experiment output, or the
/// (unreachable post-enumeration) registry miss.
type TaskValue = Result<TrialOutput, String>;

struct BatchItem {
    job: usize,
    slot: usize,
    cell: u64,
    experiment: String,
    variant: String,
    seed: u64,
    scale: Scale,
    mode: ExecMode,
}

impl Service {
    /// Builds a service over `registry`, opening the cache if one is
    /// configured. No scheduler runs yet: call [`Service::start_worker`]
    /// for a live server or [`Service::tick`] from tests.
    pub fn new(registry: Registry, config: ServiceConfig) -> Result<Self, ServiceError> {
        let cache = match &config.cache {
            Some(cache_config) => Some(Mutex::new(ResultCache::open(cache_config)?)),
            None => None,
        };
        let service = Service {
            inner: Arc::new(Inner {
                state: Mutex::new(SchedulerState::default()),
                wake: Condvar::new(),
                done: Condvar::new(),
                registry,
                config,
                cache,
            }),
            worker: None,
        };
        service.publish_cache_stats();
        Ok(service)
    }

    /// Spawns the background scheduler thread. Idempotent per service:
    /// a second call is ignored.
    pub fn start_worker(&mut self) {
        if self.worker.is_some() {
            return;
        }
        let inner = Arc::clone(&self.inner);
        let spawned = std::thread::Builder::new()
            .name("sweep-scheduler".to_string())
            .spawn(move || loop {
                let progressed = Inner::tick(&inner) > 0;
                let mut st = lock(&inner.state);
                if st.shutdown {
                    break;
                }
                if !progressed && !Inner::has_pending(&st) {
                    // Timed wait: a missed notify costs 50 ms, not a hang.
                    let (guard, _) = inner
                        .wake
                        .wait_timeout(st, Duration::from_millis(50))
                        .unwrap_or_else(PoisonError::into_inner);
                    st = guard;
                }
                drop(st);
            });
        if let Ok(handle) = spawned {
            self.worker = Some(handle);
        }
    }

    /// Parses and enumerates `spec_text` for `tenant`, queues the job,
    /// and returns `(job id, trial count)`.
    pub fn submit(&self, tenant: &str, spec_text: &str) -> Result<(String, usize), ServiceError> {
        let mut spec =
            SweepSpec::parse(spec_text).map_err(|e| ServiceError::Spec(format!("{e:?}")))?;
        if let Some(mode) = self.inner.config.mode_override {
            spec.mode = mode;
        }
        let trials = spec
            .enumerate(&self.inner.registry)
            .map_err(|e| ServiceError::Spec(format!("{e:?}")))?;
        let cells: Vec<u64> = trials
            .iter()
            .map(|t| cell_digest(&spec, &t.experiment, &t.variant, t.seed_index))
            .collect();
        let n = trials.len();
        let mut st = lock(&self.inner.state);
        st.next_job += 1;
        let id = format!("j{}", st.next_job);
        if !st.tenants.iter().any(|t| t == tenant) {
            st.tenants.push(tenant.to_string());
        }
        st.jobs.push(JobEntry {
            id: id.clone(),
            tenant: tenant.to_string(),
            spec,
            trials,
            cells,
            slots: vec![Slot::Pending; n],
            submitted: Instant::now(),
            cancelled: false,
            counted: false,
        });
        drop(st);
        self.hub_inc("service.jobs.submitted", 1);
        self.inner.wake.notify_all();
        // Zero-trial jobs are born finished; tell any waiter.
        if n == 0 {
            self.inner.done.notify_all();
        }
        Ok((id, n))
    }

    /// One scheduling pass: resolve what the cache can, run one pool
    /// batch for the rest. Returns the number of trials that reached a
    /// terminal slot (0 = nothing to do). Public so tests can drive
    /// the scheduler deterministically without the worker thread.
    pub fn tick(&self) -> usize {
        Inner::tick(&self.inner)
    }

    /// The job's current counters.
    pub fn status(&self, job: &str) -> Result<JobStatus, ServiceError> {
        let st = lock(&self.inner.state);
        let entry = Inner::find(&st, job)?;
        Ok(Inner::status_of(entry))
    }

    /// Blocks until `job` finishes; returns the final status. On
    /// deadline expiry with trials still open, returns the typed
    /// [`ServiceError::WaitTimeout`] — never an `Ok` that could be
    /// mistaken for completion (use [`Service::status`] to observe a
    /// still-running job's counters).
    pub fn wait(&self, job: &str, timeout: Duration) -> Result<JobStatus, ServiceError> {
        let deadline = Instant::now() + timeout;
        let mut st = lock(&self.inner.state);
        loop {
            let status = Inner::status_of(Inner::find(&st, job)?);
            if status.finished() {
                return Ok(status);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(ServiceError::WaitTimeout {
                    job: job.to_string(),
                    waited_ms: timeout.as_millis() as u64,
                });
            }
            let step = (deadline - now).min(Duration::from_millis(50));
            let (guard, _) = self
                .inner
                .done
                .wait_timeout(st, step)
                .unwrap_or_else(PoisonError::into_inner);
            st = guard;
        }
    }

    /// Marks every pending trial of `job` skipped. Running trials
    /// finish their current attempt. Returns the number skipped.
    pub fn cancel(&self, job: &str) -> Result<usize, ServiceError> {
        let mut st = lock(&self.inner.state);
        let index = st
            .jobs
            .iter()
            .position(|j| j.id == job)
            .ok_or_else(|| ServiceError::UnknownJob(job.to_string()))?;
        let entry = &mut st.jobs[index];
        entry.cancelled = true;
        let mut skipped = 0;
        for slot in &mut entry.slots {
            if matches!(slot, Slot::Pending) {
                *slot = Slot::Skipped;
                skipped += 1;
            }
        }
        let finished = entry.finished();
        drop(st);
        self.hub_inc("service.jobs.cancelled", 1);
        if finished {
            self.inner.done.notify_all();
        }
        Ok(skipped)
    }

    /// The deterministic result document for a finished job — see
    /// [`render_results`]. Errors if the job still has open trials.
    pub fn results(&self, job: &str) -> Result<String, ServiceError> {
        let st = lock(&self.inner.state);
        let entry = Inner::find(&st, job)?;
        if !entry.finished() {
            return Err(ServiceError::NotFinished(job.to_string()));
        }
        Ok(render_results(entry))
    }

    /// The `(tenant, trial key)` pool-dispatch sequence, for fairness
    /// assertions and debugging.
    pub fn dispatch_log(&self) -> Vec<(String, String)> {
        lock(&self.inner.state).dispatch_log.clone()
    }

    /// Cache counters, if a cache is configured.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.inner.cache.as_ref().map(|c| lock(c).stats())
    }

    /// Stops the worker thread (if running). Called by `Drop`.
    pub fn shutdown(&mut self) {
        lock(&self.inner.state).shutdown = true;
        self.inner.wake.notify_all();
        if let Some(handle) = self.worker.take() {
            let _ = handle.join();
        }
    }

    fn hub_inc(&self, name: &str, by: u64) {
        if let Some(hub) = &self.inner.config.hub {
            hub.inc(name, by);
        }
    }

    fn publish_cache_stats(&self) {
        Inner::publish_cache_stats(&self.inner);
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl Inner {
    fn find<'a>(st: &'a SchedulerState, job: &str) -> Result<&'a JobEntry, ServiceError> {
        st.jobs
            .iter()
            .find(|j| j.id == job)
            .ok_or_else(|| ServiceError::UnknownJob(job.to_string()))
    }

    fn status_of(entry: &JobEntry) -> JobStatus {
        let mut status = JobStatus {
            id: entry.id.clone(),
            tenant: entry.tenant.clone(),
            total: entry.slots.len(),
            done: 0,
            cached: 0,
            failed: 0,
            skipped: 0,
            open: 0,
            cancelled: entry.cancelled,
        };
        for slot in &entry.slots {
            match slot {
                Slot::Pending | Slot::Running => status.open += 1,
                Slot::Done { cached, .. } => {
                    status.done += 1;
                    if *cached {
                        status.cached += 1;
                    }
                }
                Slot::Failed { .. } => status.failed += 1,
                Slot::Skipped => status.skipped += 1,
            }
        }
        status
    }

    fn has_pending(st: &SchedulerState) -> bool {
        st.jobs.iter().any(|j| j.next_pending().is_some())
    }

    fn publish_cache_stats(inner: &Arc<Inner>) {
        let (Some(hub), Some(cache)) = (&inner.config.hub, &inner.cache) else {
            return;
        };
        let stats = lock(cache).stats();
        hub.update(|m| {
            m.set("service.cache.hits", stats.hits);
            m.set("service.cache.misses", stats.misses);
            m.set("service.cache.evictions", stats.evictions);
            m.set("service.cache.corrupt", stats.corrupt);
            m.set("service.cache.bytes", stats.bytes);
        });
    }

    /// One scheduling pass. See [`Service::tick`].
    fn tick(inner: &Arc<Inner>) -> usize {
        let mut st = lock(&inner.state);
        if st.shutdown {
            return 0;
        }
        let batch_cap = inner.config.jobs.max(1);
        let tenant_cap = if inner.config.max_tenant_inflight == 0 {
            usize::MAX
        } else {
            inner.config.max_tenant_inflight
        };
        let mut batch: Vec<BatchItem> = Vec::new();
        let mut waiters: HashMap<u64, Vec<(usize, usize)>> = HashMap::new();
        let mut inflight: std::collections::HashSet<u64> = std::collections::HashSet::new();
        let mut per_tenant: HashMap<String, usize> = HashMap::new();
        let mut resolved = 0usize;
        let mut cache_hits = 0u64;
        let mut memo_hits = 0u64;
        let mut quarantine_drops = 0u64;

        loop {
            let n_tenants = st.tenants.len();
            if n_tenants == 0 || batch.len() >= batch_cap {
                break;
            }
            // One pass over the tenant ring, starting at `rr`, taking
            // at most one trial per tenant per visit. The start is
            // fixed before the pass: `rr` itself advances per dispatch.
            let start = st.rr;
            let mut progressed = false;
            for offset in 0..n_tenants {
                let ring = (start + offset) % n_tenants;
                let tenant = st.tenants[ring].clone();
                if *per_tenant.get(&tenant).unwrap_or(&0) >= tenant_cap {
                    continue;
                }
                let found = st.jobs.iter().enumerate().find_map(|(i, j)| {
                    if j.tenant == tenant {
                        j.next_pending().map(|s| (i, s))
                    } else {
                        None
                    }
                });
                let Some((job_idx, slot_idx)) = found else {
                    continue;
                };
                progressed = true;
                let cell = st.jobs[job_idx].cells[slot_idx];
                // Candidate chain, cheapest source first: quarantine,
                // then cells already dispatched this batch (before the
                // disk cache, so an in-batch duplicate never records a
                // spurious cache miss), then the disk cache, then the
                // cross-job completed-cell memo, then the pool.
                let memo_done = if st.quarantined.contains(&cell) || inflight.contains(&cell) {
                    None
                } else {
                    st.completed_cells.get(&cell).copied().and_then(|(j, s)| {
                        match &st.jobs[j].slots[s] {
                            Slot::Done { output, digest, .. } => Some((output.clone(), *digest)),
                            _ => None,
                        }
                    })
                };
                if st.quarantined.contains(&cell) {
                    st.jobs[job_idx].slots[slot_idx] = Slot::Failed {
                        kind: "quarantined",
                        error: "cell quarantined after repeated failures".to_string(),
                        attempts: 0,
                    };
                    resolved += 1;
                    quarantine_drops += 1;
                } else if inflight.contains(&cell) {
                    // Same cell already executing in this batch: share
                    // the leader's output instead of re-running it.
                    st.jobs[job_idx].slots[slot_idx] = Slot::Running;
                    waiters.entry(cell).or_default().push((job_idx, slot_idx));
                } else if let Some(output) = inner.cache.as_ref().and_then(|c| lock(c).get(cell)) {
                    let digest = output_digest(&output);
                    st.completed_cells.insert(cell, (job_idx, slot_idx));
                    st.jobs[job_idx].slots[slot_idx] = Slot::Done {
                        output,
                        digest,
                        cached: true,
                    };
                    resolved += 1;
                    cache_hits += 1;
                } else if let Some((output, digest)) = memo_done {
                    // A previous job already computed this cell and the
                    // disk cache no longer has it (cacheless server or
                    // evicted entry): subscribe to that result instead
                    // of re-simulating.
                    st.jobs[job_idx].slots[slot_idx] = Slot::Done {
                        output,
                        digest,
                        cached: true,
                    };
                    resolved += 1;
                    memo_hits += 1;
                } else {
                    let entry = &mut st.jobs[job_idx];
                    entry.slots[slot_idx] = Slot::Running;
                    let trial = &entry.trials[slot_idx];
                    let queued_us = entry.submitted.elapsed().as_micros() as u64;
                    let key = trial.key.clone();
                    batch.push(BatchItem {
                        job: job_idx,
                        slot: slot_idx,
                        cell,
                        experiment: trial.experiment.clone(),
                        variant: trial.variant.clone(),
                        seed: trial.seed,
                        scale: entry.spec.scale,
                        mode: entry.spec.mode,
                    });
                    inflight.insert(cell);
                    *per_tenant.entry(tenant.clone()).or_insert(0) += 1;
                    if st.dispatch_log.len() < DISPATCH_LOG_CAP {
                        st.dispatch_log.push((tenant.clone(), key));
                    }
                    if let Some(hub) = &inner.config.hub {
                        hub.observe(
                            &format!("service.tenant.{tenant}.queue_latency_us"),
                            queued_us,
                        );
                    }
                }
                // This tenant consumed the turn either way; the next
                // slot goes to the tenant after it.
                st.rr = (ring + 1) % n_tenants;
                if batch.len() >= batch_cap {
                    break;
                }
            }
            // Every pass either consumed at least one pending trial
            // (progressed) or proved there is nothing dispatchable.
            if !progressed {
                break;
            }
        }
        drop(st);

        let mut puts: Vec<(u64, TrialOutput)> = Vec::new();
        let executed = batch.len();
        if executed > 0 {
            let policy = RunPolicy {
                retries: inner.config.retries,
                deadline: (inner.config.deadline_ms > 0)
                    .then(|| Duration::from_millis(inner.config.deadline_ms)),
                backoff_base: Duration::from_millis(inner.config.backoff_ms),
                backoff_cap: Duration::from_secs(2),
            };
            let registry = &inner.registry;
            let (outcomes, _timings, _stats) = run_tasks_with(
                inner.config.jobs,
                executed,
                &policy,
                |index| -> TaskValue {
                    let item = &batch[index];
                    let experiment = registry
                        .get(&item.experiment)
                        .ok_or_else(|| format!("experiment {:?} vanished", item.experiment))?;
                    Ok(experiment.run(&TrialCtx {
                        seed: item.seed,
                        scale: item.scale,
                        variant: item.variant.clone(),
                        mode: item.mode,
                    }))
                },
                |_event| {},
            );

            let mut st = lock(&inner.state);
            let mut coalesced = 0u64;
            let mut poisoned = 0u64;
            let mut timed_out = 0u64;
            for (index, outcome) in outcomes.into_iter().enumerate() {
                let item = &batch[index];
                let fan_out = waiters.remove(&item.cell).unwrap_or_default();
                match outcome {
                    TaskOutcome::Done {
                        value: Ok(output),
                        attempts: _,
                    } => {
                        let digest = output_digest(&output);
                        st.cell_failures.remove(&item.cell);
                        for &(job_idx, slot_idx) in &fan_out {
                            st.jobs[job_idx].slots[slot_idx] = Slot::Done {
                                output: output.clone(),
                                digest,
                                cached: true,
                            };
                            coalesced += 1;
                        }
                        puts.push((item.cell, output.clone()));
                        st.completed_cells.insert(item.cell, (item.job, item.slot));
                        st.jobs[item.job].slots[item.slot] = Slot::Done {
                            output,
                            digest,
                            cached: false,
                        };
                    }
                    TaskOutcome::Done {
                        value: Err(error), ..
                    } => {
                        for &(job_idx, slot_idx) in &fan_out {
                            st.jobs[job_idx].slots[slot_idx] = Slot::Failed {
                                kind: "spec",
                                error: error.clone(),
                                attempts: 1,
                            };
                        }
                        st.jobs[item.job].slots[item.slot] = Slot::Failed {
                            kind: "spec",
                            error,
                            attempts: 1,
                        };
                    }
                    TaskOutcome::Poisoned { error, attempts } => {
                        poisoned += 1;
                        Self::record_failure(&mut st, inner, item.cell);
                        for &(job_idx, slot_idx) in &fan_out {
                            st.jobs[job_idx].slots[slot_idx] = Slot::Failed {
                                kind: "poisoned",
                                error: error.clone(),
                                attempts,
                            };
                        }
                        st.jobs[item.job].slots[item.slot] = Slot::Failed {
                            kind: "poisoned",
                            error,
                            attempts,
                        };
                    }
                    TaskOutcome::TimedOut { error, attempts } => {
                        timed_out += 1;
                        Self::record_failure(&mut st, inner, item.cell);
                        for &(job_idx, slot_idx) in &fan_out {
                            st.jobs[job_idx].slots[slot_idx] = Slot::Failed {
                                kind: "timed-out",
                                error: error.clone(),
                                attempts,
                            };
                        }
                        st.jobs[item.job].slots[item.slot] = Slot::Failed {
                            kind: "timed-out",
                            error,
                            attempts,
                        };
                    }
                }
            }
            if let Some(hub) = &inner.config.hub {
                hub.update(|m| {
                    m.inc("service.trials.executed", executed as u64);
                    m.inc("service.trials.coalesced", coalesced);
                    m.inc("service.trials.poisoned", poisoned);
                    m.inc("service.trials.timed_out", timed_out);
                });
            }
            drop(st);
        }

        // Persist fresh outputs outside the state lock (lock order is
        // always state → cache, never both held across the pool run).
        if let Some(cache) = &inner.cache {
            let mut guard = lock(cache);
            for (cell, output) in &puts {
                let _ = guard.put(*cell, output);
            }
        }

        // Completion bookkeeping: count each job's terminal transition
        // exactly once (a job with any failed trial counts as failed).
        let mut completed_jobs = 0u64;
        let mut failed_jobs = 0u64;
        {
            let mut st = lock(&inner.state);
            for entry in &mut st.jobs {
                if entry.finished() && !entry.counted {
                    entry.counted = true;
                    if entry.slots.iter().any(|s| matches!(s, Slot::Failed { .. })) {
                        failed_jobs += 1;
                    } else {
                        completed_jobs += 1;
                    }
                }
            }
        }
        if completed_jobs + failed_jobs > 0 {
            if let Some(hub) = &inner.config.hub {
                hub.update(|m| {
                    m.inc("service.jobs.completed", completed_jobs);
                    m.inc("service.jobs.failed", failed_jobs);
                });
            }
            inner.done.notify_all();
        }
        if let Some(hub) = &inner.config.hub {
            hub.inc("service.trials.cached", cache_hits);
            hub.inc("service.trials.memoized", memo_hits);
            hub.inc("service.trials.quarantined", quarantine_drops);
        }
        Self::publish_cache_stats(inner);
        if resolved > 0 {
            inner.done.notify_all();
        }
        resolved + executed
    }

    fn record_failure(st: &mut SchedulerState, inner: &Arc<Inner>, cell: u64) {
        let count = st.cell_failures.entry(cell).or_insert(0);
        *count += 1;
        let threshold = inner.config.quarantine_after;
        if threshold > 0 && *count >= threshold {
            st.quarantined.insert(cell);
        }
    }
}

/// Renders the deterministic result document for a finished job: trial
/// keys, output digests, metrics, and seed-axis aggregates, in
/// enumeration order. Contains *only* values that are pure functions
/// of the spec — no timings, no cache provenance — which is what makes
/// a cache-served rerun byte-identical to the cold run.
fn render_results(entry: &JobEntry) -> String {
    let mut out = String::new();
    out.push_str("# unxpec service results v1\n");
    out.push_str(&format!(
        "# digest-version {DIGEST_VERSION} simulator-version {SIMULATOR_VERSION}\n"
    ));
    out.push_str(&format!("spec {:#018x}\n", entry.spec.digest()));
    let mut completed: Vec<TrialResult> = Vec::new();
    for (index, slot) in entry.slots.iter().enumerate() {
        let trial = &entry.trials[index];
        match slot {
            Slot::Done { output, digest, .. } => {
                out.push_str(&format!("trial {} digest {:#018x}", trial.key, digest));
                if output.truncated {
                    out.push_str(" truncated");
                }
                out.push('\n');
                for (name, value) in &output.metrics {
                    out.push_str(&format!("  metric {name} {value}\n"));
                }
                completed.push(TrialResult {
                    trial: trial.clone(),
                    output: output.clone(),
                    digest: *digest,
                    attempts: 1,
                    resumed: false,
                });
            }
            Slot::Failed { kind, .. } => {
                out.push_str(&format!("trial {} failed {kind}\n", trial.key));
            }
            Slot::Skipped => {
                out.push_str(&format!("trial {} skipped\n", trial.key));
            }
            Slot::Pending | Slot::Running => {
                out.push_str(&format!("trial {} open\n", trial.key));
            }
        }
    }
    for a in aggregate(&completed) {
        out.push_str(&format!(
            "aggregate {} {} {} mean {} std {} min {} max {} n {}\n",
            a.experiment,
            a.variant,
            a.metric,
            a.summary.mean,
            a.summary.std_dev,
            a.summary.min,
            a.summary.max,
            a.summary.n
        ));
    }
    out
}

/// The line-delimited JSON TCP listener over a shared [`Service`].
pub struct TcpFront {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl TcpFront {
    /// Binds `addr` (port 0 for ephemeral) and starts accepting
    /// connections, each served on its own thread.
    pub fn start(service: Arc<Service>, addr: &str) -> Result<TcpFront, ServiceError> {
        let listener = TcpListener::bind(addr).map_err(|e| ServiceError::Bind {
            addr: addr.to_string(),
            error: e.to_string(),
        })?;
        let local = listener.local_addr().map_err(|e| ServiceError::Bind {
            addr: addr.to_string(),
            error: e.to_string(),
        })?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("sweep-acceptor".to_string())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop2.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let per_conn = Arc::clone(&service);
                    let _ = std::thread::Builder::new()
                        .name("sweep-conn".to_string())
                        .spawn(move || {
                            let _ = serve_connection(&per_conn, stream);
                        });
                }
            })
            .map_err(|e| ServiceError::Accept(e.to_string()))?;
        Ok(TcpFront {
            addr: local,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for TcpFront {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_connection(service: &Service, stream: TcpStream) -> Result<(), ServiceError> {
    let reader = stream
        .try_clone()
        .map_err(|e| ServiceError::Io(e.to_string()))?;
    let mut writer = stream;
    let lines = BufReader::new(reader).lines();
    for line in lines {
        let line = line.map_err(|e| ServiceError::Io(e.to_string()))?;
        if line.trim().is_empty() {
            continue;
        }
        let response = match protocol::parse_request(&line) {
            Ok(request) => handle_request(service, &mut writer, request),
            Err(e) => Err(e),
        };
        match response {
            Ok(body) => {
                writer
                    .write_all(body.as_bytes())
                    .map_err(|e| ServiceError::Io(e.to_string()))?;
            }
            Err(e) => {
                writer
                    .write_all(protocol::error_response(&e).as_bytes())
                    .map_err(|io| ServiceError::Io(io.to_string()))?;
            }
        }
    }
    Ok(())
}

fn handle_request(
    service: &Service,
    writer: &mut TcpStream,
    request: Request,
) -> Result<String, ServiceError> {
    use unxpec_telemetry::json::escape;
    match request {
        Request::Submit { tenant, spec } => {
            let (job, trials) = service.submit(&tenant, &spec)?;
            Ok(format!(
                "{{\"ok\": true, \"job\": \"{}\", \"trials\": {trials}}}\n",
                escape(&job)
            ))
        }
        Request::Status { job } => {
            let s = service.status(&job)?;
            Ok(status_line(&s))
        }
        Request::Results { job } => {
            let text = service.results(&job)?;
            Ok(format!(
                "{{\"ok\": true, \"job\": \"{}\", \"text\": \"{}\"}}\n",
                escape(&job),
                escape(&text)
            ))
        }
        Request::Cancel { job } => {
            let skipped = service.cancel(&job)?;
            Ok(format!(
                "{{\"ok\": true, \"job\": \"{}\", \"skipped\": {skipped}}}\n",
                escape(&job)
            ))
        }
        Request::Stream { job } => {
            // Progress events until the job finishes, then one final
            // status line with "ok". Each event is its own line.
            let mut last_open = usize::MAX;
            loop {
                let s = match service.wait(&job, Duration::from_millis(200)) {
                    Ok(s) => s,
                    // A still-running job is normal for stream: emit the
                    // current counters and keep waiting.
                    Err(ServiceError::WaitTimeout { .. }) => service.status(&job)?,
                    Err(e) => return Err(e),
                };
                if s.open != last_open {
                    last_open = s.open;
                    let event = format!(
                        "{{\"event\": \"progress\", \"done\": {}, \"cached\": {}, \"failed\": {}, \"total\": {}}}\n",
                        s.done, s.cached, s.failed, s.total
                    );
                    writer
                        .write_all(event.as_bytes())
                        .map_err(|e| ServiceError::Io(e.to_string()))?;
                }
                if s.finished() {
                    return Ok(status_line(&s));
                }
            }
        }
    }
}

fn status_line(s: &JobStatus) -> String {
    use unxpec_telemetry::json::escape;
    format!(
        "{{\"ok\": true, \"job\": \"{}\", \"tenant\": \"{}\", \"total\": {}, \"done\": {}, \"cached\": {}, \"failed\": {}, \"skipped\": {}, \"open\": {}, \"finished\": {}, \"cancelled\": {}}}\n",
        escape(&s.id),
        escape(&s.tenant),
        s.total,
        s.done,
        s.cached,
        s.failed,
        s.skipped,
        s.open,
        s.finished(),
        s.cancelled
    )
}
