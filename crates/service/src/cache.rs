//! The persistent content-addressed result cache.
//!
//! Every trial result is stored under its [`cell_digest`] — a stable,
//! versioned address covering exactly the inputs that determine the
//! trial's output (see `unxpec_harness::digest`). A repeated cell, no
//! matter which tenant submits it or when, is served from disk instead
//! of re-simulated, and the served bytes are identical to a fresh run:
//! rendered text verbatim, metric `f64`s through Rust's
//! shortest-round-trip formatting, and the stored output digest
//! re-verified on every read.
//!
//! Layout and durability:
//!
//! * **Sharded directories** — entry `key` lives at
//!   `<dir>/<key % 256 as hex>/<key as 016x>.json`, keeping any single
//!   directory small even at millions of entries.
//! * **Atomic writes** — entries are written to a `.tmp` sibling and
//!   renamed into place; a crash mid-write can never leave a torn
//!   entry under the final name.
//! * **Integrity checksum** — each entry carries an FNV-1a checksum
//!   over every recorded field *and* the trial's output digest; a
//!   bit-flipped or truncated entry fails validation on read, is
//!   deleted, counts into [`CacheStats::corrupt`], and falls back to
//!   re-simulation.
//! * **LRU size bound** — the cache tracks total bytes and evicts
//!   least-recently-used entries once `max_bytes` is exceeded (0 means
//!   unbounded). Recency is in-memory; after a restart it is seeded
//!   from file modification times (oldest first, key as tie-break), so
//!   eviction order survives a restart instead of decaying to
//!   arbitrary key order. An entry whose metadata cannot be read at
//!   open — including a dangling symlink where an entry should be —
//!   is treated as corrupt and deleted rather than silently indexed
//!   at size 0 (which would let the byte bound be exceeded).
//!
//! Diagnostics lines are *not* cached: they describe how a particular
//! execution ran (fault schedules, telemetry tails), not what the cell
//! computes, and they are excluded from the output digest for the same
//! reason.

use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};
use std::time::SystemTime;

use unxpec::experiments::seeding::fnv1a64;
use unxpec_harness::{output_digest, TrialOutput};
use unxpec_telemetry::json::{self, escape, Value};

use crate::error::ServiceError;

/// Where the cache lives and how big it may grow.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Root directory (created if absent).
    pub dir: PathBuf,
    /// Total size bound in bytes; 0 disables eviction.
    pub max_bytes: u64,
}

/// Counters the service mirrors into `service.cache.*`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Reads served from a valid entry.
    pub hits: u64,
    /// Reads that found no (valid) entry.
    pub misses: u64,
    /// Entries evicted by the LRU size bound.
    pub evictions: u64,
    /// Entries that failed checksum/digest validation and were dropped.
    pub corrupt: u64,
    /// Current total size of all entries, in bytes (a gauge).
    pub bytes: u64,
}

/// The on-disk cache plus its in-memory index.
#[derive(Debug)]
pub struct ResultCache {
    dir: PathBuf,
    max_bytes: u64,
    /// key → entry file size.
    sizes: HashMap<u64, u64>,
    /// Recency index: monotonic stamp → key, oldest stamp first.
    /// Paired with `stamp_of` so touch/forget/evict are logarithmic
    /// instead of scanning an insertion-order list.
    by_stamp: BTreeMap<u64, u64>,
    /// key → its current stamp in `by_stamp`.
    stamp_of: HashMap<u64, u64>,
    /// Next recency stamp to hand out.
    next_stamp: u64,
    stats: CacheStats,
}

/// Entry-format version; bump on any layout change so old files read
/// as corrupt instead of mis-parsing.
const ENTRY_VERSION: u64 = 1;

fn hex(v: u64) -> String {
    format!("{v:#x}")
}

fn parse_hex(v: &Value) -> Option<u64> {
    let s = v.as_str()?;
    u64::from_str_radix(s.strip_prefix("0x")?, 16).ok()
}

/// FNV-1a chain over every field of an entry, mixed with the output
/// digest. This is what detects a flipped bit or a truncated file.
fn entry_checksum(key: u64, digest: u64, output: &TrialOutput) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    mix(ENTRY_VERSION);
    mix(key);
    mix(digest);
    mix(u64::from(output.truncated));
    mix(output.metrics.len() as u64);
    for (name, value) in &output.metrics {
        mix(fnv1a64(name));
        mix(value.to_bits());
    }
    mix(fnv1a64(&output.rendered));
    h
}

fn entry_json(key: u64, output: &TrialOutput) -> String {
    let digest = output_digest(output);
    let mut out = format!(
        "{{\"v\": {ENTRY_VERSION}, \"key\": \"{}\", \"digest\": \"{}\", \"checksum\": \"{}\", ",
        hex(key),
        hex(digest),
        hex(entry_checksum(key, digest, output))
    );
    if output.truncated {
        out.push_str("\"truncated\": true, ");
    }
    out.push_str("\"metrics\": {");
    for (i, (name, value)) in output.metrics.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{}\": {}", escape(name), value));
    }
    out.push_str(&format!(
        "}}, \"rendered\": \"{}\"}}\n",
        escape(&output.rendered)
    ));
    out
}

/// Parses and fully validates one entry file's text for `key`.
fn parse_entry(key: u64, text: &str) -> Result<TrialOutput, String> {
    let doc = json::parse(text)?;
    if doc.get("v").and_then(Value::as_u64) != Some(ENTRY_VERSION) {
        return Err("entry version mismatch".to_string());
    }
    if doc.get("key").and_then(parse_hex) != Some(key) {
        return Err("entry key does not match its address".to_string());
    }
    let digest = doc
        .get("digest")
        .and_then(parse_hex)
        .ok_or("entry missing digest")?;
    let recorded = doc
        .get("checksum")
        .and_then(parse_hex)
        .ok_or("entry missing checksum")?;
    let rendered = doc
        .get("rendered")
        .and_then(Value::as_str)
        .ok_or("entry missing rendered")?
        .to_string();
    let truncated = matches!(doc.get("truncated"), Some(Value::Bool(true)));
    let mut metrics = Vec::new();
    match doc.get("metrics") {
        Some(Value::Obj(members)) => {
            for (name, value) in members {
                let v = value
                    .as_f64()
                    .ok_or_else(|| format!("metric {name:?} is not a number"))?;
                metrics.push((name.clone(), v));
            }
        }
        _ => return Err("entry missing metrics{}".to_string()),
    }
    let mut output = TrialOutput::new(rendered, vec![]).with_truncated(truncated);
    output.metrics = metrics;
    if entry_checksum(key, digest, &output) != recorded {
        return Err("entry checksum mismatch".to_string());
    }
    if output_digest(&output) != digest {
        return Err("entry output digest mismatch".to_string());
    }
    Ok(output)
}

impl ResultCache {
    /// Opens (or creates) the cache at `config.dir` and indexes every
    /// existing entry by filename. Contents are validated lazily, on
    /// read — a corrupt entry costs its own miss, never the open. An
    /// entry whose metadata cannot be read is deleted and counted into
    /// [`CacheStats::corrupt`] right here: indexing it at size 0 would
    /// let the LRU byte bound be silently exceeded.
    pub fn open(config: &CacheConfig) -> Result<Self, ServiceError> {
        std::fs::create_dir_all(&config.dir)
            .map_err(|e| ServiceError::Cache(format!("create {}: {e}", config.dir.display())))?;
        let mut sizes = HashMap::new();
        let mut corrupt = 0u64;
        // (mtime, key) per surviving entry — the restart recency seed.
        let mut aged: Vec<(SystemTime, u64)> = Vec::new();
        let shards = std::fs::read_dir(&config.dir)
            .map_err(|e| ServiceError::Cache(format!("scan {}: {e}", config.dir.display())))?;
        for shard in shards.flatten() {
            if !shard.path().is_dir() {
                continue;
            }
            let Ok(files) = std::fs::read_dir(shard.path()) else {
                continue;
            };
            for file in files.flatten() {
                let name = file.file_name();
                let Some(stem) = name.to_str().and_then(|n| n.strip_suffix(".json")) else {
                    continue; // leftover .tmp files and strangers are ignored
                };
                let Ok(key) = u64::from_str_radix(stem, 16) else {
                    continue;
                };
                // fs::metadata (not DirEntry::metadata) follows
                // symlinks, so a dangling link where an entry should
                // be fails here and is cleaned up like any other
                // corruption.
                let Ok(meta) = std::fs::metadata(file.path()) else {
                    let _ = std::fs::remove_file(file.path());
                    corrupt += 1;
                    continue;
                };
                let mtime = meta.modified().unwrap_or(SystemTime::UNIX_EPOCH);
                sizes.insert(key, meta.len());
                aged.push((mtime, key));
            }
        }
        // Restart recency: oldest mtime first (key as a deterministic
        // tie-break), refined further by reads as the cache warms up.
        aged.sort_unstable();
        let bytes = sizes.values().sum();
        let mut cache = ResultCache {
            dir: config.dir.clone(),
            max_bytes: config.max_bytes,
            sizes,
            by_stamp: BTreeMap::new(),
            stamp_of: HashMap::new(),
            next_stamp: 0,
            stats: CacheStats {
                bytes,
                corrupt,
                ..CacheStats::default()
            },
        };
        for (_, key) in aged {
            cache.touch(key);
        }
        Ok(cache)
    }

    fn path_for(&self, key: u64) -> PathBuf {
        self.dir
            .join(format!("{:02x}", key & 0xff))
            .join(format!("{key:016x}.json"))
    }

    fn touch(&mut self, key: u64) {
        if let Some(stamp) = self.stamp_of.remove(&key) {
            self.by_stamp.remove(&stamp);
        }
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        self.by_stamp.insert(stamp, key);
        self.stamp_of.insert(key, stamp);
    }

    fn forget(&mut self, key: u64) {
        if let Some(size) = self.sizes.remove(&key) {
            self.stats.bytes = self.stats.bytes.saturating_sub(size);
        }
        if let Some(stamp) = self.stamp_of.remove(&key) {
            self.by_stamp.remove(&stamp);
        }
    }

    /// Looks `key` up. A valid entry counts a hit and refreshes its
    /// recency; a missing entry counts a miss; a corrupt entry counts
    /// both a miss and [`CacheStats::corrupt`], and the damaged file is
    /// deleted so the recomputed result can take its place.
    pub fn get(&mut self, key: u64) -> Option<TrialOutput> {
        if !self.sizes.contains_key(&key) {
            self.stats.misses += 1;
            return None;
        }
        let path = self.path_for(key);
        let outcome = std::fs::read_to_string(&path)
            .map_err(|e| format!("read: {e}"))
            .and_then(|text| parse_entry(key, &text));
        match outcome {
            Ok(output) => {
                self.touch(key);
                self.stats.hits += 1;
                Some(output)
            }
            Err(_) => {
                let _ = std::fs::remove_file(&path);
                self.forget(key);
                self.stats.corrupt += 1;
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Stores `output` under `key` (atomic temp + rename), then
    /// enforces the size bound by evicting least-recently-used entries.
    /// A single entry larger than the whole bound is kept — evicting it
    /// would make the cell uncacheable forever.
    pub fn put(&mut self, key: u64, output: &TrialOutput) -> Result<(), ServiceError> {
        let text = entry_json(key, output);
        let path = self.path_for(key);
        let shard = path
            .parent()
            .ok_or_else(|| ServiceError::Cache("entry path has no shard dir".to_string()))?;
        std::fs::create_dir_all(shard)
            .map_err(|e| ServiceError::Cache(format!("create {}: {e}", shard.display())))?;
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, &text)
            .map_err(|e| ServiceError::Cache(format!("write {}: {e}", tmp.display())))?;
        std::fs::rename(&tmp, &path).map_err(|e| {
            ServiceError::Cache(format!(
                "rename {} -> {}: {e}",
                tmp.display(),
                path.display()
            ))
        })?;
        self.forget(key); // replacing an entry must not double-count bytes
        self.sizes.insert(key, text.len() as u64);
        self.stats.bytes += text.len() as u64;
        self.touch(key);
        while self.max_bytes > 0 && self.stats.bytes > self.max_bytes && self.sizes.len() > 1 {
            let Some((_, &oldest)) = self.by_stamp.first_key_value() else {
                break;
            };
            let _ = std::fs::remove_file(self.path_for(oldest));
            self.forget(oldest);
            self.stats.evictions += 1;
        }
        Ok(())
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of indexed entries.
    pub fn len(&self) -> usize {
        self.sizes.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.sizes.is_empty()
    }

    /// The cache's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;

    fn temp_cache(tag: &str, max_bytes: u64) -> (CacheConfig, ResultCache) {
        let dir = std::env::temp_dir().join(format!("unxpec-service-cache-{tag}"));
        std::fs::remove_dir_all(&dir).ok();
        let config = CacheConfig { dir, max_bytes };
        let cache = ResultCache::open(&config).expect("open cache");
        (config, cache)
    }

    fn output(tag: &str) -> TrialOutput {
        let mut o = TrialOutput::new(format!("rendered {tag}\nline two"), vec![]);
        o.metrics = vec![("diff".into(), 22.5), ("neg".into(), -0.125)];
        o
    }

    #[test]
    fn round_trips_exactly_and_counts_hits() {
        let (config, mut cache) = temp_cache("roundtrip", 0);
        assert!(cache.get(7).is_none());
        assert_eq!(cache.stats().misses, 1);
        let o = output("a");
        cache.put(7, &o).expect("put");
        let back = cache.get(7).expect("hit");
        assert_eq!(back.rendered, o.rendered);
        assert_eq!(back.metrics, o.metrics);
        assert_eq!(output_digest(&back), output_digest(&o));
        assert_eq!(cache.stats().hits, 1);
        // A new process over the same directory sees the entry.
        let mut reopened = ResultCache::open(&config).expect("reopen");
        assert_eq!(reopened.len(), 1);
        assert_eq!(
            reopened.get(7).expect("persistent hit").rendered,
            o.rendered
        );
        std::fs::remove_dir_all(&config.dir).ok();
    }

    #[test]
    fn corrupt_entries_fall_back_to_miss_and_are_deleted() {
        let (config, mut cache) = temp_cache("corrupt", 0);
        cache.put(9, &output("x")).expect("put");
        let path = cache.path_for(9);
        let text = std::fs::read_to_string(&path).expect("entry exists");
        std::fs::write(&path, text.replacen("22.5", "23.5", 1)).expect("tamper");
        assert!(cache.get(9).is_none(), "flipped metric must not serve");
        assert_eq!(cache.stats().corrupt, 1);
        assert_eq!(cache.stats().misses, 1);
        assert!(!path.exists(), "damaged entry is deleted");
        // The slot is reusable after the fallback recompute.
        cache.put(9, &output("x")).expect("re-put");
        assert!(cache.get(9).is_some());
        std::fs::remove_dir_all(&config.dir).ok();
    }

    #[test]
    fn lru_bound_evicts_oldest_first() {
        let (config, mut cache) = temp_cache("lru", 400);
        for key in 0..6u64 {
            cache.put(key, &output(&format!("k{key}"))).expect("put");
        }
        let stats = cache.stats();
        assert!(stats.evictions > 0, "tiny bound must evict");
        assert!(stats.bytes <= 400, "bound holds: {} bytes", stats.bytes);
        assert!(cache.get(5).is_some(), "newest entry survives");
        assert!(cache.get(0).is_none(), "oldest entry was evicted");
        std::fs::remove_dir_all(&config.dir).ok();
    }

    #[test]
    fn a_get_refreshes_recency() {
        let (config, mut cache) = temp_cache("recency", 0);
        cache.put(1, &output("one")).expect("put");
        cache.put(2, &output("two")).expect("put");
        assert!(cache.get(1).is_some(), "refresh key 1");
        // Shrink the bound by replacing entries until eviction: key 2 is
        // now the least recently used and must go first.
        cache.max_bytes = cache.stats().bytes; // exactly full
        cache.put(3, &output("six")).expect("put evicts"); // same entry size as "one"/"two"
        assert!(cache.get(2).is_none(), "LRU key 2 evicted");
        assert!(cache.get(1).is_some(), "refreshed key 1 survives");
        std::fs::remove_dir_all(&config.dir).ok();
    }

    /// Satellite regression: restart recency must follow file mtimes,
    /// not key order — after a reopen, eviction removes the entry that
    /// was written longest ago even when its key sorts last.
    #[test]
    fn restart_recency_follows_mtime_not_key_order() {
        let (config, mut cache) = temp_cache("mtime", 0);
        // Keys chosen so key order (1 < 2 < 9) disagrees with age
        // order: key 9 is made the *oldest* entry, key 1 the newest.
        for key in [9u64, 2, 1] {
            cache.put(key, &output(&format!("k{key}"))).expect("put");
        }
        let stamp = |secs: u64| SystemTime::UNIX_EPOCH + std::time::Duration::from_secs(secs);
        for (key, secs) in [(9u64, 100u64), (2, 200), (1, 300)] {
            let file = std::fs::OpenOptions::new()
                .write(true)
                .open(cache.path_for(key))
                .expect("open entry");
            file.set_modified(stamp(secs)).expect("set mtime");
        }
        let mut reopened = ResultCache::open(&config).expect("reopen");
        // Shrink to exactly-full and insert one strictly smaller entry:
        // the single eviction must take the mtime-oldest key 9, not
        // key 1.
        reopened.max_bytes = reopened.stats().bytes;
        let tiny = TrialOutput::new("x".into(), vec![]);
        reopened.put(5, &tiny).expect("put evicts");
        assert!(reopened.get(9).is_none(), "mtime-oldest key 9 evicted");
        assert!(reopened.get(1).is_some(), "newest key 1 survives");
        assert!(reopened.get(2).is_some(), "middle key 2 survives");
        std::fs::remove_dir_all(&config.dir).ok();
    }

    /// Satellite regression: an entry whose metadata cannot be read
    /// (here: a dangling symlink where the entry file should be) is
    /// deleted at open and counted corrupt, never indexed at size 0.
    #[cfg(unix)]
    #[test]
    fn unreadable_metadata_at_open_is_corrupt_and_deleted() {
        let (config, mut cache) = temp_cache("badmeta", 0);
        cache.put(1, &output("good")).expect("put");
        let bad = cache.path_for(0xaa);
        std::fs::create_dir_all(bad.parent().expect("shard")).expect("shard dir");
        std::os::unix::fs::symlink(config.dir.join("no-such-target"), &bad).expect("symlink");
        let mut reopened = ResultCache::open(&config).expect("reopen");
        assert_eq!(reopened.stats().corrupt, 1, "dangling entry counted");
        assert_eq!(reopened.len(), 1, "only the real entry is indexed");
        assert!(
            std::fs::symlink_metadata(&bad).is_err(),
            "dangling entry is deleted at open"
        );
        assert!(reopened.get(1).is_some(), "healthy entry still serves");
        assert!(reopened.get(0xaa).is_none());
        std::fs::remove_dir_all(&config.dir).ok();
    }

    /// The indexed recency structure keeps exact LRU order under many
    /// interleaved touches (the old linear scan's behaviour, kept).
    #[test]
    fn eviction_respects_interleaved_touches_at_scale() {
        let (config, mut cache) = temp_cache("stamps", 0);
        for key in 0..20u64 {
            cache.put(key, &output(&format!("k{key}"))).expect("put");
        }
        // Refresh the even keys; the odd ones become the LRU tail.
        for key in (0..20u64).step_by(2) {
            assert!(cache.get(key).is_some());
        }
        // Ten tiny puts against an exactly-full bound: each evicts
        // exactly the current LRU entry, which must walk the untouched
        // odd keys in insertion order before any refreshed even key.
        for (i, expected) in (1..20u64).step_by(2).enumerate() {
            cache.max_bytes = cache.stats().bytes;
            let tiny = TrialOutput::new("x".into(), vec![]);
            cache.put(1000 + i as u64, &tiny).expect("put evicts");
            assert!(cache.get(expected).is_none(), "odd key {expected} is LRU");
        }
        for key in (0..20u64).step_by(2) {
            assert!(cache.get(key).is_some(), "touched key {key} survives");
        }
        std::fs::remove_dir_all(&config.dir).ok();
    }

    #[test]
    fn oversized_single_entry_is_kept() {
        let (config, mut cache) = temp_cache("oversized", 10);
        cache.put(1, &output("big")).expect("put");
        assert_eq!(cache.len(), 1, "sole entry over the bound is kept");
        assert!(cache.get(1).is_some());
        std::fs::remove_dir_all(&config.dir).ok();
    }
}
