//! Property tests for cache structures.

#![allow(clippy::disallowed_methods, clippy::disallowed_macros)] // tests are exempt from the no-panic policy

use proptest::prelude::*;
use unxpec_cache::{
    Cache, CacheConfig, CacheHierarchy, CeaserMapper, HierarchyConfig, LineMeta, MshrFile,
    NomoPartition, ReplacementKind, SpecTag,
};
use unxpec_mem::LineAddr;

proptest! {
    #[test]
    fn ceaser_is_bijective(lines in proptest::collection::hash_set(any::<u64>(), 1..200), seed in any::<u64>()) {
        let m = CeaserMapper::new(seed, 2048);
        let mut outputs = std::collections::HashSet::new();
        for l in &lines {
            let p = m.permute(LineAddr::new(*l));
            prop_assert_eq!(m.unpermute(p), LineAddr::new(*l));
            prop_assert!(outputs.insert(p), "collision");
        }
    }

    #[test]
    fn resident_lines_are_always_findable(
        lines in proptest::collection::vec(0u64..512, 1..100)
    ) {
        let cfg = CacheConfig {
            sets: 16,
            ways: 4,
            hit_latency: 1,
            replacement: ReplacementKind::Random,
        };
        let mut cache = Cache::new("t", cfg, NomoPartition::disabled(4), 7);
        let mut maybe_resident = std::collections::HashSet::new();
        for l in &lines {
            let line = LineAddr::new(*l);
            if !cache.contains(line) {
                cache.insert(LineMeta::clean(line), 0);
            }
            maybe_resident.insert(*l);
        }
        // Every resident line must be found by probe in its own set, and
        // capacity is never exceeded.
        prop_assert!(cache.resident_count() <= 64);
        for l in maybe_resident {
            let line = LineAddr::new(l);
            if let Some((set, _)) = cache.probe(line) {
                prop_assert_eq!(set, cache.set_index(line));
            }
        }
    }

    #[test]
    fn invalidate_then_probe_misses(lines in proptest::collection::vec(0u64..256, 1..50)) {
        let cfg = CacheConfig {
            sets: 8,
            ways: 4,
            hit_latency: 1,
            replacement: ReplacementKind::Lru,
        };
        let mut cache = Cache::new("t", cfg, NomoPartition::disabled(4), 0);
        for l in &lines {
            let line = LineAddr::new(*l);
            if !cache.contains(line) {
                cache.insert(LineMeta::clean(line), 0);
            }
            cache.invalidate(line);
            prop_assert!(!cache.contains(line));
        }
    }

    #[test]
    fn mshr_occupancy_never_exceeds_capacity(
        ops in proptest::collection::vec((0u64..32, 1u64..300), 1..100)
    ) {
        let mut mshrs = MshrFile::new(4);
        let mut now = 0;
        for (line, dur) in ops {
            now += 3;
            let free_at = mshrs.next_free_cycle(now);
            let start = free_at.max(now);
            mshrs
                .allocate(LineAddr::new(line), start, start + dur, None)
                .expect("slot reserved");
            prop_assert!(mshrs.occupancy(start) <= 4);
        }
        prop_assert!(mshrs.peak_occupancy() <= 4);
    }

    #[test]
    fn hierarchy_access_is_monotone_in_time(
        lines in proptest::collection::vec(0u64..2048, 1..100)
    ) {
        let mut hier = CacheHierarchy::new(HierarchyConfig::table_i(), 1);
        let mut cycle = 0;
        for l in lines {
            let out = hier.access_data(LineAddr::new(l), cycle, None);
            prop_assert!(out.complete_cycle > cycle, "time must advance");
            prop_assert!(out.latency() >= 4, "at least L1 latency");
            prop_assert!(out.latency() <= 4 + 14 + 100 + 16 * 8 + 8, "bounded by queued memory path");
            cycle = out.complete_cycle;
        }
    }

    #[test]
    fn speculative_tags_are_cleared_by_commit(
        lines in proptest::collection::hash_set(0u64..1024, 1..32)
    ) {
        let mut hier = CacheHierarchy::new(HierarchyConfig::table_i(), 1);
        for (i, l) in lines.iter().enumerate() {
            hier.access_data(LineAddr::new(*l), (i as u64) * 200, Some(SpecTag(5)));
        }
        for l in &lines {
            if hier.l1_contains(LineAddr::new(*l)) {
                hier.commit_line(LineAddr::new(*l));
                prop_assert!(!hier.l1_is_speculative(LineAddr::new(*l)));
            }
        }
    }

    #[test]
    fn nomo_reserved_ways_stay_exclusive(
        fills in proptest::collection::vec(0u64..256, 1..120),
        thread in 0usize..2,
    ) {
        let cfg = CacheConfig {
            sets: 8,
            ways: 8,
            hit_latency: 1,
            replacement: ReplacementKind::Random,
        };
        let partition = NomoPartition::new(8, 2, 2);
        let mut cache = Cache::new("nomo", cfg, partition.clone(), 3);
        for l in fills {
            let line = LineAddr::new(l);
            if !cache.contains(line) {
                let out = cache.insert(LineMeta::clean(line), thread);
                prop_assert!(
                    partition.may_allocate(thread, out.way),
                    "thread {thread} allocated into way {}",
                    out.way
                );
            }
        }
        // The other thread's reserved ways must still be empty.
        let other = 1 - thread;
        for set in 0..8 {
            for (way, slot) in cache
                .set_lines(set)
                .enumerate()
                .take((other + 1) * 2)
                .skip(other * 2)
            {
                prop_assert!(slot.is_none(), "set {set} way {way} invaded");
            }
        }
    }
}
