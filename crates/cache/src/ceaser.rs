//! CEASER-style keyed index randomization for the L2.
//!
//! CleanupSpec cannot afford restoration below L1, so it protects the L2
//! with an encrypted-address mapping (CEASER, MICRO 2018): the set index
//! is derived from a keyed block cipher over the line address, and the key
//! can be re-drawn (remapped) periodically. We implement the permutation
//! as a small balanced Feistel network over the line-address bits — a real
//! bijection, so distinct lines never alias spuriously and the mapping is
//! invertible (a property the tests check).

use unxpec_mem::LineAddr;

const ROUNDS: usize = 4;

/// Keyed bijective mapper from line address to L2 set index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CeaserMapper {
    keys: [u64; ROUNDS],
    sets: usize,
    remaps: u64,
}

fn round_fn(half: u32, key: u64) -> u32 {
    // A cheap invertible-enough mixing function (we only need the Feistel
    // structure itself to be bijective, which it is for any round
    // function).
    let x = (half as u64).wrapping_add(key);
    let x = x.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    ((x >> 29) ^ x) as u32
}

impl CeaserMapper {
    /// Creates a mapper for a cache with `sets` sets from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two.
    pub fn new(seed: u64, sets: usize) -> Self {
        assert!(sets.is_power_of_two(), "sets must be a power of two");
        let mut mapper = CeaserMapper {
            keys: [0; ROUNDS],
            sets,
            remaps: 0,
        };
        mapper.rekey(seed);
        mapper
    }

    fn rekey(&mut self, seed: u64) {
        let mut s = seed | 1;
        for k in &mut self.keys {
            // SplitMix64 key schedule.
            s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            *k = z ^ (z >> 31);
        }
    }

    /// Applies the keyed permutation to a line address.
    pub fn permute(&self, line: LineAddr) -> u64 {
        let mut left = (line.raw() >> 32) as u32;
        let mut right = line.raw() as u32;
        for key in self.keys {
            let next_left = right;
            let next_right = left ^ round_fn(right, key);
            left = next_left;
            right = next_right;
        }
        ((left as u64) << 32) | right as u64
    }

    /// Inverts the permutation (used only by tests to prove bijectivity).
    pub fn unpermute(&self, permuted: u64) -> LineAddr {
        let mut left = (permuted >> 32) as u32;
        let mut right = permuted as u32;
        for key in self.keys.iter().rev() {
            let prev_right = left;
            let prev_left = right ^ round_fn(left, *key);
            left = prev_left;
            right = prev_right;
        }
        LineAddr::new(((left as u64) << 32) | right as u64)
    }

    /// The randomized set index for `line`.
    pub fn set_index(&self, line: LineAddr) -> usize {
        (self.permute(line) as usize) & (self.sets - 1)
    }

    /// Re-draws the key (CEASER's periodic remap). Resident lines must be
    /// flushed by the caller, as in the real design where remap migrates
    /// lines incrementally.
    pub fn remap(&mut self, seed: u64) {
        self.remaps += 1;
        self.rekey(seed ^ self.remaps.wrapping_mul(0x2545_f491_4f6c_dd1d));
    }

    /// How many times the mapping has been re-keyed.
    pub fn remap_count(&self) -> u64 {
        self.remaps
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn permutation_roundtrips() {
        let m = CeaserMapper::new(0xdead_beef, 2048);
        for i in 0..10_000u64 {
            let line = LineAddr::new(i * 977);
            assert_eq!(m.unpermute(m.permute(line)), line);
        }
    }

    #[test]
    fn permutation_is_injective_on_sample() {
        let m = CeaserMapper::new(7, 2048);
        let mut seen = HashSet::new();
        for i in 0..50_000u64 {
            assert!(seen.insert(m.permute(LineAddr::new(i))));
        }
    }

    #[test]
    fn indices_spread_across_sets() {
        let m = CeaserMapper::new(3, 2048);
        let mut used = HashSet::new();
        for i in 0..20_000u64 {
            used.insert(m.set_index(LineAddr::new(i)));
        }
        // With 20k samples into 2048 sets, essentially all sets get hit.
        assert!(used.len() > 1900, "only {} sets used", used.len());
    }

    #[test]
    fn remap_changes_mapping() {
        let mut m = CeaserMapper::new(11, 2048);
        let before: Vec<usize> = (0..64).map(|i| m.set_index(LineAddr::new(i))).collect();
        m.remap(11);
        let after: Vec<usize> = (0..64).map(|i| m.set_index(LineAddr::new(i))).collect();
        assert_ne!(before, after);
        assert_eq!(m.remap_count(), 1);
    }

    #[test]
    fn different_seeds_differ() {
        let a = CeaserMapper::new(1, 2048);
        let b = CeaserMapper::new(2, 2048);
        let differs =
            (0..256).any(|i| a.set_index(LineAddr::new(i)) != b.set_index(LineAddr::new(i)));
        assert!(differs);
    }
}
