//! NoMo (non-monopolizable cache) way partitioning.
//!
//! CleanupSpec way-partitions the L1 following NoMo so that an SMT
//! adversary cannot mount Prime+Probe against a sibling thread: each
//! hardware thread gets `reserved` ways of every set exclusively, and the
//! remainder stays shared. unXpec's threat model is same-thread, so the
//! partition does not stop it — the attack crate has tests demonstrating
//! exactly that.

/// Way partition of a set-associative cache between hardware threads.
///
/// The per-thread allowed-way lists are precomputed at construction:
/// [`NomoPartition::allowed_ways`] sits on the cache fill path (every
/// miss consults it), so it hands out a borrowed slice instead of
/// rebuilding a `Vec` per fill.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NomoPartition {
    ways: usize,
    reserved: usize,
    threads: usize,
    /// `allowed[t]` = the ways thread `t` may allocate into.
    allowed: Vec<Vec<usize>>,
}

impl NomoPartition {
    /// Creates a partition of a `ways`-associative cache where each of
    /// `threads` hardware threads owns `reserved` ways exclusively.
    ///
    /// # Panics
    ///
    /// Panics if the reservations do not fit, or no thread exists.
    pub fn new(ways: usize, reserved: usize, threads: usize) -> Self {
        assert!(threads >= 1, "need at least one thread");
        assert!(
            reserved * threads <= ways,
            "reserved ways ({reserved} x {threads}) exceed associativity ({ways})"
        );
        let allowed = (0..threads)
            .map(|t| {
                let mut w: Vec<usize> = (t * reserved..(t + 1) * reserved).collect();
                w.extend(reserved * threads..ways);
                w
            })
            .collect();
        NomoPartition {
            ways,
            reserved,
            threads,
            allowed,
        }
    }

    /// A disabled partition: every way is usable by every thread.
    pub fn disabled(ways: usize) -> Self {
        NomoPartition {
            ways,
            reserved: 0,
            threads: 1,
            allowed: vec![(0..ways).collect()],
        }
    }

    /// Whether partitioning is active.
    pub fn is_enabled(&self) -> bool {
        self.reserved > 0
    }

    /// The ways thread `thread` may allocate into: its own reserved ways
    /// plus the shared pool.
    ///
    /// # Panics
    ///
    /// Panics if `thread` is out of range while partitioning is active
    /// (a disabled partition accepts any thread).
    pub fn allowed_ways(&self, thread: usize) -> &[usize] {
        if self.reserved == 0 {
            return &self.allowed[0];
        }
        assert!(thread < self.threads, "thread {thread} out of range");
        &self.allowed[thread]
    }

    /// Whether `thread` may evict the line currently held in `way`.
    pub fn may_allocate(&self, thread: usize, way: usize) -> bool {
        self.allowed_ways(thread).contains(&way)
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;

    #[test]
    fn threads_get_disjoint_reserved_ways() {
        let p = NomoPartition::new(8, 2, 2);
        let t0 = p.allowed_ways(0);
        let t1 = p.allowed_ways(1);
        assert_eq!(t0, vec![0, 1, 4, 5, 6, 7]);
        assert_eq!(t1, vec![2, 3, 4, 5, 6, 7]);
        assert!(!t0.contains(&2));
        assert!(!t1.contains(&0));
    }

    #[test]
    fn disabled_partition_allows_everything() {
        let p = NomoPartition::disabled(8);
        assert!(!p.is_enabled());
        assert_eq!(p.allowed_ways(0).len(), 8);
    }

    #[test]
    fn single_thread_keeps_all_shared_plus_own() {
        let p = NomoPartition::new(8, 2, 1);
        assert_eq!(p.allowed_ways(0).len(), 8);
    }

    #[test]
    #[should_panic(expected = "exceed associativity")]
    fn oversubscription_panics() {
        NomoPartition::new(4, 3, 2);
    }

    #[test]
    fn may_allocate_respects_reservation() {
        let p = NomoPartition::new(8, 2, 2);
        assert!(p.may_allocate(0, 0));
        assert!(!p.may_allocate(0, 3));
        assert!(p.may_allocate(0, 7));
    }
}
