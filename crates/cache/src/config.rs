//! Geometry and latency configuration (Table I of the paper).

use crate::replacement::ReplacementKind;
use crate::Cycle;

/// Geometry and hit latency of a single cache level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of sets (power of two).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Cycles from issue to data for a hit at this level (cumulative cost
    /// is the sum along the lookup path).
    pub hit_latency: Cycle,
    /// Replacement policy.
    pub replacement: ReplacementKind,
}

impl CacheConfig {
    /// Total capacity in bytes (64-byte lines).
    pub fn capacity_bytes(&self) -> usize {
        self.sets * self.ways * 64
    }

    /// Validates that the geometry is usable.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or either dimension is zero.
    pub fn validate(&self) {
        assert!(self.sets.is_power_of_two(), "sets must be a power of two");
        assert!(self.ways > 0, "ways must be positive");
    }
}

/// Full hierarchy configuration.
///
/// # Examples
///
/// ```
/// let cfg = unxpec_cache::HierarchyConfig::table_i();
/// assert_eq!(cfg.l1d.capacity_bytes(), 32 * 1024);
/// assert_eq!(cfg.l2.capacity_bytes(), 2 * 1024 * 1024);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// Private L1 instruction cache (32 KB, 4-way, 128-set in Table I).
    pub l1i: CacheConfig,
    /// Private L1 data cache (32 KB, 8-way, 64-set in Table I).
    pub l1d: CacheConfig,
    /// Shared L2 (2 MB, 16-way, 2048-set in Table I).
    pub l2: CacheConfig,
    /// Memory service latency after an L2 miss. Table I specifies a 50 ns
    /// round trip, which is 100 cycles at the 2 GHz clock.
    pub mem_latency: Cycle,
    /// Memory-bank initiation interval: a new request can start this many
    /// cycles after the previous one (models bank pipelining, which is why
    /// CleanupSpec's restorations are "pipelined and serviced from L2").
    pub mem_init_interval: Cycle,
    /// Initiation interval of the L2 pipeline.
    pub l2_init_interval: Cycle,
    /// Number of L1 MSHR entries.
    pub mshr_entries: usize,
    /// Latency of a `clflush`-style flush that has to walk both levels.
    pub flush_latency: Cycle,
    /// Ways of the L1D reserved per thread by the NoMo partition. Zero
    /// disables partitioning.
    pub nomo_reserved_ways: usize,
    /// Seed for the CEASER L2 index-randomization key.
    pub ceaser_seed: u64,
    /// Whether L2 index randomization is enabled at all.
    pub ceaser_enabled: bool,
    /// Next-line prefetch on demand misses (off in the paper's
    /// configuration; available for ablations).
    pub next_line_prefetch: bool,
}

impl HierarchyConfig {
    /// The exact configuration of Table I in the unXpec paper.
    pub fn table_i() -> Self {
        HierarchyConfig {
            l1i: CacheConfig {
                sets: 128,
                ways: 4,
                hit_latency: 4,
                replacement: ReplacementKind::Random,
            },
            l1d: CacheConfig {
                sets: 64,
                ways: 8,
                hit_latency: 4,
                replacement: ReplacementKind::Random,
            },
            l2: CacheConfig {
                sets: 2048,
                ways: 16,
                hit_latency: 14,
                replacement: ReplacementKind::Random,
            },
            mem_latency: 100,
            mem_init_interval: 8,
            l2_init_interval: 2,
            mshr_entries: 16,
            flush_latency: 28,
            nomo_reserved_ways: 2,
            ceaser_seed: 0xcea5_e12d_eadb_eef0,
            ceaser_enabled: true,
            next_line_prefetch: false,
        }
    }

    /// Validates every level.
    ///
    /// # Panics
    ///
    /// Panics if any level has an invalid geometry.
    pub fn validate(&self) {
        self.l1i.validate();
        self.l1d.validate();
        self.l2.validate();
        assert!(self.mshr_entries > 0, "need at least one MSHR");
        assert!(
            self.nomo_reserved_ways < self.l1d.ways,
            "NoMo must leave at least one shared way"
        );
    }

    /// Round-trip latency of an access that misses everywhere, ignoring
    /// queueing: L1 lookup + L2 lookup + memory.
    pub fn cold_miss_latency(&self) -> Cycle {
        self.l1d.hit_latency + self.l2.hit_latency + self.mem_latency
    }
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        Self::table_i()
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;

    #[test]
    fn table_i_matches_paper_capacities() {
        let cfg = HierarchyConfig::table_i();
        assert_eq!(cfg.l1i.capacity_bytes(), 32 * 1024);
        assert_eq!(cfg.l1d.capacity_bytes(), 32 * 1024);
        assert_eq!(cfg.l2.capacity_bytes(), 2 * 1024 * 1024);
        assert_eq!(cfg.l1d.sets, 64);
        assert_eq!(cfg.l1d.ways, 8);
        assert_eq!(cfg.l2.sets, 2048);
        cfg.validate();
    }

    #[test]
    fn memory_latency_is_50ns_at_2ghz() {
        // 50 ns at 2 GHz = 100 cycles.
        assert_eq!(HierarchyConfig::table_i().mem_latency, 100);
    }

    #[test]
    fn cold_miss_latency_sums_levels() {
        let cfg = HierarchyConfig::table_i();
        assert_eq!(cfg.cold_miss_latency(), 4 + 14 + 100);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn invalid_sets_panic() {
        let mut cfg = HierarchyConfig::table_i();
        cfg.l1d.sets = 65;
        cfg.validate();
    }
}
