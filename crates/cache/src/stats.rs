//! Per-cache counters, in the spirit of gem5's stats dump.

/// Counters for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Lines displaced by fills.
    pub evictions: u64,
    /// Lines removed by explicit invalidation (flush or rollback).
    pub invalidations: u64,
    /// Lines re-installed by rollback restoration.
    pub restores: u64,
    /// Dirty lines written back.
    pub writebacks: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0, 1]`; zero when no accesses happened.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }

    /// Resets every counter.
    pub fn reset(&mut self) {
        *self = CacheStats::default();
    }
}

impl std::ops::Add for CacheStats {
    type Output = CacheStats;

    /// Counter-wise sum — the L1+L2 aggregation experiments report.
    fn add(self, rhs: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + rhs.hits,
            misses: self.misses + rhs.misses,
            evictions: self.evictions + rhs.evictions,
            invalidations: self.invalidations + rhs.invalidations,
            restores: self.restores + rhs.restores,
            writebacks: self.writebacks + rhs.writebacks,
        }
    }
}

impl std::ops::AddAssign for CacheStats {
    fn add_assign(&mut self, rhs: CacheStats) {
        *self = *self + rhs;
    }
}

impl std::iter::Sum for CacheStats {
    fn sum<I: Iterator<Item = CacheStats>>(iter: I) -> CacheStats {
        iter.fold(CacheStats::default(), |acc, s| acc + s)
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;

    #[test]
    fn ratios() {
        let s = CacheStats {
            hits: 3,
            misses: 1,
            ..CacheStats::default()
        };
        assert_eq!(s.accesses(), 4);
        assert!((s.miss_ratio() - 0.25).abs() < 1e-12);
        assert_eq!(CacheStats::default().miss_ratio(), 0.0);
    }

    #[test]
    fn add_merges_counterwise() {
        let a = CacheStats {
            hits: 3,
            misses: 1,
            evictions: 2,
            invalidations: 1,
            restores: 0,
            writebacks: 1,
        };
        let b = CacheStats {
            hits: 10,
            misses: 4,
            evictions: 0,
            invalidations: 2,
            restores: 3,
            writebacks: 0,
        };
        let sum = a + b;
        assert_eq!(sum.hits, 13);
        assert_eq!(sum.misses, 5);
        assert_eq!(sum.evictions, 2);
        assert_eq!(sum.invalidations, 3);
        assert_eq!(sum.restores, 3);
        assert_eq!(sum.writebacks, 1);
        assert_eq!(sum.accesses(), a.accesses() + b.accesses());
    }

    #[test]
    fn add_assign_matches_add() {
        let a = CacheStats {
            hits: 7,
            misses: 2,
            ..CacheStats::default()
        };
        let b = CacheStats {
            hits: 1,
            writebacks: 5,
            ..CacheStats::default()
        };
        let mut acc = a;
        acc += b;
        assert_eq!(acc, a + b);
    }

    #[test]
    fn default_is_additive_identity_and_sum_works() {
        let a = CacheStats {
            hits: 5,
            misses: 5,
            restores: 1,
            ..CacheStats::default()
        };
        assert_eq!(a + CacheStats::default(), a);
        let total: CacheStats = [a, a, CacheStats::default()].into_iter().sum();
        assert_eq!(total.hits, 10);
        assert_eq!(total.restores, 2);
    }

    #[test]
    fn reset_zeroes() {
        let mut s = CacheStats {
            hits: 10,
            restores: 2,
            ..CacheStats::default()
        };
        s.reset();
        assert_eq!(s, CacheStats::default());
    }
}
