//! Per-cache counters, in the spirit of gem5's stats dump.

/// Counters for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Lines displaced by fills.
    pub evictions: u64,
    /// Lines removed by explicit invalidation (flush or rollback).
    pub invalidations: u64,
    /// Lines re-installed by rollback restoration.
    pub restores: u64,
    /// Dirty lines written back.
    pub writebacks: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0, 1]`; zero when no accesses happened.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }

    /// Resets every counter.
    pub fn reset(&mut self) {
        *self = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios() {
        let s = CacheStats {
            hits: 3,
            misses: 1,
            ..CacheStats::default()
        };
        assert_eq!(s.accesses(), 4);
        assert!((s.miss_ratio() - 0.25).abs() < 1e-12);
        assert_eq!(CacheStats::default().miss_ratio(), 0.0);
    }

    #[test]
    fn reset_zeroes() {
        let mut s = CacheStats {
            hits: 10,
            restores: 2,
            ..CacheStats::default()
        };
        s.reset();
        assert_eq!(s, CacheStats::default());
    }
}
