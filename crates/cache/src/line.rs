//! Cache line metadata: coherence state and speculative tagging.

use std::fmt;

use unxpec_mem::LineAddr;

/// Identifier of a speculation epoch.
///
/// Every unresolved branch opens a speculation epoch; loads issued under
/// it tag the lines they install so CleanupSpec can find and invalidate
/// exactly those lines if the branch turns out mis-predicted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpecTag(pub u64);

impl fmt::Display for SpecTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "spec#{}", self.0)
    }
}

/// MESI-style coherence state, reduced to what a single-core model needs.
///
/// CleanupSpec additionally *delays* M/E→S downgrades for speculatively
/// touched lines; the defense layer consults this state to do so.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CoherenceState {
    /// Not present.
    #[default]
    Invalid,
    /// Present, clean, possibly shared.
    Shared,
    /// Present, clean, exclusive to this core.
    Exclusive,
    /// Present, dirty.
    Modified,
}

impl CoherenceState {
    /// Whether the line holds valid data.
    pub fn is_valid(self) -> bool {
        self != CoherenceState::Invalid
    }

    /// Whether eviction requires a writeback.
    pub fn is_dirty(self) -> bool {
        self == CoherenceState::Modified
    }
}

/// Metadata of one resident cache line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineMeta {
    /// Which line is resident in this way.
    pub line: LineAddr,
    /// Coherence state.
    pub state: CoherenceState,
    /// Speculation epoch that installed the line, if the install has not
    /// been declared safe yet.
    pub spec: Option<SpecTag>,
}

impl LineMeta {
    /// A clean, non-speculative resident line.
    pub fn clean(line: LineAddr) -> Self {
        LineMeta {
            line,
            state: CoherenceState::Exclusive,
            spec: None,
        }
    }

    /// A clean line installed under speculation epoch `tag`.
    pub fn speculative(line: LineAddr, tag: SpecTag) -> Self {
        LineMeta {
            line,
            state: CoherenceState::Exclusive,
            spec: Some(tag),
        }
    }

    /// Marks the install as architecturally safe (speculation resolved
    /// correct).
    pub fn commit(&mut self) {
        self.spec = None;
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;

    #[test]
    fn coherence_predicates() {
        assert!(!CoherenceState::Invalid.is_valid());
        assert!(CoherenceState::Shared.is_valid());
        assert!(CoherenceState::Modified.is_dirty());
        assert!(!CoherenceState::Exclusive.is_dirty());
    }

    #[test]
    fn commit_clears_spec_tag() {
        let mut meta = LineMeta::speculative(LineAddr::new(3), SpecTag(7));
        assert_eq!(meta.spec, Some(SpecTag(7)));
        meta.commit();
        assert_eq!(meta.spec, None);
        assert_eq!(meta, LineMeta::clean(LineAddr::new(3)));
    }
}
