//! Replacement policies.
//!
//! CleanupSpec mandates **random replacement** in the protected L1 so that
//! replacement metadata itself cannot leak (Reload+Refresh-style attacks);
//! LRU is provided for ablation benches that quantify what the random
//! policy costs and leaks.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Which replacement policy a cache level uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplacementKind {
    /// Uniformly random victim among the allowed ways (CleanupSpec).
    #[default]
    Random,
    /// Least-recently-used victim.
    Lru,
    /// Tree pseudo-LRU (the policy most real L1s implement; its
    /// metadata is the replacement-state side channel CleanupSpec's
    /// random policy exists to close).
    TreePlru,
}

/// A replacement policy instance bound to one cache's geometry.
///
/// Implementations are sealed to this crate; construct them through
/// [`ReplacementKind`] via [`new_policy`].
pub trait ReplacementPolicy: std::fmt::Debug + Send {
    /// Records a hit or fill touching `(set, way)`.
    fn on_access(&mut self, set: usize, way: usize);

    /// Chooses a victim way among `candidates` in `set`.
    ///
    /// `candidates` is never empty; invalid ways are pre-filtered by the
    /// cache, which always prefers an invalid way over eviction.
    fn choose_victim(&mut self, set: usize, candidates: &[usize]) -> usize;
}

/// Constructs the policy instance for `kind`.
pub fn new_policy(
    kind: ReplacementKind,
    sets: usize,
    ways: usize,
    seed: u64,
) -> Box<dyn ReplacementPolicy> {
    match kind {
        ReplacementKind::Random => Box::new(RandomPolicy::new(seed)),
        ReplacementKind::Lru => Box::new(LruPolicy::new(sets, ways)),
        ReplacementKind::TreePlru => Box::new(TreePlruPolicy::new(sets, ways)),
    }
}

/// Closed-set policy dispatch for the cache's own hot path.
///
/// `Cache::access` touches replacement state on every hit; routing that
/// through `Box<dyn ReplacementPolicy>` costs an indirect call per
/// access that the optimizer cannot see through. The enum devirtualizes
/// it: the match inlines, and the default [`RandomPolicy`]'s empty
/// `on_access` disappears entirely. The trait stays public for
/// standalone policy experiments; the simulator's caches use this.
#[derive(Debug)]
pub(crate) enum PolicyImpl {
    Random(RandomPolicy),
    Lru(LruPolicy),
    TreePlru(TreePlruPolicy),
}

impl PolicyImpl {
    pub(crate) fn new(kind: ReplacementKind, sets: usize, ways: usize, seed: u64) -> Self {
        match kind {
            ReplacementKind::Random => PolicyImpl::Random(RandomPolicy::new(seed)),
            ReplacementKind::Lru => PolicyImpl::Lru(LruPolicy::new(sets, ways)),
            ReplacementKind::TreePlru => PolicyImpl::TreePlru(TreePlruPolicy::new(sets, ways)),
        }
    }

    #[inline]
    pub(crate) fn on_access(&mut self, set: usize, way: usize) {
        match self {
            PolicyImpl::Random(_) => {}
            PolicyImpl::Lru(p) => p.on_access(set, way),
            PolicyImpl::TreePlru(p) => p.on_access(set, way),
        }
    }

    #[inline]
    pub(crate) fn choose_victim(&mut self, set: usize, candidates: &[usize]) -> usize {
        match self {
            PolicyImpl::Random(p) => p.choose_victim(set, candidates),
            PolicyImpl::Lru(p) => p.choose_victim(set, candidates),
            PolicyImpl::TreePlru(p) => p.choose_victim(set, candidates),
        }
    }
}

/// Uniformly random replacement, as CleanupSpec requires for the L1.
#[derive(Debug)]
pub struct RandomPolicy {
    rng: SmallRng,
}

impl RandomPolicy {
    /// Creates a policy with a deterministic seed (experiments must be
    /// reproducible).
    pub fn new(seed: u64) -> Self {
        RandomPolicy {
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl ReplacementPolicy for RandomPolicy {
    fn on_access(&mut self, _set: usize, _way: usize) {}

    fn choose_victim(&mut self, _set: usize, candidates: &[usize]) -> usize {
        candidates[self.rng.gen_range(0..candidates.len())]
    }
}

/// Least-recently-used replacement (ablation only).
#[derive(Debug)]
pub struct LruPolicy {
    ways: usize,
    stamp: u64,
    last_use: Vec<u64>,
}

impl LruPolicy {
    /// Creates an LRU policy for a `sets` × `ways` cache.
    pub fn new(sets: usize, ways: usize) -> Self {
        LruPolicy {
            ways,
            stamp: 0,
            last_use: vec![0; sets * ways],
        }
    }
}

impl ReplacementPolicy for LruPolicy {
    fn on_access(&mut self, set: usize, way: usize) {
        self.stamp += 1;
        self.last_use[set * self.ways + way] = self.stamp;
    }

    fn choose_victim(&mut self, set: usize, candidates: &[usize]) -> usize {
        candidates
            .iter()
            .copied()
            .min_by_key(|&w| self.last_use[set * self.ways + w])
            .unwrap_or(0)
    }
}

/// Tree pseudo-LRU: a binary tree of direction bits per set. Each
/// access flips the bits along its way's path to point *away* from it;
/// the victim is found by following the bits.
#[derive(Debug)]
pub struct TreePlruPolicy {
    ways: usize,
    /// `ways - 1` tree bits per set, heap-indexed (node 0 is the root).
    bits: Vec<bool>,
}

impl TreePlruPolicy {
    /// Creates a policy for a `sets` x `ways` cache.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is not a power of two.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(ways.is_power_of_two(), "tree PLRU needs power-of-two ways");
        TreePlruPolicy {
            ways,
            bits: vec![false; sets * (ways - 1).max(1)],
        }
    }

    fn set_bits(&mut self, set: usize) -> &mut [bool] {
        let n = (self.ways - 1).max(1);
        &mut self.bits[set * n..(set + 1) * n]
    }
}

impl ReplacementPolicy for TreePlruPolicy {
    fn on_access(&mut self, set: usize, way: usize) {
        if self.ways == 1 {
            return;
        }
        let ways = self.ways;
        let bits = self.set_bits(set);
        // Walk from the root; at each level point the bit away from the
        // accessed way's half.
        let mut node = 0;
        let mut lo = 0;
        let mut hi = ways;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            let goes_right = way >= mid;
            bits[node] = !goes_right; // bit true = victim search goes right
            if goes_right {
                node = 2 * node + 2;
                lo = mid;
            } else {
                node = 2 * node + 1;
                hi = mid;
            }
        }
    }

    fn choose_victim(&mut self, set: usize, candidates: &[usize]) -> usize {
        if self.ways == 1 {
            return candidates[0];
        }
        let ways = self.ways;
        let bits = self.set_bits(set);
        let mut node = 0;
        let mut lo = 0;
        let mut hi = ways;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if bits[node] {
                node = 2 * node + 2;
                lo = mid;
            } else {
                node = 2 * node + 1;
                hi = mid;
            }
        }
        // NoMo may exclude the tree's pick; fall back to the first
        // allowed candidate (real NoMo hardware masks similarly).
        if candidates.contains(&lo) {
            lo
        } else {
            candidates[0]
        }
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recent() {
        let mut lru = LruPolicy::new(1, 4);
        for way in 0..4 {
            lru.on_access(0, way);
        }
        lru.on_access(0, 0); // refresh way 0
        assert_eq!(lru.choose_victim(0, &[0, 1, 2, 3]), 1);
    }

    #[test]
    fn lru_respects_candidate_mask() {
        let mut lru = LruPolicy::new(1, 4);
        for way in 0..4 {
            lru.on_access(0, way);
        }
        // Way 0 is oldest but not a candidate (e.g. NoMo-reserved).
        assert_eq!(lru.choose_victim(0, &[2, 3]), 2);
    }

    #[test]
    fn tree_plru_never_picks_the_most_recent_way() {
        let mut plru = TreePlruPolicy::new(1, 8);
        let all: Vec<usize> = (0..8).collect();
        for round in 0..64 {
            let touched = (round * 5) % 8;
            plru.on_access(0, touched);
            let victim = plru.choose_victim(0, &all);
            assert_ne!(victim, touched, "PLRU must not evict the MRU way");
        }
    }

    #[test]
    fn tree_plru_cycles_through_all_ways_under_round_robin() {
        let mut plru = TreePlruPolicy::new(1, 4);
        let all: Vec<usize> = (0..4).collect();
        let mut seen = [false; 4];
        for _ in 0..16 {
            let v = plru.choose_victim(0, &all);
            seen[v] = true;
            plru.on_access(0, v); // fill the victim, like a real miss
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn tree_plru_sets_are_independent() {
        let mut plru = TreePlruPolicy::new(2, 4);
        let all: Vec<usize> = (0..4).collect();
        plru.on_access(0, 3);
        // Set 1's tree is untouched: its victim is the default path.
        let v1 = plru.choose_victim(1, &all);
        assert_eq!(v1, 0);
    }

    #[test]
    fn random_stays_in_candidates() {
        let mut rnd = RandomPolicy::new(42);
        for _ in 0..100 {
            let v = rnd.choose_victim(0, &[3, 5, 6]);
            assert!([3, 5, 6].contains(&v));
        }
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let picks = |seed| {
            let mut p = RandomPolicy::new(seed);
            (0..16)
                .map(|_| p.choose_victim(0, &[0, 1, 2, 3, 4, 5, 6, 7]))
                .collect::<Vec<_>>()
        };
        assert_eq!(picks(7), picks(7));
        assert_ne!(picks(7), picks(8));
    }

    #[test]
    fn random_covers_all_ways_eventually() {
        let mut rnd = RandomPolicy::new(1);
        let mut seen = [false; 8];
        for _ in 0..512 {
            seen[rnd.choose_victim(0, &[0, 1, 2, 3, 4, 5, 6, 7])] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all ways should be chosen sometimes"
        );
    }
}
