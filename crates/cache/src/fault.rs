//! Deterministic fault injection for the cache hierarchy.
//!
//! The unXpec channel lives in CleanupSpec's rollback corner cases, and
//! related attacks (Speculative Interference, SpectreRewind) show that
//! undo defenses break exactly under the contention and
//! resource-exhaustion conditions that ordinary workloads rarely hit.
//! A [`FaultInjector`] *manufactures* those conditions on demand:
//! delayed, reordered, or wedged fill responses; MSHR exhaustion;
//! spurious evictions of architectural lines; replacement-state
//! perturbation; and squash-during-rollback interrupts.
//!
//! Every decision is drawn from per-site [`FaultStream`]s forked from
//! one seed, so a fault schedule is a pure function of `(plan, seed)`
//! and never of execution order: a parallel sweep under injection
//! replays byte-identically, and a diagnostics bundle reproduces any
//! trial from the seed alone. A plan with every rate at zero draws
//! nothing and perturbs nothing — the disabled injector is
//! byte-identical to no injector at all.

use unxpec_mem::FaultStream;

use crate::Cycle;

/// The kinds of fault the injector can introduce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A fill response is delayed by a bounded extra latency.
    DelayFill,
    /// A fill response is delivered out of order: it completes one full
    /// memory-service window late, behind its successor.
    ReorderFill,
    /// A fill response wedges — it completes so far in the future that
    /// the core can never retire past the load without tripping the
    /// forward-progress watchdog.
    WedgeFill,
    /// The MSHR file reports artificial backpressure, as if every entry
    /// were occupied.
    MshrExhaust,
    /// A resident, non-speculative L1 line is evicted out from under
    /// the program.
    SpuriousEvict,
    /// Replacement metadata is perturbed (a phantom touch of a random
    /// way), shifting future victim choices.
    ReplacePerturb,
    /// A second squash arrives mid-rollback; the cleanup walk restarts
    /// and is charged extra cycles.
    SquashDuringRollback,
}

impl FaultKind {
    /// Every kind, in stable order (telemetry code order).
    pub const ALL: [FaultKind; 7] = [
        FaultKind::DelayFill,
        FaultKind::ReorderFill,
        FaultKind::WedgeFill,
        FaultKind::MshrExhaust,
        FaultKind::SpuriousEvict,
        FaultKind::ReplacePerturb,
        FaultKind::SquashDuringRollback,
    ];

    /// Stable numeric code (used in `Event::FaultInjected`).
    pub fn code(self) -> u64 {
        match self {
            FaultKind::DelayFill => 1,
            FaultKind::ReorderFill => 2,
            FaultKind::WedgeFill => 3,
            FaultKind::MshrExhaust => 4,
            FaultKind::SpuriousEvict => 5,
            FaultKind::ReplacePerturb => 6,
            FaultKind::SquashDuringRollback => 7,
        }
    }

    /// Stable snake_case name (used in fault schedules and docs).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::DelayFill => "delay_fill",
            FaultKind::ReorderFill => "reorder_fill",
            FaultKind::WedgeFill => "wedge_fill",
            FaultKind::MshrExhaust => "mshr_exhaust",
            FaultKind::SpuriousEvict => "spurious_evict",
            FaultKind::ReplacePerturb => "replace_perturb",
            FaultKind::SquashDuringRollback => "squash_during_rollback",
        }
    }

    /// Parses a [`FaultKind::name`] back into the kind.
    pub fn from_name(name: &str) -> Option<FaultKind> {
        FaultKind::ALL.into_iter().find(|k| k.name() == name)
    }

    fn index(self) -> usize {
        (self.code() - 1) as usize
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Injection rates (per mille per opportunity) and magnitudes.
///
/// The default plan has every rate at zero: an injector built from it
/// draws no random values and perturbs nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Per-mille rate of delayed fill responses.
    pub delay_fill: u32,
    /// Extra latency range (inclusive) for a delayed fill.
    pub delay_fill_cycles: (Cycle, Cycle),
    /// Per-mille rate of reordered fill responses.
    pub reorder_fill: u32,
    /// Per-mille rate of wedged fill responses.
    pub wedge_fill: u32,
    /// Completion offset of a wedged fill (far beyond any watchdog
    /// budget by default).
    pub wedge_fill_cycles: Cycle,
    /// Per-mille rate of artificial MSHR backpressure.
    pub mshr_exhaust: u32,
    /// Stall charged when MSHR exhaustion fires.
    pub mshr_exhaust_cycles: Cycle,
    /// Per-mille rate of spurious L1 evictions (per completed fill).
    pub spurious_evict: u32,
    /// Per-mille rate of replacement-metadata perturbation (per data
    /// access).
    pub replace_perturb: u32,
    /// Per-mille rate of a squash arriving mid-rollback.
    pub squash_during_rollback: u32,
    /// Extra cycles charged when a rollback is interrupted and redone.
    pub squash_during_rollback_cycles: Cycle,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            delay_fill: 0,
            delay_fill_cycles: (20, 200),
            reorder_fill: 0,
            wedge_fill: 0,
            wedge_fill_cycles: 1 << 30,
            mshr_exhaust: 0,
            mshr_exhaust_cycles: 64,
            spurious_evict: 0,
            replace_perturb: 0,
            squash_during_rollback: 0,
            squash_during_rollback_cycles: 16,
        }
    }
}

impl FaultPlan {
    /// The all-zero plan (injects nothing).
    pub fn disabled() -> Self {
        FaultPlan::default()
    }

    /// A plan firing only `kind`, at `per_mille` per opportunity.
    pub fn only(kind: FaultKind, per_mille: u32) -> Self {
        let mut plan = FaultPlan::default();
        match kind {
            FaultKind::DelayFill => plan.delay_fill = per_mille,
            FaultKind::ReorderFill => plan.reorder_fill = per_mille,
            FaultKind::WedgeFill => plan.wedge_fill = per_mille,
            FaultKind::MshrExhaust => plan.mshr_exhaust = per_mille,
            FaultKind::SpuriousEvict => plan.spurious_evict = per_mille,
            FaultKind::ReplacePerturb => plan.replace_perturb = per_mille,
            FaultKind::SquashDuringRollback => plan.squash_during_rollback = per_mille,
        }
        plan
    }

    /// A plan firing every kind except wedges at `per_mille` (wedges
    /// end runs by design, so a mixed-chaos plan keeps them out).
    pub fn uniform(per_mille: u32) -> Self {
        FaultPlan {
            delay_fill: per_mille,
            reorder_fill: per_mille,
            mshr_exhaust: per_mille,
            spurious_evict: per_mille,
            replace_perturb: per_mille,
            squash_during_rollback: per_mille,
            ..FaultPlan::default()
        }
    }

    /// The rate configured for `kind`.
    pub fn rate(&self, kind: FaultKind) -> u32 {
        match kind {
            FaultKind::DelayFill => self.delay_fill,
            FaultKind::ReorderFill => self.reorder_fill,
            FaultKind::WedgeFill => self.wedge_fill,
            FaultKind::MshrExhaust => self.mshr_exhaust,
            FaultKind::SpuriousEvict => self.spurious_evict,
            FaultKind::ReplacePerturb => self.replace_perturb,
            FaultKind::SquashDuringRollback => self.squash_during_rollback,
        }
    }

    /// Whether any kind can ever fire.
    pub fn enabled(&self) -> bool {
        FaultKind::ALL.into_iter().any(|k| self.rate(k) > 0)
    }
}

/// One fault that actually fired (the injector's schedule log).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRecord {
    /// What fired.
    pub kind: FaultKind,
    /// Simulated cycle of the injection site.
    pub cycle: Cycle,
    /// Kind-specific magnitude: extra cycles for timing faults, a
    /// packed `(set << 16) | way` for placement faults.
    pub detail: u64,
}

/// The deterministic fault injector attached to a [`CacheHierarchy`].
///
/// Each injection site draws from its own forked [`FaultStream`], so
/// decisions at one site never shift the alignment of another's —
/// enabling one fault kind leaves every other kind's schedule intact.
///
/// [`CacheHierarchy`]: crate::CacheHierarchy
///
/// # Examples
///
/// ```
/// use unxpec_cache::{FaultInjector, FaultKind, FaultPlan};
///
/// let mut inj = FaultInjector::new(FaultPlan::only(FaultKind::DelayFill, 1000), 7);
/// let (kind, extra) = inj.fill_fault(100, 80).expect("rate 1000 always fires");
/// assert_eq!(kind, FaultKind::DelayFill);
/// assert!(extra > 0);
/// assert_eq!(inj.log().len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    seed: u64,
    fill: FaultStream,
    mshr: FaultStream,
    evict: FaultStream,
    replace: FaultStream,
    rollback: FaultStream,
    log: Vec<FaultRecord>,
    counts: [u64; 7],
}

/// Cap on the retained schedule log; diagnostics only ever need a
/// bounded tail, and a chaos run can fire millions of faults.
const LOG_CAPACITY: usize = 4096;

impl FaultInjector {
    /// An injector executing `plan` under `seed`.
    pub fn new(plan: FaultPlan, seed: u64) -> Self {
        let root = FaultStream::new(seed);
        FaultInjector {
            plan,
            seed,
            fill: root.fork("fill"),
            mshr: root.fork("mshr"),
            evict: root.fork("evict"),
            replace: root.fork("replace"),
            rollback: root.fork("rollback"),
            log: Vec::new(),
            counts: [0; 7],
        }
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The seed the streams were forked from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether any fault can ever fire.
    pub fn enabled(&self) -> bool {
        self.plan.enabled()
    }

    fn record(&mut self, kind: FaultKind, cycle: Cycle, detail: u64) {
        self.counts[kind.index()] += 1;
        if self.log.len() < LOG_CAPACITY {
            self.log.push(FaultRecord {
                kind,
                cycle,
                detail,
            });
        }
    }

    /// Fill-response fault for a miss serviced from memory at `cycle`
    /// with base service latency `base_service`. Returns the extra
    /// completion latency, if a fault fired. Wedges take precedence
    /// over reorders over delays; at most one fires per fill.
    pub fn fill_fault(&mut self, cycle: Cycle, base_service: Cycle) -> Option<(FaultKind, Cycle)> {
        if self.plan.wedge_fill > 0 && self.fill.fires(self.plan.wedge_fill) {
            let extra = self.plan.wedge_fill_cycles;
            self.record(FaultKind::WedgeFill, cycle, extra);
            return Some((FaultKind::WedgeFill, extra));
        }
        if self.plan.reorder_fill > 0 && self.fill.fires(self.plan.reorder_fill) {
            // Delivered behind its successor: one extra full service
            // window, so the next miss's response overtakes this one.
            let extra = base_service.max(1);
            self.record(FaultKind::ReorderFill, cycle, extra);
            return Some((FaultKind::ReorderFill, extra));
        }
        if self.plan.delay_fill > 0 && self.fill.fires(self.plan.delay_fill) {
            let (lo, hi) = self.plan.delay_fill_cycles;
            let extra = self.fill.range(lo.max(1), hi.max(1));
            self.record(FaultKind::DelayFill, cycle, extra);
            return Some((FaultKind::DelayFill, extra));
        }
        None
    }

    /// Artificial MSHR backpressure at `cycle`: the stall to charge on
    /// top of the real next-free cycle, if the fault fired.
    pub fn mshr_pressure(&mut self, cycle: Cycle) -> Option<Cycle> {
        if self.plan.mshr_exhaust > 0 && self.mshr.fires(self.plan.mshr_exhaust) {
            let extra = self.plan.mshr_exhaust_cycles;
            self.record(FaultKind::MshrExhaust, cycle, extra);
            return Some(extra);
        }
        None
    }

    /// Spurious-eviction target after a fill at `cycle`: a `(set, way)`
    /// pick in an L1 of the given geometry, if the fault fired. The
    /// hierarchy evicts the slot only if it holds a non-speculative
    /// line (architectural state may be perturbed; in-window transient
    /// state belongs to the rollback oracle).
    pub fn spurious_evict(
        &mut self,
        cycle: Cycle,
        sets: usize,
        ways: usize,
    ) -> Option<(usize, usize)> {
        if self.plan.spurious_evict > 0 && self.evict.fires(self.plan.spurious_evict) {
            let set = self.evict.pick(sets);
            let way = self.evict.pick(ways);
            self.record(
                FaultKind::SpuriousEvict,
                cycle,
                ((set as u64) << 16) | way as u64,
            );
            return Some((set, way));
        }
        None
    }

    /// Replacement-perturbation target for a data access at `cycle`: a
    /// `(set, way)` to phantom-touch, if the fault fired.
    pub fn replace_perturb(
        &mut self,
        cycle: Cycle,
        sets: usize,
        ways: usize,
    ) -> Option<(usize, usize)> {
        if self.plan.replace_perturb > 0 && self.replace.fires(self.plan.replace_perturb) {
            let set = self.replace.pick(sets);
            let way = self.replace.pick(ways);
            self.record(
                FaultKind::ReplacePerturb,
                cycle,
                ((set as u64) << 16) | way as u64,
            );
            return Some((set, way));
        }
        None
    }

    /// Whether a squash interrupts the rollback in progress at `cycle`;
    /// returns the extra cleanup cycles to charge for the redo.
    pub fn interrupt_rollback(&mut self, cycle: Cycle) -> Option<Cycle> {
        if self.plan.squash_during_rollback > 0
            && self.rollback.fires(self.plan.squash_during_rollback)
        {
            let extra = self.plan.squash_during_rollback_cycles;
            self.record(FaultKind::SquashDuringRollback, cycle, extra);
            return Some(extra);
        }
        None
    }

    /// The schedule of faults that fired, in order (capped at an
    /// internal bound; [`FaultInjector::injected_total`] is exact).
    pub fn log(&self) -> &[FaultRecord] {
        &self.log
    }

    /// How many faults of `kind` fired.
    pub fn count(&self, kind: FaultKind) -> u64 {
        self.counts[kind.index()]
    }

    /// Total faults fired across all kinds.
    pub fn injected_total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The fault schedule as stable `kind@cycle:detail` lines, for
    /// diagnostics bundles.
    pub fn schedule_lines(&self) -> Vec<String> {
        self.log
            .iter()
            .map(|r| format!("{}@{}:{}", r.kind, r.cycle, r.detail))
            .collect()
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plan_draws_nothing_and_fires_nothing() {
        let mut inj = FaultInjector::new(FaultPlan::disabled(), 42);
        for cycle in 0..1000 {
            assert!(inj.fill_fault(cycle, 80).is_none());
            assert!(inj.mshr_pressure(cycle).is_none());
            assert!(inj.spurious_evict(cycle, 64, 8).is_none());
            assert!(inj.replace_perturb(cycle, 64, 8).is_none());
            assert!(inj.interrupt_rollback(cycle).is_none());
        }
        assert_eq!(inj.injected_total(), 0);
        assert!(inj.log().is_empty());
        assert!(!inj.enabled());
    }

    #[test]
    fn schedule_is_a_pure_function_of_plan_and_seed() {
        let run = |seed| {
            let mut inj = FaultInjector::new(FaultPlan::uniform(100), seed);
            for cycle in 0..500 {
                inj.fill_fault(cycle, 80);
                inj.mshr_pressure(cycle);
                inj.spurious_evict(cycle, 64, 8);
            }
            inj.schedule_lines()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn sites_are_independent_streams() {
        // Draining one site must not shift another's decisions.
        let mut a = FaultInjector::new(FaultPlan::uniform(100), 9);
        let mut b = FaultInjector::new(FaultPlan::uniform(100), 9);
        for cycle in 0..200 {
            a.fill_fault(cycle, 80); // extra draws at the fill site only
        }
        let picks_a: Vec<_> = (0..50).map(|c| a.spurious_evict(c, 64, 8)).collect();
        let picks_b: Vec<_> = (0..50).map(|c| b.spurious_evict(c, 64, 8)).collect();
        assert_eq!(picks_a, picks_b);
    }

    #[test]
    fn wedge_dominates_the_fill_site() {
        let mut plan = FaultPlan::uniform(1000);
        plan.wedge_fill = 1000;
        let mut inj = FaultInjector::new(plan, 3);
        let (kind, extra) = inj.fill_fault(10, 80).unwrap();
        assert_eq!(kind, FaultKind::WedgeFill);
        assert_eq!(extra, plan.wedge_fill_cycles);
    }

    #[test]
    fn only_plans_fire_only_their_kind() {
        for kind in FaultKind::ALL {
            let plan = FaultPlan::only(kind, 1000);
            assert!(plan.enabled());
            assert_eq!(plan.rate(kind), 1000);
            for other in FaultKind::ALL {
                if other != kind {
                    assert_eq!(plan.rate(other), 0, "{kind} plan leaks into {other}");
                }
            }
        }
    }

    #[test]
    fn log_is_capped_but_counts_are_exact() {
        let mut inj = FaultInjector::new(FaultPlan::only(FaultKind::MshrExhaust, 1000), 1);
        for cycle in 0..(LOG_CAPACITY as u64 + 500) {
            inj.mshr_pressure(cycle);
        }
        assert_eq!(inj.log().len(), LOG_CAPACITY);
        assert_eq!(inj.injected_total(), LOG_CAPACITY as u64 + 500);
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in FaultKind::ALL {
            assert_eq!(FaultKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(FaultKind::from_name("nope"), None);
    }
}
