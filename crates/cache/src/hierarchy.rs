//! The two-level hierarchy: access path, flush, and rollback hooks.

use unxpec_mem::LineAddr;
use unxpec_telemetry::{CacheLevel, Event, MetricsRegistry, Telemetry};

use crate::cache::Cache;
use crate::config::HierarchyConfig;
use crate::effects::{AccessOutcome, Effect, ExternalProbe, HitLevel};
use crate::fault::{FaultInjector, FaultKind};
use crate::line::{LineMeta, SpecTag};
use crate::mshr::MshrFile;
use crate::noise::NoiseModel;
use crate::nomo::NomoPartition;
use crate::stats::CacheStats;
use crate::Cycle;

/// Private L1 I/D + shared L2 + memory, with MSHRs and noise.
///
/// The hierarchy computes access timing in closed form (issue cycle in,
/// completion cycle out) while mutating tag state eagerly; bank and
/// pipeline occupancy is tracked with next-free cycles so back-to-back
/// misses pipeline rather than serialize, which is what makes
/// CleanupSpec's restorations "pipelined and serviced from the L2".
#[derive(Debug)]
pub struct CacheHierarchy {
    cfg: HierarchyConfig,
    l1d: Cache,
    l1i: Cache,
    l2: Cache,
    mshrs: MshrFile,
    mem_next_free: Cycle,
    l2_next_free: Cycle,
    noise: NoiseModel,
    prefetch_fills: u64,
    telemetry: Telemetry,
    /// Optional deterministic fault injector. `None` (the default) and
    /// an injector whose plan never fires are both byte-identical to an
    /// unfaulted hierarchy.
    faults: Option<Box<FaultInjector>>,
}

impl CacheHierarchy {
    /// Builds the hierarchy for `threads` hardware threads from `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: HierarchyConfig, threads: usize) -> Self {
        cfg.validate();
        let partition = if cfg.nomo_reserved_ways > 0 {
            NomoPartition::new(cfg.l1d.ways, cfg.nomo_reserved_ways, threads)
        } else {
            NomoPartition::disabled(cfg.l1d.ways)
        };
        let l1d = Cache::new("L1D", cfg.l1d.clone(), partition, 0x11d0 ^ cfg.ceaser_seed);
        let l1i = Cache::new(
            "L1I",
            cfg.l1i.clone(),
            NomoPartition::disabled(cfg.l1i.ways),
            0x111a ^ cfg.ceaser_seed,
        );
        let l2 = if cfg.ceaser_enabled {
            Cache::new_randomized("L2", cfg.l2.clone(), 0x2222, cfg.ceaser_seed)
        } else {
            Cache::new(
                "L2",
                cfg.l2.clone(),
                NomoPartition::disabled(cfg.l2.ways),
                0x2222,
            )
        };
        CacheHierarchy {
            mshrs: MshrFile::new(cfg.mshr_entries),
            l1d,
            l1i,
            l2,
            mem_next_free: 0,
            l2_next_free: 0,
            noise: NoiseModel::quiet(),
            prefetch_fills: 0,
            telemetry: Telemetry::disabled(),
            faults: None,
            cfg,
        }
    }

    /// Replaces the noise model.
    pub fn set_noise(&mut self, noise: NoiseModel) {
        self.noise = noise;
    }

    /// Attaches a deterministic fault injector. Each fault that fires
    /// is logged in the injector and emitted as
    /// [`Event::FaultInjected`] through the telemetry sink.
    pub fn set_fault_injector(&mut self, injector: FaultInjector) {
        self.faults = Some(Box::new(injector));
    }

    /// Detaches and returns the injector (with its schedule log).
    pub fn take_fault_injector(&mut self) -> Option<FaultInjector> {
        self.faults.take().map(|b| *b)
    }

    /// The attached injector, if any.
    pub fn fault_injector(&self) -> Option<&FaultInjector> {
        self.faults.as_deref()
    }

    /// Asks the injector whether a squash interrupts the rollback in
    /// progress at `cycle` (the squash-during-rollback fault). Returns
    /// the extra cleanup cycles to charge; defenses redo their
    /// (idempotent) cleanup walk and stall that much longer.
    pub fn fault_interrupt_rollback(&mut self, cycle: Cycle) -> Option<Cycle> {
        let extra = self.faults.as_deref_mut()?.interrupt_rollback(cycle)?;
        self.telemetry.emit(Event::FaultInjected {
            cycle,
            kind: FaultKind::SquashDuringRollback.code(),
            detail: extra,
        });
        Some(extra)
    }

    /// Attaches a telemetry handle; cache, MSHR and rollback events are
    /// emitted through it (the default handle is disabled and free).
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The hierarchy's telemetry handle (defenses emit their rollback
    /// step events through it so everything lands in one sink).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The configuration in use.
    pub fn config(&self) -> &HierarchyConfig {
        &self.cfg
    }

    /// Data access for thread 0 (convenience for the single-thread model).
    pub fn access_data(
        &mut self,
        line: LineAddr,
        cycle: Cycle,
        spec: Option<SpecTag>,
    ) -> AccessOutcome {
        self.access_data_as(line, cycle, spec, 0)
    }

    /// Data access: L1D lookup, MSHR merge, L2 lookup, memory; fills on
    /// the way back. Returns completion timing plus the exact fill
    /// effects.
    pub fn access_data_as(
        &mut self,
        line: LineAddr,
        cycle: Cycle,
        spec: Option<SpecTag>,
        thread: usize,
    ) -> AccessOutcome {
        let l1_lat = self.cfg.l1d.hit_latency;
        // Replacement-state perturbation: a phantom touch of a random
        // L1 way that shifts future victim choices without moving data.
        let (l1_sets, l1_ways) = (self.cfg.l1d.sets, self.cfg.l1d.ways);
        if let Some((set, way)) = self
            .faults
            .as_deref_mut()
            .and_then(|f| f.replace_perturb(cycle, l1_sets, l1_ways))
        {
            self.l1d.perturb_replacement(set, way);
            self.telemetry.emit(Event::FaultInjected {
                cycle,
                kind: FaultKind::ReplacePerturb.code(),
                detail: ((set as u64) << 16) | way as u64,
            });
        }
        // A line whose fill is still inflight is not servable from L1 yet
        // even though the tag state is mutated eagerly: merge into the
        // MSHR entry and complete when the original fill does.
        if let Some(entry) = self.mshrs.lookup(line, cycle) {
            self.telemetry.emit(Event::MshrMerge {
                cycle,
                line: line.raw(),
            });
            return AccessOutcome {
                issue_cycle: cycle,
                complete_cycle: entry.complete_cycle.max(cycle + l1_lat),
                level: HitLevel::MshrMerge,
                effects: vec![],
            };
        }
        if self.l1d.access(line).is_some() {
            self.telemetry.emit(Event::CacheHit {
                cycle,
                level: CacheLevel::L1,
                line: line.raw(),
            });
            return AccessOutcome {
                issue_cycle: cycle,
                complete_cycle: cycle + l1_lat,
                level: HitLevel::L1,
                effects: vec![],
            };
        }
        self.telemetry.emit(Event::CacheMiss {
            cycle,
            level: CacheLevel::L1,
            line: line.raw(),
        });
        // Structural hazard: the miss cannot leave the L1 until an MSHR
        // entry is available.
        let mut issue = self.mshrs.next_free_cycle(cycle).max(cycle);
        // MSHR-exhaustion fault: artificial backpressure, as if the
        // file were full until `issue + extra`.
        if let Some(extra) = self
            .faults
            .as_deref_mut()
            .and_then(|f| f.mshr_pressure(cycle))
        {
            issue += extra;
            self.telemetry.emit(Event::FaultInjected {
                cycle,
                kind: FaultKind::MshrExhaust.code(),
                detail: extra,
            });
        }
        let mut effects = Vec::new();
        // L2 pipeline occupancy.
        let l2_start = (issue + l1_lat).max(self.l2_next_free);
        self.l2_next_free = l2_start + self.cfg.l2_init_interval;
        let (level, data_cycle) = if self.l2.access(line).is_some() {
            self.telemetry.emit(Event::CacheHit {
                cycle: l2_start,
                level: CacheLevel::L2,
                line: line.raw(),
            });
            (HitLevel::L2, l2_start + self.cfg.l2.hit_latency)
        } else {
            self.telemetry.emit(Event::CacheMiss {
                cycle: l2_start,
                level: CacheLevel::L2,
                line: line.raw(),
            });
            // Memory: bank pipelining plus noise.
            let mem_start = (l2_start + self.cfg.l2.hit_latency).max(self.mem_next_free);
            self.mem_next_free = mem_start + self.cfg.mem_init_interval;
            let mut service = self.cfg.mem_latency + self.noise.sample_mem_extra();
            // Fill-response faults: delayed, reordered (behind its
            // successor), or wedged (never effectively completing —
            // downstream consumers block until the forward-progress
            // watchdog or run limit ends the run).
            let base_service = self.cfg.mem_latency;
            if let Some((kind, extra)) = self
                .faults
                .as_deref_mut()
                .and_then(|f| f.fill_fault(mem_start, base_service))
            {
                service += extra;
                self.telemetry.emit(Event::FaultInjected {
                    cycle: mem_start,
                    kind: kind.code(),
                    detail: extra,
                });
            }
            let done = mem_start + service;
            let fill = self.l2.insert(
                LineMeta {
                    spec,
                    ..LineMeta::clean(line)
                },
                0,
            );
            self.telemetry.emit(Event::CacheFill {
                cycle: done,
                level: CacheLevel::L2,
                line: line.raw(),
                speculative: spec.is_some(),
            });
            if let Some(victim) = fill.victim {
                self.telemetry.emit(Event::CacheEvict {
                    cycle: done,
                    level: CacheLevel::L2,
                    victim: victim.line.raw(),
                });
            }
            effects.push(Effect::FillL2 {
                line,
                set: fill.set,
                way: fill.way,
                victim: fill.victim,
            });
            (HitLevel::Memory, done)
        };
        // Fill L1.
        let fill = self.l1d.insert(
            LineMeta {
                spec,
                ..LineMeta::clean(line)
            },
            thread,
        );
        self.telemetry.emit(Event::CacheFill {
            cycle: data_cycle,
            level: CacheLevel::L1,
            line: line.raw(),
            speculative: spec.is_some(),
        });
        if let Some(victim) = fill.victim {
            self.telemetry.emit(Event::CacheEvict {
                cycle: data_cycle,
                level: CacheLevel::L1,
                victim: victim.line.raw(),
            });
            // A displaced dirty line writes back into L2; ensure it stays
            // resident there so restoration can be serviced from L2.
            if !self.l2.contains(victim.line) {
                let l2_fill = self.l2.insert(LineMeta::clean(victim.line), 0);
                let _ = l2_fill;
            }
            if victim.dirty {
                self.l2.mark_dirty(victim.line);
                self.telemetry.emit(Event::CacheWriteback {
                    cycle: data_cycle,
                    level: CacheLevel::L1,
                    line: victim.line.raw(),
                });
            }
        }
        effects.push(Effect::FillL1 {
            line,
            set: fill.set,
            way: fill.way,
            victim: fill.victim,
        });
        // MSHR entry lives until the data returns.
        let allocated = self.mshrs.allocate(line, issue, data_cycle, spec);
        debug_assert!(allocated.is_ok(), "slot reserved by next_free_cycle");
        self.telemetry.emit(Event::MshrAlloc {
            cycle: issue,
            line: line.raw(),
            complete_cycle: data_cycle,
            speculative: spec.is_some(),
        });
        // Spurious-eviction fault: an architectural (non-speculative)
        // L1 line vanishes out from under the program. Speculative
        // installs are off limits — in-window transient state belongs
        // to the rollback oracle, not the chaos plan.
        if let Some((set, way)) = self
            .faults
            .as_deref_mut()
            .and_then(|f| f.spurious_evict(data_cycle, l1_sets, l1_ways))
        {
            if let Some(target) = self.l1d.slot_line(set, way) {
                if target != line && !self.l1d.is_speculative(target) {
                    self.l1d.invalidate(target);
                    self.telemetry.emit(Event::FaultInjected {
                        cycle: data_cycle,
                        kind: FaultKind::SpuriousEvict.code(),
                        detail: target.raw(),
                    });
                }
            }
        }
        // Next-line prefetch: only demand (non-speculative) misses
        // trigger it, so prefetched lines never enter a rollback.
        if self.cfg.next_line_prefetch && spec.is_none() {
            let next = line.offset(1);
            if !self.l1d.contains(next)
                && self.mshrs.lookup(next, issue).is_none()
                && self.mshrs.next_free_cycle(data_cycle) <= data_cycle
            {
                if !self.l2.contains(next) {
                    self.l2.insert(LineMeta::clean(next), 0);
                }
                self.l1d.insert(LineMeta::clean(next), thread);
                self.prefetch_fills += 1;
            }
        }
        AccessOutcome {
            issue_cycle: cycle,
            complete_cycle: data_cycle,
            level,
            effects,
        }
    }

    /// Functional-fill access for the fast-forward execution mode: the
    /// exact tag/recency/victim transitions of [`Self::access_data_as`]
    /// for a committed (`spec = None`, thread-0) access, minus everything
    /// a committed straight-line region cannot need — no MSHR entry (the
    /// request is architecturally complete before the next one issues),
    /// no effect list (there is no open speculation frame to undo into),
    /// no telemetry, and no fault hooks (the core refuses fast-forward
    /// under an armed injector).
    ///
    /// Bank occupancy (`l2_next_free` / `mem_next_free`) is still booked
    /// and the noise stream still sampled on memory misses, so the
    /// hierarchy's timing state and RNG position hand off exactly when
    /// the core drops back into detailed mode.
    pub fn access_data_functional(&mut self, line: LineAddr, cycle: Cycle) -> (Cycle, HitLevel) {
        let l1_lat = self.cfg.l1d.hit_latency;
        if self.l1d.access(line).is_some() {
            return (cycle + l1_lat, HitLevel::L1);
        }
        let l2_start = (cycle + l1_lat).max(self.l2_next_free);
        self.l2_next_free = l2_start + self.cfg.l2_init_interval;
        let (level, data_cycle) = if self.l2.access(line).is_some() {
            (HitLevel::L2, l2_start + self.cfg.l2.hit_latency)
        } else {
            let mem_start = (l2_start + self.cfg.l2.hit_latency).max(self.mem_next_free);
            self.mem_next_free = mem_start + self.cfg.mem_init_interval;
            let service = self.cfg.mem_latency + self.noise.sample_mem_extra();
            self.l2.insert(LineMeta::clean(line), 0);
            (HitLevel::Memory, mem_start + service)
        };
        let fill = self.l1d.insert(LineMeta::clean(line), 0);
        if let Some(victim) = fill.victim {
            if !self.l2.contains(victim.line) {
                self.l2.insert(LineMeta::clean(victim.line), 0);
            }
            if victim.dirty {
                self.l2.mark_dirty(victim.line);
            }
        }
        // Same demand-prefetch condition as the detailed path; with no
        // MSHR traffic in a fast-forward region the file is idle, so the
        // availability clause reduces to the lookup.
        if self.cfg.next_line_prefetch {
            let next = line.offset(1);
            if !self.l1d.contains(next)
                && self.mshrs.lookup(next, cycle).is_none()
                && self.mshrs.next_free_cycle(data_cycle) <= data_cycle
            {
                if !self.l2.contains(next) {
                    self.l2.insert(LineMeta::clean(next), 0);
                }
                self.l1d.insert(LineMeta::clean(next), 0);
                self.prefetch_fills += 1;
            }
        }
        (data_cycle, level)
    }

    /// Functional-fill committed store: [`Self::access_data_functional`]
    /// plus the dirty mark, mirroring [`Self::write_data`].
    pub fn write_data_functional(&mut self, line: LineAddr, cycle: Cycle) -> (Cycle, HitLevel) {
        let out = self.access_data_functional(line, cycle);
        self.l1d.mark_dirty(line);
        out
    }

    /// Timing-only access that never mutates cache state — the path an
    /// Invisible-style defense (e.g. InvisiSpec) forces speculative loads
    /// onto: the data is fetched into a shadow buffer, so no level fills
    /// and no victim is displaced.
    pub fn access_data_no_fill(&mut self, line: LineAddr, cycle: Cycle) -> AccessOutcome {
        let l1_lat = self.cfg.l1d.hit_latency;
        if self.l1d.contains(line) {
            return AccessOutcome {
                issue_cycle: cycle,
                complete_cycle: cycle + l1_lat,
                level: HitLevel::L1,
                effects: vec![],
            };
        }
        let l2_start = (cycle + l1_lat).max(self.l2_next_free);
        self.l2_next_free = l2_start + self.cfg.l2_init_interval;
        let (level, done) = if self.l2.contains(line) {
            (HitLevel::L2, l2_start + self.cfg.l2.hit_latency)
        } else {
            let mem_start = (l2_start + self.cfg.l2.hit_latency).max(self.mem_next_free);
            self.mem_next_free = mem_start + self.cfg.mem_init_interval;
            let service = self.cfg.mem_latency + self.noise.sample_mem_extra();
            (HitLevel::Memory, mem_start + service)
        };
        AccessOutcome {
            issue_cycle: cycle,
            complete_cycle: done,
            level,
            effects: vec![],
        }
    }

    /// Pure latency estimate for an access to `line` right now: no
    /// state change, no queue booking, no noise. Used for loads that
    /// will never actually issue (squashed delay-on-miss requests).
    pub fn estimate_access_latency(&self, line: LineAddr) -> Cycle {
        if self.l1d.contains(line) {
            self.cfg.l1d.hit_latency
        } else if self.l2.contains(line) {
            self.cfg.l1d.hit_latency + self.cfg.l2.hit_latency
        } else {
            self.cfg.cold_miss_latency()
        }
    }

    /// Instruction fetch through the L1I (timing only; instruction lines
    /// never interact with rollback).
    pub fn fetch_inst(&mut self, line: LineAddr, cycle: Cycle) -> Cycle {
        if self.l1i.access(line).is_some() {
            return cycle + self.cfg.l1i.hit_latency;
        }
        let l2_start = cycle + self.cfg.l1i.hit_latency;
        let done = if self.l2.access(line).is_some() {
            l2_start + self.cfg.l2.hit_latency
        } else {
            let mem_start = (l2_start + self.cfg.l2.hit_latency).max(self.mem_next_free);
            self.mem_next_free = mem_start + self.cfg.mem_init_interval;
            let done = mem_start + self.cfg.mem_latency;
            self.l2.insert(LineMeta::clean(line), 0);
            done
        };
        self.l1i.insert(LineMeta::clean(line), 0);
        done
    }

    /// A committed store writing `line`: allocate (if needed) and mark
    /// dirty. Returns timing like a load.
    pub fn write_data(&mut self, line: LineAddr, cycle: Cycle) -> AccessOutcome {
        let outcome = self.access_data(line, cycle, None);
        self.l1d.mark_dirty(line);
        outcome
    }

    /// `clflush`-style flush of `line` from both levels. Returns the
    /// completion cycle.
    pub fn flush_line(&mut self, line: LineAddr, cycle: Cycle) -> Cycle {
        let was_present = self.l1d.contains(line) || self.l2.contains(line);
        self.l1d.invalidate(line);
        self.l2.invalidate(line);
        if was_present {
            cycle + self.cfg.flush_latency
        } else {
            // Flushing an absent line still costs the request round trip.
            cycle + self.cfg.flush_latency / 2
        }
    }

    // ----- Cross-thread / cross-core probe surface ---------------------

    /// Honestly services a cross-core read: supply from L1 or L2 with
    /// the corresponding latency and downgrade M/E to Shared; on a miss
    /// the requester pays the memory path. This is what an *unprotected*
    /// cache does — and what Flush+Reload-style cross-core probes time.
    pub fn serve_external_read(&mut self, line: LineAddr, cycle: Cycle) -> ExternalProbe {
        let _ = cycle;
        if self.l1d.contains(line) {
            let downgraded_from = self.l1d.downgrade(line);
            self.l2.downgrade(line);
            ExternalProbe {
                latency: self.cfg.l1d.hit_latency + self.cfg.l2.hit_latency,
                observed_hit: true,
                downgraded_from,
            }
        } else if self.l2.contains(line) {
            let downgraded_from = self.l2.downgrade(line);
            ExternalProbe {
                latency: self.cfg.l2.hit_latency,
                observed_hit: true,
                downgraded_from,
            }
        } else {
            ExternalProbe {
                latency: self.external_miss_latency(),
                observed_hit: false,
                downgraded_from: None,
            }
        }
    }

    /// Services a cross-core read as a *dummy miss* (CleanupSpec's
    /// strategy for speculatively installed lines): the requester sees
    /// exactly the latency and state effects of a miss, and local cache
    /// state is untouched.
    pub fn serve_external_dummy_miss(&mut self) -> ExternalProbe {
        ExternalProbe {
            latency: self.external_miss_latency(),
            observed_hit: false,
            downgraded_from: None,
        }
    }

    /// What a remote requester pays when this core cannot supply data.
    pub fn external_miss_latency(&self) -> Cycle {
        self.cfg.l2.hit_latency + self.cfg.mem_latency
    }

    /// Whether `line` is resident with a live speculative tag anywhere.
    pub fn any_speculative(&self, line: LineAddr) -> bool {
        self.l1d.is_speculative(line) || self.l2.is_speculative(line)
    }

    // ----- Rollback hooks used by Undo defenses ------------------------

    /// Invalidates a transient install from L1, returning its vacated
    /// `(set, way)` so the victim can be restored there.
    pub fn rollback_invalidate_l1(&mut self, line: LineAddr) -> Option<(usize, usize)> {
        self.l1d.invalidate(line).map(|(s, w, _)| (s, w))
    }

    /// Invalidates a transient install from L2.
    pub fn rollback_invalidate_l2(&mut self, line: LineAddr) -> bool {
        self.l2.invalidate(line).is_some()
    }

    /// Whether the L1 slot `(set, way)` is currently empty (used by the
    /// rollback to restore a victim whose evictor was itself displaced
    /// by a younger transient line before the squash).
    pub fn l1_slot_is_empty(&self, set: usize, way: usize) -> bool {
        self.l1d.slot_line(set, way).is_none()
    }

    /// Restores an evicted line into an exact L1 slot (serviced from L2 —
    /// the caller prices the L2 access; this mutates state only).
    pub fn restore_l1(&mut self, set: usize, way: usize, line: LineAddr) {
        self.l1d.insert_at(set, way, LineMeta::clean(line));
        if !self.l2.contains(line) {
            // Restoration data comes from L2; if L2 lost it meanwhile, the
            // refill conceptually comes from memory. Keep L2 consistent.
            self.l2.insert(LineMeta::clean(line), 0);
        }
    }

    /// Clears speculative tags after an epoch resolves correct.
    pub fn commit_line(&mut self, line: LineAddr) {
        self.l1d.commit_spec(line);
        self.l2.commit_spec(line);
    }

    /// Cancels speculative MSHR entries for squashed epochs (T3).
    pub fn cancel_speculative_misses<F: Fn(SpecTag) -> bool>(
        &mut self,
        now: Cycle,
        is_squashed: F,
    ) -> usize {
        let cancelled = self.mshrs.cancel_speculative_lines(now, is_squashed);
        for line in &cancelled {
            self.telemetry.emit(Event::MshrCancel {
                cycle: now,
                line: line.raw(),
            });
        }
        cancelled.len()
    }

    /// Latest completion of inflight non-speculative misses (T4 wait).
    pub fn inflight_safe_completion(&mut self, now: Cycle) -> Option<Cycle> {
        self.mshrs.latest_safe_completion(now)
    }

    /// True when every miss issued before `now` has delivered its fill:
    /// the MSHR file holds no in-flight entry. Fast-forward regions
    /// require this — the functional access path has no MSHR merge, so
    /// an in-flight miss (typically a squashed wrong-path load, whose
    /// MSHR a rollback deliberately leaves running) would make a
    /// detailed-mode re-execution merge and wait for the fill where the
    /// functional model would hit the already-installed line.
    pub fn memory_quiescent(&mut self, now: Cycle) -> bool {
        self.mshrs.occupancy(now) == 0
    }

    // ----- Introspection (attack construction and tests) ---------------

    /// Whether `line` is in the L1D.
    pub fn l1_contains(&self, line: LineAddr) -> bool {
        self.l1d.contains(line)
    }

    /// Whether `line` is in the L2.
    pub fn l2_contains(&self, line: LineAddr) -> bool {
        self.l2.contains(line)
    }

    /// L1D set index of `line` (conventional indexing — computable by the
    /// attacker from the address alone, which is what makes L1 eviction
    /// sets easy to build).
    pub fn l1_set_of(&self, line: LineAddr) -> usize {
        self.l1d.set_index(line)
    }

    /// L2 set index of `line` (post-CEASER; *not* attacker-predictable).
    pub fn l2_set_of(&self, line: LineAddr) -> usize {
        self.l2.set_index(line)
    }

    /// Whether `line` is resident in L1 and tagged speculative.
    pub fn l1_is_speculative(&self, line: LineAddr) -> bool {
        self.l1d.is_speculative(line)
    }

    /// L1D counters.
    pub fn l1_stats(&self) -> &CacheStats {
        self.l1d.stats()
    }

    /// L2 counters.
    pub fn l2_stats(&self) -> &CacheStats {
        self.l2.stats()
    }

    /// Direct access to the L1D (tests and ablations).
    pub fn l1d(&self) -> &Cache {
        &self.l1d
    }

    /// Direct access to the L2 (tests and ablations).
    pub fn l2(&self) -> &Cache {
        &self.l2
    }

    /// Corrupts the L1D's incremental occupancy counter by `delta`
    /// without touching the tag array. Exists solely so sanitizer
    /// mutation tests and the chaos experiment's `sabotage` variant can
    /// prove counter drift is caught; never call it from simulation
    /// code.
    #[doc(hidden)]
    pub fn corrupt_l1_resident_counter_for_tests(&mut self, delta: isize) {
        self.l1d.corrupt_resident_counter_for_tests(delta);
    }

    /// MSHR file, read-only (the sanitizer's leak accounting).
    pub fn mshrs(&self) -> &MshrFile {
        &self.mshrs
    }

    /// MSHR file (tests).
    pub fn mshrs_mut(&mut self) -> &mut MshrFile {
        &mut self.mshrs
    }

    /// Lines brought in by the next-line prefetcher.
    pub fn prefetch_fills(&self) -> u64 {
        self.prefetch_fills
    }

    /// Re-keys the L2's CEASER mapping (periodic remap of a randomized
    /// cache), flushing its residents.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::RemapUnsupported`] when the hierarchy was
    /// built without CEASER indexing (`ceaser_enabled: false`) — the L2
    /// then has no key to rotate, and the caller (an experiment driver
    /// or sweep trial) must treat the request as a configuration error
    /// rather than dying in a panic that would poison a pool worker.
    pub fn remap_l2(&mut self, seed: u64) -> Result<(), crate::error::CacheError> {
        self.l2.remap(seed)
    }

    /// Resets all counters (not contents).
    pub fn reset_stats(&mut self) {
        self.l1d.reset_stats();
        self.l1i.reset_stats();
        self.l2.reset_stats();
    }

    /// Registers every hierarchy counter into `reg` under the `l1.`,
    /// `l2.`, `mshr.` and `prefetch.` namespaces.
    pub fn record_metrics(&self, reg: &mut MetricsRegistry) {
        for (prefix, stats) in [("l1", self.l1d.stats()), ("l2", self.l2.stats())] {
            reg.set(&format!("{prefix}.hits"), stats.hits);
            reg.set(&format!("{prefix}.misses"), stats.misses);
            reg.set(&format!("{prefix}.evictions"), stats.evictions);
            reg.set(&format!("{prefix}.invalidations"), stats.invalidations);
            reg.set(&format!("{prefix}.restores"), stats.restores);
            reg.set(&format!("{prefix}.writebacks"), stats.writebacks);
        }
        self.mshrs.record_metrics(reg);
        reg.set("prefetch.fills", self.prefetch_fills);
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;

    fn hier() -> CacheHierarchy {
        CacheHierarchy::new(HierarchyConfig::table_i(), 1)
    }

    #[test]
    fn remap_l2_rotates_the_ceaser_key() {
        let mut h = hier(); // Table I enables CEASER in the L2
        let line = LineAddr::new(0x2468);
        h.access_data(line, 0, None);
        assert!(h.l2_contains(line));
        let before: Vec<usize> = (0..64u64).map(|i| h.l2_set_of(LineAddr::new(i))).collect();
        h.remap_l2(0x5eed).expect("CEASER L2 remaps");
        assert!(!h.l2_contains(line), "remap flushes residents");
        let after: Vec<usize> = (0..64u64).map(|i| h.l2_set_of(LineAddr::new(i))).collect();
        assert_ne!(before, after, "new key must change the index mapping");
    }

    #[test]
    fn remap_l2_without_ceaser_is_a_typed_error() {
        let cfg = HierarchyConfig {
            ceaser_enabled: false,
            ..HierarchyConfig::table_i()
        };
        let mut h = CacheHierarchy::new(cfg, 1);
        let line = LineAddr::new(0x2468);
        h.access_data(line, 0, None);
        let err = h.remap_l2(1).expect_err("plain L2 must refuse remap");
        assert_eq!(
            err,
            crate::error::CacheError::RemapUnsupported { cache: "L2" }
        );
        assert!(h.l2_contains(line), "refused remap leaves contents alone");
    }

    #[test]
    fn cold_miss_costs_full_path() {
        let mut h = hier();
        let line = LineAddr::new(0x100);
        let out = h.access_data(line, 0, None);
        assert_eq!(out.level, HitLevel::Memory);
        // l1 + l2 + mem = 118, no noise.
        assert_eq!(out.latency(), h.config().cold_miss_latency());
        assert_eq!(out.effects.len(), 2);
    }

    #[test]
    fn l1_hit_is_cheap_and_effect_free() {
        let mut h = hier();
        let line = LineAddr::new(0x100);
        let t = h.access_data(line, 0, None).complete_cycle;
        let out = h.access_data(line, t, None);
        assert_eq!(out.level, HitLevel::L1);
        assert_eq!(out.latency(), 4);
        assert!(out.effects.is_empty());
    }

    #[test]
    fn l2_hit_after_l1_invalidation() {
        let mut h = hier();
        let line = LineAddr::new(0x100);
        h.access_data(line, 0, None);
        h.rollback_invalidate_l1(line);
        let out = h.access_data(line, 1000, None);
        assert_eq!(out.level, HitLevel::L2);
        assert_eq!(out.latency(), 4 + 14);
    }

    #[test]
    fn mshr_merge_returns_inflight_completion() {
        let mut h = hier();
        let line = LineAddr::new(0x200);
        let first = h.access_data(line, 0, None);
        let merged = h.access_data(line, 2, None);
        assert_eq!(merged.level, HitLevel::MshrMerge);
        assert_eq!(merged.complete_cycle, first.complete_cycle);
        assert!(merged.effects.is_empty());
    }

    #[test]
    fn memory_bank_pipelines_independent_misses() {
        let mut h = hier();
        let a = h.access_data(LineAddr::new(0x1000), 0, None);
        let b = h.access_data(LineAddr::new(0x2000), 0, None);
        // Second miss starts one initiation interval later, far less than
        // a full serialization.
        assert_eq!(
            b.complete_cycle - a.complete_cycle,
            h.config().mem_init_interval
        );
    }

    #[test]
    fn flush_removes_from_both_levels() {
        let mut h = hier();
        let line = LineAddr::new(0x300);
        h.access_data(line, 0, None);
        assert!(h.l1_contains(line) && h.l2_contains(line));
        let done = h.flush_line(line, 500);
        assert!(done > 500);
        assert!(!h.l1_contains(line) && !h.l2_contains(line));
    }

    #[test]
    fn speculative_fill_is_tagged_and_commit_clears() {
        let mut h = hier();
        let line = LineAddr::new(0x400);
        h.access_data(line, 0, Some(SpecTag(3)));
        assert!(h.l1_is_speculative(line));
        h.commit_line(line);
        assert!(!h.l1_is_speculative(line));
    }

    #[test]
    fn rollback_roundtrip_restores_original_set_state() {
        let mut h = hier();
        // Fill one L1 set completely with non-speculative lines.
        let set_target = h.l1_set_of(LineAddr::new(0x40).base().line());
        let sets = h.config().l1d.sets as u64;
        let ways = h.config().l1d.ways as u64;
        let mut fillers = Vec::new();
        for i in 0..ways {
            let line = LineAddr::new(set_target as u64 + i * sets);
            h.access_data(line, 0, None);
            fillers.push(line);
        }
        // One transient load conflicts into that set.
        let transient = LineAddr::new(set_target as u64 + 100 * sets);
        let out = h.access_data(transient, 1000, Some(SpecTag(1)));
        let l1_fill = out
            .effects
            .iter()
            .find(|e| e.is_l1())
            .copied()
            .expect("transient load fills L1");
        let victim = l1_fill.victim().expect("set was full, must evict");
        // Undo: invalidate the transient line, restore the victim.
        let (set, way) = h.rollback_invalidate_l1(transient).unwrap();
        h.restore_l1(set, way, victim.line);
        assert!(!h.l1_contains(transient));
        for f in &fillers {
            assert!(h.l1_contains(*f), "filler {f} must be back after rollback");
        }
    }

    #[test]
    fn noise_widens_memory_latency() {
        let mut h = hier();
        h.set_noise(NoiseModel::default_sim(5));
        let mut latencies = Vec::new();
        for i in 0..200u64 {
            let out = h.access_data(LineAddr::new(0x10_0000 + i * 7919), i * 1000, None);
            if out.level == HitLevel::Memory {
                latencies.push(out.latency());
            }
        }
        let min = latencies.iter().min().unwrap();
        let max = latencies.iter().max().unwrap();
        assert!(max > min, "noise should spread latencies");
    }

    #[test]
    fn telemetry_streams_the_access_path() {
        let mut h = hier();
        let tel = Telemetry::ring(256);
        h.set_telemetry(tel.clone());
        let line = LineAddr::new(0x100);
        h.access_data(line, 0, Some(SpecTag(1)));
        let names: Vec<&str> = tel.snapshot().iter().map(|e| e.name()).collect();
        // Cold speculative miss: L1 miss, L2 miss, fills both levels,
        // one MSHR allocation.
        assert_eq!(names.iter().filter(|n| **n == "cache_miss").count(), 2);
        assert_eq!(names.iter().filter(|n| **n == "cache_fill").count(), 2);
        assert!(names.contains(&"mshr_alloc"));
        tel.clear();
        // Merge while inflight, then cancel it during cleanup.
        h.access_data(line, 2, Some(SpecTag(1)));
        assert_eq!(h.cancel_speculative_misses(3, |t| t == SpecTag(1)), 1);
        let names: Vec<&str> = tel.snapshot().iter().map(|e| e.name()).collect();
        assert_eq!(names, vec!["mshr_merge", "mshr_cancel"]);
    }

    #[test]
    fn record_metrics_mirrors_stats() {
        let mut h = hier();
        let line = LineAddr::new(0x500);
        h.access_data(line, 0, None);
        let t = h.access_data(line, 1000, None).complete_cycle;
        let _ = t;
        let mut reg = MetricsRegistry::new();
        h.record_metrics(&mut reg);
        assert_eq!(reg.counter("l1.hits"), h.l1_stats().hits);
        assert_eq!(reg.counter("l1.misses"), h.l1_stats().misses);
        assert_eq!(reg.counter("l2.misses"), h.l2_stats().misses);
        assert_eq!(reg.counter("mshr.capacity"), h.config().mshr_entries as u64);
        assert_eq!(reg.counter("prefetch.fills"), 0);
    }

    #[test]
    fn fetch_inst_hits_after_first_access() {
        let mut h = hier();
        let line = LineAddr::new(0x9000);
        let t1 = h.fetch_inst(line, 0);
        let t2 = h.fetch_inst(line, t1);
        assert!(t2 - t1 < t1, "second fetch must hit L1I");
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod prefetch_tests {
    use super::*;
    use crate::config::HierarchyConfig;

    fn prefetching_hier() -> CacheHierarchy {
        let mut cfg = HierarchyConfig::table_i();
        cfg.next_line_prefetch = true;
        CacheHierarchy::new(cfg, 1)
    }

    #[test]
    fn demand_miss_prefetches_the_next_line() {
        let mut h = prefetching_hier();
        let line = LineAddr::new(0x100);
        let t = h.access_data(line, 0, None).complete_cycle;
        assert!(
            h.l1_contains(line.offset(1)),
            "next line must be prefetched"
        );
        assert_eq!(h.prefetch_fills(), 1);
        // The prefetched line now hits.
        let out = h.access_data(line.offset(1), t, None);
        assert_eq!(out.level, HitLevel::L1);
    }

    #[test]
    fn speculative_misses_do_not_prefetch() {
        let mut h = prefetching_hier();
        let line = LineAddr::new(0x200);
        h.access_data(line, 0, Some(SpecTag(1)));
        assert!(
            !h.l1_contains(line.offset(1)),
            "speculative misses must not trigger the prefetcher (rollback cannot track it)"
        );
        assert_eq!(h.prefetch_fills(), 0);
    }

    #[test]
    fn prefetcher_is_off_in_table_i() {
        let mut h = CacheHierarchy::new(HierarchyConfig::table_i(), 1);
        h.access_data(LineAddr::new(0x300), 0, None);
        assert!(!h.l1_contains(LineAddr::new(0x301)));
        assert_eq!(h.prefetch_fills(), 0);
    }

    #[test]
    fn streaming_pattern_benefits_from_prefetch() {
        let run = |prefetch: bool| {
            let mut cfg = HierarchyConfig::table_i();
            cfg.next_line_prefetch = prefetch;
            let mut h = CacheHierarchy::new(cfg, 1);
            let mut cycle = 0;
            for i in 0..64u64 {
                cycle = h
                    .access_data(LineAddr::new(0x1000 + i), cycle, None)
                    .complete_cycle;
            }
            cycle
        };
        let without = run(false);
        let with = run(true);
        // Alternating miss/hit: close to half the serialized walk, with
        // some slack for the L2/bank pipelining the misses already get.
        assert!(
            with * 10 < without * 6,
            "sequential walk should get much cheaper with next-line prefetch: {with} vs {without}"
        );
    }
}
