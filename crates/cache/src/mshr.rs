//! Miss-status holding registers.
//!
//! MSHRs matter twice for unXpec: they pipeline the transient misses the
//! sender issues (so many loads can be inflight inside one speculation
//! window), and CleanupSpec's first rollback step (T3 in the paper's
//! Fig. 1) is *cleaning inflight mis-speculated loads out of the MSHRs*.

use unxpec_mem::LineAddr;

use crate::line::SpecTag;
use crate::Cycle;

/// One inflight miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MshrEntry {
    /// Line being fetched.
    pub line: LineAddr,
    /// Cycle the fill completes.
    pub complete_cycle: Cycle,
    /// Speculation epoch of the load that allocated the entry, if any.
    pub spec: Option<SpecTag>,
}

/// A finite file of MSHR entries with merge and speculative cancellation.
///
/// # Examples
///
/// ```
/// use unxpec_cache::{MshrFile, SpecTag};
/// use unxpec_mem::LineAddr;
///
/// let mut mshrs = MshrFile::new(2);
/// mshrs.allocate(LineAddr::new(1), 0, 100, None).unwrap();
/// assert!(mshrs.lookup(LineAddr::new(1), 50).is_some());
/// // Entries free themselves once their fill completes.
/// assert!(mshrs.lookup(LineAddr::new(1), 101).is_none());
/// ```
#[derive(Debug, Clone, Default)]
pub struct MshrFile {
    capacity: usize,
    entries: Vec<MshrEntry>,
    peak_occupancy: usize,
    cancelled_speculative: u64,
    /// Lifetime allocations, for leak accounting: every allocated
    /// entry must eventually retire or be cancelled.
    allocated_total: u64,
    /// Lifetime releases (retirements + cancellations).
    released_total: u64,
}

impl MshrFile {
    /// Creates a file with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR file needs capacity");
        MshrFile {
            capacity,
            entries: Vec::with_capacity(capacity),
            peak_occupancy: 0,
            cancelled_speculative: 0,
            allocated_total: 0,
            released_total: 0,
        }
    }

    fn retire_completed(&mut self, now: Cycle) {
        let before = self.entries.len();
        self.entries.retain(|e| e.complete_cycle > now);
        self.released_total += (before - self.entries.len()) as u64;
    }

    /// Finds an inflight entry for `line`, retiring completed entries
    /// first.
    pub fn lookup(&mut self, line: LineAddr, now: Cycle) -> Option<MshrEntry> {
        self.retire_completed(now);
        self.entries.iter().copied().find(|e| e.line == line)
    }

    /// Allocates an entry at `now` completing at `complete_cycle`.
    ///
    /// # Errors
    ///
    /// Returns the cycle at which the earliest entry frees if the file is
    /// full; the caller stalls the miss until then.
    pub fn allocate(
        &mut self,
        line: LineAddr,
        now: Cycle,
        complete_cycle: Cycle,
        spec: Option<SpecTag>,
    ) -> Result<(), Cycle> {
        self.retire_completed(now);
        if self.entries.len() >= self.capacity {
            let earliest = self
                .entries
                .iter()
                .map(|e| e.complete_cycle)
                .min()
                .unwrap_or(now);
            return Err(earliest);
        }
        self.entries.push(MshrEntry {
            line,
            complete_cycle,
            spec,
        });
        self.allocated_total += 1;
        self.peak_occupancy = self.peak_occupancy.max(self.entries.len());
        Ok(())
    }

    /// Earliest cycle (≥ `now`) at which a new entry can be allocated:
    /// `now` itself if a slot is free, otherwise the earliest completion.
    pub fn next_free_cycle(&mut self, now: Cycle) -> Cycle {
        self.retire_completed(now);
        if self.entries.len() < self.capacity {
            now
        } else {
            self.entries
                .iter()
                .map(|e| e.complete_cycle)
                .min()
                .unwrap_or(now)
        }
    }

    /// Frees entries that have completed by `now` and returns current
    /// occupancy.
    pub fn occupancy(&mut self, now: Cycle) -> usize {
        self.retire_completed(now);
        self.entries.len()
    }

    /// Cancels every inflight entry belonging to speculation epochs in
    /// `is_squashed` (CleanupSpec T3). Returns how many were cancelled.
    pub fn cancel_speculative<F: Fn(SpecTag) -> bool>(
        &mut self,
        now: Cycle,
        is_squashed: F,
    ) -> usize {
        self.cancel_speculative_lines(now, is_squashed).len()
    }

    /// Like [`MshrFile::cancel_speculative`], but returns the cancelled
    /// lines themselves (telemetry wants one `mshr_cancel` event per
    /// line, not just a count).
    pub fn cancel_speculative_lines<F: Fn(SpecTag) -> bool>(
        &mut self,
        now: Cycle,
        is_squashed: F,
    ) -> Vec<LineAddr> {
        self.retire_completed(now);
        let mut cancelled = Vec::new();
        self.entries.retain(|e| {
            let squashed = e.spec.map(&is_squashed).unwrap_or(false);
            if squashed {
                cancelled.push(e.line);
            }
            !squashed
        });
        self.cancelled_speculative += cancelled.len() as u64;
        self.released_total += cancelled.len() as u64;
        cancelled
    }

    /// Latest completion among inflight *non-speculative* entries — what
    /// CleanupSpec waits for in T4 before starting cleanup.
    pub fn latest_safe_completion(&mut self, now: Cycle) -> Option<Cycle> {
        self.retire_completed(now);
        self.entries
            .iter()
            .filter(|e| e.spec.is_none())
            .map(|e| e.complete_cycle)
            .max()
    }

    /// Highest simultaneous occupancy observed.
    pub fn peak_occupancy(&self) -> usize {
        self.peak_occupancy
    }

    /// Total speculative entries cancelled over the run.
    pub fn cancelled_speculative(&self) -> u64 {
        self.cancelled_speculative
    }

    /// Capacity of the file.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lifetime allocations (for leak accounting).
    pub fn allocated_total(&self) -> u64 {
        self.allocated_total
    }

    /// Lifetime releases: retirements plus cancellations.
    pub fn released_total(&self) -> u64 {
        self.released_total
    }

    /// Checks the allocate/release ledger against the live entry list.
    ///
    /// # Errors
    ///
    /// Returns `(allocated, released, live)` when the ledger disagrees
    /// with the entries actually held, or when occupancy exceeds
    /// capacity — either means an entry leaked or was double-freed.
    pub fn verify_accounting(&self) -> Result<(), (u64, u64, usize)> {
        let live = self.entries.len();
        let balanced = self.allocated_total == self.released_total + live as u64;
        if balanced && live <= self.capacity {
            Ok(())
        } else {
            Err((self.allocated_total, self.released_total, live))
        }
    }

    /// Registers the file's counters under the `mshr.` namespace.
    pub fn record_metrics(&self, reg: &mut unxpec_telemetry::MetricsRegistry) {
        reg.set("mshr.capacity", self.capacity as u64);
        reg.set("mshr.peak_occupancy", self.peak_occupancy as u64);
        reg.set("mshr.cancelled_speculative", self.cancelled_speculative);
        reg.set("mshr.allocated_total", self.allocated_total);
        reg.set("mshr.released_total", self.released_total);
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;

    #[test]
    fn merge_finds_inflight_entry() {
        let mut m = MshrFile::new(4);
        m.allocate(LineAddr::new(5), 0, 120, None).unwrap();
        let e = m.lookup(LineAddr::new(5), 60).unwrap();
        assert_eq!(e.complete_cycle, 120);
        assert!(m.lookup(LineAddr::new(6), 60).is_none());
    }

    #[test]
    fn full_file_reports_earliest_free() {
        let mut m = MshrFile::new(2);
        m.allocate(LineAddr::new(1), 0, 100, None).unwrap();
        m.allocate(LineAddr::new(2), 0, 90, None).unwrap();
        assert_eq!(m.allocate(LineAddr::new(3), 0, 200, None), Err(90));
    }

    #[test]
    fn speculative_cancellation_only_hits_squashed_epochs() {
        let mut m = MshrFile::new(8);
        m.allocate(LineAddr::new(1), 0, 500, Some(SpecTag(1)))
            .unwrap();
        m.allocate(LineAddr::new(2), 0, 500, Some(SpecTag(2)))
            .unwrap();
        m.allocate(LineAddr::new(3), 0, 500, None).unwrap();
        let n = m.cancel_speculative(10, |t| t == SpecTag(1));
        assert_eq!(n, 1);
        assert_eq!(m.occupancy(10), 2);
        assert_eq!(m.cancelled_speculative(), 1);
    }

    #[test]
    fn cancel_lines_reports_which_entries_died() {
        let mut m = MshrFile::new(8);
        m.allocate(LineAddr::new(1), 0, 500, Some(SpecTag(1)))
            .unwrap();
        m.allocate(LineAddr::new(2), 0, 500, Some(SpecTag(2)))
            .unwrap();
        m.allocate(LineAddr::new(3), 0, 500, None).unwrap();
        let lines = m.cancel_speculative_lines(10, |t| t.0 >= 1);
        assert_eq!(lines, vec![LineAddr::new(1), LineAddr::new(2)]);
        assert_eq!(m.occupancy(10), 1);
    }

    #[test]
    fn metrics_reflect_file_state() {
        let mut m = MshrFile::new(4);
        m.allocate(LineAddr::new(1), 0, 500, Some(SpecTag(1)))
            .unwrap();
        m.allocate(LineAddr::new(2), 0, 500, None).unwrap();
        m.cancel_speculative(10, |_| true);
        let mut reg = unxpec_telemetry::MetricsRegistry::new();
        m.record_metrics(&mut reg);
        assert_eq!(reg.counter("mshr.capacity"), 4);
        assert_eq!(reg.counter("mshr.peak_occupancy"), 2);
        assert_eq!(reg.counter("mshr.cancelled_speculative"), 1);
    }

    #[test]
    fn latest_safe_completion_ignores_speculative() {
        let mut m = MshrFile::new(8);
        m.allocate(LineAddr::new(1), 0, 300, Some(SpecTag(1)))
            .unwrap();
        assert_eq!(m.latest_safe_completion(0), None);
        m.allocate(LineAddr::new(2), 0, 250, None).unwrap();
        assert_eq!(m.latest_safe_completion(0), Some(250));
    }

    #[test]
    fn ledger_balances_across_allocate_retire_and_cancel() {
        let mut m = MshrFile::new(4);
        m.allocate(LineAddr::new(1), 0, 50, None).unwrap();
        m.allocate(LineAddr::new(2), 0, 500, Some(SpecTag(1)))
            .unwrap();
        m.allocate(LineAddr::new(3), 0, 500, None).unwrap();
        assert!(m.verify_accounting().is_ok());
        m.occupancy(60); // retires line 1
        m.cancel_speculative(60, |_| true); // cancels line 2
        assert!(m.verify_accounting().is_ok());
        assert_eq!(m.allocated_total(), 3);
        assert_eq!(m.released_total(), 2);
    }

    #[test]
    fn entries_retire_on_completion() {
        let mut m = MshrFile::new(1);
        m.allocate(LineAddr::new(1), 0, 50, None).unwrap();
        assert_eq!(m.occupancy(49), 1);
        assert_eq!(m.occupancy(50), 0);
        assert_eq!(m.peak_occupancy(), 1);
    }
}
