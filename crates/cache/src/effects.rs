//! Microarchitectural side effects reported by cache accesses.
//!
//! The unXpec channel exists because the *amount* of state change caused
//! by transient loads is visible through rollback time. The hierarchy
//! therefore reports every fill with enough precision — level, set, way,
//! displaced victim — for an Undo defense to (a) price the rollback and
//! (b) actually revert the state.

use unxpec_mem::LineAddr;

use crate::Cycle;

/// Which level serviced an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HitLevel {
    /// Hit in the L1 data cache.
    L1,
    /// Missed L1, hit L2.
    L2,
    /// Missed both levels, serviced from memory.
    Memory,
    /// Merged into an already-inflight MSHR entry for the same line.
    MshrMerge,
}

impl HitLevel {
    /// Whether the access changed L1 state (installed a line).
    pub fn filled_l1(self) -> bool {
        matches!(self, HitLevel::L2 | HitLevel::Memory)
    }
}

/// A line displaced by a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Victim {
    /// The displaced line.
    pub line: LineAddr,
    /// Whether it was dirty (its writeback is part of rollback cost).
    pub dirty: bool,
    /// Whether the victim itself was still a speculative install.
    pub was_speculative: bool,
}

/// One state change performed by an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effect {
    /// A line was installed into L1 at `(set, way)`, displacing `victim`
    /// if `Some`.
    FillL1 {
        /// Installed line.
        line: LineAddr,
        /// Set index within L1.
        set: usize,
        /// Way the line occupies.
        way: usize,
        /// Displaced line, if the way was valid.
        victim: Option<Victim>,
    },
    /// A line was installed into L2 at `(set, way)`.
    FillL2 {
        /// Installed line.
        line: LineAddr,
        /// Set index within L2 (post-CEASER).
        set: usize,
        /// Way the line occupies.
        way: usize,
        /// Displaced line, if the way was valid.
        victim: Option<Victim>,
    },
}

impl Effect {
    /// The line this effect installed.
    pub fn installed_line(&self) -> LineAddr {
        match *self {
            Effect::FillL1 { line, .. } | Effect::FillL2 { line, .. } => line,
        }
    }

    /// Whether this is an L1 fill.
    pub fn is_l1(&self) -> bool {
        matches!(self, Effect::FillL1 { .. })
    }

    /// The displaced victim, if any.
    pub fn victim(&self) -> Option<Victim> {
        match *self {
            Effect::FillL1 { victim, .. } | Effect::FillL2 { victim, .. } => victim,
        }
    }
}

/// What a cross-core (or SMT-sibling) read request observed.
///
/// The requester can time the response — a fast answer reveals the line
/// was resident, which is exactly the probe CleanupSpec defeats with
/// dummy misses for speculatively installed lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExternalProbe {
    /// Response latency seen by the remote requester.
    pub latency: Cycle,
    /// Whether the requester can tell the line was supplied from this
    /// core's caches.
    pub observed_hit: bool,
    /// Previous coherence state if the probe downgraded the line.
    pub downgraded_from: Option<crate::line::CoherenceState>,
}

/// Result of a data access against the hierarchy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Cycle the access was issued.
    pub issue_cycle: Cycle,
    /// Cycle the data is available.
    pub complete_cycle: Cycle,
    /// Which level serviced the access.
    pub level: HitLevel,
    /// State changes made on the fill path.
    pub effects: Vec<Effect>,
}

impl AccessOutcome {
    /// Issue-to-data latency in cycles.
    pub fn latency(&self) -> Cycle {
        self.complete_cycle - self.issue_cycle
    }

    /// Whether the access was an L1 hit (left no footprint).
    pub fn is_l1_hit(&self) -> bool {
        self.level == HitLevel::L1
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;

    #[test]
    fn hit_level_fill_predicate() {
        assert!(!HitLevel::L1.filled_l1());
        assert!(HitLevel::L2.filled_l1());
        assert!(HitLevel::Memory.filled_l1());
        assert!(!HitLevel::MshrMerge.filled_l1());
    }

    #[test]
    fn effect_accessors() {
        let e = Effect::FillL1 {
            line: LineAddr::new(9),
            set: 1,
            way: 2,
            victim: Some(Victim {
                line: LineAddr::new(4),
                dirty: false,
                was_speculative: false,
            }),
        };
        assert!(e.is_l1());
        assert_eq!(e.installed_line(), LineAddr::new(9));
        assert_eq!(e.victim().unwrap().line, LineAddr::new(4));
    }

    #[test]
    fn outcome_latency() {
        let o = AccessOutcome {
            issue_cycle: 10,
            complete_cycle: 14,
            level: HitLevel::L1,
            effects: vec![],
        };
        assert_eq!(o.latency(), 4);
        assert!(o.is_l1_hit());
    }
}
