//! A single set-associative cache level.

use unxpec_mem::LineAddr;

use crate::ceaser::CeaserMapper;
use crate::config::CacheConfig;
use crate::effects::Victim;
use crate::error::CacheError;
use crate::line::{CoherenceState, LineMeta, SpecTag};
use crate::nomo::NomoPartition;
use crate::replacement::PolicyImpl;
use crate::stats::CacheStats;

/// How the set index is derived from a line address.
#[derive(Debug)]
enum IndexMapper {
    /// Conventional `line % sets` indexing (L1).
    Modulo,
    /// CEASER keyed permutation (L2).
    Ceaser(CeaserMapper),
}

/// Result of installing a line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InsertOutcome {
    /// Set the line went into.
    pub set: usize,
    /// Way the line went into.
    pub way: usize,
    /// Line displaced, if the chosen way held one.
    pub victim: Option<Victim>,
}

/// One level of the hierarchy: tag array, replacement policy, optional
/// NoMo partition, optional CEASER indexing.
#[derive(Debug)]
pub struct Cache {
    name: &'static str,
    cfg: CacheConfig,
    ways: Vec<Option<LineMeta>>, // sets * ways, row-major
    policy: PolicyImpl,
    mapper: IndexMapper,
    partition: NomoPartition,
    stats: CacheStats,
    /// Valid-line count, maintained incrementally by every slot
    /// mutation so occupancy queries never rescan the tag array.
    resident: usize,
}

impl Cache {
    /// Builds a conventionally indexed cache (L1 style).
    pub fn new(name: &'static str, cfg: CacheConfig, partition: NomoPartition, seed: u64) -> Self {
        cfg.validate();
        let policy = PolicyImpl::new(cfg.replacement, cfg.sets, cfg.ways, seed);
        Cache {
            name,
            ways: vec![None; cfg.sets * cfg.ways],
            policy,
            mapper: IndexMapper::Modulo,
            partition,
            stats: CacheStats::default(),
            resident: 0,
            cfg,
        }
    }

    /// Builds a CEASER-indexed cache (L2 style).
    pub fn new_randomized(
        name: &'static str,
        cfg: CacheConfig,
        seed: u64,
        ceaser_seed: u64,
    ) -> Self {
        cfg.validate();
        let ways = cfg.ways;
        let policy = PolicyImpl::new(cfg.replacement, cfg.sets, ways, seed);
        Cache {
            name,
            ways: vec![None; cfg.sets * cfg.ways],
            policy,
            mapper: IndexMapper::Ceaser(CeaserMapper::new(ceaser_seed, cfg.sets)),
            partition: NomoPartition::disabled(ways),
            stats: CacheStats::default(),
            resident: 0,
            cfg,
        }
    }

    /// The cache's display name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The configuration this level was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// The set index `line` maps to.
    pub fn set_index(&self, line: LineAddr) -> usize {
        match &self.mapper {
            IndexMapper::Modulo => (line.raw() as usize) & (self.cfg.sets - 1),
            IndexMapper::Ceaser(m) => m.set_index(line),
        }
    }

    fn slot(&self, set: usize, way: usize) -> &Option<LineMeta> {
        &self.ways[set * self.cfg.ways + way]
    }

    fn slot_mut(&mut self, set: usize, way: usize) -> &mut Option<LineMeta> {
        &mut self.ways[set * self.cfg.ways + way]
    }

    /// The slots of `set`, in way order (a contiguous row of the flat
    /// tag array, so the scan is a single bounds check plus a linear
    /// walk).
    fn set_slots(&self, set: usize) -> &[Option<LineMeta>] {
        let base = set * self.cfg.ways;
        &self.ways[base..base + self.cfg.ways]
    }

    /// Finds `line` without touching replacement state or stats.
    pub fn probe(&self, line: LineAddr) -> Option<(usize, usize)> {
        let set = self.set_index(line);
        self.set_slots(set)
            .iter()
            .position(|slot| matches!(slot, Some(meta) if meta.line == line))
            .map(|way| (set, way))
    }

    /// Whether `line` is resident.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.probe(line).is_some()
    }

    /// Metadata of `line` if resident.
    pub fn meta(&self, line: LineAddr) -> Option<LineMeta> {
        self.probe(line).and_then(|(s, w)| *self.slot(s, w))
    }

    /// Performs a lookup for an access: updates hit/miss stats and, on a
    /// hit, replacement state. Returns the hit `(set, way)`.
    pub fn access(&mut self, line: LineAddr) -> Option<(usize, usize)> {
        match self.probe(line) {
            Some((set, way)) => {
                self.stats.hits += 1;
                self.policy.on_access(set, way);
                Some((set, way))
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Installs `meta`, choosing a victim way for `thread` under the NoMo
    /// partition. Prefers an invalid allowed way; otherwise asks the
    /// replacement policy.
    ///
    /// # Panics
    ///
    /// Panics if the line is already resident (fills are only issued on
    /// misses).
    pub fn insert(&mut self, meta: LineMeta, thread: usize) -> InsertOutcome {
        assert!(
            !self.contains(meta.line),
            "{}: double fill of {}",
            self.name,
            meta.line
        );
        let set = self.set_index(meta.line);
        let allowed = self.partition.allowed_ways(thread);
        let way = match allowed
            .iter()
            .copied()
            .find(|&w| self.slot(set, w).is_none())
        {
            Some(invalid_way) => invalid_way,
            None => self.policy.choose_victim(set, allowed),
        };
        let victim = self.slot(set, way).map(|old| {
            self.stats.evictions += 1;
            if old.state.is_dirty() {
                self.stats.writebacks += 1;
            }
            Victim {
                line: old.line,
                dirty: old.state.is_dirty(),
                was_speculative: old.spec.is_some(),
            }
        });
        if victim.is_none() {
            self.resident += 1;
        }
        *self.slot_mut(set, way) = Some(meta);
        self.policy.on_access(set, way);
        InsertOutcome { set, way, victim }
    }

    /// Re-installs `line` into an exact `(set, way)` — the restoration
    /// step of an Undo rollback, which puts the evicted line back into
    /// the way its evictor is being removed from.
    ///
    /// # Panics
    ///
    /// Panics if the slot is occupied by a different valid line or the
    /// coordinates are out of range.
    pub fn insert_at(&mut self, set: usize, way: usize, meta: LineMeta) {
        assert!(
            set < self.cfg.sets && way < self.cfg.ways,
            "slot out of range"
        );
        match self.slot(set, way) {
            Some(existing) => assert_eq!(
                existing.line, meta.line,
                "{}: restoring over a different resident line",
                self.name
            ),
            None => self.resident += 1,
        }
        self.stats.restores += 1;
        *self.slot_mut(set, way) = Some(meta);
        self.policy.on_access(set, way);
    }

    /// Invalidates `line`. Returns the vacated `(set, way, meta)`.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<(usize, usize, LineMeta)> {
        let (set, way) = self.probe(line)?;
        let meta = self.slot_mut(set, way).take()?;
        self.resident -= 1;
        self.stats.invalidations += 1;
        if meta.state.is_dirty() {
            self.stats.writebacks += 1;
        }
        Some((set, way, meta))
    }

    /// Marks a resident line dirty (a committed store hit).
    pub fn mark_dirty(&mut self, line: LineAddr) -> bool {
        if let Some((set, way)) = self.probe(line) {
            if let Some(meta) = self.slot_mut(set, way).as_mut() {
                meta.state = CoherenceState::Modified;
                return true;
            }
        }
        false
    }

    /// Downgrades `line` from M/E to Shared (a remote reader obtained a
    /// copy). Returns the previous state if the line was resident.
    pub fn downgrade(&mut self, line: LineAddr) -> Option<CoherenceState> {
        let (set, way) = self.probe(line)?;
        let meta = self.slot_mut(set, way).as_mut()?;
        let prev = meta.state;
        if prev.is_valid() {
            meta.state = CoherenceState::Shared;
        }
        Some(prev)
    }

    /// Clears the speculative tag of `line` (its epoch resolved correct).
    pub fn commit_spec(&mut self, line: LineAddr) {
        if let Some((set, way)) = self.probe(line) {
            if let Some(meta) = self.slot_mut(set, way).as_mut() {
                meta.commit();
            }
        }
    }

    /// Whether `line` is resident and still tagged speculative.
    pub fn is_speculative(&self, line: LineAddr) -> bool {
        self.meta(line).map(|m| m.spec.is_some()).unwrap_or(false)
    }

    /// Speculative tag of `line` if resident and tagged.
    pub fn spec_tag(&self, line: LineAddr) -> Option<SpecTag> {
        self.meta(line).and_then(|m| m.spec)
    }

    /// Counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets counters (not contents).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Number of valid lines currently resident. O(1): the count is
    /// maintained incrementally by insert/invalidate/flush rather than
    /// rescanning the sets×ways tag array.
    pub fn resident_count(&self) -> usize {
        debug_assert_eq!(
            self.resident,
            self.ways.iter().filter(|w| w.is_some()).count(),
            "{}: occupancy counter drifted from the tag array",
            self.name
        );
        self.resident
    }

    /// Recounts the tag array and checks it against the incremental
    /// occupancy counter — the sanitizer's ground-truth cross-check,
    /// available in release builds (unlike the `debug_assert` in
    /// [`Cache::resident_count`]).
    ///
    /// # Errors
    ///
    /// Returns `(counter, recount)` when the incremental counter has
    /// drifted from the tag array.
    pub fn verify_occupancy(&self) -> Result<(), (usize, usize)> {
        let recount = self.ways.iter().filter(|w| w.is_some()).count();
        if self.resident == recount {
            Ok(())
        } else {
            Err((self.resident, recount))
        }
    }

    /// Corrupts the incremental occupancy counter by `delta` without
    /// touching the tag array. Exists solely so mutation tests can
    /// prove the sanitizer catches counter drift; never call it from
    /// simulation code.
    #[doc(hidden)]
    pub fn corrupt_resident_counter_for_tests(&mut self, delta: isize) {
        self.resident = self.resident.saturating_add_signed(delta);
    }

    /// Phantom-touches `(set, way)` in the replacement policy — the
    /// fault injector's replacement-state perturbation. Out-of-range
    /// coordinates are ignored. Tag state, stats, and occupancy are
    /// untouched; only future victim choices shift.
    pub fn perturb_replacement(&mut self, set: usize, way: usize) {
        if set < self.cfg.sets && way < self.cfg.ways {
            self.policy.on_access(set, way);
        }
    }

    /// The line currently held in `(set, way)`, if any.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range.
    pub fn slot_line(&self, set: usize, way: usize) -> Option<LineAddr> {
        assert!(
            set < self.cfg.sets && way < self.cfg.ways,
            "slot out of range"
        );
        self.slot(set, way).map(|m| m.line)
    }

    /// The slots of `set` in way order, without copying the row.
    ///
    /// # Panics
    ///
    /// Panics if `set` is out of range.
    pub fn set_lines(&self, set: usize) -> impl Iterator<Item = Option<LineMeta>> + '_ {
        assert!(set < self.cfg.sets, "set out of range");
        self.set_slots(set).iter().copied()
    }

    /// Copies the slots of `set` into `buf` (cleared first), so callers
    /// that need an owned snapshot can reuse one scratch buffer across
    /// calls instead of allocating a fresh `Vec` per set.
    ///
    /// # Panics
    ///
    /// Panics if `set` is out of range.
    pub fn read_set_into(&self, set: usize, buf: &mut Vec<Option<LineMeta>>) {
        assert!(set < self.cfg.sets, "set out of range");
        buf.clear();
        buf.extend_from_slice(self.set_slots(set));
    }

    /// Drops every resident line (used by CEASER remap, which must migrate
    /// or flush residents when the key changes).
    pub fn flush_all(&mut self) {
        for slot in &mut self.ways {
            if slot.take().is_some() {
                self.stats.invalidations += 1;
            }
        }
        self.resident = 0;
    }

    /// Re-keys the CEASER mapping and flushes residents.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::RemapUnsupported`] (leaving contents and
    /// mapping untouched) if this cache is not CEASER-indexed; a remap
    /// of a modulo-indexed cache is a configuration bug the caller must
    /// surface, not a reason to take down a sweep worker.
    pub fn remap(&mut self, seed: u64) -> Result<(), CacheError> {
        match &mut self.mapper {
            IndexMapper::Ceaser(m) => m.remap(seed),
            IndexMapper::Modulo => return Err(CacheError::RemapUnsupported { cache: self.name }),
        }
        self.flush_all();
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;
    use crate::replacement::ReplacementKind;

    fn small_cache() -> Cache {
        Cache::new(
            "t",
            CacheConfig {
                sets: 4,
                ways: 2,
                hit_latency: 1,
                replacement: ReplacementKind::Lru,
            },
            NomoPartition::disabled(2),
            0,
        )
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small_cache();
        let line = LineAddr::new(8);
        assert!(c.access(line).is_none());
        c.insert(LineMeta::clean(line), 0);
        assert!(c.access(line).is_some());
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn insert_prefers_invalid_way() {
        let mut c = small_cache();
        let a = LineAddr::new(0);
        let b = LineAddr::new(4); // same set (4 sets): 0 % 4 == 4 % 4
        let o1 = c.insert(LineMeta::clean(a), 0);
        assert_eq!(o1.victim, None);
        let o2 = c.insert(LineMeta::clean(b), 0);
        assert_eq!(o2.victim, None);
        assert_ne!(o1.way, o2.way);
    }

    #[test]
    fn conflict_evicts_lru_victim() {
        let mut c = small_cache();
        let lines = [LineAddr::new(0), LineAddr::new(4), LineAddr::new(8)];
        c.insert(LineMeta::clean(lines[0]), 0);
        c.insert(LineMeta::clean(lines[1]), 0);
        c.access(lines[0]); // make lines[1] the LRU
        let out = c.insert(LineMeta::clean(lines[2]), 0);
        assert_eq!(out.victim.unwrap().line, lines[1]);
        assert!(c.contains(lines[0]));
        assert!(!c.contains(lines[1]));
    }

    #[test]
    fn restore_roundtrip_is_exact() {
        let mut c = small_cache();
        let original = LineAddr::new(0);
        let transient = LineAddr::new(4);
        c.insert(LineMeta::clean(original), 0);
        c.insert(LineMeta::clean(LineAddr::new(8)), 0); // fill the set
                                                        // Force an eviction of `original` by inserting into its way.
        c.access(LineAddr::new(8));
        let out = c.insert(LineMeta::speculative(transient, SpecTag(1)), 0);
        let victim = out.victim.expect("set was full");
        // Rollback: invalidate transient line, restore victim into the
        // vacated way.
        let (set, way, meta) = c.invalidate(transient).unwrap();
        assert!(meta.spec.is_some());
        c.insert_at(set, way, LineMeta::clean(victim.line));
        assert!(c.contains(original) || c.contains(victim.line));
        assert!(!c.contains(transient));
        assert_eq!(c.stats().restores, 1);
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn nomo_partition_limits_fill_ways() {
        let cfg = CacheConfig {
            sets: 2,
            ways: 4,
            hit_latency: 1,
            replacement: ReplacementKind::Lru,
        };
        let mut c = Cache::new("nomo", cfg, NomoPartition::new(4, 1, 2), 0);
        // Thread 1 may only use way 1 plus shared ways 2..4.
        for i in 0..8 {
            c.insert(LineMeta::clean(LineAddr::new(i * 2)), 1);
        }
        // Way 0 of both sets must still be empty.
        assert!(c.slot_line(0, 0).is_none());
        assert!(c.slot_line(1, 0).is_none());
    }

    #[test]
    fn mark_dirty_then_eviction_counts_writeback() {
        let mut c = small_cache();
        let line = LineAddr::new(0);
        c.insert(LineMeta::clean(line), 0);
        assert!(c.mark_dirty(line));
        c.insert(LineMeta::clean(LineAddr::new(4)), 0);
        c.insert(LineMeta::clean(LineAddr::new(8)), 0); // evicts something
        let evicted_dirty = c.stats().writebacks;
        c.invalidate(line);
        assert!(evicted_dirty > 0 || c.stats().writebacks > 0);
    }

    #[test]
    fn spec_tag_lifecycle() {
        let mut c = small_cache();
        let line = LineAddr::new(12);
        c.insert(LineMeta::speculative(line, SpecTag(9)), 0);
        assert!(c.is_speculative(line));
        assert_eq!(c.spec_tag(line), Some(SpecTag(9)));
        c.commit_spec(line);
        assert!(!c.is_speculative(line));
    }

    #[test]
    #[should_panic(expected = "double fill")]
    fn double_fill_panics() {
        let mut c = small_cache();
        c.insert(LineMeta::clean(LineAddr::new(1)), 0);
        c.insert(LineMeta::clean(LineAddr::new(1)), 0);
    }

    #[test]
    fn randomized_cache_uses_ceaser_index() {
        let cfg = CacheConfig {
            sets: 64,
            ways: 2,
            hit_latency: 1,
            replacement: ReplacementKind::Random,
        };
        let c = Cache::new_randomized("l2", cfg.clone(), 0, 0x1234);
        let plain = Cache::new("plain", cfg, NomoPartition::disabled(2), 0);
        let differs =
            (0..128u64).any(|i| c.set_index(LineAddr::new(i)) != plain.set_index(LineAddr::new(i)));
        assert!(differs, "CEASER indexing should differ from modulo");
    }

    #[test]
    fn remap_flushes_contents() {
        let cfg = CacheConfig {
            sets: 16,
            ways: 2,
            hit_latency: 1,
            replacement: ReplacementKind::Random,
        };
        let mut c = Cache::new_randomized("l2", cfg, 0, 1);
        c.insert(LineMeta::clean(LineAddr::new(5)), 0);
        c.remap(99).expect("randomized cache remaps");
        assert_eq!(c.resident_count(), 0);
    }

    #[test]
    fn remap_on_modulo_cache_is_a_typed_error() {
        let mut c = small_cache();
        let line = LineAddr::new(3);
        c.insert(LineMeta::clean(line), 0);
        let err = c.remap(7).expect_err("modulo cache must refuse");
        assert_eq!(err, CacheError::RemapUnsupported { cache: "t" });
        // The refusal leaves contents untouched.
        assert!(c.contains(line));
        assert_eq!(c.resident_count(), 1);
    }

    #[test]
    fn occupancy_counter_tracks_every_mutation() {
        let mut c = small_cache();
        assert_eq!(c.resident_count(), 0);
        // Fill beyond capacity of one set: evictions keep the count flat.
        for i in 0..3 {
            c.insert(LineMeta::clean(LineAddr::new(i * 4)), 0);
        }
        assert_eq!(c.resident_count(), 2);
        let (set, way, _) = c.invalidate(LineAddr::new(8)).expect("resident");
        assert_eq!(c.resident_count(), 1);
        // Restore into the vacated slot counts back up; restoring over
        // the same line again does not double-count.
        c.insert_at(set, way, LineMeta::clean(LineAddr::new(8)));
        assert_eq!(c.resident_count(), 2);
        c.insert_at(set, way, LineMeta::clean(LineAddr::new(8)));
        assert_eq!(c.resident_count(), 2);
        c.flush_all();
        assert_eq!(c.resident_count(), 0);
    }

    #[test]
    fn set_lines_matches_slot_view() {
        let mut c = small_cache();
        c.insert(LineMeta::clean(LineAddr::new(0)), 0);
        c.insert(LineMeta::clean(LineAddr::new(4)), 0);
        let row: Vec<Option<LineAddr>> = c.set_lines(0).map(|m| m.map(|m| m.line)).collect();
        assert_eq!(row.len(), 2);
        for (way, line) in row.iter().enumerate() {
            assert_eq!(*line, c.slot_line(0, way));
        }
        let mut scratch = vec![None; 99];
        c.read_set_into(0, &mut scratch);
        assert_eq!(scratch.len(), 2);
        assert_eq!(scratch[0].map(|m| m.line), row[0]);
    }
}
