//! Background-noise injection.
//!
//! gem5 runs are nearly deterministic; real machines are not. The paper's
//! Figs. 7/8 show spread-out latency distributions and Figs. 10/11 show
//! single-sample decoding errors — both are products of system noise. The
//! noise model injects (a) small per-memory-access jitter (DRAM scheduling
//! and bank conflicts) and (b) rare heavy-tailed interference spikes
//! (refresh, SMT/other-process contention), each drawn from a seeded RNG
//! so experiments stay reproducible.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::Cycle;

/// Parametric system-noise model.
#[derive(Debug, Clone)]
pub struct NoiseModel {
    /// Uniform jitter `0..=jitter` added to every memory service.
    jitter: Cycle,
    /// Probability of an interference spike on a memory service.
    spike_prob: f64,
    /// Mean extra cycles of a spike (geometric tail).
    spike_mean: Cycle,
    rng: SmallRng,
    enabled: bool,
}

impl NoiseModel {
    /// Creates a custom noise model.
    pub fn new(seed: u64, jitter: Cycle, spike_prob: f64, spike_mean: Cycle) -> Self {
        NoiseModel {
            jitter,
            spike_prob,
            spike_mean,
            rng: SmallRng::seed_from_u64(seed),
            enabled: true,
        }
    }

    /// No noise at all: timing-difference measurements (paper Figs. 2, 3
    /// and 6) are taken in this quiet configuration.
    pub fn quiet() -> Self {
        let mut model = Self::new(0, 0, 0.0, 0);
        model.enabled = false;
        model
    }

    /// Default simulated-system noise, calibrated so that single-sample
    /// decoding accuracy lands near the paper's 86.7% (no eviction sets)
    /// and 91.6% (with eviction sets).
    pub fn default_sim(seed: u64) -> Self {
        Self::new(seed, 14, 0.04, 40)
    }

    /// Noisier, host-machine-like configuration used to reproduce the
    /// i7-8550U experiment (paper Fig. 13).
    pub fn host_like(seed: u64) -> Self {
        Self::new(seed, 30, 0.15, 60)
    }

    /// Whether the model injects anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Extra cycles to add to one memory service.
    pub fn sample_mem_extra(&mut self) -> Cycle {
        if !self.enabled {
            return 0;
        }
        let mut extra = if self.jitter > 0 {
            self.rng.gen_range(0..=self.jitter)
        } else {
            0
        };
        if self.spike_prob > 0.0 && self.rng.gen_bool(self.spike_prob) {
            // Geometric-ish tail around spike_mean.
            let u: f64 = self.rng.gen_range(0.05..1.0f64);
            extra += (-u.ln() * self.spike_mean as f64) as Cycle;
        }
        extra
    }
}

impl Default for NoiseModel {
    fn default() -> Self {
        Self::quiet()
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;

    #[test]
    fn quiet_model_adds_nothing() {
        let mut m = NoiseModel::quiet();
        for _ in 0..100 {
            assert_eq!(m.sample_mem_extra(), 0);
        }
    }

    #[test]
    fn default_sim_is_bounded_and_nonzero() {
        let mut m = NoiseModel::default_sim(1);
        let samples: Vec<Cycle> = (0..2000).map(|_| m.sample_mem_extra()).collect();
        assert!(samples.iter().any(|&s| s > 0));
        // Uniform part bounded by 14, spikes extend it but stay sane.
        assert!(samples.iter().all(|&s| s < 500));
    }

    #[test]
    fn seeded_models_reproduce() {
        let mut a = NoiseModel::default_sim(9);
        let mut b = NoiseModel::default_sim(9);
        for _ in 0..100 {
            assert_eq!(a.sample_mem_extra(), b.sample_mem_extra());
        }
    }

    #[test]
    fn host_like_is_noisier_on_average() {
        let mean = |mut m: NoiseModel| {
            (0..4000).map(|_| m.sample_mem_extra()).sum::<u64>() as f64 / 4000.0
        };
        assert!(mean(NoiseModel::host_like(2)) > mean(NoiseModel::default_sim(2)));
    }
}
