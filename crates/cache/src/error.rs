//! Typed cache-layer errors.
//!
//! Library code must not panic on recoverable misuse: under the sweep
//! harness a panic poisons a whole worker and burns a retry, so
//! operations that can legitimately be refused (like remapping a
//! conventionally indexed cache) report a typed error the caller can
//! route into a trial failure instead.

/// An operation a cache level refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheError {
    /// `remap` was called on a cache without a keyed index mapper
    /// (CEASER remaps are only meaningful on randomized caches).
    RemapUnsupported {
        /// Display name of the cache that refused.
        cache: &'static str,
    },
}

impl std::fmt::Display for CacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheError::RemapUnsupported { cache } => {
                write!(f, "{cache}: remap on a non-randomized cache")
            }
        }
    }
}

impl std::error::Error for CacheError {}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_cache() {
        let e = CacheError::RemapUnsupported { cache: "L1D" };
        assert_eq!(e.to_string(), "L1D: remap on a non-randomized cache");
    }
}
