//! Two-level cache hierarchy simulator for the unxpec reproduction.
//!
//! The hierarchy mirrors the configuration the unXpec paper evaluates on
//! (Table I of the paper): private L1 I/D caches and a shared L2, 64-byte
//! lines, 2 GHz clock, ~50 ns memory round trip after L2. On top of the
//! plain geometry it implements the mechanisms the CleanupSpec defense and
//! the unXpec attack rely on:
//!
//! * **Speculative fill tagging** — every line installed by a speculative
//!   load carries the [`SpecTag`] of the speculation epoch, and every fill
//!   reports an [`Effect`] describing the exact `(set, way)` it occupied
//!   and the victim it displaced, so an Undo defense can roll the state
//!   back precisely.
//! * **Random replacement** in L1 (CleanupSpec mandates it to close
//!   replacement-state channels), with LRU available for ablations.
//! * **NoMo way partitioning** of the L1 between hardware threads.
//! * **CEASER-style keyed index randomization** in the L2.
//! * **MSHRs** with miss merging and speculative-entry cancellation
//!   (CleanupSpec's T3 step).
//! * A **noise model** injecting memory-latency jitter so experiment
//!   distributions have realistic spread.
//!
//! # Examples
//!
//! ```
//! use unxpec_cache::{CacheHierarchy, HierarchyConfig};
//! use unxpec_mem::Addr;
//!
//! let mut hier = CacheHierarchy::new(HierarchyConfig::table_i(), 1);
//! let line = Addr::new(0x4000).line();
//! let miss = hier.access_data(line, 0, None);
//! let hit = hier.access_data(line, miss.complete_cycle, None);
//! // The second access hits in L1 and is far cheaper than the cold miss.
//! assert!(hit.latency() < miss.latency());
//! ```

mod cache;
mod ceaser;
mod config;
mod effects;
mod error;
mod fault;
mod hierarchy;
mod line;
mod mshr;
mod noise;
mod nomo;
mod replacement;
mod stats;

pub use cache::{Cache, InsertOutcome};
pub use ceaser::CeaserMapper;
pub use config::{CacheConfig, HierarchyConfig};
pub use effects::{AccessOutcome, Effect, ExternalProbe, HitLevel, Victim};
pub use error::CacheError;
pub use fault::{FaultInjector, FaultKind, FaultPlan, FaultRecord};
pub use hierarchy::CacheHierarchy;
pub use line::{CoherenceState, LineMeta, SpecTag};
pub use mshr::{MshrEntry, MshrFile};
pub use noise::NoiseModel;
pub use nomo::NomoPartition;
pub use replacement::{
    new_policy, LruPolicy, RandomPolicy, ReplacementKind, ReplacementPolicy, TreePlruPolicy,
};
pub use stats::CacheStats;

/// Simulator cycle count. The simulated clock runs at 2 GHz (Table I), so
/// one cycle is 0.5 ns.
pub type Cycle = u64;
