//! Unified telemetry for the unxpec simulator: a typed event bus, a
//! metrics registry, and trace exporters.
//!
//! The paper's signal is timing-shaped — the secret leaks through how
//! long CleanupSpec's rollback takes — so the simulator needs a
//! per-event, cycle-attributed view of what the pipeline, the cache
//! hierarchy, and the defense actually did, not just aggregate
//! counters. This crate provides that substrate:
//!
//! * [`Event`] — the typed vocabulary (dispatch/complete,
//!   hit/miss/fill/evict, MSHR alloc/merge/cancel, rollback steps),
//!   each variant cycle-stamped and `Copy`;
//! * [`Telemetry`] — the cloneable handle components emit through. A
//!   disabled handle makes [`Telemetry::emit`] a no-op: one branch, no
//!   heap allocation, no locking;
//! * [`RingBuffer`] — the bounded sink (newest-wins, drop-counting) so
//!   million-cycle runs cannot blow memory;
//! * [`MetricsRegistry`] — named counters and log₂-bucketed
//!   [`LogHistogram`]s with hand-rolled JSON/CSV export;
//! * exporters — [`chrome::chrome_trace_json`] (opens in
//!   `chrome://tracing` / Perfetto), [`span::spans_to_chrome_json`]
//!   (host-side spans, e.g. sweep-harness trials),
//!   [`timeline::rollback_timeline`] (ASCII), and the registry dumps.
//!
//! # Example
//!
//! ```
//! use unxpec_telemetry::{chrome, Event, Telemetry};
//!
//! let tel = Telemetry::ring(1024);
//! tel.emit(Event::SquashBegin {
//!     cycle: 100, branch_pc: 3, epoch: 1, squashed_loads: 1, squashed_insts: 2,
//! });
//! tel.emit(Event::SquashEnd { cycle: 122, branch_pc: 3, epoch: 1 });
//! let spans = chrome::rollback_spans(&tel.snapshot());
//! assert_eq!(spans[0].duration, 22);
//! ```

pub mod chrome;
pub mod event;
pub mod expose;
pub mod forensics;
pub mod json;
pub mod metrics;
pub mod probe;
pub mod profile;
pub mod span;
pub mod timeline;

pub use chrome::{chrome_trace_json, rollback_spans, RollbackSpan};
pub use event::{CacheLevel, Event, Track};
pub use expose::{prometheus_text, scrape, MetricsHub, MetricsServer};
pub use forensics::{fold_episodes, render_digest, trace_verdict, Episode};
pub use metrics::{LogHistogram, MetricsRegistry};
pub use probe::{CountingProbe, NullProbe, Probe, RingBuffer, Telemetry};
pub use profile::cycle_profile;
pub use span::{spans_to_chrome_json, Span, SpanNode};
pub use timeline::rollback_timeline;
