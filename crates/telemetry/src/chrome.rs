//! Chrome / Perfetto trace-event export.
//!
//! Produces the JSON Trace Event Format that `chrome://tracing` and
//! <https://ui.perfetto.dev> open directly. Each simulator layer gets
//! its own track (thread): pipeline, L1, L2, MSHR, and defense. Paired
//! events become duration spans — `squash_begin`/`squash_end` (the
//! defense's T2→T6 cleanup window, the quantity unXpec times) and
//! `dispatch`/`complete` per instruction — everything else renders as
//! an instant event. Timestamps are simulator cycles reported in the
//! `ts` field (the viewer's "µs" unit reads as cycles).

use crate::event::{Event, Track};

/// One rollback span reconstructed from the event stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RollbackSpan {
    /// Cycle cleanup began (branch resolution, T2).
    pub start: u64,
    /// Cleanup duration in cycles (T2→redirect).
    pub duration: u64,
    /// Static PC of the squashed branch.
    pub branch_pc: usize,
    /// Speculation epoch squashed.
    pub epoch: u64,
    /// Loads squashed with the frame.
    pub squashed_loads: u64,
}

/// Pairs `squash_begin`/`squash_end` events (by epoch) into spans,
/// oldest first. Unmatched begins (end fell out of the ring) are
/// dropped.
pub fn rollback_spans(events: &[Event]) -> Vec<RollbackSpan> {
    let mut open: Vec<(u64, u64, usize, u64)> = Vec::new(); // epoch, cycle, pc, loads
    let mut spans = Vec::new();
    for e in events {
        match *e {
            Event::SquashBegin {
                cycle,
                branch_pc,
                epoch,
                squashed_loads,
                ..
            } => open.push((epoch, cycle, branch_pc, squashed_loads)),
            Event::SquashEnd { cycle, epoch, .. } => {
                if let Some(pos) = open.iter().rposition(|(ep, ..)| *ep == epoch) {
                    let (ep, begin, pc, loads) = open.remove(pos);
                    spans.push(RollbackSpan {
                        start: begin,
                        duration: cycle.saturating_sub(begin),
                        branch_pc: pc,
                        epoch: ep,
                        squashed_loads: loads,
                    });
                }
            }
            _ => {}
        }
    }
    spans
}

fn push_args(out: &mut String, args: &[(&'static str, u64)]) {
    out.push_str("\"args\":{");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{k}\":{v}"));
    }
    out.push('}');
}

#[allow(clippy::too_many_arguments)]
fn push_event(
    out: &mut String,
    first: &mut bool,
    name: &str,
    ph: char,
    ts: u64,
    dur: Option<u64>,
    track: Track,
    args: &[(&'static str, u64)],
) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    out.push_str(&format!(
        "    {{\"name\":\"{name}\",\"ph\":\"{ph}\",\"ts\":{ts},"
    ));
    if let Some(d) = dur {
        out.push_str(&format!("\"dur\":{d},"));
    }
    if ph == 'i' {
        // Thread-scoped instant (renders as a tick on its own track).
        out.push_str("\"s\":\"t\",");
    }
    out.push_str(&format!("\"pid\":1,\"tid\":{},", track.tid()));
    push_args(out, args);
    out.push('}');
}

/// Serializes `events` as a Chrome trace-event JSON document.
///
/// The output is an object with a `traceEvents` array: per-track
/// metadata, duration (`ph:"X"`) spans for instructions and rollbacks,
/// and instant (`ph:"i"`) events for everything else.
pub fn chrome_trace_json(events: &[Event]) -> String {
    let mut out = String::from("{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n");
    let mut first = true;

    // Track naming metadata.
    for track in Track::ALL {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&format!(
            "    {{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
            track.tid(),
            track.name()
        ));
    }
    out.push_str(",\n    {\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":\"unxpec-sim\"}}");

    // Instruction spans: dispatch..complete paired by seq.
    let mut open_insts: Vec<(u64, u64, usize)> = Vec::new(); // seq, cycle, pc
    for e in events {
        match *e {
            Event::Dispatch { cycle, seq, pc } => open_insts.push((seq, cycle, pc)),
            Event::Complete {
                cycle,
                seq,
                pc,
                wrong_path,
            } => {
                if let Some(pos) = open_insts.iter().position(|(s, ..)| *s == seq) {
                    let (_, start, _) = open_insts.remove(pos);
                    push_event(
                        &mut out,
                        &mut first,
                        if wrong_path {
                            "inst.wrong_path"
                        } else {
                            "inst"
                        },
                        'X',
                        start,
                        Some(cycle.saturating_sub(start).max(1)),
                        Track::Pipeline,
                        &[
                            ("seq", seq),
                            ("pc", pc as u64),
                            ("wrong_path", wrong_path as u64),
                        ],
                    );
                }
            }
            _ => {}
        }
    }

    // Rollback spans on the defense track: the cleanup stall whose
    // duration is the unXpec timing channel.
    for span in rollback_spans(events) {
        push_event(
            &mut out,
            &mut first,
            "rollback",
            'X',
            span.start,
            Some(span.duration.max(1)),
            Track::Defense,
            &[
                ("branch_pc", span.branch_pc as u64),
                ("epoch", span.epoch),
                ("squashed_loads", span.squashed_loads),
                ("cleanup_cycles", span.duration),
            ],
        );
    }

    // Everything else as instants on the owning track.
    for e in events {
        match e {
            Event::Dispatch { .. }
            | Event::Complete { .. }
            | Event::SquashBegin { .. }
            | Event::SquashEnd { .. } => {}
            other => {
                push_event(
                    &mut out,
                    &mut first,
                    other.name(),
                    'i',
                    other.cycle(),
                    None,
                    other.track(),
                    &other.args(),
                );
            }
        }
    }

    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::CacheLevel;
    use crate::json;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::Dispatch {
                cycle: 10,
                seq: 1,
                pc: 0,
            },
            Event::CacheMiss {
                cycle: 12,
                level: CacheLevel::L1,
                line: 0x40,
            },
            Event::MshrAlloc {
                cycle: 12,
                line: 0x40,
                complete_cycle: 130,
                speculative: true,
            },
            Event::CacheFill {
                cycle: 130,
                level: CacheLevel::L1,
                line: 0x40,
                speculative: true,
            },
            Event::Complete {
                cycle: 130,
                seq: 1,
                pc: 0,
                wrong_path: true,
            },
            Event::SquashBegin {
                cycle: 150,
                branch_pc: 3,
                epoch: 7,
                squashed_loads: 1,
                squashed_insts: 2,
            },
            Event::RollbackInvalidate {
                cycle: 155,
                level: CacheLevel::L1,
                line: 0x40,
            },
            Event::SquashEnd {
                cycle: 172,
                branch_pc: 3,
                epoch: 7,
            },
        ]
    }

    #[test]
    fn rollback_spans_pair_by_epoch() {
        let spans = rollback_spans(&sample_events());
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].start, 150);
        assert_eq!(spans[0].duration, 22);
        assert_eq!(spans[0].epoch, 7);
    }

    #[test]
    fn unmatched_begin_is_dropped() {
        let events = [Event::SquashBegin {
            cycle: 1,
            branch_pc: 0,
            epoch: 1,
            squashed_loads: 0,
            squashed_insts: 0,
        }];
        assert!(rollback_spans(&events).is_empty());
    }

    #[test]
    fn trace_json_is_valid_and_has_expected_shapes() {
        let doc = chrome_trace_json(&sample_events());
        json::validate(&doc).expect("valid JSON");
        assert!(doc.contains("\"traceEvents\""));
        // Rollback span with its duration.
        assert!(doc.contains("\"name\":\"rollback\""));
        assert!(doc.contains("\"dur\":22"));
        // Instruction span on the pipeline track.
        assert!(doc.contains("\"name\":\"inst.wrong_path\""));
        // Instants keep their taxonomy names.
        assert!(doc.contains("\"name\":\"mshr_alloc\""));
        assert!(doc.contains("\"name\":\"rollback_invalidate\""));
        // Track metadata present.
        assert!(doc.contains("\"name\":\"cache.l1\""));
        assert!(doc.contains("\"name\":\"defense\""));
    }

    #[test]
    fn empty_stream_still_produces_valid_json() {
        let doc = chrome_trace_json(&[]);
        json::validate(&doc).expect("valid JSON");
        assert!(doc.contains("unxpec-sim"));
    }
}
