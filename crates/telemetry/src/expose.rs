//! Live metrics exposition: a std-only TCP endpoint serving the
//! registry while a run is in flight.
//!
//! A multi-hour chaos or matrix sweep is a black box without this — the
//! harness writes its metrics dump only at the end. [`MetricsHub`] is a
//! cloneable, lock-guarded registry the harness updates as trials
//! finish, and [`MetricsServer`] is a tiny HTTP/1.0 server (no
//! dependencies, one accept thread) exposing it:
//!
//! * `GET /metrics` — Prometheus-style text exposition (counters as
//!   `# TYPE x counter` + value; histograms as `_count`/`_sum` plus
//!   `{quantile="..."}` summary lines from the log₂-bucket estimates);
//! * `GET /metrics.json` — the registry's JSON dump, verbatim;
//! * `GET /` — a plain index naming the two routes.
//!
//! The cardinal rule is that scraping must never perturb the sweep:
//! the hub is written on the harness's bookkeeping path only (never
//! inside a trial), the server touches nothing but the hub, and
//! `tests/observability.rs` pins byte-identical sweep results with the
//! endpoint active and hammered mid-run.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use crate::metrics::MetricsRegistry;

/// Shared, cloneable handle over a live [`MetricsRegistry`].
///
/// Producers (the sweep harness) call [`MetricsHub::update`] from their
/// bookkeeping path; consumers (the server, tests) take point-in-time
/// [`MetricsHub::snapshot`]s. Clones share one registry.
#[derive(Debug, Clone, Default)]
pub struct MetricsHub {
    inner: Arc<Mutex<MetricsRegistry>>,
}

impl MetricsHub {
    /// A hub around an empty registry.
    pub fn new() -> Self {
        MetricsHub::default()
    }

    /// Runs `f` with exclusive access to the live registry.
    pub fn update<R>(&self, f: impl FnOnce(&mut MetricsRegistry) -> R) -> R {
        f(&mut self.inner.lock().expect("metrics hub poisoned"))
    }

    /// A point-in-time copy of the registry.
    pub fn snapshot(&self) -> MetricsRegistry {
        self.inner.lock().expect("metrics hub poisoned").clone()
    }

    /// Shorthand for a single counter bump — callers with one metric
    /// to record shouldn't need an [`MetricsHub::update`] closure.
    pub fn inc(&self, name: &str, by: u64) {
        self.update(|m| m.inc(name, by));
    }

    /// Shorthand for setting a single gauge.
    pub fn set(&self, name: &str, value: u64) {
        self.update(|m| m.set(name, value));
    }

    /// Shorthand for one histogram observation.
    pub fn observe(&self, name: &str, value: u64) {
        self.update(|m| m.observe(name, value));
    }
}

/// Sanitizes a registry name into the Prometheus metric-name alphabet
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): every other byte becomes `_`.
fn prom_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.is_empty() || out.starts_with(|c: char| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Renders `reg` in the Prometheus text exposition format (version
/// 0.0.4). Counters export as counters; each log₂ histogram exports as
/// a summary: `_count`, `_sum`, and `{quantile="0.5|0.9|0.99"}` lines
/// carrying the bucket-interpolated estimates.
pub fn prometheus_text(reg: &MetricsRegistry) -> String {
    let mut out = String::new();
    for (name, value) in reg.counters() {
        let p = prom_name(name);
        out.push_str(&format!("# TYPE {p} counter\n{p} {value}\n"));
    }
    for (name, h) in reg.histograms() {
        let p = prom_name(name);
        out.push_str(&format!("# TYPE {p} summary\n"));
        for (q, est) in [("0.5", h.p50()), ("0.9", h.p90()), ("0.99", h.p99())] {
            out.push_str(&format!("{p}{{quantile=\"{q}\"}} {}\n", est.unwrap_or(0)));
        }
        out.push_str(&format!("{p}_sum {}\n{p}_count {}\n", h.sum(), h.count()));
    }
    out
}

/// The live exposition server: one daemon accept thread over a
/// [`MetricsHub`]. Dropping the handle (or calling
/// [`MetricsServer::shutdown`]) stops the thread.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:9184`, or port `0` for an
    /// ephemeral port — read it back from [`MetricsServer::addr`]) and
    /// starts serving `hub`.
    pub fn serve(addr: &str, hub: MetricsHub) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("metrics-server".to_string())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop2.load(Ordering::SeqCst) {
                        break;
                    }
                    if let Ok(stream) = conn {
                        // Serve inline: requests are tiny, responses are
                        // bounded by the registry size, and one scraper
                        // at a time is the realistic load.
                        let _ = handle(stream, &hub);
                    }
                }
            })?;
        Ok(MetricsServer {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the thread.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept call with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn handle(mut stream: TcpStream, hub: &MetricsHub) -> std::io::Result<()> {
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_millis(500)));
    let mut buf = [0u8; 1024];
    let n = stream.read(&mut buf)?;
    let request = String::from_utf8_lossy(&buf[..n]);
    let path = request
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .unwrap_or("/");
    let (status, content_type, body) = match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4",
            prometheus_text(&hub.snapshot()),
        ),
        "/metrics.json" => ("200 OK", "application/json", hub.snapshot().to_json()),
        "/" => (
            "200 OK",
            "text/plain",
            "unxpec live metrics\n  /metrics       Prometheus text\n  /metrics.json  JSON snapshot\n".to_string(),
        ),
        _ => ("404 Not Found", "text/plain", "not found\n".to_string()),
    };
    stream.write_all(
        format!(
            "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
}

/// One-shot scrape helper (used by tests and the CI smoke job driver):
/// fetches `path` from a running server and returns the response body.
pub fn scrape(addr: SocketAddr, path: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(format!("GET {path} HTTP/1.0\r\nHost: unxpec\r\n\r\n").as_bytes())?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    match response.split_once("\r\n\r\n") {
        Some((_, body)) => Ok(body.to_string()),
        None => Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "malformed HTTP response",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prometheus_text_sanitizes_and_summarizes() {
        let mut reg = MetricsRegistry::new();
        reg.inc("sweep.progress.done", 7);
        for v in [5, 10, 100] {
            reg.observe("sweep.trial_duration_us", v);
        }
        let text = prometheus_text(&reg);
        assert!(text.contains("# TYPE sweep_progress_done counter"));
        assert!(text.contains("sweep_progress_done 7"));
        assert!(text.contains("sweep_trial_duration_us_count 3"));
        assert!(text.contains("sweep_trial_duration_us_sum 115"));
        assert!(text.contains("sweep_trial_duration_us{quantile=\"0.5\"}"));
        assert!(!text.contains("sweep.progress"), "dots must be sanitized");
    }

    #[test]
    fn server_serves_text_json_index_and_404() {
        let hub = MetricsHub::new();
        hub.update(|reg| reg.inc("sweep.progress.done", 3));
        let server = MetricsServer::serve("127.0.0.1:0", hub.clone()).expect("bind");
        let addr = server.addr();

        let text = scrape(addr, "/metrics").expect("scrape text");
        assert!(text.contains("sweep_progress_done 3"));

        hub.update(|reg| reg.inc("sweep.progress.done", 2));
        let json = scrape(addr, "/metrics.json").expect("scrape json");
        assert!(json.contains("\"sweep.progress.done\": 5"), "{json}");
        crate::json::validate(&json).expect("json route must validate");

        let index = scrape(addr, "/").expect("scrape index");
        assert!(index.contains("/metrics.json"));
        let missing = scrape(addr, "/nope").expect("scrape 404");
        assert!(missing.contains("not found"));
    }

    #[test]
    fn shutdown_is_idempotent_and_unblocks_accept() {
        let mut server = MetricsServer::serve("127.0.0.1:0", MetricsHub::new()).expect("bind");
        server.shutdown();
        server.shutdown();
        // A post-shutdown scrape must not hang; whether it errors or
        // catches a last in-flight accept is timing-dependent.
        let _ = scrape(server.addr(), "/metrics");
    }
}
