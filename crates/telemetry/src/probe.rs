//! The probe bus: sinks, the bounded ring buffer, and the cloneable
//! [`Telemetry`] handle every instrumented component holds.
//!
//! Design constraint (the acceptance criterion of the telemetry PR): a
//! *disabled* handle must make `emit` a true no-op — no heap
//! allocation, no locking, no formatting. The handle is therefore an
//! `Option<Arc<..>>`: disabled is `None` and `emit` reduces to one
//! branch over a `Copy` event that was built on the stack.

use std::sync::{Arc, Mutex};

use crate::event::Event;

/// A consumer of telemetry events.
///
/// `Send` because defenses (which hold handles) must be `Send`.
pub trait Probe: Send {
    /// Receives one event. Called under the bus lock; keep it cheap.
    fn record(&mut self, event: Event);

    /// Flushes buffered state (default: nothing).
    fn flush(&mut self) {}
}

/// A probe that discards everything (explicit "disabled" sink for code
/// that wants a `Probe` object rather than a disabled handle).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullProbe;

impl Probe for NullProbe {
    fn record(&mut self, _event: Event) {}
}

/// A probe that only counts events — cheap sanity instrument for tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct CountingProbe {
    /// Events seen.
    pub count: u64,
}

impl Probe for CountingProbe {
    fn record(&mut self, _event: Event) {
        self.count += 1;
    }
}

/// Bounded in-memory event sink.
///
/// Holds the most recent `capacity` events; older events are dropped
/// (and counted) so a multi-million-cycle run cannot blow memory. The
/// storage is a fixed circular buffer — after the initial warm-up it
/// never reallocates.
#[derive(Debug)]
pub struct RingBuffer {
    capacity: usize,
    events: Vec<Event>,
    /// Index of the oldest event once the buffer has wrapped.
    head: usize,
    dropped: u64,
}

impl RingBuffer {
    /// Creates a buffer holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring buffer capacity must be positive");
        RingBuffer {
            capacity,
            events: Vec::with_capacity(capacity),
            head: 0,
            dropped: 0,
        }
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retained events, oldest first.
    pub fn snapshot(&self) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.events.len());
        out.extend_from_slice(&self.events[self.head..]);
        out.extend_from_slice(&self.events[..self.head]);
        out
    }

    /// Clears the buffer and the drop counter.
    pub fn clear(&mut self) {
        self.events.clear();
        self.head = 0;
        self.dropped = 0;
    }
}

impl Probe for RingBuffer {
    fn record(&mut self, event: Event) {
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            // Overwrite the oldest slot.
            self.events[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }
}

/// The sink behind an enabled handle.
enum Sink {
    Ring(RingBuffer),
    Custom(Box<dyn Probe>),
}

impl std::fmt::Debug for Sink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Sink::Ring(r) => write!(f, "Ring(len={}, cap={})", r.len(), r.capacity()),
            Sink::Custom(_) => write!(f, "Custom(..)"),
        }
    }
}

/// Cloneable telemetry handle.
///
/// Every instrumented component (core, hierarchy, defenses) holds one;
/// clones share the same sink. The default handle is disabled and
/// costs one `is_some` branch per `emit`.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Mutex<Sink>>>,
}

impl Telemetry {
    /// A disabled handle: `emit` is a no-op.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// An enabled handle backed by a [`RingBuffer`] of `capacity`.
    pub fn ring(capacity: usize) -> Self {
        Telemetry {
            inner: Some(Arc::new(Mutex::new(Sink::Ring(RingBuffer::new(capacity))))),
        }
    }

    /// An enabled handle backed by a caller-supplied probe.
    pub fn with_probe(probe: Box<dyn Probe>) -> Self {
        Telemetry {
            inner: Some(Arc::new(Mutex::new(Sink::Custom(probe)))),
        }
    }

    /// Whether events are being collected.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records `event` if enabled. The disabled path is a single branch
    /// and performs no heap allocation (events are `Copy`).
    #[inline]
    pub fn emit(&self, event: Event) {
        if let Some(sink) = &self.inner {
            match &mut *sink.lock().expect("telemetry sink poisoned") {
                Sink::Ring(ring) => ring.record(event),
                Sink::Custom(probe) => probe.record(event),
            }
        }
    }

    /// Records the event built by `f` if enabled; `f` is not called on
    /// a disabled handle, so even argument computation is skipped.
    #[inline]
    pub fn emit_with<F: FnOnce() -> Event>(&self, f: F) {
        if self.inner.is_some() {
            self.emit(f());
        }
    }

    /// Retained events, oldest first (empty for disabled or custom-probe
    /// handles).
    pub fn snapshot(&self) -> Vec<Event> {
        match &self.inner {
            Some(sink) => match &*sink.lock().expect("telemetry sink poisoned") {
                Sink::Ring(ring) => ring.snapshot(),
                Sink::Custom(_) => Vec::new(),
            },
            None => Vec::new(),
        }
    }

    /// Events dropped by the ring (0 for disabled/custom handles).
    pub fn dropped(&self) -> u64 {
        match &self.inner {
            Some(sink) => match &*sink.lock().expect("telemetry sink poisoned") {
                Sink::Ring(ring) => ring.dropped(),
                Sink::Custom(_) => 0,
            },
            None => 0,
        }
    }

    /// Retained event count (0 for disabled/custom handles).
    pub fn len(&self) -> usize {
        match &self.inner {
            Some(sink) => match &*sink.lock().expect("telemetry sink poisoned") {
                Sink::Ring(ring) => ring.len(),
                Sink::Custom(_) => 0,
            },
            None => 0,
        }
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clears the ring (no-op for disabled/custom handles).
    pub fn clear(&self) {
        if let Some(sink) = &self.inner {
            if let Sink::Ring(ring) = &mut *sink.lock().expect("telemetry sink poisoned") {
                ring.clear();
            }
        }
    }

    /// Registers the sink's own accounting into `metrics`: how many
    /// events the ring retained and how many it silently evicted.
    /// Surfacing `telemetry.dropped_events` in every dump means an
    /// undersized ring shows up in the same place its data would have.
    pub fn record_metrics(&self, metrics: &mut crate::metrics::MetricsRegistry) {
        metrics.inc("telemetry.retained_events", self.len() as u64);
        metrics.inc("telemetry.dropped_events", self.dropped());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CacheLevel, Event};

    fn ev(cycle: u64) -> Event {
        Event::CacheHit {
            cycle,
            level: CacheLevel::L1,
            line: cycle,
        }
    }

    #[test]
    fn ring_keeps_newest_and_counts_drops() {
        let mut ring = RingBuffer::new(4);
        for c in 0..10 {
            ring.record(ev(c));
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.dropped(), 6);
        let cycles: Vec<u64> = ring.snapshot().iter().map(|e| e.cycle()).collect();
        assert_eq!(cycles, vec![6, 7, 8, 9]);
    }

    #[test]
    fn ring_below_capacity_keeps_order() {
        let mut ring = RingBuffer::new(16);
        for c in 0..5 {
            ring.record(ev(c));
        }
        assert_eq!(ring.dropped(), 0);
        let cycles: Vec<u64> = ring.snapshot().iter().map(|e| e.cycle()).collect();
        assert_eq!(cycles, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn disabled_handle_is_inert() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        t.emit(ev(1));
        t.emit_with(|| unreachable!("closure must not run on disabled handle"));
        assert!(t.snapshot().is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn clones_share_the_sink() {
        let t = Telemetry::ring(8);
        let clone = t.clone();
        clone.emit(ev(1));
        t.emit(ev(2));
        assert_eq!(t.len(), 2);
        assert_eq!(clone.snapshot().len(), 2);
    }

    #[test]
    fn custom_probe_receives_events() {
        #[derive(Default)]
        struct Seen(Vec<u64>);
        impl Probe for Seen {
            fn record(&mut self, event: Event) {
                self.0.push(event.cycle());
            }
        }
        // Box<dyn Probe> sinks can't be read back through the handle, so
        // verify via a counting side effect instead.
        use std::sync::atomic::{AtomicU64, Ordering};
        static HITS: AtomicU64 = AtomicU64::new(0);
        struct Count;
        impl Probe for Count {
            fn record(&mut self, _e: Event) {
                HITS.fetch_add(1, Ordering::Relaxed);
            }
        }
        let t = Telemetry::with_probe(Box::new(Count));
        t.emit(ev(1));
        t.emit(ev(2));
        assert_eq!(HITS.load(Ordering::Relaxed), 2);
        let _ = Seen::default();
    }

    #[test]
    fn clear_resets_ring() {
        let t = Telemetry::ring(2);
        t.emit(ev(1));
        t.emit(ev(2));
        t.emit(ev(3));
        assert_eq!(t.dropped(), 1);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 0);
    }
}
