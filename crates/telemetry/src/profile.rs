//! Cycle-attribution profiler: folds a run's event stream into a
//! hierarchical [`SpanNode`] profile.
//!
//! A Chrome trace shows *when* things happened; the profile shows
//! *where the cycles went* — aggregated across the whole stream and
//! grouped by cause, which is how shared-resource channels (MSHR
//! occupancy, rollback phases; see *Speculative Interference Attacks*
//! in PAPERS.md) become visible without scrubbing a timeline. The tree
//! has four top-level frames:
//!
//! * `inst` / `inst.wrong_path` — dispatch→complete latency per
//!   instruction, with a `pc_<n>` child per static PC. Wrong-path
//!   totals are the transient window the attack lives in.
//! * `mshr` — miss-handling occupancy (`alloc`→`complete_cycle`
//!   inflight intervals), split `speculative` / `architectural`.
//! * `cache` — miss→fill latency per level (`l1`, `l2`), the memory
//!   side of the same intervals.
//! * `rollback` — each squash's T2→T6 bracket, partitioned among the
//!   undo actions inside it (`invalidate.l1/.l2`, `restore`), with the
//!   unattributed remainder charged to `rollback` itself. Children sum
//!   exactly to the cleanup duration — the unXpec channel, itemized.
//!
//! Weights are cycles. Because frames count *overlapping* occupancy
//! (two inflight MSHRs both accrue), the tree's total is cycle-weighted
//! work, not wall-clock cycles.

use crate::event::{CacheLevel, Event};
use crate::span::SpanNode;

fn level_frame(level: CacheLevel) -> &'static str {
    match level {
        CacheLevel::L1 => "l1",
        CacheLevel::L2 => "l2",
    }
}

/// Folds `events` into a cycle-attribution profile rooted at `cycles`.
pub fn cycle_profile(events: &[Event]) -> SpanNode {
    let mut root = SpanNode::root("cycles");

    // Instruction latency: dispatch..complete paired by seq.
    let mut open_insts: Vec<(u64, u64)> = Vec::new(); // seq, dispatch cycle
    for e in events {
        match *e {
            Event::Dispatch { cycle, seq, .. } => open_insts.push((seq, cycle)),
            Event::Complete {
                cycle,
                seq,
                pc,
                wrong_path,
            } => {
                if let Some(pos) = open_insts.iter().position(|(s, _)| *s == seq) {
                    let (_, start) = open_insts.remove(pos);
                    let frame = if wrong_path {
                        "inst.wrong_path"
                    } else {
                        "inst"
                    };
                    root.record(
                        &[frame, &format!("pc_{pc}")],
                        cycle.saturating_sub(start).max(1),
                    );
                }
            }
            _ => {}
        }
    }

    // MSHR occupancy: each allocation books its fill cycle up front.
    for e in events {
        if let Event::MshrAlloc {
            cycle,
            complete_cycle,
            speculative,
            ..
        } = *e
        {
            let kind = if speculative {
                "speculative"
            } else {
                "architectural"
            };
            root.record(&["mshr", kind], complete_cycle.saturating_sub(cycle).max(1));
        }
    }

    // Cache miss latency: each miss to the next fill of the same line
    // at the same level.
    for (i, e) in events.iter().enumerate() {
        if let Event::CacheMiss { cycle, level, line } = *e {
            let fill = events[i + 1..].iter().find_map(|f| match *f {
                Event::CacheFill {
                    cycle: fc,
                    level: fl,
                    line: fline,
                    ..
                } if fl == level && fline == line => Some(fc),
                _ => None,
            });
            if let Some(fc) = fill {
                root.record(
                    &["cache", level_frame(level)],
                    fc.saturating_sub(cycle).max(1),
                );
            }
        }
    }

    // Rollback brackets: partition each T2→T6 window among the undo
    // actions inside it. Each action is charged the cycles since the
    // previous action (or the bracket's begin), and whatever is left at
    // squash_end is charged to the bracket itself, so the children plus
    // self sum exactly to the cleanup duration.
    let mut bracket: Option<u64> = None; // cursor cycle inside an open bracket
    for e in events {
        match *e {
            Event::SquashBegin { cycle, .. } => bracket = Some(cycle),
            Event::RollbackInvalidate { cycle, level, .. } => {
                if let Some(cursor) = bracket {
                    root.record(
                        &["rollback", "invalidate", level_frame(level)],
                        cycle.saturating_sub(cursor),
                    );
                    bracket = Some(cycle);
                }
            }
            Event::RollbackRestore { cycle, .. } => {
                if let Some(cursor) = bracket {
                    root.record(&["rollback", "restore"], cycle.saturating_sub(cursor));
                    bracket = Some(cycle);
                }
            }
            Event::MshrCancel { cycle, .. } => {
                if let Some(cursor) = bracket {
                    root.record(&["rollback", "mshr_cancel"], cycle.saturating_sub(cursor));
                    bracket = Some(cycle);
                }
            }
            Event::SquashEnd { cycle, .. } => {
                if let Some(cursor) = bracket.take() {
                    root.record(&["rollback"], cycle.saturating_sub(cursor));
                }
            }
            _ => {}
        }
    }

    root
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run() -> Vec<Event> {
        vec![
            Event::Dispatch {
                cycle: 0,
                seq: 1,
                pc: 4,
            },
            Event::CacheMiss {
                cycle: 2,
                level: CacheLevel::L1,
                line: 0x40,
            },
            Event::MshrAlloc {
                cycle: 2,
                line: 0x40,
                complete_cycle: 102,
                speculative: true,
            },
            Event::CacheFill {
                cycle: 102,
                level: CacheLevel::L1,
                line: 0x40,
                speculative: true,
            },
            Event::Complete {
                cycle: 102,
                seq: 1,
                pc: 4,
                wrong_path: true,
            },
            Event::SquashBegin {
                cycle: 110,
                branch_pc: 3,
                epoch: 9,
                squashed_loads: 1,
                squashed_insts: 1,
            },
            Event::RollbackInvalidate {
                cycle: 125,
                level: CacheLevel::L1,
                line: 0x40,
            },
            Event::RollbackRestore {
                cycle: 135,
                line: 0x7,
            },
            Event::SquashEnd {
                cycle: 140,
                branch_pc: 3,
                epoch: 9,
            },
        ]
    }

    #[test]
    fn rollback_children_sum_to_the_cleanup_duration() {
        let profile = cycle_profile(&run());
        let rb = profile.child("rollback").expect("rollback frame");
        // T2=110 → T6=140: 15 to the invalidate, 10 to the restore,
        // 5 unattributed tail on the bracket itself.
        assert_eq!(rb.total(), 30);
        assert_eq!(rb.self_weight, 5);
        assert_eq!(rb.child("invalidate").unwrap().total(), 15);
        assert_eq!(rb.child("restore").unwrap().self_weight, 10);
    }

    #[test]
    fn instruction_and_mshr_frames_attribute_latency() {
        let profile = cycle_profile(&run());
        let wp = profile.child("inst.wrong_path").expect("wrong-path frame");
        assert_eq!(wp.child("pc_4").unwrap().self_weight, 102);
        assert_eq!(
            profile
                .child("mshr")
                .and_then(|m| m.child("speculative"))
                .unwrap()
                .self_weight,
            100
        );
        assert_eq!(
            profile
                .child("cache")
                .and_then(|c| c.child("l1"))
                .unwrap()
                .self_weight,
            100
        );
    }

    #[test]
    fn collapsed_output_is_flamegraph_shaped() {
        let collapsed = cycle_profile(&run()).collapsed();
        assert!(collapsed.contains("cycles;rollback;invalidate;l1 15\n"));
        assert!(collapsed.contains("cycles;inst.wrong_path;pc_4 102\n"));
        for line in collapsed.lines() {
            let (stack, weight) = line.rsplit_once(' ').expect("stack + weight");
            assert!(stack.starts_with("cycles"));
            weight.parse::<u64>().expect("numeric weight");
        }
    }

    #[test]
    fn empty_stream_gives_an_empty_root() {
        let profile = cycle_profile(&[]);
        assert_eq!(profile.total(), 0);
        assert!(profile.collapsed().is_empty());
    }
}
