//! Rollback forensics: reconstructs per-speculative-episode records
//! from an event snapshot.
//!
//! The paper's timeline (PAPER.md, Fig. 3) names six marks: the
//! transient load issues (T1), the mispredicted branch resolves and
//! cleanup starts (T2), in-flight speculative misses are cancelled
//! (T3), transient installs are invalidated (T4), evicted victims are
//! restored (T5), and the front end redirects (T6). A Chrome trace
//! shows these as ticks; this module folds them back into one
//! [`Episode`] record per squash so a run can be audited episode by
//! episode: what leaked into the cache, what the defense undid, and
//! how long the undo took — the T2→T6 delta *is* the unXpec channel.
//!
//! Each episode also carries a trace-level leak classification
//! ([`Episode::channel`]) using the same labels as
//! `unxpec-analysis` (`cache-footprint` / `rollback-timing`), so the
//! `report` binary can cross-check dynamic evidence against static
//! verdicts without a dependency edge between the crates.

use crate::event::{CacheLevel, Event};

/// One reconstructed speculative episode (squash bracket plus the
/// transient activity that led into it).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Episode {
    /// Speculation epoch (`SpecTag`) the squash retired.
    pub epoch: u64,
    /// Static PC of the mispredicted trigger.
    pub trigger_pc: usize,
    /// T1: cycle the first transient miss went in flight (`None` when
    /// the wrong path never missed — e.g. the transmitter hit).
    pub t1_transient_issue: Option<u64>,
    /// T2: cycle cleanup began (branch resolution).
    pub t2_begin: u64,
    /// T3: first in-flight speculative miss cancelled.
    pub t3_mshr_cancel: Option<u64>,
    /// T4: first transient install invalidated.
    pub t4_invalidate: Option<u64>,
    /// T5: first evicted victim restored.
    pub t5_restore: Option<u64>,
    /// T6: cleanup finished, fetch redirected.
    pub t6_end: u64,
    /// Loads squashed with the frame.
    pub squashed_loads: u64,
    /// Instructions squashed with the frame.
    pub squashed_insts: u64,
    /// Speculative fills observed on the wrong path (per level).
    pub transient_fills_l1: u64,
    pub transient_fills_l2: u64,
    /// Lines the wrong path installed (newest last, deduplicated).
    pub transient_lines: Vec<u64>,
    /// Undo actions inside the bracket.
    pub invalidates: u64,
    pub restores: u64,
    pub mshr_cancels: u64,
    /// Wrong-path completions attributed to this episode.
    pub wrong_path_completes: u64,
}

impl Episode {
    /// T2→T6 cleanup duration in cycles — the rollback-timing signal.
    pub fn cleanup_cycles(&self) -> u64 {
        self.t6_end.saturating_sub(self.t2_begin)
    }

    /// Total transient fills across levels.
    pub fn transient_fills(&self) -> u64 {
        self.transient_fills_l1 + self.transient_fills_l2
    }

    /// Total undo actions inside the bracket.
    pub fn undo_actions(&self) -> u64 {
        self.invalidates + self.restores + self.mshr_cancels
    }

    /// Trace-level leak classification for this episode, as the stable
    /// channel label `unxpec-analysis` uses:
    ///
    /// * undo actions present → the cleanup length depends on the
    ///   transient footprint: `Some("rollback-timing")`;
    /// * transient fills that nothing undid → the footprint survives
    ///   the squash: `Some("cache-footprint")`;
    /// * neither → `None` (this episode leaked nothing observable).
    pub fn channel(&self) -> Option<&'static str> {
        if self.undo_actions() > 0 {
            Some("rollback-timing")
        } else if self.transient_fills() > 0 {
            Some("cache-footprint")
        } else {
            None
        }
    }
}

/// Folds an event snapshot into episodes, oldest first.
///
/// Transient activity (speculative fills/allocs, wrong-path
/// completions) accumulates between brackets and is attributed to the
/// *next* squash — the one that retires the epoch it ran under. Undo
/// actions are attributed to the bracket they fall inside. Unmatched
/// `squash_begin`s (the end fell out of the ring) are dropped.
pub fn fold_episodes(events: &[Event]) -> Vec<Episode> {
    let mut episodes = Vec::new();
    let mut pending = Episode::default(); // transient window being built
    let mut open: Option<Episode> = None; // bracket in progress
    for e in events {
        match *e {
            Event::CacheFill {
                cycle,
                level,
                line,
                speculative: true,
            } => {
                match level {
                    CacheLevel::L1 => pending.transient_fills_l1 += 1,
                    CacheLevel::L2 => pending.transient_fills_l2 += 1,
                }
                if !pending.transient_lines.contains(&line) {
                    pending.transient_lines.push(line);
                }
                pending.t1_transient_issue.get_or_insert(cycle);
            }
            Event::MshrAlloc {
                cycle,
                speculative: true,
                ..
            } => {
                pending.t1_transient_issue.get_or_insert(cycle);
            }
            Event::Complete {
                wrong_path: true, ..
            } => pending.wrong_path_completes += 1,
            Event::SquashBegin {
                cycle,
                branch_pc,
                epoch,
                squashed_loads,
                squashed_insts,
            } => {
                let mut ep = std::mem::take(&mut pending);
                ep.epoch = epoch;
                ep.trigger_pc = branch_pc;
                ep.t2_begin = cycle;
                ep.squashed_loads = squashed_loads;
                ep.squashed_insts = squashed_insts;
                open = Some(ep);
            }
            Event::MshrCancel { cycle, .. } => {
                if let Some(ep) = open.as_mut() {
                    ep.mshr_cancels += 1;
                    ep.t3_mshr_cancel.get_or_insert(cycle);
                }
            }
            Event::RollbackInvalidate { cycle, .. } => {
                if let Some(ep) = open.as_mut() {
                    ep.invalidates += 1;
                    ep.t4_invalidate.get_or_insert(cycle);
                }
            }
            Event::RollbackRestore { cycle, .. } => {
                if let Some(ep) = open.as_mut() {
                    ep.restores += 1;
                    ep.t5_restore.get_or_insert(cycle);
                }
            }
            Event::SquashEnd { cycle, epoch, .. } => {
                if let Some(mut ep) = open.take() {
                    if ep.epoch == epoch {
                        ep.t6_end = cycle;
                        episodes.push(ep);
                    }
                }
            }
            _ => {}
        }
    }
    episodes
}

/// The aggregate classification over a set of episodes (e.g. both
/// secret rounds of an attack): the strongest channel any episode
/// opened, with `rollback-timing` considered stronger evidence than
/// `cache-footprint` (an undo-based defense was present and timed),
/// or `"clean"` when no episode leaked.
pub fn trace_verdict(episodes: &[Episode]) -> &'static str {
    let mut verdict = "clean";
    for ep in episodes {
        match ep.channel() {
            Some("rollback-timing") => return "rollback-timing",
            Some(c) => verdict = c,
            None => {}
        }
    }
    verdict
}

fn mark(m: Option<u64>) -> String {
    m.map_or_else(|| "-".to_string(), |c| c.to_string())
}

/// Renders episodes as a markdown digest: one table row per episode
/// with the T1–T6 marks, transient/undo tallies, the per-episode
/// channel, and a summary line carrying the aggregate verdict.
pub fn render_digest(title: &str, episodes: &[Episode]) -> String {
    let mut out = format!("### {title}\n\n");
    if episodes.is_empty() {
        out.push_str("no speculative episodes observed\n");
        return out;
    }
    out.push_str(
        "| ep | trigger pc | T1 | T2 | T3 | T4 | T5 | T6 | cleanup | loads | fills | undo | channel |\n",
    );
    out.push_str("|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|:---|\n");
    for ep in episodes {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} | {} | {} | {} | {} | {} | {} | {} |\n",
            ep.epoch,
            ep.trigger_pc,
            mark(ep.t1_transient_issue),
            ep.t2_begin,
            mark(ep.t3_mshr_cancel),
            mark(ep.t4_invalidate),
            mark(ep.t5_restore),
            ep.t6_end,
            ep.cleanup_cycles(),
            ep.squashed_loads,
            ep.transient_fills(),
            ep.undo_actions(),
            ep.channel().unwrap_or("-"),
        ));
    }
    let cleanups: Vec<u64> = episodes.iter().map(Episode::cleanup_cycles).collect();
    out.push_str(&format!(
        "\nepisodes: {} · cleanup cycles min {} max {} · verdict: **{}**\n",
        episodes.len(),
        cleanups.iter().min().unwrap(),
        cleanups.iter().max().unwrap(),
        trace_verdict(episodes),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cleanupspec_round() -> Vec<Event> {
        vec![
            Event::Dispatch {
                cycle: 0,
                seq: 1,
                pc: 4,
            },
            Event::MshrAlloc {
                cycle: 2,
                line: 0x40,
                complete_cycle: 102,
                speculative: true,
            },
            Event::CacheFill {
                cycle: 102,
                level: CacheLevel::L1,
                line: 0x40,
                speculative: true,
            },
            Event::Complete {
                cycle: 102,
                seq: 1,
                pc: 4,
                wrong_path: true,
            },
            Event::SquashBegin {
                cycle: 110,
                branch_pc: 3,
                epoch: 9,
                squashed_loads: 1,
                squashed_insts: 2,
            },
            Event::RollbackInvalidate {
                cycle: 125,
                level: CacheLevel::L1,
                line: 0x40,
            },
            Event::SquashEnd {
                cycle: 132,
                branch_pc: 3,
                epoch: 9,
            },
        ]
    }

    #[test]
    fn episode_carries_the_timeline_marks() {
        let eps = fold_episodes(&cleanupspec_round());
        assert_eq!(eps.len(), 1);
        let ep = &eps[0];
        assert_eq!(ep.epoch, 9);
        assert_eq!(ep.trigger_pc, 3);
        assert_eq!(ep.t1_transient_issue, Some(2));
        assert_eq!(ep.t2_begin, 110);
        assert_eq!(ep.t4_invalidate, Some(125));
        assert_eq!(ep.t6_end, 132);
        assert_eq!(ep.cleanup_cycles(), 22);
        assert_eq!(ep.transient_fills(), 1);
        assert_eq!(ep.transient_lines, vec![0x40]);
        assert_eq!(ep.channel(), Some("rollback-timing"));
    }

    #[test]
    fn unsafe_round_classifies_as_footprint() {
        let mut events = cleanupspec_round();
        // Drop the invalidate: nothing undoes the transient install.
        events.retain(|e| !matches!(e, Event::RollbackInvalidate { .. }));
        let eps = fold_episodes(&events);
        assert_eq!(eps[0].channel(), Some("cache-footprint"));
        assert_eq!(trace_verdict(&eps), "cache-footprint");
    }

    #[test]
    fn quiet_episode_is_clean() {
        let events = [
            Event::SquashBegin {
                cycle: 10,
                branch_pc: 1,
                epoch: 2,
                squashed_loads: 0,
                squashed_insts: 1,
            },
            Event::SquashEnd {
                cycle: 11,
                branch_pc: 1,
                epoch: 2,
            },
        ];
        let eps = fold_episodes(&events);
        assert_eq!(eps[0].channel(), None);
        assert_eq!(trace_verdict(&eps), "clean");
    }

    #[test]
    fn rollback_timing_dominates_the_trace_verdict() {
        let mut both = cleanupspec_round();
        let mut unsafe_round = cleanupspec_round();
        unsafe_round.retain(|e| !matches!(e, Event::RollbackInvalidate { .. }));
        // Shift epochs so the rounds stay distinct.
        for e in &mut unsafe_round {
            if let Event::SquashBegin { epoch, .. } | Event::SquashEnd { epoch, .. } = e {
                *epoch += 1;
            }
        }
        both.extend(unsafe_round);
        assert_eq!(trace_verdict(&fold_episodes(&both)), "rollback-timing");
    }

    #[test]
    fn digest_renders_a_table_and_summary() {
        let eps = fold_episodes(&cleanupspec_round());
        let digest = render_digest("spectre · cleanupspec", &eps);
        assert!(digest.starts_with("### spectre · cleanupspec"));
        assert!(digest.contains("| ep | trigger pc |"));
        assert!(digest.contains("rollback-timing"));
        assert!(digest.contains("verdict: **rollback-timing**"));
        assert!(render_digest("t", &[]).contains("no speculative episodes"));
    }

    #[test]
    fn unmatched_begin_is_dropped() {
        let events = [Event::SquashBegin {
            cycle: 1,
            branch_pc: 0,
            epoch: 1,
            squashed_loads: 0,
            squashed_insts: 0,
        }];
        assert!(fold_episodes(&events).is_empty());
    }
}
