//! Generic named spans and their Chrome trace-event export.
//!
//! [`chrome::chrome_trace_json`](crate::chrome::chrome_trace_json)
//! renders the *simulator's* typed event stream; this module covers the
//! layer above it — host-side work such as the sweep harness's trials,
//! where each span is a named wall-clock interval on a named track
//! (one track per worker thread). The output opens in
//! `chrome://tracing` / Perfetto exactly like the simulator traces,
//! with timestamps in microseconds.

use crate::json::escape;

/// One named wall-clock span on a numbered track.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Display name (e.g. the trial key `"rollback/es/s3"`).
    pub name: String,
    /// Track id (Chrome `tid`; e.g. the worker index).
    pub track: u64,
    /// Start timestamp in microseconds from the trace origin.
    pub start_us: u64,
    /// Duration in microseconds (rendered with a 1 µs floor so
    /// zero-length spans stay visible).
    pub dur_us: u64,
    /// Extra `args` rendered on the span, as `(key, value)` pairs.
    pub args: Vec<(String, u64)>,
}

/// Serializes `spans` as a Chrome trace-event JSON document. `tracks`
/// names each track id (`(tid, name)`); unnamed tracks render with
/// their numeric id.
pub fn spans_to_chrome_json(
    process_name: &str,
    tracks: &[(u64, String)],
    spans: &[Span],
) -> String {
    let mut out = String::from("{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n");
    out.push_str(&format!(
        "    {{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{{\"name\":\"{}\"}}}}",
        escape(process_name)
    ));
    for (tid, name) in tracks {
        out.push_str(&format!(
            ",\n    {{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
            tid,
            escape(name)
        ));
    }
    for s in spans {
        out.push_str(",\n");
        out.push_str(&format!(
            "    {{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{{",
            escape(&s.name),
            s.start_us,
            s.dur_us.max(1),
            s.track
        ));
        for (i, (k, v)) in s.args.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", escape(k), v));
        }
        out.push_str("}}");
    }
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn sample() -> Vec<Span> {
        vec![
            Span {
                name: "rollback/no-es/s0".to_string(),
                track: 0,
                start_us: 10,
                dur_us: 250,
                args: vec![("attempt".to_string(), 1)],
            },
            Span {
                name: "pdf \"quoted\"".to_string(),
                track: 1,
                start_us: 12,
                dur_us: 0,
                args: vec![],
            },
        ]
    }

    #[test]
    fn export_is_valid_json_with_metadata() {
        let doc = spans_to_chrome_json(
            "unxpec-sweep",
            &[(0, "worker-0".to_string()), (1, "worker-1".to_string())],
            &sample(),
        );
        json::validate(&doc).expect("valid trace JSON");
        assert!(doc.contains("\"name\":\"worker-1\""));
        assert!(doc.contains("rollback/no-es/s0"));
    }

    #[test]
    fn zero_duration_spans_get_a_visible_floor() {
        let doc = spans_to_chrome_json("p", &[], &sample());
        assert!(doc.contains("\"dur\":1,"));
    }
}
