//! Generic named spans and their Chrome trace-event export.
//!
//! [`chrome::chrome_trace_json`](crate::chrome::chrome_trace_json)
//! renders the *simulator's* typed event stream; this module covers the
//! layer above it — host-side work such as the sweep harness's trials,
//! where each span is a named wall-clock interval on a named track
//! (one track per worker thread). The output opens in
//! `chrome://tracing` / Perfetto exactly like the simulator traces,
//! with timestamps in microseconds.

use crate::json::escape;

/// One named wall-clock span on a numbered track.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Display name (e.g. the trial key `"rollback/es/s3"`).
    pub name: String,
    /// Track id (Chrome `tid`; e.g. the worker index).
    pub track: u64,
    /// Start timestamp in microseconds from the trace origin.
    pub start_us: u64,
    /// Duration in microseconds (rendered with a 1 µs floor so
    /// zero-length spans stay visible).
    pub dur_us: u64,
    /// Extra `args` rendered on the span, as `(key, value)` pairs.
    pub args: Vec<(String, u64)>,
}

/// Serializes `spans` as a Chrome trace-event JSON document. `tracks`
/// names each track id (`(tid, name)`); unnamed tracks render with
/// their numeric id.
pub fn spans_to_chrome_json(
    process_name: &str,
    tracks: &[(u64, String)],
    spans: &[Span],
) -> String {
    let mut out = String::from("{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n");
    out.push_str(&format!(
        "    {{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{{\"name\":\"{}\"}}}}",
        escape(process_name)
    ));
    for (tid, name) in tracks {
        out.push_str(&format!(
            ",\n    {{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
            tid,
            escape(name)
        ));
    }
    for s in spans {
        out.push_str(",\n");
        out.push_str(&format!(
            "    {{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{{",
            escape(&s.name),
            s.start_us,
            s.dur_us.max(1),
            s.track
        ));
        for (i, (k, v)) in s.args.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", escape(k), v));
        }
        out.push_str("}}");
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// A node in a hierarchical attribution profile.
///
/// Each node carries a *self* weight (cycles or samples charged
/// directly to it) and children charged to more specific frames; a
/// node's *total* is its self weight plus every descendant's. The tree
/// is what both the cycle-attribution profiler and the harness's
/// sampling self-profiler accumulate into, and it exports as
/// collapsed-stack lines any flamegraph renderer accepts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanNode {
    /// Frame name (one path segment).
    pub name: String,
    /// Weight charged directly to this frame.
    pub self_weight: u64,
    /// Child frames, in first-recorded order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Creates an empty root. The root's name is conventionally the
    /// profile's name (e.g. `"cycles"` or `"sweep"`).
    pub fn root(name: &str) -> Self {
        SpanNode {
            name: name.to_string(),
            ..SpanNode::default()
        }
    }

    /// Charges `weight` to the frame at `path` below this node,
    /// creating intermediate frames as needed. An empty path charges
    /// this node itself.
    pub fn record(&mut self, path: &[&str], weight: u64) {
        match path.split_first() {
            None => self.self_weight += weight,
            Some((head, rest)) => self.child_mut(head).record(rest, weight),
        }
    }

    /// The child named `name`, created empty if absent.
    pub fn child_mut(&mut self, name: &str) -> &mut SpanNode {
        if let Some(i) = self.children.iter().position(|c| c.name == name) {
            return &mut self.children[i];
        }
        self.children.push(SpanNode::root(name));
        self.children.last_mut().expect("just pushed")
    }

    /// The child named `name`, if present.
    pub fn child(&self, name: &str) -> Option<&SpanNode> {
        self.children.iter().find(|c| c.name == name)
    }

    /// Self weight plus every descendant's (the flamegraph frame width).
    pub fn total(&self) -> u64 {
        self.self_weight + self.children.iter().map(SpanNode::total).sum::<u64>()
    }

    /// Merges `other` into this tree (weights add, children by name).
    pub fn merge(&mut self, other: &SpanNode) {
        self.self_weight += other.self_weight;
        for c in &other.children {
            self.child_mut(&c.name).merge(c);
        }
    }

    /// Collapsed-stack export: one `frame;frame;frame weight` line per
    /// node with non-zero self weight, root first. Feed the output to
    /// `flamegraph.pl` / `inferno` / speedscope unchanged. Semicolons
    /// inside frame names are replaced with `:` so they cannot split a
    /// stack.
    pub fn collapsed(&self) -> String {
        let mut out = String::new();
        self.collapse_into(&mut Vec::new(), &mut out);
        out
    }

    fn collapse_into(&self, stack: &mut Vec<String>, out: &mut String) {
        stack.push(self.name.replace(';', ":"));
        if self.self_weight > 0 {
            out.push_str(&format!("{} {}\n", stack.join(";"), self.self_weight));
        }
        for c in &self.children {
            c.collapse_into(stack, out);
        }
        stack.pop();
    }

    /// ASCII tree rendering with per-frame total/self weights and the
    /// share of the root's total, heaviest child first.
    pub fn render_ascii(&self) -> String {
        let mut out = String::new();
        let grand = self.total().max(1);
        self.render_into("", grand, &mut out);
        out
    }

    fn render_into(&self, indent: &str, grand: u64, out: &mut String) {
        out.push_str(&format!(
            "{indent}{}  total {} self {} ({:.1}%)\n",
            self.name,
            self.total(),
            self.self_weight,
            100.0 * self.total() as f64 / grand as f64
        ));
        let mut kids: Vec<&SpanNode> = self.children.iter().collect();
        kids.sort_by_key(|c| std::cmp::Reverse(c.total()));
        let deeper = format!("{indent}  ");
        for c in kids {
            c.render_into(&deeper, grand, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn sample() -> Vec<Span> {
        vec![
            Span {
                name: "rollback/no-es/s0".to_string(),
                track: 0,
                start_us: 10,
                dur_us: 250,
                args: vec![("attempt".to_string(), 1)],
            },
            Span {
                name: "pdf \"quoted\"".to_string(),
                track: 1,
                start_us: 12,
                dur_us: 0,
                args: vec![],
            },
        ]
    }

    #[test]
    fn export_is_valid_json_with_metadata() {
        let doc = spans_to_chrome_json(
            "unxpec-sweep",
            &[(0, "worker-0".to_string()), (1, "worker-1".to_string())],
            &sample(),
        );
        json::validate(&doc).expect("valid trace JSON");
        assert!(doc.contains("\"name\":\"worker-1\""));
        assert!(doc.contains("rollback/no-es/s0"));
    }

    #[test]
    fn zero_duration_spans_get_a_visible_floor() {
        let doc = spans_to_chrome_json("p", &[], &sample());
        assert!(doc.contains("\"dur\":1,"));
    }

    #[test]
    fn span_node_totals_and_collapsed_agree() {
        let mut root = SpanNode::root("cycles");
        root.record(&["inst", "pc_40"], 10);
        root.record(&["inst", "pc_40"], 5);
        root.record(&["inst", "pc_44"], 3);
        root.record(&["rollback", "invalidate"], 20);
        root.record(&["rollback"], 2);
        assert_eq!(root.total(), 40);
        assert_eq!(root.child("inst").unwrap().total(), 18);
        let collapsed = root.collapsed();
        assert!(collapsed.contains("cycles;inst;pc_40 15\n"));
        assert!(collapsed.contains("cycles;rollback;invalidate 20\n"));
        assert!(collapsed.contains("cycles;rollback 2\n"));
        // Sum of collapsed weights reconstructs the grand total.
        let sum: u64 = collapsed
            .lines()
            .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
            .sum();
        assert_eq!(sum, root.total());
    }

    #[test]
    fn span_node_merge_adds_by_name() {
        let mut a = SpanNode::root("r");
        a.record(&["x"], 1);
        let mut b = SpanNode::root("r");
        b.record(&["x"], 2);
        b.record(&["y", "z"], 3);
        a.merge(&b);
        assert_eq!(a.child("x").unwrap().self_weight, 3);
        assert_eq!(a.total(), 6);
    }

    #[test]
    fn ascii_tree_sorts_heaviest_first_and_sanitizes() {
        let mut root = SpanNode::root("sweep");
        root.record(&["worker-0", "a;b"], 1);
        root.record(&["worker-1"], 9);
        let text = root.render_ascii();
        let w1 = text.find("worker-1").unwrap();
        let w0 = text.find("worker-0").unwrap();
        assert!(w1 < w0, "heaviest child must render first:\n{text}");
        assert!(root.collapsed().contains("a:b"), "semicolons sanitized");
    }
}
