//! A minimal JSON syntax checker.
//!
//! The exporters hand-roll their JSON (no serde in this workspace), so
//! the tests need an independent way to assert the output actually
//! parses. This is a strict recursive-descent validator for RFC 8259
//! syntax — it does not build a document tree, it only accepts or
//! rejects.

/// Validates that `s` is one complete JSON value (plus trailing
/// whitespace). Returns the byte offset and message of the first error.
pub fn validate(s: &str) -> Result<(), String> {
    let bytes = s.as_bytes();
    let mut pos = 0;
    skip_ws(bytes, &mut pos);
    value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn fail(pos: usize, what: &str) -> Result<(), String> {
    Err(format!("{what} at byte {pos}"))
}

fn value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, b"true"),
        Some(b'f') => literal(b, pos, b"false"),
        Some(b'n') => literal(b, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
        Some(_) => fail(*pos, "unexpected character"),
        None => fail(*pos, "unexpected end of input"),
    }
}

fn literal(b: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b.len() >= *pos + lit.len() && &b[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        Ok(())
    } else {
        fail(*pos, "bad literal")
    }
}

fn object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return fail(*pos, "expected object key string");
        }
        string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return fail(*pos, "expected ':'");
        }
        *pos += 1;
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return fail(*pos, "expected ',' or '}'"),
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return fail(*pos, "expected ',' or ']'"),
        }
    }
}

fn string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '"'
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            match b.get(*pos) {
                                Some(h) if h.is_ascii_hexdigit() => *pos += 1,
                                _ => return fail(*pos, "bad \\u escape"),
                            }
                        }
                    }
                    _ => return fail(*pos, "bad escape"),
                }
            }
            0x00..=0x1f => return fail(*pos, "raw control character in string"),
            _ => *pos += 1,
        }
    }
    fail(*pos, "unterminated string")
}

fn number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    match b.get(*pos) {
        Some(b'0') => *pos += 1,
        Some(c) if c.is_ascii_digit() => {
            while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
                *pos += 1;
            }
        }
        _ => return fail(*pos, "bad number"),
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
            return fail(*pos, "bad fraction");
        }
        while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
            *pos += 1;
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
            return fail(*pos, "bad exponent");
        }
        while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
            *pos += 1;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::validate;

    #[test]
    fn accepts_valid_documents() {
        for doc in [
            "{}",
            "[]",
            "null",
            "true",
            "-0.5e+3",
            r#"{"a": [1, 2.5, "x\n", {"b": null}], "c": false}"#,
            "  { \"k\" : [ ] } \n",
        ] {
            validate(doc).unwrap_or_else(|e| panic!("{doc:?} rejected: {e}"));
        }
    }

    #[test]
    fn rejects_invalid_documents() {
        for doc in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{'a':1}",
            "{\"a\":1,}",
            "01",
            "\"unterminated",
            "[1] trailing",
            "{\"a\" 1}",
        ] {
            assert!(validate(doc).is_err(), "{doc:?} wrongly accepted");
        }
    }
}
