//! Minimal JSON support: a syntax checker and a document parser.
//!
//! The exporters hand-roll their JSON (no serde in this workspace), so
//! the tests need an independent way to assert the output actually
//! parses ([`validate`]), and the sweep harness's checkpoint manifests
//! need to be read back ([`parse`] / [`Value`]). Both are strict
//! recursive-descent implementations of RFC 8259 syntax; `validate`
//! stays allocation-free by only accepting or rejecting.

/// Validates that `s` is one complete JSON value (plus trailing
/// whitespace). Returns the byte offset and message of the first error.
pub fn validate(s: &str) -> Result<(), String> {
    let bytes = s.as_bytes();
    let mut pos = 0;
    skip_ws(bytes, &mut pos);
    value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn fail(pos: usize, what: &str) -> Result<(), String> {
    Err(format!("{what} at byte {pos}"))
}

fn value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, b"true"),
        Some(b'f') => literal(b, pos, b"false"),
        Some(b'n') => literal(b, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
        Some(_) => fail(*pos, "unexpected character"),
        None => fail(*pos, "unexpected end of input"),
    }
}

fn literal(b: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b.len() >= *pos + lit.len() && &b[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        Ok(())
    } else {
        fail(*pos, "bad literal")
    }
}

fn object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return fail(*pos, "expected object key string");
        }
        string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return fail(*pos, "expected ':'");
        }
        *pos += 1;
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return fail(*pos, "expected ',' or '}'"),
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return fail(*pos, "expected ',' or ']'"),
        }
    }
}

fn string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '"'
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            match b.get(*pos) {
                                Some(h) if h.is_ascii_hexdigit() => *pos += 1,
                                _ => return fail(*pos, "bad \\u escape"),
                            }
                        }
                    }
                    _ => return fail(*pos, "bad escape"),
                }
            }
            0x00..=0x1f => return fail(*pos, "raw control character in string"),
            _ => *pos += 1,
        }
    }
    fail(*pos, "unterminated string")
}

fn number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    match b.get(*pos) {
        Some(b'0') => *pos += 1,
        Some(c) if c.is_ascii_digit() => {
            while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
                *pos += 1;
            }
        }
        _ => return fail(*pos, "bad number"),
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
            return fail(*pos, "bad fraction");
        }
        while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
            *pos += 1;
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
            return fail(*pos, "bad exponent");
        }
        while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
            *pos += 1;
        }
    }
    Ok(())
}

/// One parsed JSON value.
///
/// Numbers are kept as `f64` (integers up to 2^53 round-trip exactly,
/// which covers every quantity the manifests store; 64-bit digests are
/// serialized as hex *strings* for this reason).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    /// Object members in document order (duplicate keys preserved).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object member `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a `u64`, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses `s` into a [`Value`] tree. Returns the first error with its
/// byte offset, like [`validate`].
pub fn parse(s: &str) -> Result<Value, String> {
    let bytes = s.as_bytes();
    let mut pos = 0;
    skip_ws(bytes, &mut pos);
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(v)
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => {
            let start = *pos;
            object(b, pos)?;
            parse_object(b, start)
        }
        Some(b'[') => {
            let start = *pos;
            array(b, pos)?;
            parse_array(b, start)
        }
        Some(b'"') => {
            let start = *pos;
            string(b, pos)?;
            Ok(Value::Str(unescape(&b[start + 1..*pos - 1])))
        }
        Some(b't') => literal(b, pos, b"true").map(|()| Value::Bool(true)),
        Some(b'f') => literal(b, pos, b"false").map(|()| Value::Bool(false)),
        Some(b'n') => literal(b, pos, b"null").map(|()| Value::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let start = *pos;
            number(b, pos)?;
            let text = std::str::from_utf8(&b[start..*pos]).expect("validated ASCII number");
            text.parse::<f64>()
                .map(Value::Num)
                .map_err(|e| format!("bad number at byte {start}: {e}"))
        }
        Some(_) => Err(format!("unexpected character at byte {pos}")),
        None => Err("unexpected end of input".to_string()),
    }
}

// The two container re-parsers walk the already-validated span again,
// this time collecting children. Validation first keeps the error paths
// in one place (the validator) and the collectors panic-free.
fn parse_object(b: &[u8], start: usize) -> Result<Value, String> {
    let mut pos = start + 1; // '{'
    let mut members = Vec::new();
    skip_ws(b, &mut pos);
    if b.get(pos) == Some(&b'}') {
        return Ok(Value::Obj(members));
    }
    loop {
        skip_ws(b, &mut pos);
        let key_start = pos;
        string(b, &mut pos)?;
        let key = unescape(&b[key_start + 1..pos - 1]);
        skip_ws(b, &mut pos);
        pos += 1; // ':'
        let v = parse_value(b, &mut pos)?;
        members.push((key, v));
        skip_ws(b, &mut pos);
        match b.get(pos) {
            Some(b',') => pos += 1,
            _ => return Ok(Value::Obj(members)),
        }
    }
}

fn parse_array(b: &[u8], start: usize) -> Result<Value, String> {
    let mut pos = start + 1; // '['
    let mut items = Vec::new();
    skip_ws(b, &mut pos);
    if b.get(pos) == Some(&b']') {
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(b, &mut pos)?);
        skip_ws(b, &mut pos);
        match b.get(pos) {
            Some(b',') => pos += 1,
            _ => return Ok(Value::Arr(items)),
        }
    }
}

/// Decodes the body of a validated JSON string (without its quotes).
fn unescape(body: &[u8]) -> String {
    let mut out = String::with_capacity(body.len());
    let mut i = 0;
    while i < body.len() {
        if body[i] == b'\\' {
            i += 1;
            match body[i] {
                b'"' => out.push('"'),
                b'\\' => out.push('\\'),
                b'/' => out.push('/'),
                b'b' => out.push('\u{8}'),
                b'f' => out.push('\u{c}'),
                b'n' => out.push('\n'),
                b'r' => out.push('\r'),
                b't' => out.push('\t'),
                b'u' => {
                    let hex = std::str::from_utf8(&body[i + 1..i + 5]).expect("validated hex");
                    let code = u32::from_str_radix(hex, 16).expect("validated hex");
                    out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    i += 4;
                }
                _ => unreachable!("validator accepts only known escapes"),
            }
            i += 1;
        } else {
            // Multi-byte UTF-8 sequences pass through unchanged.
            let ch_len = utf8_len(body[i]);
            out.push_str(std::str::from_utf8(&body[i..i + ch_len]).expect("input was valid UTF-8"));
            i += ch_len;
        }
    }
    out
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// Escapes `s` for embedding in a JSON string literal (no quotes added).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::{escape, parse, validate, Value};

    #[test]
    fn accepts_valid_documents() {
        for doc in [
            "{}",
            "[]",
            "null",
            "true",
            "-0.5e+3",
            r#"{"a": [1, 2.5, "x\n", {"b": null}], "c": false}"#,
            "  { \"k\" : [ ] } \n",
        ] {
            validate(doc).unwrap_or_else(|e| panic!("{doc:?} rejected: {e}"));
        }
    }

    #[test]
    fn rejects_invalid_documents() {
        for doc in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{'a':1}",
            "{\"a\":1,}",
            "01",
            "\"unterminated",
            "[1] trailing",
            "{\"a\" 1}",
        ] {
            assert!(validate(doc).is_err(), "{doc:?} wrongly accepted");
        }
    }

    #[test]
    fn parse_builds_the_tree() {
        let v = parse(r#"{"a": [1, 2.5, "x\n"], "b": {"c": null, "d": true}}"#).expect("parses");
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_str(),
            Some("x\n")
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Null));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Value::Bool(true)));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parse_rejects_what_validate_rejects() {
        for doc in ["", "{", "[1,]", "{\"a\":}", "[1] trailing"] {
            assert!(parse(doc).is_err(), "{doc:?} wrongly parsed");
        }
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "line1\nline2\t\"quoted\" back\\slash \u{1} é 日本";
        let doc = format!("{{\"k\": \"{}\"}}", escape(nasty));
        validate(&doc).expect("escaped doc is valid");
        let v = parse(&doc).expect("parses");
        assert_eq!(v.get("k").unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn numbers_round_trip_exactly_up_to_2_53() {
        let doc = "[0, 9007199254740992, -3, 0.5]";
        let v = parse(doc).expect("parses");
        let arr = v.as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(0));
        assert_eq!(arr[1].as_u64(), Some(9007199254740992));
        assert_eq!(arr[2].as_f64(), Some(-3.0));
        assert_eq!(arr[3].as_u64(), None, "fractions are not u64s");
    }
}
