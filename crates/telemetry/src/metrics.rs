//! The metrics registry: named counters and log-scaled histograms with
//! hand-rolled JSON/CSV export (no external dependencies, same idiom as
//! `unxpec_stats::svg`).
//!
//! Components expose a `record_metrics(&self, &mut MetricsRegistry)`
//! method and write their counters under a dotted namespace
//! (`l1.hits`, `cleanupspec.rollbacks`, `core.ipc_milli`, ...); the
//! registry is assembled once at dump time, so steady-state simulation
//! pays nothing for metrics it never asks for.

use std::collections::BTreeMap;

/// Power-of-two-bucketed histogram for cycle-scale values.
///
/// Bucket `0` holds the value `0`; bucket `i >= 1` holds values in
/// `[2^(i-1), 2^i)`. 65 buckets cover the full `u64` range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl LogHistogram {
    /// Bucket index for `value`.
    fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Non-empty buckets as `(lower_bound, count)`, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| {
                let lower = if i == 0 { 0 } else { 1u64 << (i - 1) };
                (lower, n)
            })
            .collect()
    }

    /// Estimates the `q`-quantile (`0.0 < q <= 1.0`) from the log₂
    /// buckets: the bucket holding the rank is found by a cumulative
    /// walk and the value is interpolated linearly inside it, then
    /// clamped to the observed `[min, max]`. The estimate is exact for
    /// bucket boundaries and within one bucket width otherwise —
    /// that is the resolution a power-of-two histogram buys.
    ///
    /// Returns `None` when the histogram is empty or `q` is out of
    /// range.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 || !(0.0..=1.0).contains(&q) || q == 0.0 {
            return None;
        }
        // 1-based rank of the requested observation.
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                let (lower, upper) = bucket_bounds(i);
                let into = (rank - seen) as f64 / n as f64;
                let est = lower as f64 + into * (upper - lower) as f64;
                return Some((est as u64).clamp(self.min, self.max));
            }
            seen += n;
        }
        Some(self.max)
    }

    /// The p50 estimate (`None` when empty).
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// The p90 estimate (`None` when empty).
    pub fn p90(&self) -> Option<u64> {
        self.quantile(0.90)
    }

    /// The p99 estimate (`None` when empty).
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (b, &n) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += n;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// `[lower, upper)` value bounds of bucket `i` (bucket 64 is clamped
/// to `u64::MAX`).
fn bucket_bounds(i: usize) -> (u64, u64) {
    match i {
        0 => (0, 1),
        64 => (1u64 << 63, u64::MAX),
        _ => (1u64 << (i - 1), 1u64 << i),
    }
}

/// Named counters + histograms, keyed by dotted metric paths.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, LogHistogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `by` to counter `name` (creating it at zero).
    pub fn inc(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Sets counter `name` to `value`.
    pub fn set(&mut self, name: &str, value: u64) {
        self.counters.insert(name.to_string(), value);
    }

    /// Records `value` into histogram `name` (creating it).
    pub fn observe(&mut self, name: &str, value: u64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .observe(value);
    }

    /// Reads counter `name` (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Reads histogram `name`.
    pub fn histogram(&self, name: &str) -> Option<&LogHistogram> {
        self.histograms.get(name)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All histograms, sorted by name.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &LogHistogram)> {
        self.histograms.iter().map(|(k, h)| (k.as_str(), h))
    }

    /// Number of registered counters.
    pub fn counter_count(&self) -> usize {
        self.counters.len()
    }

    /// Merges `other` into this registry (counters add, histograms
    /// merge bucket-wise).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, &v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }

    /// Hand-rolled JSON dump:
    /// `{"counters": {...}, "histograms": {name: {count, sum, min, max,
    /// mean_milli, buckets: [[lower, count], ...]}, ...}}`.
    ///
    /// Keys are dotted metric paths (no characters needing escapes);
    /// values are integers, so the output is valid JSON by
    /// construction.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        let mut first = true;
        for (k, v) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\n    \"{}\": {}", escape_json(k), v));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        first = true;
        for (k, h) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"mean_milli\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"buckets\": [",
                escape_json(k),
                h.count(),
                h.sum(),
                h.min().unwrap_or(0),
                h.max().unwrap_or(0),
                (h.mean() * 1000.0).round() as u64,
                h.p50().unwrap_or(0),
                h.p90().unwrap_or(0),
                h.p99().unwrap_or(0),
            ));
            for (i, (lower, n)) in h.nonzero_buckets().iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("[{lower},{n}]"));
            }
            out.push_str("]}");
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// CSV dump: `kind,name,field,value` rows — counters first, then
    /// each histogram's summary fields, quantile estimates, and
    /// non-empty buckets. Name fields are RFC-4180 quoted, so labels
    /// containing commas, quotes, or newlines survive a round-trip.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("kind,name,field,value\n");
        for (k, v) in &self.counters {
            out.push_str(&format!("counter,{},value,{v}\n", csv_field(k)));
        }
        for (k, h) in &self.histograms {
            let k = csv_field(k);
            out.push_str(&format!("histogram,{k},count,{}\n", h.count()));
            out.push_str(&format!("histogram,{k},sum,{}\n", h.sum()));
            out.push_str(&format!("histogram,{k},min,{}\n", h.min().unwrap_or(0)));
            out.push_str(&format!("histogram,{k},max,{}\n", h.max().unwrap_or(0)));
            out.push_str(&format!("histogram,{k},p50,{}\n", h.p50().unwrap_or(0)));
            out.push_str(&format!("histogram,{k},p90,{}\n", h.p90().unwrap_or(0)));
            out.push_str(&format!("histogram,{k},p99,{}\n", h.p99().unwrap_or(0)));
            for (lower, n) in h.nonzero_buckets() {
                out.push_str(&format!("histogram,{k},bucket_ge_{lower},{n}\n"));
            }
        }
        out
    }

    /// Plain-text dump for terminals: counters first, then one line
    /// per histogram with count/mean and the p50/p90/p99 estimates.
    pub fn to_ascii(&self) -> String {
        let mut out = String::new();
        let width = self
            .counters
            .keys()
            .chain(self.histograms.keys())
            .map(|k| k.len())
            .max()
            .unwrap_or(0);
        for (k, v) in &self.counters {
            out.push_str(&format!("{k:<width$}  {v}\n"));
        }
        for (k, h) in &self.histograms {
            out.push_str(&format!(
                "{k:<width$}  n {} mean {:.1} p50 {} p90 {} p99 {} max {}\n",
                h.count(),
                h.mean(),
                h.p50().unwrap_or(0),
                h.p90().unwrap_or(0),
                h.p99().unwrap_or(0),
                h.max().unwrap_or(0),
            ));
        }
        out
    }
}

/// RFC-4180 quoting for one CSV field: fields containing a comma,
/// double quote, CR, or LF are wrapped in double quotes with embedded
/// quotes doubled; everything else passes through bare.
pub fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Splits one RFC-4180 CSV record into its fields, undoing
/// [`csv_field`] quoting. Newlines inside quoted fields must already be
/// part of `record` (the caller is responsible for logical-line
/// assembly). Unterminated quotes consume to the end of the record.
pub fn split_csv_record(record: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = record.chars().peekable();
    let mut quoted = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if quoted => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    field.push('"');
                } else {
                    quoted = false;
                }
            }
            '"' if field.is_empty() => quoted = true,
            ',' if !quoted => fields.push(std::mem::take(&mut field)),
            c => field.push(c),
        }
    }
    fields.push(field);
    fields
}

/// Escapes the characters JSON strings cannot contain bare. Metric
/// names are dotted identifiers, so this is usually the identity.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_log2() {
        let mut h = LogHistogram::default();
        for v in [0, 1, 2, 3, 4, 7, 8, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1000));
        let buckets = h.nonzero_buckets();
        // 0 -> [0], 1 -> [1,2), 2,3 -> [2,4), 4,7 -> [4,8), 8 -> [8,16),
        // 1000 -> [512,1024).
        assert_eq!(
            buckets,
            vec![(0, 1), (1, 1), (2, 2), (4, 2), (8, 1), (512, 1)]
        );
    }

    #[test]
    fn histogram_merge_adds() {
        let mut a = LogHistogram::default();
        a.observe(5);
        let mut b = LogHistogram::default();
        b.observe(100);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), Some(5));
        assert_eq!(a.max(), Some(100));
    }

    #[test]
    fn registry_roundtrip() {
        let mut m = MetricsRegistry::new();
        m.inc("l1.hits", 10);
        m.inc("l1.hits", 5);
        m.set("core.cycles", 1234);
        m.observe("squash.cleanup_cycles", 22);
        m.observe("squash.cleanup_cycles", 32);
        assert_eq!(m.counter("l1.hits"), 15);
        assert_eq!(m.counter("core.cycles"), 1234);
        assert_eq!(m.counter("absent"), 0);
        assert_eq!(m.histogram("squash.cleanup_cycles").unwrap().count(), 2);
    }

    #[test]
    fn json_is_well_formed_enough_to_eyeball() {
        let mut m = MetricsRegistry::new();
        m.inc("a.b", 1);
        m.observe("h", 7);
        let json = m.to_json();
        assert!(json.contains("\"a.b\": 1"));
        assert!(json.contains("\"counters\""));
        assert!(json.contains("\"histograms\""));
        assert!(json.contains("\"count\": 1"));
        // Balanced braces/brackets (cheap structural check).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut m = MetricsRegistry::new();
        m.inc("x", 3);
        m.observe("h", 9);
        let csv = m.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "kind,name,field,value");
        assert!(lines.contains(&"counter,x,value,3"));
        assert!(lines.contains(&"histogram,h,bucket_ge_8,1"));
    }

    #[test]
    fn merge_combines_registries() {
        let mut a = MetricsRegistry::new();
        a.inc("n", 1);
        a.observe("h", 2);
        let mut b = MetricsRegistry::new();
        b.inc("n", 2);
        b.observe("h", 4);
        a.merge(&b);
        assert_eq!(a.counter("n"), 3);
        assert_eq!(a.histogram("h").unwrap().count(), 2);
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape_json("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape_json("plain.path"), "plain.path");
    }

    #[test]
    fn quantiles_track_the_distribution() {
        let mut h = LogHistogram::default();
        for v in 1..=100u64 {
            h.observe(v);
        }
        // Log2 buckets bound the estimate, not the exact rank, so allow
        // one bucket of slack around the true percentiles.
        let p50 = h.p50().unwrap();
        let p90 = h.p90().unwrap();
        let p99 = h.p99().unwrap();
        assert!((32..=64).contains(&p50), "p50 estimate {p50}");
        assert!((64..=100).contains(&p90), "p90 estimate {p90}");
        assert!(p99 >= p90 && p99 <= 100, "p99 estimate {p99}");
        assert!(p50 <= p90, "quantiles must be monotone");
    }

    #[test]
    fn quantiles_of_constant_data_are_exact() {
        let mut h = LogHistogram::default();
        for _ in 0..10 {
            h.observe(42);
        }
        // min == max clamps every estimate to the single observed value.
        assert_eq!(h.p50(), Some(42));
        assert_eq!(h.p90(), Some(42));
        assert_eq!(h.p99(), Some(42));
        assert_eq!(LogHistogram::default().p50(), None);
    }

    #[test]
    fn csv_quoting_round_trips_hostile_labels() {
        for name in [
            "plain",
            "has,comma",
            "has\"quote",
            "multi\nline",
            "cr\rlf,\"both\"",
        ] {
            let quoted = csv_field(name);
            let record = format!("counter,{quoted},value,1");
            let fields = split_csv_record(&record);
            assert_eq!(fields.len(), 4, "field count for {name:?}");
            assert_eq!(fields[1], name, "round-trip of {name:?}");
        }
        // Exporter path: a hostile metric name stays one logical record.
        let mut m = MetricsRegistry::new();
        m.inc("exp,\"x\".done", 7);
        let csv = m.to_csv();
        let row = csv
            .lines()
            .find(|l| l.starts_with("counter,"))
            .expect("counter row");
        let fields = split_csv_record(row);
        assert_eq!(fields[1], "exp,\"x\".done");
        assert_eq!(fields[3], "7");
    }

    #[test]
    fn ascii_dump_prints_quantiles() {
        let mut m = MetricsRegistry::new();
        m.inc("sweep.progress.done", 12);
        for v in [10, 20, 30, 40] {
            m.observe("trial_us", v);
        }
        let text = m.to_ascii();
        assert!(text.contains("sweep.progress.done"));
        assert!(text.contains("p50"), "ascii dump must show p50: {text}");
        assert!(text.contains("p99"), "ascii dump must show p99: {text}");
    }

    #[test]
    fn csv_emits_quantile_rows() {
        let mut m = MetricsRegistry::new();
        m.observe("h", 9);
        let csv = m.to_csv();
        for field in ["p50", "p90", "p99"] {
            assert!(
                csv.lines().any(|l| l == format!("histogram,h,{field},9")),
                "missing {field} row in {csv}"
            );
        }
    }
}
