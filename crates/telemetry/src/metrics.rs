//! The metrics registry: named counters and log-scaled histograms with
//! hand-rolled JSON/CSV export (no external dependencies, same idiom as
//! `unxpec_stats::svg`).
//!
//! Components expose a `record_metrics(&self, &mut MetricsRegistry)`
//! method and write their counters under a dotted namespace
//! (`l1.hits`, `cleanupspec.rollbacks`, `core.ipc_milli`, ...); the
//! registry is assembled once at dump time, so steady-state simulation
//! pays nothing for metrics it never asks for.

use std::collections::BTreeMap;

/// Power-of-two-bucketed histogram for cycle-scale values.
///
/// Bucket `0` holds the value `0`; bucket `i >= 1` holds values in
/// `[2^(i-1), 2^i)`. 65 buckets cover the full `u64` range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl LogHistogram {
    /// Bucket index for `value`.
    fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Non-empty buckets as `(lower_bound, count)`, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| {
                let lower = if i == 0 { 0 } else { 1u64 << (i - 1) };
                (lower, n)
            })
            .collect()
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (b, &n) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += n;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Named counters + histograms, keyed by dotted metric paths.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, LogHistogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `by` to counter `name` (creating it at zero).
    pub fn inc(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Sets counter `name` to `value`.
    pub fn set(&mut self, name: &str, value: u64) {
        self.counters.insert(name.to_string(), value);
    }

    /// Records `value` into histogram `name` (creating it).
    pub fn observe(&mut self, name: &str, value: u64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .observe(value);
    }

    /// Reads counter `name` (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Reads histogram `name`.
    pub fn histogram(&self, name: &str) -> Option<&LogHistogram> {
        self.histograms.get(name)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Number of registered counters.
    pub fn counter_count(&self) -> usize {
        self.counters.len()
    }

    /// Merges `other` into this registry (counters add, histograms
    /// merge bucket-wise).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, &v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }

    /// Hand-rolled JSON dump:
    /// `{"counters": {...}, "histograms": {name: {count, sum, min, max,
    /// mean_milli, buckets: [[lower, count], ...]}, ...}}`.
    ///
    /// Keys are dotted metric paths (no characters needing escapes);
    /// values are integers, so the output is valid JSON by
    /// construction.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        let mut first = true;
        for (k, v) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\n    \"{}\": {}", escape_json(k), v));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        first = true;
        for (k, h) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"mean_milli\": {}, \"buckets\": [",
                escape_json(k),
                h.count(),
                h.sum(),
                h.min().unwrap_or(0),
                h.max().unwrap_or(0),
                (h.mean() * 1000.0).round() as u64,
            ));
            for (i, (lower, n)) in h.nonzero_buckets().iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("[{lower},{n}]"));
            }
            out.push_str("]}");
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// CSV dump: `kind,name,field,value` rows — counters first, then
    /// each histogram's summary fields and non-empty buckets.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("kind,name,field,value\n");
        for (k, v) in &self.counters {
            out.push_str(&format!("counter,{k},value,{v}\n"));
        }
        for (k, h) in &self.histograms {
            out.push_str(&format!("histogram,{k},count,{}\n", h.count()));
            out.push_str(&format!("histogram,{k},sum,{}\n", h.sum()));
            out.push_str(&format!("histogram,{k},min,{}\n", h.min().unwrap_or(0)));
            out.push_str(&format!("histogram,{k},max,{}\n", h.max().unwrap_or(0)));
            for (lower, n) in h.nonzero_buckets() {
                out.push_str(&format!("histogram,{k},bucket_ge_{lower},{n}\n"));
            }
        }
        out
    }
}

/// Escapes the characters JSON strings cannot contain bare. Metric
/// names are dotted identifiers, so this is usually the identity.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_log2() {
        let mut h = LogHistogram::default();
        for v in [0, 1, 2, 3, 4, 7, 8, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1000));
        let buckets = h.nonzero_buckets();
        // 0 -> [0], 1 -> [1,2), 2,3 -> [2,4), 4,7 -> [4,8), 8 -> [8,16),
        // 1000 -> [512,1024).
        assert_eq!(
            buckets,
            vec![(0, 1), (1, 1), (2, 2), (4, 2), (8, 1), (512, 1)]
        );
    }

    #[test]
    fn histogram_merge_adds() {
        let mut a = LogHistogram::default();
        a.observe(5);
        let mut b = LogHistogram::default();
        b.observe(100);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), Some(5));
        assert_eq!(a.max(), Some(100));
    }

    #[test]
    fn registry_roundtrip() {
        let mut m = MetricsRegistry::new();
        m.inc("l1.hits", 10);
        m.inc("l1.hits", 5);
        m.set("core.cycles", 1234);
        m.observe("squash.cleanup_cycles", 22);
        m.observe("squash.cleanup_cycles", 32);
        assert_eq!(m.counter("l1.hits"), 15);
        assert_eq!(m.counter("core.cycles"), 1234);
        assert_eq!(m.counter("absent"), 0);
        assert_eq!(m.histogram("squash.cleanup_cycles").unwrap().count(), 2);
    }

    #[test]
    fn json_is_well_formed_enough_to_eyeball() {
        let mut m = MetricsRegistry::new();
        m.inc("a.b", 1);
        m.observe("h", 7);
        let json = m.to_json();
        assert!(json.contains("\"a.b\": 1"));
        assert!(json.contains("\"counters\""));
        assert!(json.contains("\"histograms\""));
        assert!(json.contains("\"count\": 1"));
        // Balanced braces/brackets (cheap structural check).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut m = MetricsRegistry::new();
        m.inc("x", 3);
        m.observe("h", 9);
        let csv = m.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "kind,name,field,value");
        assert!(lines.contains(&"counter,x,value,3"));
        assert!(lines.contains(&"histogram,h,bucket_ge_8,1"));
    }

    #[test]
    fn merge_combines_registries() {
        let mut a = MetricsRegistry::new();
        a.inc("n", 1);
        a.observe("h", 2);
        let mut b = MetricsRegistry::new();
        b.inc("n", 2);
        b.observe("h", 4);
        a.merge(&b);
        assert_eq!(a.counter("n"), 3);
        assert_eq!(a.histogram("h").unwrap().count(), 2);
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape_json("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape_json("plain.path"), "plain.path");
    }
}
