//! ASCII rollback-timeline view.
//!
//! Renders the squash/cleanup history of an event stream as a bar chart
//! (one bar per rollback, length = cleanup cycles) using the
//! dependency-free renderers in `unxpec_stats::ascii`. This is the
//! terminal-friendly companion to the Chrome trace export — enough to
//! eyeball the secret-dependent rollback-duration difference that
//! unXpec measures without leaving the shell.

use unxpec_stats::ascii;

use crate::chrome::rollback_spans;
use crate::event::Event;

/// Renders each rollback in `events` as `@cycle pc=<pc> loads=<n> |###|`
/// with bar length proportional to the cleanup duration. Returns a
/// note when the stream contains no squashes.
pub fn rollback_timeline(events: &[Event], width: usize) -> String {
    let spans = rollback_spans(events);
    if spans.is_empty() {
        return "rollback timeline: no squash events in trace\n".to_string();
    }
    let rows: Vec<(String, f64)> = spans
        .iter()
        .map(|s| {
            (
                format!(
                    "@{:<8} pc={:<4} loads={}",
                    s.start, s.branch_pc, s.squashed_loads
                ),
                s.duration as f64,
            )
        })
        .collect();
    let mut out = ascii::bar_chart(
        "rollback timeline (bar = cleanup cycles, T2..redirect)",
        &rows,
        width,
    );
    let total: u64 = spans.iter().map(|s| s.duration).sum();
    let max = spans.iter().map(|s| s.duration).max().unwrap_or(0);
    out.push_str(&format!(
        "  {} rollbacks, {} stall cycles total, longest {}\n",
        spans.len(),
        total,
        max
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn squash(begin: u64, end: u64, epoch: u64, loads: u64) -> [Event; 2] {
        [
            Event::SquashBegin {
                cycle: begin,
                branch_pc: 7,
                epoch,
                squashed_loads: loads,
                squashed_insts: loads + 1,
            },
            Event::SquashEnd {
                cycle: end,
                branch_pc: 7,
                epoch,
            },
        ]
    }

    #[test]
    fn timeline_shows_each_rollback() {
        let mut events = Vec::new();
        events.extend(squash(100, 122, 1, 1));
        events.extend(squash(900, 932, 2, 2));
        let out = rollback_timeline(&events, 40);
        assert!(out.contains("@100"), "{out}");
        assert!(out.contains("@900"), "{out}");
        assert!(out.contains("2 rollbacks, 54 stall cycles total, longest 32"));
        // The longer cleanup gets the longer bar.
        let bar_len = |needle: &str| {
            out.lines()
                .find(|l| l.contains(needle))
                .map(|l| l.matches('#').count())
                .unwrap()
        };
        assert!(bar_len("@900") > bar_len("@100"));
    }

    #[test]
    fn empty_stream_has_a_note() {
        let out = rollback_timeline(&[], 40);
        assert!(out.contains("no squash events"));
    }
}
