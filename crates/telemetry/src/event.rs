//! The typed event vocabulary of the simulator.
//!
//! Every layer (pipeline, cache hierarchy, MSHR file, defense) speaks
//! the same [`Event`] enum, so one sink sees the interleaved
//! cycle-stamped history of a run and an exporter can lay the layers
//! out as parallel tracks. Variants are plain `Copy` data — no heap,
//! no strings — so constructing one on a disabled probe path costs
//! nothing.

/// Cycle type, kept structurally identical to `unxpec_cache::Cycle`
/// without introducing a dependency edge.
pub type Cycle = u64;

/// Which cache level an event refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheLevel {
    L1,
    L2,
}

impl CacheLevel {
    /// Stable lowercase label used by exporters.
    pub fn label(self) -> &'static str {
        match self {
            CacheLevel::L1 => "l1",
            CacheLevel::L2 => "l2",
        }
    }
}

/// The track (Perfetto "thread") an event is rendered on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Track {
    Pipeline,
    L1,
    L2,
    Mshr,
    Defense,
    /// Static-analysis findings (no cycle semantics; rendered at t=0).
    Analysis,
    /// Fault injection and invariant-sanitizer activity.
    Chaos,
    /// Sweep-service lifecycle: journal replay, admission decisions,
    /// client reconnects (wall-clock events; rendered at t=0).
    Service,
}

impl Track {
    /// All tracks, in display order.
    pub const ALL: [Track; 8] = [
        Track::Pipeline,
        Track::L1,
        Track::L2,
        Track::Mshr,
        Track::Defense,
        Track::Analysis,
        Track::Chaos,
        Track::Service,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            Track::Pipeline => "pipeline",
            Track::L1 => "cache.l1",
            Track::L2 => "cache.l2",
            Track::Mshr => "mshr",
            Track::Defense => "defense",
            Track::Analysis => "analysis",
            Track::Chaos => "chaos",
            Track::Service => "service",
        }
    }

    /// Stable numeric id (Chrome trace `tid`).
    pub fn tid(self) -> u64 {
        match self {
            Track::Pipeline => 1,
            Track::L1 => 2,
            Track::L2 => 3,
            Track::Mshr => 4,
            Track::Defense => 5,
            Track::Analysis => 6,
            Track::Chaos => 7,
            Track::Service => 8,
        }
    }
}

/// One cycle-stamped microarchitectural event.
///
/// Addresses are raw line numbers (`LineAddr::new` reverses the
/// mapping); PCs are static program indices. `epoch` fields carry the
/// speculation tag (`SpecTag.0`) so a squash's events can be matched to
/// the loads that ran under it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    // ----- Pipeline ------------------------------------------------------
    /// An instruction entered the window.
    Dispatch { cycle: Cycle, seq: u64, pc: usize },
    /// A load issued to the memory system.
    Issue { cycle: Cycle, seq: u64, pc: usize },
    /// An instruction produced its result.
    Complete {
        cycle: Cycle,
        seq: u64,
        pc: usize,
        wrong_path: bool,
    },
    /// A mispredicted branch resolved; defense cleanup begins (T2).
    SquashBegin {
        cycle: Cycle,
        branch_pc: usize,
        epoch: u64,
        squashed_loads: u64,
        squashed_insts: u64,
    },
    /// Cleanup finished; the front end may redirect (T6 minus refill).
    SquashEnd {
        cycle: Cycle,
        branch_pc: usize,
        epoch: u64,
    },
    /// The two-speed core switched execution mode: `fast_forward = true`
    /// when a committed straight-line region enters the functional
    /// interpreter, `false` when it drops back into the detailed core at
    /// the next speculation source. Per-instruction pipeline events are
    /// elided between a `true`/`false` pair.
    ModeSwitch { cycle: Cycle, fast_forward: bool },

    // ----- Cache hierarchy -----------------------------------------------
    CacheHit {
        cycle: Cycle,
        level: CacheLevel,
        line: u64,
    },
    CacheMiss {
        cycle: Cycle,
        level: CacheLevel,
        line: u64,
    },
    /// A line was installed; `speculative` marks transient installs.
    CacheFill {
        cycle: Cycle,
        level: CacheLevel,
        line: u64,
        speculative: bool,
    },
    /// A fill displaced `victim`.
    CacheEvict {
        cycle: Cycle,
        level: CacheLevel,
        victim: u64,
    },
    CacheWriteback {
        cycle: Cycle,
        level: CacheLevel,
        line: u64,
    },

    // ----- MSHR file ------------------------------------------------------
    MshrAlloc {
        cycle: Cycle,
        line: u64,
        complete_cycle: Cycle,
        speculative: bool,
    },
    /// A second miss to an inflight line merged into its entry.
    MshrMerge { cycle: Cycle, line: u64 },
    /// A speculative inflight miss was cancelled by cleanup (T3).
    MshrCancel { cycle: Cycle, line: u64 },

    // ----- Defense rollback steps ----------------------------------------
    /// Rollback invalidated a transient install.
    RollbackInvalidate {
        cycle: Cycle,
        level: CacheLevel,
        line: u64,
    },
    /// Rollback restored an evicted victim into the L1.
    RollbackRestore { cycle: Cycle, line: u64 },

    // ----- Static analysis --------------------------------------------------
    /// The static leak analyzer flagged a transient access. `pc` is the
    /// transmitting instruction, `spec_pc` the speculation source whose
    /// window contains it, and the codes are the stable ids of
    /// `unxpec-analysis`'s `DefenseModel` / `Channel` enums (kept as raw
    /// integers so this crate stays dependency-free).
    AnalysisLeak {
        pc: usize,
        spec_pc: usize,
        window_len: u64,
        defense_code: u64,
        channel_code: u64,
    },
    /// The replay harness drove a static leak witness through the
    /// dynamic simulator. `pc`/`spec_pc` mirror [`Event::AnalysisLeak`];
    /// `confirmed` records whether the predicted observable
    /// materialized, `delta_cycles` the measured effect size (rounded
    /// rollback-cycle delta, or footprint mismatch count).
    WitnessChecked {
        pc: usize,
        spec_pc: usize,
        defense_code: u64,
        channel_code: u64,
        confirmed: bool,
        delta_cycles: u64,
    },

    // ----- Fault injection and invariant sanitizer -------------------------
    /// The fault injector fired. `kind` is the stable code of
    /// `unxpec_cache::FaultKind` (kept as a raw integer so this crate
    /// stays dependency-free); `detail` is kind-specific (extra cycles
    /// for timing faults, a line or packed slot for placement faults).
    FaultInjected {
        cycle: Cycle,
        kind: u64,
        detail: u64,
    },
    /// The runtime invariant sanitizer tripped. `code` is the stable
    /// code of `unxpec_cpu::InvariantViolation`; `detail` is
    /// violation-specific context (counter values, PC, stall length).
    InvariantTrip {
        cycle: Cycle,
        code: u64,
        detail: u64,
    },

    // ----- Sweep-service lifecycle ------------------------------------------
    /// The sweep service replayed its write-ahead job journal on
    /// startup: `records` valid records were applied, `replayed`
    /// completed cells were restored without re-simulation, `requeued`
    /// unfinished cells went back to pending, and `dropped` corrupt
    /// tail records were salvaged around (wall-clock event; no cycle).
    JournalReplay {
        records: u64,
        replayed: u64,
        requeued: u64,
        dropped: u64,
    },
    /// Admission control rejected a submission. `reason_code` is the
    /// stable code of the service's overload reason (1 = job budget,
    /// 2 = byte budget, 3 = tenant quota, 4 = draining);
    /// `retry_after_ms` is the hint returned to the client.
    AdmissionReject {
        reason_code: u64,
        retry_after_ms: u64,
    },
    /// A resilient client re-established its session after a broken
    /// connection: `attempt` is the reconnect attempt number,
    /// `resumed_seq` the per-job event sequence streaming resumed from.
    ClientReconnect { attempt: u64, resumed_seq: u64 },
}

impl Event {
    /// The cycle stamp.
    pub fn cycle(&self) -> Cycle {
        match *self {
            Event::Dispatch { cycle, .. }
            | Event::Issue { cycle, .. }
            | Event::Complete { cycle, .. }
            | Event::SquashBegin { cycle, .. }
            | Event::SquashEnd { cycle, .. }
            | Event::ModeSwitch { cycle, .. }
            | Event::CacheHit { cycle, .. }
            | Event::CacheMiss { cycle, .. }
            | Event::CacheFill { cycle, .. }
            | Event::CacheEvict { cycle, .. }
            | Event::CacheWriteback { cycle, .. }
            | Event::MshrAlloc { cycle, .. }
            | Event::MshrMerge { cycle, .. }
            | Event::MshrCancel { cycle, .. }
            | Event::RollbackInvalidate { cycle, .. }
            | Event::RollbackRestore { cycle, .. }
            | Event::FaultInjected { cycle, .. }
            | Event::InvariantTrip { cycle, .. } => cycle,
            // Static findings and service lifecycle events have no
            // cycle; they sort before any run.
            Event::AnalysisLeak { .. }
            | Event::WitnessChecked { .. }
            | Event::JournalReplay { .. }
            | Event::AdmissionReject { .. }
            | Event::ClientReconnect { .. } => 0,
        }
    }

    /// The track this event renders on.
    pub fn track(&self) -> Track {
        match *self {
            Event::Dispatch { .. }
            | Event::Issue { .. }
            | Event::Complete { .. }
            | Event::ModeSwitch { .. } => Track::Pipeline,
            Event::SquashBegin { .. } | Event::SquashEnd { .. } | Event::RollbackRestore { .. } => {
                Track::Defense
            }
            Event::RollbackInvalidate { level, .. }
            | Event::CacheHit { level, .. }
            | Event::CacheMiss { level, .. }
            | Event::CacheFill { level, .. }
            | Event::CacheEvict { level, .. }
            | Event::CacheWriteback { level, .. } => match level {
                CacheLevel::L1 => Track::L1,
                CacheLevel::L2 => Track::L2,
            },
            Event::MshrAlloc { .. } | Event::MshrMerge { .. } | Event::MshrCancel { .. } => {
                Track::Mshr
            }
            Event::AnalysisLeak { .. } | Event::WitnessChecked { .. } => Track::Analysis,
            Event::FaultInjected { .. } | Event::InvariantTrip { .. } => Track::Chaos,
            Event::JournalReplay { .. }
            | Event::AdmissionReject { .. }
            | Event::ClientReconnect { .. } => Track::Service,
        }
    }

    /// Stable snake-case event name (exporters and taxonomy docs).
    pub fn name(&self) -> &'static str {
        match self {
            Event::Dispatch { .. } => "dispatch",
            Event::Issue { .. } => "issue",
            Event::Complete { .. } => "complete",
            Event::SquashBegin { .. } => "squash_begin",
            Event::SquashEnd { .. } => "squash_end",
            Event::ModeSwitch { .. } => "mode_switch",
            Event::CacheHit { .. } => "cache_hit",
            Event::CacheMiss { .. } => "cache_miss",
            Event::CacheFill { .. } => "cache_fill",
            Event::CacheEvict { .. } => "cache_evict",
            Event::CacheWriteback { .. } => "cache_writeback",
            Event::MshrAlloc { .. } => "mshr_alloc",
            Event::MshrMerge { .. } => "mshr_merge",
            Event::MshrCancel { .. } => "mshr_cancel",
            Event::RollbackInvalidate { .. } => "rollback_invalidate",
            Event::RollbackRestore { .. } => "rollback_restore",
            Event::AnalysisLeak { .. } => "analysis_leak",
            Event::WitnessChecked { .. } => "witness_checked",
            Event::FaultInjected { .. } => "fault_injected",
            Event::InvariantTrip { .. } => "invariant_trip",
            Event::JournalReplay { .. } => "journal_replay",
            Event::AdmissionReject { .. } => "admission_reject",
            Event::ClientReconnect { .. } => "client_reconnect",
        }
    }

    /// The event's payload as `(key, value)` pairs for exporters, in a
    /// stable order. Cycle and track are excluded (carried separately).
    pub fn args(&self) -> Vec<(&'static str, u64)> {
        match *self {
            Event::Dispatch { seq, pc, .. } | Event::Issue { seq, pc, .. } => {
                vec![("seq", seq), ("pc", pc as u64)]
            }
            Event::Complete {
                seq,
                pc,
                wrong_path,
                ..
            } => vec![
                ("seq", seq),
                ("pc", pc as u64),
                ("wrong_path", wrong_path as u64),
            ],
            Event::SquashBegin {
                branch_pc,
                epoch,
                squashed_loads,
                squashed_insts,
                ..
            } => vec![
                ("branch_pc", branch_pc as u64),
                ("epoch", epoch),
                ("squashed_loads", squashed_loads),
                ("squashed_insts", squashed_insts),
            ],
            Event::SquashEnd {
                branch_pc, epoch, ..
            } => vec![("branch_pc", branch_pc as u64), ("epoch", epoch)],
            Event::ModeSwitch { fast_forward, .. } => {
                vec![("fast_forward", fast_forward as u64)]
            }
            Event::CacheHit { line, .. }
            | Event::CacheMiss { line, .. }
            | Event::CacheWriteback { line, .. } => vec![("line", line)],
            Event::CacheFill {
                line, speculative, ..
            } => vec![("line", line), ("speculative", speculative as u64)],
            Event::CacheEvict { victim, .. } => vec![("victim", victim)],
            Event::MshrAlloc {
                line,
                complete_cycle,
                speculative,
                ..
            } => vec![
                ("line", line),
                ("complete_cycle", complete_cycle),
                ("speculative", speculative as u64),
            ],
            Event::MshrMerge { line, .. } | Event::MshrCancel { line, .. } => {
                vec![("line", line)]
            }
            Event::RollbackInvalidate { line, .. } | Event::RollbackRestore { line, .. } => {
                vec![("line", line)]
            }
            Event::AnalysisLeak {
                pc,
                spec_pc,
                window_len,
                defense_code,
                channel_code,
            } => vec![
                ("pc", pc as u64),
                ("spec_pc", spec_pc as u64),
                ("window_len", window_len),
                ("defense_code", defense_code),
                ("channel_code", channel_code),
            ],
            Event::WitnessChecked {
                pc,
                spec_pc,
                defense_code,
                channel_code,
                confirmed,
                delta_cycles,
            } => vec![
                ("pc", pc as u64),
                ("spec_pc", spec_pc as u64),
                ("defense_code", defense_code),
                ("channel_code", channel_code),
                ("confirmed", confirmed as u64),
                ("delta_cycles", delta_cycles),
            ],
            Event::FaultInjected { kind, detail, .. } => {
                vec![("kind", kind), ("detail", detail)]
            }
            Event::InvariantTrip { code, detail, .. } => {
                vec![("code", code), ("detail", detail)]
            }
            Event::JournalReplay {
                records,
                replayed,
                requeued,
                dropped,
            } => vec![
                ("records", records),
                ("replayed", replayed),
                ("requeued", requeued),
                ("dropped", dropped),
            ],
            Event::AdmissionReject {
                reason_code,
                retry_after_ms,
            } => vec![
                ("reason_code", reason_code),
                ("retry_after_ms", retry_after_ms),
            ],
            Event::ClientReconnect {
                attempt,
                resumed_seq,
            } => vec![("attempt", attempt), ("resumed_seq", resumed_seq)],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_and_track_cover_every_variant() {
        let events = [
            Event::Dispatch {
                cycle: 1,
                seq: 0,
                pc: 0,
            },
            Event::Issue {
                cycle: 2,
                seq: 0,
                pc: 0,
            },
            Event::Complete {
                cycle: 3,
                seq: 0,
                pc: 0,
                wrong_path: true,
            },
            Event::SquashBegin {
                cycle: 4,
                branch_pc: 0,
                epoch: 1,
                squashed_loads: 0,
                squashed_insts: 0,
            },
            Event::SquashEnd {
                cycle: 5,
                branch_pc: 0,
                epoch: 1,
            },
            Event::CacheHit {
                cycle: 6,
                level: CacheLevel::L1,
                line: 9,
            },
            Event::CacheMiss {
                cycle: 7,
                level: CacheLevel::L2,
                line: 9,
            },
            Event::CacheFill {
                cycle: 8,
                level: CacheLevel::L1,
                line: 9,
                speculative: true,
            },
            Event::CacheEvict {
                cycle: 9,
                level: CacheLevel::L1,
                victim: 3,
            },
            Event::CacheWriteback {
                cycle: 10,
                level: CacheLevel::L2,
                line: 3,
            },
            Event::MshrAlloc {
                cycle: 11,
                line: 9,
                complete_cycle: 90,
                speculative: false,
            },
            Event::MshrMerge { cycle: 12, line: 9 },
            Event::MshrCancel { cycle: 13, line: 9 },
            Event::RollbackInvalidate {
                cycle: 14,
                level: CacheLevel::L2,
                line: 9,
            },
            Event::RollbackRestore { cycle: 15, line: 3 },
            Event::FaultInjected {
                cycle: 16,
                kind: 1,
                detail: 80,
            },
            Event::InvariantTrip {
                cycle: 17,
                code: 4,
                detail: 9,
            },
            Event::ModeSwitch {
                cycle: 18,
                fast_forward: true,
            },
        ];
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.cycle(), i as u64 + 1);
            assert!(!e.name().is_empty());
            let _ = e.track();
            let _ = e.args();
        }
    }

    #[test]
    fn analysis_leak_routes_to_the_analysis_track() {
        let e = Event::AnalysisLeak {
            pc: 12,
            spec_pc: 9,
            window_len: 200,
            defense_code: 1,
            channel_code: 1,
        };
        assert_eq!(e.cycle(), 0, "static findings predate the run");
        assert_eq!(e.track(), Track::Analysis);
        assert_eq!(e.name(), "analysis_leak");
        let args = e.args();
        assert_eq!(args[0], ("pc", 12));
        assert_eq!(args[1], ("spec_pc", 9));
    }

    #[test]
    fn witness_checked_routes_to_the_analysis_track() {
        let e = Event::WitnessChecked {
            pc: 12,
            spec_pc: 9,
            defense_code: 1,
            channel_code: 1,
            confirmed: true,
            delta_cycles: 22,
        };
        assert_eq!(e.cycle(), 0, "replay verdicts predate cycle time");
        assert_eq!(e.track(), Track::Analysis);
        assert_eq!(e.name(), "witness_checked");
        let args = e.args();
        assert_eq!(args[4], ("confirmed", 1));
        assert_eq!(args[5], ("delta_cycles", 22));
    }

    #[test]
    fn tracks_have_unique_tids() {
        let mut tids: Vec<u64> = Track::ALL.iter().map(|t| t.tid()).collect();
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids.len(), Track::ALL.len());
    }

    #[test]
    fn chaos_events_route_to_the_chaos_track() {
        let fault = Event::FaultInjected {
            cycle: 40,
            kind: 3,
            detail: 1 << 30,
        };
        let trip = Event::InvariantTrip {
            cycle: 41,
            code: 2,
            detail: 0,
        };
        assert_eq!(fault.track(), Track::Chaos);
        assert_eq!(trip.track(), Track::Chaos);
        assert_eq!(fault.name(), "fault_injected");
        assert_eq!(trip.name(), "invariant_trip");
        assert_eq!(fault.args(), vec![("kind", 3), ("detail", 1 << 30)]);
    }

    #[test]
    fn service_events_route_to_the_service_track() {
        let replay = Event::JournalReplay {
            records: 10,
            replayed: 7,
            requeued: 3,
            dropped: 1,
        };
        let reject = Event::AdmissionReject {
            reason_code: 1,
            retry_after_ms: 250,
        };
        let reconnect = Event::ClientReconnect {
            attempt: 2,
            resumed_seq: 5,
        };
        for e in [replay, reject, reconnect] {
            assert_eq!(e.track(), Track::Service);
            assert_eq!(e.cycle(), 0, "service events are wall-clock");
            assert!(!e.args().is_empty());
        }
        assert_eq!(replay.name(), "journal_replay");
        assert_eq!(reject.args()[1], ("retry_after_ms", 250));
        assert_eq!(reconnect.args()[0], ("attempt", 2));
    }

    #[test]
    fn level_events_route_to_their_level_track() {
        let hit_l1 = Event::CacheHit {
            cycle: 0,
            level: CacheLevel::L1,
            line: 0,
        };
        let hit_l2 = Event::CacheHit {
            cycle: 0,
            level: CacheLevel::L2,
            line: 0,
        };
        assert_eq!(hit_l1.track(), Track::L1);
        assert_eq!(hit_l2.track(), Track::L2);
    }
}
